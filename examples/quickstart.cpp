// Quickstart: build a task graph, describe a machine hierarchy, solve, and
// inspect the placement.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~60 lines.
#include <cstdio>

#include "runtime/solver.hpp"
#include "hierarchy/cost.hpp"

int main() {
  using namespace hgp;

  // 1. The task graph: six communicating tasks.  Edge weights are
  //    communication volumes, demands are CPU fractions in (0, 1].
  GraphBuilder builder(6);
  builder.add_edge(0, 1, 10.0);  // a hot producer/consumer pair
  builder.add_edge(1, 2, 2.0);
  builder.add_edge(2, 3, 8.0);   // another hot pair
  builder.add_edge(3, 4, 1.0);
  builder.add_edge(4, 5, 6.0);
  builder.add_edge(5, 0, 1.5);
  for (Vertex v = 0; v < 6; ++v) builder.set_demand(v, 0.45);
  const Graph g = builder.build();

  // 2. The machine: 2 sockets × 2 cores, unit capacity per core.
  //    cm(j) prices an edge by the level of the lowest common ancestor of
  //    its endpoints' cores: 4 across sockets, 1 across cores in a socket,
  //    0 inside a core.
  const Hierarchy machine({2, 2}, {4.0, 1.0, 0.0});
  std::printf("machine: %s\n", machine.to_string().c_str());

  // 3. Solve.  epsilon trades demand-rounding accuracy for speed; num_trees
  //    is the size of the sampled decomposition-tree family.
  SolverOptions options;
  options.epsilon = 0.25;
  options.num_trees = 4;
  options.seed = 42;
  const HgpResult result = solve_hgp(g, machine, options);

  // 4. Inspect: assignment, cost and per-level load.
  std::printf("\ntask -> core assignment:\n");
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    std::printf("  task %d -> core %lld (socket %lld)\n", v,
                static_cast<long long>(result.placement[v]),
                static_cast<long long>(
                    machine.leaf_ancestor(result.placement[v], 1)));
  }
  std::printf("\ncommunication cost (Eq. 1): %.2f\n", result.cost);
  std::printf("best of %zu decomposition trees: tree #%d\n",
              result.tree_costs.size(), result.best_tree);
  std::printf("worst capacity violation: %.2fx (leaf level %.2fx)\n",
              result.loads.max_violation(), result.loads.leaf_violation());

  // 5. Compare against the naive layout 0,1,2,3,0,1 to see the gain.
  Placement naive;
  naive.leaf_of = {0, 1, 2, 3, 0, 1};
  std::printf("naive round-robin cost:     %.2f\n",
              placement_cost(g, machine, naive));
  return 0;
}
