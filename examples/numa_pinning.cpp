// NUMA pinning with a custom cost model and a what-if sweep.
//
// A 4-node NUMA box (h = 1 within each node is collapsed: hierarchy is
// NUMA-node → core, h = 2).  The example shows how the cost-multiplier
// vector expresses different interconnect technologies, and how placement
// decisions shift as remote-access cost grows — the "crossover" knob.
//
//   $ ./numa_pinning [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "runtime/solver.hpp"
#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgp;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // Workload: a 2-D stencil (halo-exchange) plus a hub service touching
  // everything — the awkward mix NUMA placement has to arbitrate.
  Rng rng(seed);
  Graph g = [&] {
    GraphBuilder b(26);
    // 5×5 stencil grid...
    const Graph grid = gen::grid2d(5, 5, gen::WeightRange{2.0, 4.0}, &rng);
    for (const Edge& e : grid.edges()) b.add_edge(e.u, e.v, e.weight);
    // ...and vertex 25 as a telemetry hub with light edges to every task.
    for (Vertex v = 0; v < 25; ++v) b.add_edge(25, v, 0.5);
    for (Vertex v = 0; v < 26; ++v) b.set_demand(v, 0.55);
    return b.build();
  }();
  std::printf("workload: %d tasks, %d edges (stencil + telemetry hub)\n\n",
              g.vertex_count(), g.edge_count());

  // Sweep the remote-access penalty: same-core 0, same NUMA node 1,
  // remote node r for r in {1, 2, 4, 8} (r = 1 means NUMA-oblivious).
  Table table({"remote penalty r", "cost", "cross-node edges",
               "node loads", "violation"});
  for (const double r : {1.0, 2.0, 4.0, 8.0}) {
    const Hierarchy numa({4, 4}, {r, 1.0, 0.0});
    SolverOptions opt;
    opt.epsilon = 0.5;
    opt.num_trees = 3;
    opt.units_override = 8;
    opt.seed = seed;
    const HgpResult res = solve_hgp(g, numa, opt);
    int cross = 0;
    for (const Edge& e : g.edges()) {
      if (numa.lca_level(res.placement[e.u], res.placement[e.v]) == 0) ++cross;
    }
    std::string loads;
    for (double x : res.loads.load[1]) {
      if (!loads.empty()) loads += "/";
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f", x);
      loads += buf;
    }
    table.row()
        .add(r, 1)
        .add(res.cost)
        .add(cross)
        .add(loads)
        .add(res.loads.max_violation(), 2);
  }
  table.print(std::cout);
  std::printf(
      "\nAs r grows the solver trades intra-node balance for fewer\n"
      "cross-node edges: the stencil tiles onto nodes and only the hub's\n"
      "light telemetry edges cross the interconnect.\n");
  return 0;
}
