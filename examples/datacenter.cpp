// Datacenter service placement: microservice graphs on a rack/server
// hierarchy (distributed-streaming setting from §1: Storm / InfoSphere).
//
// Hierarchy: 2 racks × 4 servers; cm prices cross-rack traffic (over the
// spine) at 8×, cross-server (top-of-rack switch) at 2×, same-server free.
//
//   $ ./datacenter [services] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "baseline/multilevel.hpp"
#include "runtime/solver.hpp"
#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgp;
  const Vertex services = argc > 1 ? narrow<Vertex>(std::atoi(argv[1])) : 64;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  const Hierarchy dc({2, 4}, {8.0, 2.0, 0.0});
  std::printf("datacenter: %s\n", dc.to_string().c_str());

  // Microservice mesh: a few tightly-coupled service groups (the classic
  // "microservice death star" has clustered call structure) plus light
  // cross-group calls.
  Rng rng(seed);
  Graph mesh = gen::planted_partition(
      services, 4, std::min(1.0, 14.0 / services), 0.02, rng,
      gen::WeightRange{5.0, 20.0}, gen::WeightRange{1.0, 3.0});
  gen::set_random_demands(mesh, rng, 0.05, 0.25);
  std::printf("mesh: %d services, %d call edges, total load %.1f of %lld "
              "servers\n\n",
              mesh.vertex_count(), mesh.edge_count(), mesh.total_demand(),
              static_cast<long long>(dc.leaf_count()));

  SolverOptions opt;
  opt.epsilon = 0.5;
  opt.num_trees = 3;
  opt.units_override = 8;
  opt.seed = seed;
  const HgpResult res = solve_hgp(mesh, dc, opt);

  Rng ml_rng(seed);
  const Placement ml = multilevel_placement(mesh, dc, ml_rng);

  Table table({"policy", "traffic cost", "cross-rack traffic", "violation"});
  auto cross_rack = [&](const Placement& p) {
    double x = 0;
    for (const Edge& e : mesh.edges()) {
      if (dc.lca_level(p[e.u], p[e.v]) == 0) x += e.weight;
    }
    return x;
  };
  table.row()
      .add("multilevel partitioner")
      .add(placement_cost(mesh, dc, ml))
      .add(cross_rack(ml))
      .add(load_report(mesh, dc, ml).max_violation(), 2);
  table.row()
      .add("hgp solver")
      .add(res.cost)
      .add(cross_rack(res.placement))
      .add(res.loads.max_violation(), 2);
  table.print(std::cout);

  // Per-server load map under the solver.
  std::printf("\nserver load map (hgp solver):\n");
  const auto& leaf_loads = res.loads.load.back();
  for (std::int64_t rack = 0; rack < dc.nodes_at(1); ++rack) {
    std::printf("  rack %lld:", static_cast<long long>(rack));
    for (int s = 0; s < dc.deg(1); ++s) {
      std::printf("  srv%d=%.2f", s,
                  leaf_loads[static_cast<std::size_t>(rack * dc.deg(1) + s)]);
    }
    std::printf("\n");
  }
  return 0;
}
