// Stream pipeline pinning — the paper's motivating application (§1).
//
// Generates a TidalRace-style operator DAG (sources → stages → sinks with
// a few high-volume channels), pins it to a 2-socket × 4-core ×
// 2-hyperthread machine, and compares the hierarchy-aware solver against
// the placements a scheduler might otherwise use.
//
//   $ ./stream_pipeline [tasks] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "baseline/greedy.hpp"
#include "baseline/random_placement.hpp"
#include "runtime/solver.hpp"
#include "exp/workloads.hpp"
#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "sim/throughput.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hgp;
  const Vertex tasks = argc > 1 ? narrow<Vertex>(std::atoi(argv[1])) : 48;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // The machine: 2 sockets × 4 cores × 2 hyperthreads; crossing a socket
  // costs 10× the shared-L3 price, hyperthread siblings are nearly free.
  const Hierarchy machine = exp::hierarchy_socket_core_ht();
  std::printf("machine: %s\n", machine.to_string().c_str());

  // The pipeline: layered operator DAG with heavy-hitter channels.
  Rng rng(seed);
  gen::StreamDagOptions dag;
  dag.sources = std::max(2, tasks / 12);
  dag.sinks = std::max(1, tasks / 16);
  dag.stages = 3;
  dag.stage_width = std::max(2, (tasks - dag.sources - dag.sinks) / 3);
  const Graph pipeline = gen::stream_dag(dag, rng);
  std::printf("pipeline: %d operators, %d channels, total CPU demand %.1f "
              "of %lld cores\n\n",
              pipeline.vertex_count(), pipeline.edge_count(),
              pipeline.total_demand(),
              static_cast<long long>(machine.leaf_count()));

  // Throughput model: fast hyperthread links, 3x slower per level up.
  const sim::MachineModel model = sim::MachineModel::tapered(
      machine.height(), pipeline.total_edge_weight() / 2.0, 3.0);
  Table table({"placement policy", "comm cost", "cross-socket %",
               "sustained rate", "violation"});
  auto report = [&](const char* name, const Placement& p) {
    double cross = 0;
    for (const Edge& e : pipeline.edges()) {
      if (machine.lca_level(p[e.u], p[e.v]) == 0) cross += e.weight;
    }
    table.row()
        .add(name)
        .add(placement_cost(pipeline, machine, p))
        .add(100.0 * cross / pipeline.total_edge_weight(), 1)
        .add(sim::analyze_throughput(pipeline, machine, p, model).throughput)
        .add(load_report(pipeline, machine, p).max_violation(), 2);
  };

  // Policy 1: what an affinity-oblivious OS scheduler amounts to.
  Rng os_rng(seed + 1);
  report("oblivious (random)",
         random_placement(pipeline, machine, os_rng));

  // Policy 2: cluster hot channels, then pack (cache-aware heuristic).
  report("greedy clustering", greedy_placement(pipeline, machine));

  // Policy 3: the paper's algorithm.
  SolverOptions opt;
  opt.epsilon = 0.5;
  opt.num_trees = 4;
  opt.units_override = 8;
  opt.seed = seed;
  const HgpResult res = solve_hgp(pipeline, machine, opt);
  report("hgp solver", res.placement);

  table.print(std::cout);

  // Show the hot channels' fate under the solver.
  std::printf("\nheaviest channels under the solver:\n");
  std::vector<EdgeId> order(static_cast<std::size_t>(pipeline.edge_count()));
  for (EdgeId e = 0; e < pipeline.edge_count(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return pipeline.edge(a).weight > pipeline.edge(b).weight;
  });
  for (int i = 0; i < 5 && i < pipeline.edge_count(); ++i) {
    const Edge& e = pipeline.edge(order[static_cast<std::size_t>(i)]);
    const int lca = machine.lca_level(res.placement[e.u], res.placement[e.v]);
    const char* where = lca == 3   ? "same hyperthread pair"
                        : lca == 2 ? "same core"
                        : lca == 1 ? "same socket"
                                   : "ACROSS SOCKETS";
    std::printf("  %d->%d volume %.1f : %s\n", e.u, e.v, e.weight, where);
  }
  return 0;
}
