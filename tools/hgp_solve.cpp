// hgp_solve — command-line front end.
//
//   hgp_solve --graph tasks.metis --deg 2,4,2 --cm 10,4,1,0
//             [--algo hgp|greedy|multilevel|rb|random] [--trees 4]
//             [--units 8 | --epsilon 0.5] [--seed 1] [--out placement.txt]
//             [--timeout-ms MS] [--fallback chain|none]
//
// Reads a METIS task graph (vertex weights = demands scaled by 1/1000,
// edge weights = communication volumes), solves the placement against the
// given hierarchy, prints a per-level load/cost report, and optionally
// writes the placement in the library's "task leaf" format.
//
// Exit codes are keyed to the final hgp::Status (see docs/RESILIENCE.md):
//   0 OK   1 internal error   2 usage error   3 invalid input
//   4 infeasible   5 deadline exceeded   6 cancelled
//   7 resource exhausted (memory budget / admission rejected the work)
//   8 retry budget exhausted (--retries N spent, last failure transient)
//   9 data loss (--load-snapshot file corrupt / wrong version / truncated)
//  10 unavailable (--shards workers could not be spawned / reached at all)
// A degraded run (fallback placement under an expired deadline) still
// prints and writes its placement but exits with the status's code, so
// scripts can tell a full-quality solve from a downgraded one.
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "baseline/greedy.hpp"
#include "baseline/multilevel.hpp"
#include "baseline/random_placement.hpp"
#include "baseline/recursive_bisection.hpp"
#include "decomp/cutter.hpp"
#include "graph/fingerprint.hpp"
#include "graph/io.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/placement_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/forest_cache.hpp"
#include "runtime/service.hpp"
#include "runtime/solver.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitResourceExhausted = 7;
/// The --retries budget was spent on transient failures; distinct from 7 so
/// scripts can tell "rejected up front" from "kept failing transiently".
constexpr int kExitRetriesExhausted = 8;
/// A snapshot file failed integrity checking (kDataLoss): re-reading the
/// same bytes cannot help, so scripts should fall back to a cold solve.
constexpr int kExitDataLoss = 9;
/// Every shard worker was unreachable/lost and the solve could not proceed
/// (kUnavailable is transient: scripts may retry or drop --shards).
constexpr int kExitUnavailable = 10;

int exit_code_for(hgp::StatusCode code) {
  switch (code) {
    case hgp::StatusCode::kOk:
      return kExitOk;
    case hgp::StatusCode::kInvalidInput:
      return 3;
    case hgp::StatusCode::kInfeasible:
      return 4;
    case hgp::StatusCode::kDeadlineExceeded:
      return 5;
    case hgp::StatusCode::kCancelled:
      return 6;
    case hgp::StatusCode::kInternal:
      return kExitInternal;
    case hgp::StatusCode::kResourceExhausted:
      return kExitResourceExhausted;
    case hgp::StatusCode::kDataLoss:
      return kExitDataLoss;
    case hgp::StatusCode::kUnavailable:
      return kExitUnavailable;
  }
  return kExitInternal;
}

void print_usage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s --graph FILE --deg D0,D1,... --cm C0,C1,...,Ch\n"
      "          [--algo hgp|greedy|multilevel|rb|random] [--trees N]\n"
      "          [--units U | --epsilon E] [--seed S] [--out FILE]\n"
      "          [--timeout-ms MS] [--fallback chain|none] [--retries N]\n"
      "          [--save-snapshot FILE] [--load-snapshot FILE]\n"
      "          [--shards N] [--shardd PATH]\n"
      "          [--trace FILE] [--metrics FILE] [--report] [--help]\n"
      "\n"
      "  --graph FILE     METIS task graph (vertex weights = demands/1000)\n"
      "  --deg LIST       children per hierarchy level, e.g. 2,4,2\n"
      "  --cm LIST        level cost multipliers, e.g. 10,4,1,0\n"
      "  --algo NAME      placement algorithm (default hgp)\n"
      "  --trees N        decomposition trees sampled by hgp (default 4)\n"
      "  --units U        demand units per leaf (default 8)\n"
      "  --epsilon E      derive units from rounding accuracy E instead\n"
      "  --seed S         PRNG seed (default 1)\n"
      "  --out FILE       write the placement in task-leaf format\n"
      "  --timeout-ms MS  wall-clock budget; on expiry hgp degrades to the\n"
      "                   fallback chain instead of running over (default:\n"
      "                   unbounded)\n"
      "  --fallback MODE  chain = degrade hgp->multilevel->greedy (default),\n"
      "                   none = fail with a typed status instead\n"
      "  --retries N      retry transient failures up to N times with\n"
      "                   exponential backoff (service-layer semantics;\n"
      "                   exit 8 when the budget is spent, default 0)\n"
      "  --save-snapshot FILE\n"
      "                   after an hgp solve, write the sampled forest (with\n"
      "                   its graph) as a durable binary snapshot\n"
      "  --load-snapshot FILE\n"
      "                   warm the forest cache from a snapshot before\n"
      "                   solving; a corrupt/stale file exits 9 (data loss)\n"
      "  --shards N       spawn N local hgp_shardd worker processes and\n"
      "                   distribute the tree solves across them (hgp only;\n"
      "                   bit-identical to the single-process solve; lost\n"
      "                   shards degrade back to in-process solving)\n"
      "  --shardd PATH    shard worker binary (default: hgp_shardd next to\n"
      "                   this binary, or $HGP_SHARDD)\n"
      "  --trace FILE     record trace spans, write Chrome trace-event JSON\n"
      "                   (open in chrome://tracing or ui.perfetto.dev)\n"
      "  --metrics FILE   write the metrics registry as JSON\n"
      "  --report         print per-tree attempts, phase timings and a span\n"
      "                   summary to stderr\n"
      "  --help           print this message and exit\n",
      argv0);
}

[[noreturn]] void usage_error(const char* argv0, const char* fmt,
                              const char* detail) {
  std::fprintf(stderr, "hgp_solve: ");
  std::fprintf(stderr, fmt, detail);
  std::fprintf(stderr, "\n");
  print_usage(stderr, argv0);
  std::exit(kExitUsage);
}

/// Strict integer parse: the whole token must be a base-10 integer within
/// [lo, hi].  Exits 2 naming the offending flag otherwise (std::atoi would
/// silently yield 0 on garbage like `--trees abc`).
long long parse_int(const char* flag, const std::string& value, long long lo,
                    long long hi) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno != 0) {
    std::fprintf(stderr, "hgp_solve: invalid integer '%s' for %s\n",
                 value.c_str(), flag);
    std::exit(kExitUsage);
  }
  if (parsed < lo || parsed > hi) {
    std::fprintf(stderr,
                 "hgp_solve: value %lld for %s out of range [%lld, %lld]\n",
                 parsed, flag, lo, hi);
    std::exit(kExitUsage);
  }
  return parsed;
}

/// Strict finite-double parse with the same failure contract as parse_int.
double parse_double(const char* flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || errno != 0 ||
      !std::isfinite(parsed)) {
    std::fprintf(stderr, "hgp_solve: invalid number '%s' for %s\n",
                 value.c_str(), flag);
    std::exit(kExitUsage);
  }
  return parsed;
}

/// Shard-worker binary for --shards: the explicit flag wins, then
/// $HGP_SHARDD, then `hgp_shardd` sitting next to this binary (the build
/// tree and installed layouts both put them side by side).
std::string resolve_shardd(const char* argv0, const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv("HGP_SHARDD"); env && *env) return env;
  const std::string self = argv0;
  const std::size_t slash = self.find_last_of('/');
  if (slash == std::string::npos) return "hgp_shardd";
  return self.substr(0, slash + 1) + "hgp_shardd";
}

std::vector<double> parse_list(const char* flag, const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(parse_double(flag, s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hgp;
  std::string graph_path, out_path, algo = "hgp";
  std::string trace_path, metrics_path;
  std::string save_snapshot_path, load_snapshot_path;
  std::string shardd_path;
  bool report = false;
  std::string deg_spec, cm_spec;
  int trees = 4;
  int retries = 0;
  int shards = 0;
  double epsilon = 0.5;
  double timeout_ms = 0;
  DemandUnits units = 8;
  std::uint64_t seed = 1;
  FallbackPolicy fallback = FallbackPolicy::kChain;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage_error(argv[0], "missing value for %s", flag);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      print_usage(stdout, argv[0]);
      return kExitOk;
    } else if (!std::strcmp(argv[i], "--graph")) {
      graph_path = need("--graph");
    } else if (!std::strcmp(argv[i], "--deg")) {
      deg_spec = need("--deg");
    } else if (!std::strcmp(argv[i], "--cm")) {
      cm_spec = need("--cm");
    } else if (!std::strcmp(argv[i], "--algo")) {
      algo = need("--algo");
    } else if (!std::strcmp(argv[i], "--trees")) {
      trees = static_cast<int>(
          parse_int("--trees", need("--trees"), 1, 1 << 20));
    } else if (!std::strcmp(argv[i], "--retries")) {
      retries = static_cast<int>(
          parse_int("--retries", need("--retries"), 0, 1 << 20));
    } else if (!std::strcmp(argv[i], "--units")) {
      units = static_cast<DemandUnits>(
          parse_int("--units", need("--units"), 1, 1 << 30));
    } else if (!std::strcmp(argv[i], "--epsilon")) {
      epsilon = parse_double("--epsilon", need("--epsilon"));
      if (epsilon <= 0) {
        usage_error(argv[0], "--epsilon must be > 0%s", "");
      }
      units = 0;
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = static_cast<std::uint64_t>(
          parse_int("--seed", need("--seed"), 0,
                    std::numeric_limits<long long>::max()));
    } else if (!std::strcmp(argv[i], "--timeout-ms")) {
      timeout_ms = parse_double("--timeout-ms", need("--timeout-ms"));
      if (timeout_ms < 0) {
        usage_error(argv[0], "--timeout-ms must be >= 0%s", "");
      }
    } else if (!std::strcmp(argv[i], "--fallback")) {
      const std::string mode = need("--fallback");
      if (mode == "chain") {
        fallback = FallbackPolicy::kChain;
      } else if (mode == "none") {
        fallback = FallbackPolicy::kNone;
      } else {
        usage_error(argv[0], "unknown --fallback mode '%s'", mode.c_str());
      }
    } else if (!std::strcmp(argv[i], "--shards")) {
      shards = static_cast<int>(parse_int("--shards", need("--shards"), 1, 256));
    } else if (!std::strcmp(argv[i], "--shardd")) {
      shardd_path = need("--shardd");
    } else if (!std::strcmp(argv[i], "--save-snapshot")) {
      save_snapshot_path = need("--save-snapshot");
    } else if (!std::strcmp(argv[i], "--load-snapshot")) {
      load_snapshot_path = need("--load-snapshot");
    } else if (!std::strcmp(argv[i], "--out")) {
      out_path = need("--out");
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = need("--trace");
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics_path = need("--metrics");
    } else if (!std::strcmp(argv[i], "--report")) {
      report = true;
    } else {
      usage_error(argv[0], "unknown argument '%s'", argv[i]);
    }
  }
  if (graph_path.empty() || deg_spec.empty() || cm_spec.empty()) {
    usage_error(argv[0], "--graph, --deg and --cm are required%s", "");
  }
  if ((!save_snapshot_path.empty() || !load_snapshot_path.empty()) &&
      algo != "hgp") {
    usage_error(argv[0], "--save/--load-snapshot require --algo hgp%s", "");
  }
  if (shards > 0 && algo != "hgp") {
    usage_error(argv[0], "--shards requires --algo hgp%s", "");
  }
  if (shards > 0 && retries > 0) {
    usage_error(argv[0], "--shards cannot be combined with --retries%s", "");
  }

  // Tracing must be live before the solve starts; it is off by default so
  // un-traced runs pay nothing beyond an atomic load per span site.
  if (!trace_path.empty()) obs::TraceBuffer::global().set_enabled(true);

  try {
    // A CheckError out of file parsing or hierarchy construction is the
    // input's fault, not ours — reclassify so the exit code says so.
    const Graph g = [&] {
      try {
        return io::read_metis_file(graph_path);
      } catch (const SolveError&) {
        throw;
      } catch (const CheckError& e) {
        throw SolveError(StatusCode::kInvalidInput, e.what());
      }
    }();
    const Hierarchy h = [&] {
      std::vector<int> deg;
      for (double d : parse_list("--deg", deg_spec)) {
        deg.push_back(static_cast<int>(d));
      }
      try {
        return Hierarchy(deg, parse_list("--cm", cm_spec));
      } catch (const SolveError&) {
        throw;
      } catch (const CheckError& e) {
        throw SolveError(StatusCode::kInvalidInput, e.what());
      }
    }();
    std::printf("graph: %d tasks, %d edges, total demand %.2f\n",
                g.vertex_count(), g.edge_count(), g.total_demand());
    std::printf("machine: %s\n", h.to_string().c_str());

    // Warm the forest cache from a prior snapshot before the solve: a
    // matching (fingerprint, seed, trees, cutter) key turns the forest
    // build into a cache hit.  Integrity failures are terminal here —
    // the user explicitly pointed us at the file, so silently cold-solving
    // would hide the corruption (scripts catch exit 9 and fall back).
    if (!load_snapshot_path.empty()) {
      const Status s =
          ForestCache::global().warm_load_file(load_snapshot_path);
      if (!s.ok()) {
        std::fprintf(stderr, "error: --load-snapshot %s: %s\n",
                     load_snapshot_path.c_str(), s.to_string().c_str());
        return exit_code_for(s.code);
      }
      std::printf("snapshot loaded: %s\n", load_snapshot_path.c_str());
    }

    Placement p;
    Status status;
    std::string solved_by = algo;
    HgpResult hgp_result;
    bool have_hgp = false;
    bool retries_exhausted = false;
    if (algo == "hgp") {
      SolverOptions opt;
      opt.num_trees = trees;
      opt.epsilon = epsilon;
      opt.units_override = units;
      opt.seed = seed;
      opt.timeout_ms = timeout_ms;
      opt.fallback = fallback;
      if (retries > 0) {
        RetryOptions ro;
        ro.max_retries = retries;
        ro.jitter_seed = seed;
        RetrySolveReport rep = solve_with_retry(g, h, opt, ro);
        retries_exhausted = rep.retry_budget_exhausted;
        if (rep.retries_used > 0 || rep.degrades > 0) {
          std::printf("retries: %d of %d used, %d degradation step(s)%s\n",
                      rep.retries_used, retries, rep.degrades,
                      retries_exhausted ? " (budget exhausted)" : "");
        }
        if (!rep.has_result) {
          std::fprintf(stderr, "error: %s\n", rep.status.to_string().c_str());
          return retries_exhausted ? kExitRetriesExhausted
                                   : exit_code_for(rep.status.code);
        }
        hgp_result = std::move(rep.result);
      } else if (shards > 0) {
        CoordinatorOptions copt;
        copt.num_shards = shards;
        copt.shardd_path = resolve_shardd(argv[0], shardd_path);
        CoordinatorReport crep;
        hgp_result = solve_hgp_sharded(g, h, opt, copt, &crep);
        std::printf(
            "shards: %d up, %d lost, %d lease expiries, %d reassigned, "
            "%d zombies fenced, %d/%d trees remote%s\n",
            crep.shards_up, crep.shards_lost, crep.lease_expiries,
            crep.batches_reassigned, crep.zombies_fenced,
            crep.trees_from_shards, trees,
            crep.degraded_inprocess ? " (degraded to in-process)" : "");
      } else {
        hgp_result = solve_hgp(g, h, opt);
      }
      have_hgp = true;
      const HgpResult& r = hgp_result;
      p = r.placement;
      status = r.status;
      solved_by = solve_method_name(r.method);
      int failed = 0;
      for (const TreeAttempt& a : r.attempts) failed += a.ok() ? 0 : 1;
      if (failed > 0) {
        std::printf("trees: %zu sampled, %d failed\n", r.attempts.size(),
                    failed);
        for (std::size_t t = 0; t < r.attempts.size(); ++t) {
          const TreeAttempt& a = r.attempts[t];
          if (!a.ok()) {
            std::printf("  tree %zu: %s (%.1f ms) %s\n", t,
                        status_code_name(a.status), a.elapsed_ms,
                        a.error.c_str());
          }
        }
      }
      if (r.degraded()) {
        std::printf("degraded: %s (fallback: %s)\n",
                    status.to_string().c_str(), solved_by.c_str());
      }
    } else if (algo == "greedy") {
      p = greedy_placement(g, h);
    } else if (algo == "multilevel") {
      Rng rng(seed);
      MultilevelOptions mopt;
      ExecContext exec;
      if (timeout_ms > 0) {
        exec.deadline = Deadline::after_ms(timeout_ms);
        mopt.exec = &exec;
      }
      p = multilevel_placement(g, h, rng, mopt);
    } else if (algo == "rb") {
      Rng rng(seed);
      p = recursive_bisection_placement(g, h, rng);
    } else if (algo == "random") {
      Rng rng(seed);
      p = random_placement(g, h, rng);
    } else {
      usage_error(argv[0], "unknown --algo '%s'", algo.c_str());
    }

    // Persist the sampled forest under the exact key the solver cached it
    // with.  A miss (forest cache disabled, or the retry ladder degraded
    // the tree count) is a warning, not a failure: the solve itself stands.
    if (!save_snapshot_path.empty()) {
      const ForestCacheKey key{graph_fingerprint(g), seed, trees,
                               FmCutter().name()};
      const Status s =
          ForestCache::global().save_entry(key, g, save_snapshot_path);
      if (s.ok()) {
        std::printf("snapshot written to %s\n", save_snapshot_path.c_str());
      } else {
        std::fprintf(stderr, "warning: --save-snapshot %s: %s\n",
                     save_snapshot_path.c_str(), s.to_string().c_str());
      }
    }

    const double cost = placement_cost(g, h, p);
    const LoadReport loads = load_report(g, h, p);
    std::printf("\nalgorithm: %s\nstatus: %s\ncommunication cost: %.3f\n",
                solved_by.c_str(), status_code_name(status.code), cost);
    Table table({"level", "nodes", "capacity", "max load", "violation"});
    for (int j = 0; j <= h.height(); ++j) {
      double max_load = 0;
      for (double x : loads.load[static_cast<std::size_t>(j)]) {
        max_load = std::max(max_load, x);
      }
      table.row()
          .add(j)
          .add(static_cast<std::int64_t>(h.nodes_at(j)))
          .add(static_cast<std::int64_t>(h.capacity(j)))
          .add(max_load)
          .add(loads.violation[static_cast<std::size_t>(j)], 3);
    }
    table.print(std::cout);

    if (!out_path.empty()) {
      io::write_placement_file(p, out_path);
      std::printf("\nplacement written to %s\n", out_path.c_str());
    }

    // Telemetry surface: the report goes to stderr (stdout carries the
    // placement/report contract above), exports go to their files.
    if (report) {
      std::fprintf(stderr, "\n== solve report ==\n");
      if (have_hgp) {
        Table attempts({"tree", "status", "cost", "elapsed ms", "error"});
        for (std::size_t t = 0; t < hgp_result.attempts.size(); ++t) {
          const TreeAttempt& a = hgp_result.attempts[t];
          Table& row = attempts.row()
                           .add(static_cast<std::int64_t>(t))
                           .add(status_code_name(a.status));
          if (a.ok()) {
            row.add(a.cost);
          } else {
            row.add("-");
          }
          row.add(a.elapsed_ms, 1).add(a.error);
        }
        attempts.print(std::cerr);
        const SolveTelemetry& tm = hgp_result.telemetry;
        std::fprintf(stderr,
                     "phases: total %.1f ms = forest %.1f + trees %.1f + "
                     "fallback %.1f (+ overhead)\n",
                     tm.total_ms, tm.forest_build_ms, tm.tree_solve_ms,
                     tm.fallback_ms);
        std::fprintf(stderr,
                     "trees: %d/%d succeeded; dp: %llu signatures, %llu "
                     "feasible states, %llu merges (%llu rejected), %llu "
                     "pruned\n",
                     tm.trees_succeeded, tm.trees_attempted,
                     static_cast<unsigned long long>(tm.dp_signatures),
                     static_cast<unsigned long long>(tm.dp_feasible_states),
                     static_cast<unsigned long long>(tm.dp_merge_operations),
                     static_cast<unsigned long long>(tm.dp_merges_rejected),
                     static_cast<unsigned long long>(tm.dp_states_pruned));
      }
      const auto histograms =
          obs::MetricsRegistry::global().histogram_snapshots();
      if (!histograms.empty()) {
        std::fprintf(stderr, "\nhistogram percentiles:\n");
        Table pct({"histogram", "count", "p50", "p90", "p99"});
        for (const obs::HistogramSnapshot& hs : histograms) {
          if (hs.count == 0) continue;
          pct.row()
              .add(hs.name)
              .add(static_cast<std::int64_t>(hs.count))
              .add(obs::histogram_quantile(hs, 0.50), 3)
              .add(obs::histogram_quantile(hs, 0.90), 3)
              .add(obs::histogram_quantile(hs, 0.99), 3);
        }
        pct.print(std::cerr);
      }
      if (obs::TraceBuffer::global().size() > 0) {
        std::fprintf(stderr, "\nspan summary:\n");
        obs::TraceBuffer::global().summary().print(std::cerr);
      }
    }
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      obs::TraceBuffer::global().write_chrome_json(os);
      if (!os) {
        std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                     trace_path.c_str());
        return kExitInternal;
      }
      std::printf("trace written to %s (%zu spans)\n", trace_path.c_str(),
                  obs::TraceBuffer::global().size());
    }
    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      obs::MetricsRegistry::global().write_json(os);
      if (!os) {
        std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                     metrics_path.c_str());
        return kExitInternal;
      }
      std::printf("metrics written to %s\n", metrics_path.c_str());
    }
    // A placed-but-retry-exhausted run keeps its report and placement but
    // exits 8: the placement is a degraded floor, not the requested solve.
    return retries_exhausted ? kExitRetriesExhausted
                             : exit_code_for(status.code);
  } catch (const SolveError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInternal;
  }
}
