// hgp_solve — command-line front end.
//
//   hgp_solve --graph tasks.metis --deg 2,4,2 --cm 10,4,1,0
//             [--algo hgp|greedy|multilevel|rb|random] [--trees 4]
//             [--units 8 | --epsilon 0.5] [--seed 1] [--out placement.txt]
//
// Reads a METIS task graph (vertex weights = demands scaled by 1/1000,
// edge weights = communication volumes), solves the placement against the
// given hierarchy, prints a per-level load/cost report, and optionally
// writes the placement in the library's "task leaf" format.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/greedy.hpp"
#include "baseline/multilevel.hpp"
#include "baseline/random_placement.hpp"
#include "baseline/recursive_bisection.hpp"
#include "core/solver.hpp"
#include "graph/io.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/placement_io.hpp"
#include "util/table.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --graph FILE --deg D0,D1,... --cm C0,C1,...,Ch\n"
      "          [--algo hgp|greedy|multilevel|rb|random] [--trees N]\n"
      "          [--units U | --epsilon E] [--seed S] [--out FILE]\n",
      argv0);
  std::exit(2);
}

std::vector<double> parse_list(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(std::stod(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hgp;
  std::string graph_path, out_path, algo = "hgp";
  std::string deg_spec, cm_spec;
  int trees = 4;
  double epsilon = 0.5;
  DemandUnits units = 8;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--graph")) graph_path = need("--graph");
    else if (!std::strcmp(argv[i], "--deg")) deg_spec = need("--deg");
    else if (!std::strcmp(argv[i], "--cm")) cm_spec = need("--cm");
    else if (!std::strcmp(argv[i], "--algo")) algo = need("--algo");
    else if (!std::strcmp(argv[i], "--trees")) trees = std::atoi(need("--trees").c_str());
    else if (!std::strcmp(argv[i], "--units")) units = std::atoll(need("--units").c_str());
    else if (!std::strcmp(argv[i], "--epsilon")) { epsilon = std::stod(need("--epsilon")); units = 0; }
    else if (!std::strcmp(argv[i], "--seed")) seed = std::strtoull(need("--seed").c_str(), nullptr, 10);
    else if (!std::strcmp(argv[i], "--out")) out_path = need("--out");
    else usage(argv[0]);
  }
  if (graph_path.empty() || deg_spec.empty() || cm_spec.empty()) usage(argv[0]);

  try {
    const Graph g = io::read_metis_file(graph_path);
    std::vector<int> deg;
    for (double d : parse_list(deg_spec)) deg.push_back(static_cast<int>(d));
    const Hierarchy h(deg, parse_list(cm_spec));
    std::printf("graph: %d tasks, %d edges, total demand %.2f\n",
                g.vertex_count(), g.edge_count(), g.total_demand());
    std::printf("machine: %s\n", h.to_string().c_str());

    Placement p;
    if (algo == "hgp") {
      SolverOptions opt;
      opt.num_trees = trees;
      opt.epsilon = epsilon;
      opt.units_override = units;
      opt.seed = seed;
      p = solve_hgp(g, h, opt).placement;
    } else if (algo == "greedy") {
      p = greedy_placement(g, h);
    } else if (algo == "multilevel") {
      Rng rng(seed);
      p = multilevel_placement(g, h, rng);
    } else if (algo == "rb") {
      Rng rng(seed);
      p = recursive_bisection_placement(g, h, rng);
    } else if (algo == "random") {
      Rng rng(seed);
      p = random_placement(g, h, rng);
    } else {
      std::fprintf(stderr, "unknown --algo %s\n", algo.c_str());
      usage(argv[0]);
    }

    const double cost = placement_cost(g, h, p);
    const LoadReport loads = load_report(g, h, p);
    std::printf("\nalgorithm: %s\ncommunication cost: %.3f\n", algo.c_str(),
                cost);
    Table table({"level", "nodes", "capacity", "max load", "violation"});
    for (int j = 0; j <= h.height(); ++j) {
      double max_load = 0;
      for (double x : loads.load[static_cast<std::size_t>(j)]) {
        max_load = std::max(max_load, x);
      }
      table.row()
          .add(j)
          .add(static_cast<std::int64_t>(h.nodes_at(j)))
          .add(static_cast<std::int64_t>(h.capacity(j)))
          .add(max_load)
          .add(loads.violation[static_cast<std::size_t>(j)], 3);
    }
    table.print();

    if (!out_path.empty()) {
      io::write_placement_file(p, out_path);
      std::printf("\nplacement written to %s\n", out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
