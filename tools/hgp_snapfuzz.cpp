// hgp_snapfuzz — seeded corruption harness for the snapshot container.
//
//   hgp_snapfuzz [--iters N] [--seed S] [--verbose]
//
// Builds a pristine snapshot of every file kind the io layer persists
// (graph, hierarchy, self-contained forest, checkpoint spill), then hammers
// each with two seeded mutation regimes:
//
//   * raw mutations — bit flips, byte stomps, truncation, extension, zeroed
//     ranges, byte swaps at random offsets.  Any mutation that changes the
//     image MUST be rejected with SolveError{kDataLoss}: the file CRC
//     covers every byte and the footer must land exactly at end-of-file,
//     so there is no undetectable raw corruption.  A surviving parse or
//     any other exception type is a harness failure.
//   * CRC-fixed mutations — a payload byte is stomped and then the section
//     CRC and file CRC are recomputed, yielding a self-consistent container
//     with corrupt content.  This drives the semantic validation layer
//     (index ranges, finite weights, tree shape, graph fingerprint).  The
//     contract here is weaker by design — the parse must either reject
//     with kDataLoss or succeed (some byte stomps produce a different but
//     valid payload, e.g. another finite edge weight); it must never crash,
//     leak, or throw anything untyped.  Run under ASan/UBSan, "no crash"
//     is a real check (scripts/snapshot_fuzz.sh, CI job snapshot-fuzz).
//
// Hand-crafted adversarial images (bad magic, future version, unknown
// section type, hostile length fields) round out the random coverage.
// Exit 0 when every expectation held, 1 otherwise.  Deterministic in
// --seed.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "decomp/builder.hpp"
#include "decomp/cutter.hpp"
#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "hierarchy/hierarchy.hpp"
#include "hierarchy/placement.hpp"
#include "io/snapshot.hpp"
#include "runtime/checkpoint.hpp"
#include "util/prng.hpp"
#include "util/status.hpp"

namespace {

using namespace hgp;

int g_failures = 0;

#define FUZZ_EXPECT(cond, ...)                \
  do {                                        \
    if (!(cond)) {                            \
      ++g_failures;                           \
      std::fprintf(stderr, "FAIL: ");         \
      std::fprintf(stderr, __VA_ARGS__);      \
      std::fprintf(stderr, "  [%s]\n", #cond); \
    }                                         \
  } while (0)

/// Outcome of one parse attempt over a (possibly mutated) image.
enum class Parse { kOk, kDataLossRejected, kWrongError };

/// Diagnostic trail for kWrongError: what actually escaped.
std::string g_last_error;

/// One snapshot kind under test: a pristine image plus the typed parse
/// the production code would run over it.
struct Corpus {
  std::string name;
  std::vector<std::byte> image;
  Parse (*parse)(const std::vector<std::byte>&);
};

Parse classify_parse(void (*body)(const std::vector<std::byte>&),
                     const std::vector<std::byte>& image) {
  try {
    body(image);
    return Parse::kOk;
  } catch (const SolveError& e) {
    if (e.code() == StatusCode::kDataLoss) return Parse::kDataLossRejected;
    g_last_error = std::string("SolveError: ") + e.what();
    return Parse::kWrongError;
  } catch (const std::exception& e) {
    g_last_error = std::string("untyped: ") + e.what();
    return Parse::kWrongError;
  } catch (...) {
    g_last_error = "non-std exception";
    return Parse::kWrongError;
  }
}

// The fuzz targets parse from memory via SnapshotReader's blob constructor
// — no file round-trip per iteration.  Each consumes the full section
// sequence its writer emits, mirroring the load_* wrappers.

Parse parse_graph(const std::vector<std::byte>& image) {
  return classify_parse(
      [](const std::vector<std::byte>& img) {
        io::SnapshotReader r{std::vector<std::byte>(img)};
        io::SectionCursor c;
        (void)io::read_graph_sections(r, c);
      },
      image);
}

Parse parse_hierarchy(const std::vector<std::byte>& image) {
  return classify_parse(
      [](const std::vector<std::byte>& img) {
        io::SnapshotReader r{std::vector<std::byte>(img)};
        io::SectionCursor c;
        (void)io::read_hierarchy_sections(r, c);
      },
      image);
}

Parse parse_forest(const std::vector<std::byte>& image) {
  return classify_parse(
      [](const std::vector<std::byte>& img) {
        io::SnapshotReader r{std::vector<std::byte>(img)};
        io::SectionCursor c;
        const Graph g = io::read_graph_sections(r, c);
        io::ForestSnapshotMeta meta;
        (void)io::read_forest_sections(r, c, g, &meta);
      },
      image);
}

/// SolveCheckpoint::load takes a path, so the checkpoint target round-trips
/// through one temp file (same bytes, same parse).
std::string g_checkpoint_tmp;

Parse parse_checkpoint(const std::vector<std::byte>& image) {
  {
    std::ofstream os(g_checkpoint_tmp, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(image.data()),
             static_cast<std::streamsize>(image.size()));
  }
  SolveCheckpoint ck;
  const Status s = ck.load(g_checkpoint_tmp);
  if (s.ok()) return Parse::kOk;
  return s.code == StatusCode::kDataLoss ? Parse::kDataLossRejected
                                         : Parse::kWrongError;
}

// ---------------------------------------------------------------------------
// Mutators.

std::vector<std::byte> mutate_raw(const std::vector<std::byte>& image,
                                  Rng& rng) {
  std::vector<std::byte> out = image;
  const auto offset = [&](std::size_t size) {
    return static_cast<std::size_t>(
        rng.next_double(0, static_cast<double>(size) - 0.001));
  };
  switch (static_cast<int>(rng.next_double(0, 6))) {
    case 0: {  // bit flip
      const std::size_t at = offset(out.size());
      out[at] ^= static_cast<std::byte>(1u << static_cast<int>(
                     rng.next_double(0, 7.999)));
      break;
    }
    case 1: {  // byte stomp
      const std::size_t at = offset(out.size());
      out[at] = static_cast<std::byte>(
          static_cast<unsigned>(rng.next_double(0, 255.999)));
      break;
    }
    case 2:  // truncation (possibly to empty)
      out.resize(offset(out.size()));
      break;
    case 3: {  // extension with random bytes
      const std::size_t extra = 1 + offset(64);
      for (std::size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<std::byte>(
            static_cast<unsigned>(rng.next_double(0, 255.999))));
      }
      break;
    }
    case 4: {  // zero a small range
      const std::size_t at = offset(out.size());
      const std::size_t len = std::min<std::size_t>(4, out.size() - at);
      std::memset(out.data() + at, 0, len);
      break;
    }
    default: {  // swap two bytes
      const std::size_t a = offset(out.size());
      const std::size_t b = offset(out.size());
      std::swap(out[a], out[b]);
      break;
    }
  }
  return out;
}

std::uint32_t load_u32(const std::vector<std::byte>& image, std::size_t at) {
  std::uint32_t v = 0;
  std::memcpy(&v, image.data() + at, sizeof(v));
  return v;
}

void store_u32(std::vector<std::byte>& image, std::size_t at,
               std::uint32_t v) {
  std::memcpy(image.data() + at, &v, sizeof(v));
}

std::uint64_t load_u64(const std::vector<std::byte>& image, std::size_t at) {
  std::uint64_t v = 0;
  std::memcpy(&v, image.data() + at, sizeof(v));
  return v;
}

/// Stomps one payload byte of a random section, then repairs the section
/// CRC and the file CRC so every container-level check passes and only the
/// typed codecs can catch the damage.  Returns an empty vector when the
/// image has no non-empty payload to corrupt.
std::vector<std::byte> mutate_crc_fixed(const std::vector<std::byte>& image,
                                        Rng& rng) {
  // Walk the container exactly as the reader does: 16-byte file header,
  // then per section a 16-byte header {type, crc, size} + payload.
  constexpr std::size_t kFileHeader = 16;
  constexpr std::size_t kSectionHeader = 16;
  if (image.size() < kFileHeader + 4) return {};
  const std::uint32_t sections = load_u32(image, 12);
  struct Span {
    std::size_t header;
    std::size_t payload;
    std::size_t size;
  };
  std::vector<Span> spans;
  std::size_t at = kFileHeader;
  for (std::uint32_t i = 0; i < sections; ++i) {
    if (at + kSectionHeader > image.size()) return {};
    const std::uint64_t size = load_u64(image, at + 8);
    const std::size_t payload = at + kSectionHeader;
    if (size > image.size() || payload + size > image.size()) return {};
    if (size > 0) spans.push_back({at, payload, static_cast<std::size_t>(size)});
    at = payload + static_cast<std::size_t>(size);
  }
  if (spans.empty() || at + 4 != image.size()) return {};

  std::vector<std::byte> out = image;
  const Span& s = spans[static_cast<std::size_t>(
      rng.next_double(0, static_cast<double>(spans.size()) - 0.001))];
  const std::size_t victim =
      s.payload + static_cast<std::size_t>(rng.next_double(
                      0, static_cast<double>(s.size) - 0.001));
  out[victim] ^= static_cast<std::byte>(
      1u + static_cast<unsigned>(rng.next_double(0, 254.999)));
  store_u32(out, s.header + 4, io::crc32(out.data() + s.payload, s.size));
  store_u32(out, out.size() - 4, io::crc32(out.data(), out.size() - 4));
  return out;
}

// ---------------------------------------------------------------------------
// Hand-crafted adversarial images.

void check_handcrafted(const Corpus& corpus) {
  const std::vector<std::byte>& base = corpus.image;
  const auto expect_rejected = [&](std::vector<std::byte> img,
                                   const char* what) {
    FUZZ_EXPECT(corpus.parse(img) == Parse::kDataLossRejected,
                "%s: %s not rejected with kDataLoss\n", corpus.name.c_str(),
                what);
  };

  {  // wrong magic (CRCs repaired so only the magic check can fire)
    std::vector<std::byte> img = base;
    img[0] = std::byte{'X'};
    store_u32(img, img.size() - 4, io::crc32(img.data(), img.size() - 4));
    expect_rejected(std::move(img), "bad magic");
  }
  {  // future format version
    std::vector<std::byte> img = base;
    store_u32(img, 8, io::kSnapshotVersion + 1);
    store_u32(img, img.size() - 4, io::crc32(img.data(), img.size() - 4));
    expect_rejected(std::move(img), "future version");
  }
  {  // unknown section type (first section re-typed, CRCs fixed)
    std::vector<std::byte> img = base;
    store_u32(img, 16, 0xDEAD);
    store_u32(img, img.size() - 4, io::crc32(img.data(), img.size() - 4));
    expect_rejected(std::move(img), "unknown section type");
  }
  {  // hostile section length: points past end-of-file
    std::vector<std::byte> img = base;
    const std::uint64_t huge = ~std::uint64_t{0} / 2;
    std::memcpy(img.data() + 24, &huge, sizeof(huge));
    store_u32(img, img.size() - 4, io::crc32(img.data(), img.size() - 4));
    expect_rejected(std::move(img), "hostile section length");
  }
  expect_rejected({}, "empty file");
  {  // header-only file (no sections, no footer)
    std::vector<std::byte> img(base.begin(), base.begin() + 16);
    expect_rejected(std::move(img), "header-only file");
  }
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 1000;
  std::uint64_t seed = 1;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hgp_snapfuzz: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--iters")) {
      iters = std::atoi(need("--iters").c_str());
      if (iters < 1) {
        std::fprintf(stderr, "hgp_snapfuzz: --iters must be >= 1\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(need("--seed").c_str(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      std::printf("usage: hgp_snapfuzz [--iters N] [--seed S] [--verbose]\n");
      return 0;
    } else {
      std::fprintf(stderr, "hgp_snapfuzz: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  // ---- Pristine corpora, one per persisted file kind.
  Rng master(seed);
  Graph g = gen::planted_partition(24, 3, 0.7, 0.1, master,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / 24);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  const FmCutter cutter;
  const std::vector<DecompTree> forest =
      build_decomposition_forest(g, 2, seed, cutter);

  std::vector<Corpus> corpora;
  {
    io::SnapshotWriter w;
    io::append_graph_sections(w, g);
    corpora.push_back({"graph", w.serialize(), &parse_graph});
  }
  {
    io::SnapshotWriter w;
    io::append_hierarchy_sections(w, h);
    corpora.push_back({"hierarchy", w.serialize(), &parse_hierarchy});
  }
  {
    io::SnapshotWriter w;
    io::append_graph_sections(w, g);
    io::ForestSnapshotMeta meta;
    meta.graph_fingerprint = graph_fingerprint(g);
    meta.seed = seed;
    meta.num_trees = static_cast<int>(forest.size());
    meta.cutter = cutter.name();
    io::append_forest_sections(w, meta, forest);
    corpora.push_back({"forest", w.serialize(), &parse_forest});
  }
  {
    // A bound checkpoint with two recorded trees, spilled then re-read as
    // bytes so mutations run over the exact production image.
    g_checkpoint_tmp = std::string(std::getenv("TMPDIR") != nullptr
                                       ? std::getenv("TMPDIR")
                                       : "/tmp") +
                       "/hgp_snapfuzz_ckpt." + std::to_string(::getpid());
    SolveCheckpoint ck;
    CheckpointKey key;
    key.graph_fingerprint = graph_fingerprint(g);
    key.seed = seed;
    key.num_trees = 2;
    key.epsilon = 0.5;
    ck.bind(key);
    for (int t = 0; t < 2; ++t) {
      CheckpointedTree tree;
      tree.placement.leaf_of.assign(
          static_cast<std::size_t>(g.vertex_count()),
          static_cast<LeafId>(t % h.leaf_count()));
      tree.cost = 1.5 + t;
      ck.record(t, std::move(tree));
    }
    const Status s = ck.save(g_checkpoint_tmp);
    FUZZ_EXPECT(s.ok(), "checkpoint corpus save failed: %s\n",
                s.to_string().c_str());
    std::ifstream is(g_checkpoint_tmp, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
    std::vector<std::byte> image(bytes.size());
    std::memcpy(image.data(), bytes.data(), bytes.size());
    corpora.push_back({"checkpoint", std::move(image), &parse_checkpoint});
  }

  // ---- The hammer.
  for (const Corpus& corpus : corpora) {
    FUZZ_EXPECT(corpus.parse(corpus.image) == Parse::kOk,
                "%s: pristine image failed to parse\n", corpus.name.c_str());
    check_handcrafted(corpus);

    Rng rng = master.fork(static_cast<std::uint64_t>(
        std::hash<std::string>{}(corpus.name)));
    int rejected = 0, unchanged = 0, fixed_ok = 0, fixed_rejected = 0,
        fixed_skipped = 0;
    for (int i = 0; i < iters; ++i) {
      // Raw regime: every changed byte must be caught at the container
      // level.
      std::vector<std::byte> raw = mutate_raw(corpus.image, rng);
      if (raw == corpus.image) {
        ++unchanged;  // e.g. swapped two equal bytes
        FUZZ_EXPECT(corpus.parse(raw) == Parse::kOk,
                    "%s: iter %d identity mutation failed to parse\n",
                    corpus.name.c_str(), i);
      } else {
        const Parse p = corpus.parse(raw);
        FUZZ_EXPECT(p == Parse::kDataLossRejected,
                    "%s: iter %d raw mutation not rejected (outcome %d)\n",
                    corpus.name.c_str(), i, static_cast<int>(p));
        rejected += p == Parse::kDataLossRejected ? 1 : 0;
      }

      // CRC-fixed regime: container checks pass, semantics must hold the
      // line — kDataLoss or a clean parse, never a crash or untyped throw.
      std::vector<std::byte> fixed = mutate_crc_fixed(corpus.image, rng);
      if (fixed.empty()) {
        ++fixed_skipped;
        continue;
      }
      switch (corpus.parse(fixed)) {
        case Parse::kOk:
          ++fixed_ok;
          break;
        case Parse::kDataLossRejected:
          ++fixed_rejected;
          break;
        case Parse::kWrongError:
          FUZZ_EXPECT(false,
                      "%s: iter %d CRC-fixed mutation escaped the "
                      "kDataLoss contract (%s)\n",
                      corpus.name.c_str(), i, g_last_error.c_str());
          break;
      }
    }
    std::printf(
        "%-10s %d raw (%d rejected, %d identity), %d crc-fixed "
        "(%d rejected, %d still valid, %d skipped)\n",
        corpus.name.c_str(), iters, rejected, unchanged, iters - fixed_skipped,
        fixed_rejected, fixed_ok, fixed_skipped);
    if (verbose) {
      std::printf("  image: %zu bytes, %d failures so far\n",
                  corpus.image.size(), g_failures);
    }
  }

  if (!g_checkpoint_tmp.empty()) std::remove(g_checkpoint_tmp.c_str());
  if (g_failures > 0) {
    std::fprintf(stderr, "hgp_snapfuzz: %d contract violation(s)\n",
                 g_failures);
    return 1;
  }
  std::printf("hgp_snapfuzz: all corruption contracts held\n");
  return 0;
}
