// Golden-corpus refresh / check tool.
//
//   hgp_golden <golden-dir>          regenerate METIS files + expected.tsv
//   hgp_golden <golden-dir> --check  re-solve committed files, diff costs
//
// The corpus contents are defined once in tests/golden_corpus.hpp; the
// regression test replays the committed files through the same canonical
// solve.  Refresh the corpus (and commit the diff) only when a cost shift
// is intended — e.g. a cutter or rounding change — never to silence an
// unexplained regression.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "golden_corpus.hpp"
#include "graph/io.hpp"

namespace {

using namespace hgp;

double solve_cost(const Graph& g, const Hierarchy& h) {
  const HgpResult r = solve_hgp(g, h, golden::canonical_options());
  if (r.degraded()) {
    throw SolveError(StatusCode::kInternal,
                     "golden solve degraded: " + r.status.to_string());
  }
  return r.cost;
}

int generate(const std::string& dir) {
  std::ofstream tsv(dir + "/expected.tsv");
  if (!tsv) {
    std::fprintf(stderr, "cannot write %s/expected.tsv\n", dir.c_str());
    return 1;
  }
  tsv << "# name\thierarchy\tcost (canonical solve; see golden_corpus.hpp)\n";
  for (const golden::Spec& spec : golden::corpus()) {
    const std::string path = dir + "/" + spec.name + ".graph";
    io::write_metis_file(spec.build(), path);
    // Solve the RE-READ file so METIS demand quantization is baked in.
    const Graph g = io::read_metis_file(path);
    const double cost = solve_cost(g, golden::hierarchy_by_name(spec.hierarchy));
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", cost);
    tsv << spec.name << "\t" << spec.hierarchy << "\t" << buf << "\n";
    std::fprintf(stdout, "  %-12s %s cost=%s\n", spec.name.c_str(),
                 spec.hierarchy.c_str(), buf);
  }
  std::fprintf(stdout, "wrote %zu instances to %s\n",
               golden::corpus().size(), dir.c_str());
  return 0;
}

int check(const std::string& dir) {
  std::ifstream tsv(dir + "/expected.tsv");
  if (!tsv) {
    std::fprintf(stderr, "cannot read %s/expected.tsv\n", dir.c_str());
    return 1;
  }
  int failures = 0, checked = 0;
  std::string line;
  while (std::getline(tsv, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string name, hier_name;
    double expected = 0;
    row >> name >> hier_name >> expected;
    const Graph g = io::read_metis_file(dir + "/" + name + ".graph");
    const double cost =
        solve_cost(g, golden::hierarchy_by_name(hier_name));
    ++checked;
    if (std::abs(cost - expected) >
        1e-6 * std::max(1.0, std::abs(expected))) {
      std::fprintf(stderr, "MISMATCH %s: expected %.17g got %.17g\n",
                   name.c_str(), expected, cost);
      ++failures;
    }
  }
  std::fprintf(stdout, "checked %d golden instances, %d mismatches\n",
               checked, failures);
  return failures == 0 && checked > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool check_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_mode = true;
    } else if (argv[i][0] == '-' || !dir.empty()) {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      dir.clear();
      break;
    } else {
      dir = argv[i];
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "usage: %s <golden-dir> [--check]\n", argv[0]);
    return 2;
  }
  try {
    return check_mode ? check(dir) : generate(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hgp_golden: %s\n", e.what());
    return 1;
  }
}
