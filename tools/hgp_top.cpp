// hgp_top: live terminal view of a running SolverService, in the spirit
// of top(1).
//
// Connects to the unix-domain introspection socket a service exposes via
// ServiceOptions::obs_socket (or HGP_OBS_SOCKET), scrapes /metrics and
// /requests, and renders a refreshing table: service throughput counters,
// memory-budget utilization, and one row per queued / in-flight request
// with its state, attempt number, queue position and attempt elapsed
// time.  Pure client — links only the obs library and touches nothing in
// the serving process beyond the scrape handlers.
//
//   hgp_top --socket /tmp/hgp.sock [--interval-ms 500] [--once]
//
// --once prints a single snapshot without the ANSI clear (scriptable);
// the default loops until interrupted.  Exit codes: 0 on success, 2 on
// usage errors, 3 when the socket cannot be scraped.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/introspect.hpp"
#include "util/table.hpp"

namespace {

using hgp::Status;
using hgp::Table;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--interval-ms N] [--once]\n"
               "  --socket PATH     introspection socket of the service\n"
               "                    (defaults to $HGP_OBS_SOCKET)\n"
               "  --interval-ms N   refresh period (default 500)\n"
               "  --once            one snapshot, no screen clearing\n",
               argv0);
  return 2;
}

/// Parses Prometheus text exposition into name{labels} -> value.  Only
/// the series hgp_top displays are consulted, so unknown lines are
/// skipped, not errors.
std::map<std::string, double> parse_prometheus(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    const std::string value_text = line.substr(space + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) continue;
    out[line.substr(0, space)] = value;
  }
  return out;
}

double series(const std::map<std::string, double>& m, const char* name) {
  const auto it = m.find(name);
  return it == m.end() ? 0.0 : it->second;
}

/// Pulls `"key":<value>` out of a flat JSON object line.  The /requests
/// document deliberately emits one object per line with unnested numeric
/// and short string fields, so this string-level parse is exact for it.
std::string json_field(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = object.find(needle);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  if (begin >= object.size()) return "";
  if (object[begin] == '"') {
    const std::size_t close = object.find('"', begin + 1);
    if (close == std::string::npos) return "";
    return object.substr(begin + 1, close - begin - 1);
  }
  std::size_t end = begin;
  while (end < object.size() && object[end] != ',' && object[end] != '}') {
    ++end;
  }
  return object.substr(begin, end - begin);
}

int render_once(const std::string& socket_path, bool clear_screen) {
  std::string metrics_text;
  std::string requests_text;
  Status s = hgp::obs::introspect_fetch(socket_path, "/metrics",
                                        &metrics_text);
  if (s.ok()) {
    s = hgp::obs::introspect_fetch(socket_path, "/requests", &requests_text);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "hgp_top: %s\n", s.to_string().c_str());
    return 3;
  }
  const std::map<std::string, double> m = parse_prometheus(metrics_text);

  std::ostringstream screen;
  if (clear_screen) screen << "\x1b[2J\x1b[H";  // clear + home
  screen << "hgp_top — " << socket_path << "\n\n";
  screen << "service: submitted " << series(m, "hgp_service_submitted")
         << "  admitted " << series(m, "hgp_service_admitted")
         << "  completed " << series(m, "hgp_service_completed")
         << "  rejects " << series(m, "hgp_service_admission_rejects")
         << "\nretries " << series(m, "hgp_service_retries") << "  degrades "
         << series(m, "hgp_service_degrades") << "  watchdog cancels "
         << series(m, "hgp_service_watchdog_cancels") << "  spills "
         << series(m, "hgp_service_checkpoint_spills") << "  recovered "
         << series(m, "hgp_service_checkpoint_recovered") << "\n";

  const std::string utilization = json_field(requests_text,
                                             "budget_utilization");
  const std::string draining = json_field(requests_text, "draining");
  screen << "queue depth " << json_field(requests_text, "queue_depth")
         << "  inflight " << json_field(requests_text, "inflight")
         << "  budget utilization "
         << (utilization.empty() ? "?" : utilization) << "  draining "
         << (draining.empty() ? "?" : draining) << "\n\n";

  // One request object per line by contract (see
  // SolverService::write_requests_json), so rows split on newlines.
  Table table({"request", "state", "attempt", "queue pos", "elapsed ms"});
  std::istringstream rs(requests_text);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(rs, line)) {
    if (line.rfind("{\"id\":", 0) != 0) continue;
    table.row()
        .add(json_field(line, "id"))
        .add(json_field(line, "state"))
        .add(json_field(line, "attempt"))
        .add(json_field(line, "queue_position"))
        .add(json_field(line, "elapsed_ms"));
    ++rows;
  }
  std::fputs(screen.str().c_str(), stdout);
  if (rows > 0) {
    table.print(std::cout);
  } else {
    std::puts("(no live requests)");
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  if (const char* env = std::getenv("HGP_OBS_SOCKET")) socket_path = env;
  long interval_ms = 500;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--once") {
      once = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty() || interval_ms <= 0) return usage(argv[0]);
  if (once) return render_once(socket_path, /*clear_screen=*/false);
  for (;;) {
    const int rc = render_once(socket_path, /*clear_screen=*/true);
    if (rc != 0) return rc;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
