#!/usr/bin/env python3
"""Project lint driver: rules the C++ compiler cannot enforce.

Rules (library scope = src/** unless noted):

  throw-policy    Only SolveError / CheckError (or bare rethrows) may be
                  thrown in library code; the status taxonomy depends on
                  every escaping exception being classifiable.
                  src/util/status.hpp and src/util/check.hpp — where the
                  taxonomy itself lives — are exempt.
  no-stdout       Library code never writes to stdout (std::cout, printf,
                  puts, fprintf(stdout, ...)); CLI tools, examples,
                  benches and tests are exempt.  stderr is allowed (the
                  logging sink).  The observability emitters are the one
                  sanctioned library exception — they are the designated
                  export sinks, and which stream they write to is the
                  caller's choice — but each is registered BY FILE in
                  NO_STDOUT_EXEMPT_FILES (src/obs/trace.cpp,
                  src/obs/metrics.cpp, src/obs/flight_recorder.cpp,
                  src/obs/introspect.cpp); there is deliberately no
                  src/obs directory blanket, so a new file under src/obs
                  still answers to the rule until it is audited in.
  include-cycle   The project include graph over src/** is acyclic.
  header-hygiene  Every header under src/ has `#pragma once` and starts
                  with a top-of-file comment saying what it is.
  naked-thread    std::thread is constructed only inside src/parallel
                  (everyone else goes through ThreadPool / parallel_for,
                  which own joining and exception transport).
  raw-binary-io   Raw binary I/O (fwrite/fread, POSIX ::write/::read,
                  reinterpret_cast<char*> pointer-punning into streams)
                  happens only inside src/io.  Everything durable goes
                  through the versioned, checksummed snapshot container
                  (src/io/snapshot.hpp, docs/FORMATS.md); ad-hoc struct
                  dumps have no version field, no CRC, and no reader
                  that can reject corruption as kDataLoss.
  raw-socket      The BSD socket primitives (socket, socketpair, connect,
                  bind, listen, accept, accept4, send, recv, sendto,
                  recvfrom, sendmsg, recvmsg) appear only inside src/net.
                  Everything on a wire goes through the framed channel
                  (src/net/channel.hpp): per-frame CRC, version handshake,
                  deadlines, typed kDataLoss/kUnavailable failures — a
                  naked send() has none of that, and its torn writes are
                  indistinguishable from success.  Member calls
                  (channel.send(...)) are not socket calls and do not
                  fire.  src/obs/introspect.cpp predates the net layer
                  and keeps its audited raw-socket scrape endpoint via a
                  per-FILE exemption (same policy as no-stdout: no
                  directory blankets).
  raw-mutex       The std synchronization primitives (std::mutex,
                  std::shared_mutex, std::lock_guard, std::unique_lock,
                  std::condition_variable, ...) appear only inside
                  src/util/sync.hpp.  Everywhere else uses the annotated
                  hgp::Mutex / MutexLock / CondVar wrappers, so Clang
                  Thread Safety Analysis (-DHGP_THREAD_SAFETY=ON) sees
                  every lock in the tree.

Suppression: append `// hgp-lint: allow(<rule>)` to the offending line, or
put it alone on the previous line.

Usage:
  tools/hgp_lint.py [--root DIR]     lint the tree; exit 1 on violations
  tools/hgp_lint.py --self-test      run the rule engine against fixture
                                     violations; exit 1 on any miss
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

LIB_DIR = "src"
HEADER_EXTS = (".hpp", ".h")
SOURCE_EXTS = (".cpp", ".cc", ".cxx") + HEADER_EXTS

ALLOW_RE = re.compile(r"//\s*hgp-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# A throw is fine when it rethrows (`throw;`) or constructs one of the
# status-taxonomy types.  Everything else in library code is a violation.
THROW_RE = re.compile(r"\bthrow\b\s*(?!;)([A-Za-z_][A-Za-z0-9_:<>]*)?")
ALLOWED_THROW_TYPES = {"SolveError", "CheckError"}
THROW_EXEMPT_FILES = {
    os.path.join("src", "util", "status.hpp"),
    os.path.join("src", "util", "check.hpp"),
}

STDOUT_RE = re.compile(
    r"std::cout\b"
    r"|\bstd::printf\s*\("
    r"|(?<![\w:.])printf\s*\("
    r"|\bstd::puts\s*\(|(?<![\w:.])puts\s*\("
    r"|\bfprintf\s*\(\s*stdout\b|\bstd::fprintf\s*\(\s*stdout\b"
)
# The telemetry exporters are the library's designated serialization sinks
# (Chrome trace JSON, metrics JSON, Prometheus exposition, flight-recorder
# dumps, summary tables); everything else must route output through them, a
# returned string, or an std::ostream&.  Exemptions are granted per FILE,
# never per directory: each new emitter is audited and registered here
# explicitly, so an unregistered file under src/obs still answers to the
# rule.
NO_STDOUT_EXEMPT_FILES = {
    os.path.join("src", "obs", "trace.cpp"),
    os.path.join("src", "obs", "metrics.cpp"),
    os.path.join("src", "obs", "flight_recorder.cpp"),
    os.path.join("src", "obs", "introspect.cpp"),
}

THREAD_RE = re.compile(r"\bstd::thread\b")
THREAD_ALLOWED_SUBDIR = os.path.join("src", "parallel")

# The binary-I/O primitives that bypass the snapshot container: C stdio
# block transfer, bare POSIX fd read/write (the `(?<![\w.])::` guard keeps
# qualified member names like SnapshotWriter::write_file out), and the
# classic reinterpret_cast<char*> stream-punning idiom.
RAW_IO_RE = re.compile(
    r"\bfwrite\s*\(|\bfread\s*\("
    r"|(?<![\w.])::write\s*\(|(?<![\w.])::read\s*\("
    r"|reinterpret_cast\s*<\s*(?:const\s+)?char\s*\*\s*>"
)
RAW_IO_ALLOWED_SUBDIR = os.path.join("src", "io")

# The std sync primitives the annotated layer wraps.  std::atomic and
# std::call_once are fine — the ban covers blocking primitives the thread
# safety analysis would otherwise not see.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b"
)
RAW_MUTEX_EXEMPT_FILES = {
    os.path.join("src", "util", "sync.hpp"),
}

# The BSD socket surface.  The lookbehind rejects member access
# (`channel.send(`, `log->send(`) and scoped names (`Socket::connect_unix` —
# also saved by the trailing `_`); the optional `::` prefix still catches the
# qualified POSIX idiom `::send(fd, ...)` the repo itself uses.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w.:>])(?:::\s*)?"
    r"(?:socket|socketpair|connect|bind|listen|accept4?"
    r"|send(?:to|msg)?|recv(?:from|msg)?)\s*\("
)
# `void bind(const Key&)` is a method DECLARATION reusing a POSIX name, not
# a socket call: a match whose prefix ends in a type-ish identifier (and no
# `::` qualifier) is skipped.  `return send(...)` still fires — `return` is
# a keyword, not a type.
RAW_SOCKET_DECL_PREFIX_RE = re.compile(r"([A-Za-z_][\w:<>]*)\s*[&*]*\s*$")
RAW_SOCKET_NON_TYPE_TOKENS = {
    "return", "co_return", "co_await", "co_yield", "throw", "goto",
    "else", "do", "and", "or", "not",
}
RAW_SOCKET_ALLOWED_SUBDIR = os.path.join("src", "net")
RAW_SOCKET_EXEMPT_FILES = {
    os.path.join("src", "obs", "introspect.cpp"),
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$")

LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code_line(line: str) -> str:
    """Removes string literals and // comments so rules don't fire on text."""
    no_strings = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", no_strings)


def suppressions(lines: list[str], idx: int) -> set[str]:
    """Rules suppressed for line idx (same line or a bare previous line)."""
    out: set[str] = set()
    m = ALLOW_RE.search(lines[idx])
    if m:
        out.update(r.strip() for r in m.group(1).split(","))
    if idx > 0:
        prev = lines[idx - 1].strip()
        m = ALLOW_RE.search(prev)
        if m and prev.startswith("//"):
            out.update(r.strip() for r in m.group(1).split(","))
    return out


def iter_files(root: str, subdir: str, exts: tuple[str, ...]):
    base = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith(exts):
                yield os.path.join(dirpath, name)


def relpath(root: str, path: str) -> str:
    return os.path.relpath(path, root)


# ------------------------------------------------------------------ rules


def check_throw_policy(root: str) -> list[Finding]:
    findings = []
    for path in iter_files(root, LIB_DIR, SOURCE_EXTS):
        rel = relpath(root, path)
        if rel in THROW_EXEMPT_FILES:
            continue
        lines = open(path, encoding="utf-8").read().splitlines()
        in_block_comment = False
        for i, raw in enumerate(lines):
            line, in_block_comment = strip_block_comments(raw, in_block_comment)
            code = strip_code_line(line)
            for m in THROW_RE.finditer(code):
                if "throw-policy" in suppressions(lines, i):
                    continue
                thrown = m.group(1)
                if thrown is not None:
                    base = thrown.split("<")[0].split("::")[-1]
                    if base in ALLOWED_THROW_TYPES:
                        continue
                label = thrown if thrown is not None else "a non-type expression"
                findings.append(
                    Finding(rel, i + 1, "throw-policy",
                            f"throws `{label}`; library code may only "
                            "throw SolveError or CheckError"))
    return findings


def check_no_stdout(root: str) -> list[Finding]:
    findings = []
    for path in iter_files(root, LIB_DIR, SOURCE_EXTS):
        rel = relpath(root, path)
        if rel in NO_STDOUT_EXEMPT_FILES:
            continue
        lines = open(path, encoding="utf-8").read().splitlines()
        in_block_comment = False
        for i, raw in enumerate(lines):
            line, in_block_comment = strip_block_comments(raw, in_block_comment)
            code = strip_code_line(line)
            if STDOUT_RE.search(code):
                if "no-stdout" in suppressions(lines, i):
                    continue
                findings.append(
                    Finding(rel, i + 1, "no-stdout",
                            "library code must not write to stdout "
                            "(return strings or take an std::ostream&)"))
    return findings


def check_include_cycles(root: str) -> list[Finding]:
    graph: dict[str, list[tuple[str, int]]] = {}
    for path in iter_files(root, LIB_DIR, SOURCE_EXTS):
        rel = relpath(root, path)
        edges = []
        for i, line in enumerate(
                open(path, encoding="utf-8").read().splitlines()):
            m = INCLUDE_RE.match(line)
            if m:
                target = os.path.join(LIB_DIR, m.group(1))
                edges.append((target, i + 1))
        graph[rel] = edges

    findings = []
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack: list[str] = []

    def dfs(node: str) -> None:
        color[node] = GREY
        stack.append(node)
        for target, line in graph.get(node, ()):
            if target not in graph:
                continue  # system or generated header
            if color.get(target, WHITE) == GREY:
                cycle = stack[stack.index(target):] + [target]
                # Report on every member so the cycle is visible from any
                # of the files a developer happens to have open.
                for member in cycle[:-1]:
                    findings.append(
                        Finding(member, line if member == node else 1,
                                "include-cycle",
                                "#include cycle: " + " -> ".join(cycle)))
            elif color.get(target, WHITE) == WHITE:
                dfs(target)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)
    return findings


def check_header_hygiene(root: str) -> list[Finding]:
    findings = []
    for path in iter_files(root, LIB_DIR, HEADER_EXTS):
        rel = relpath(root, path)
        lines = open(path, encoding="utf-8").read().splitlines()
        if not any(PRAGMA_ONCE_RE.match(l) for l in lines):
            findings.append(
                Finding(rel, 1, "header-hygiene",
                        "header is missing `#pragma once`"))
        first = next((l for l in lines if l.strip()), "")
        if not (first.lstrip().startswith("//")
                or first.lstrip().startswith("/*")):
            findings.append(
                Finding(rel, 1, "header-hygiene",
                        "header must start with a top-of-file comment "
                        "describing what it provides"))
    return findings


def check_naked_thread(root: str) -> list[Finding]:
    findings = []
    for path in iter_files(root, LIB_DIR, SOURCE_EXTS):
        rel = relpath(root, path)
        if rel.startswith(THREAD_ALLOWED_SUBDIR + os.sep):
            continue
        lines = open(path, encoding="utf-8").read().splitlines()
        in_block_comment = False
        for i, raw in enumerate(lines):
            line, in_block_comment = strip_block_comments(raw, in_block_comment)
            code = strip_code_line(line)
            if THREAD_RE.search(code):
                if "naked-thread" in suppressions(lines, i):
                    continue
                findings.append(
                    Finding(rel, i + 1, "naked-thread",
                            "std::thread outside src/parallel; use "
                            "ThreadPool / parallel_for"))
    return findings


def check_raw_binary_io(root: str) -> list[Finding]:
    findings = []
    for path in iter_files(root, LIB_DIR, SOURCE_EXTS):
        rel = relpath(root, path)
        if rel.startswith(RAW_IO_ALLOWED_SUBDIR + os.sep):
            continue
        lines = open(path, encoding="utf-8").read().splitlines()
        in_block_comment = False
        for i, raw in enumerate(lines):
            line, in_block_comment = strip_block_comments(raw, in_block_comment)
            code = strip_code_line(line)
            if RAW_IO_RE.search(code):
                if "raw-binary-io" in suppressions(lines, i):
                    continue
                findings.append(
                    Finding(rel, i + 1, "raw-binary-io",
                            "raw binary I/O outside src/io; persist through "
                            "the snapshot container (src/io/snapshot.hpp, "
                            "docs/FORMATS.md)"))
    return findings


def check_raw_socket(root: str) -> list[Finding]:
    findings = []
    for path in iter_files(root, LIB_DIR, SOURCE_EXTS):
        rel = relpath(root, path)
        if rel.startswith(RAW_SOCKET_ALLOWED_SUBDIR + os.sep):
            continue
        if rel in RAW_SOCKET_EXEMPT_FILES:
            continue
        lines = open(path, encoding="utf-8").read().splitlines()
        in_block_comment = False
        for i, raw in enumerate(lines):
            line, in_block_comment = strip_block_comments(raw, in_block_comment)
            code = strip_code_line(line)
            for m in RAW_SOCKET_RE.finditer(code):
                if "::" not in m.group(0):
                    decl = RAW_SOCKET_DECL_PREFIX_RE.search(code[:m.start()])
                    if decl and decl.group(1) not in RAW_SOCKET_NON_TYPE_TOKENS:
                        continue  # a declaration borrowing a POSIX name
                if "raw-socket" in suppressions(lines, i):
                    continue
                findings.append(
                    Finding(rel, i + 1, "raw-socket",
                            "BSD socket call outside src/net; speak the "
                            "framed, CRC-checked channel "
                            "(src/net/channel.hpp, docs/FORMATS.md)"))
                break
    return findings


def check_raw_mutex(root: str) -> list[Finding]:
    findings = []
    for path in iter_files(root, LIB_DIR, SOURCE_EXTS):
        rel = relpath(root, path)
        if rel in RAW_MUTEX_EXEMPT_FILES:
            continue
        lines = open(path, encoding="utf-8").read().splitlines()
        in_block_comment = False
        for i, raw in enumerate(lines):
            line, in_block_comment = strip_block_comments(raw, in_block_comment)
            code = strip_code_line(line)
            if RAW_MUTEX_RE.search(code):
                if "raw-mutex" in suppressions(lines, i):
                    continue
                findings.append(
                    Finding(rel, i + 1, "raw-mutex",
                            "std sync primitive outside src/util/sync.hpp; "
                            "use the annotated hgp::Mutex / MutexLock / "
                            "CondVar wrappers"))
    return findings


def strip_block_comments(line: str, in_block: bool) -> tuple[str, bool]:
    """Removes /* ... */ content, tracking state across lines."""
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block = False
        else:
            start = line.find("/*", i)
            if start == -1:
                out.append(line[i:])
                break
            out.append(line[i:start])
            i = start + 2
            in_block = True
    return "".join(out), in_block


RULES = [
    check_throw_policy,
    check_no_stdout,
    check_include_cycles,
    check_header_hygiene,
    check_naked_thread,
    check_raw_binary_io,
    check_raw_socket,
    check_raw_mutex,
]


def run_lint(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for rule in RULES:
        findings.extend(rule(root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# -------------------------------------------------------------- self-test


FIXTURES = {
    # Each entry: path -> (contents, set of rules that must fire on it).
    "src/bad/throws.cpp": (
        '// bad throws\n'
        '#include <stdexcept>\n'
        'void f() { throw std::runtime_error("boom"); }\n'
        'void g() { throw 42; }\n'
        'void ok1() { throw SolveError(code, "fine"); }\n'
        'void ok2() { throw hgp::CheckError("fine"); }\n'
        'void ok3() { try { f(); } catch (...) { throw; } }\n'
        '// the string below must not trip the scanner\n'
        'const char* s = "throw std::logic_error";\n'
        'void sup() { throw std::logic_error("x"); }  // hgp-lint: allow(throw-policy)\n',
        {"throw-policy"},
    ),
    "src/bad/prints.cpp": (
        '// bad prints\n'
        '#include <cstdio>\n'
        '#include <iostream>\n'
        'void a() { std::cout << "hi"; }\n'
        'void b() { printf("hi"); }\n'
        'void c() { std::fprintf(stdout, "hi"); }\n'
        'void d() { std::fprintf(stderr, "fine"); }\n'
        '// hgp-lint: allow(no-stdout)\n'
        'void e() { std::puts("suppressed"); }\n'
        '// std::cout in a comment must not fire\n',
        {"no-stdout"},
    ),
    "src/bad/cycle_a.hpp": (
        '// half of an include cycle\n'
        '#pragma once\n'
        '#include "bad/cycle_b.hpp"\n',
        {"include-cycle"},
    ),
    "src/bad/cycle_b.hpp": (
        '// other half of the cycle\n'
        '#pragma once\n'
        '#include "bad/cycle_a.hpp"\n',
        {"include-cycle"},
    ),
    "src/bad/no_pragma.hpp": (
        '// commented but not guarded\n'
        'int x;\n',
        {"header-hygiene"},
    ),
    "src/bad/no_comment.hpp": (
        '#pragma once\n'
        'int y;\n',
        {"header-hygiene"},
    ),
    "src/bad/spawns.cpp": (
        '// naked thread\n'
        '#include <thread>\n'
        'void run() { std::thread t([] {}); t.join(); }\n'
        'void fine() { std::this_thread::yield(); }\n',
        {"naked-thread"},
    ),
    "src/parallel/pool.cpp": (
        '// thread pool home — std::thread allowed here\n'
        '#include <thread>\n'
        'void spawn() { std::thread t([] {}); t.join(); }\n',
        set(),
    ),
    "src/bad/rawio.cpp": (
        '// raw binary I/O outside src/io\n'
        '#include <cstdio>\n'
        'void a(FILE* f, const Header& h) { fwrite(&h, sizeof h, 1, f); }\n'
        'void b(FILE* f, Header& h) { fread(&h, sizeof h, 1, f); }\n'
        'void c(std::ostream& os, const Header& h) {\n'
        '  os.write(reinterpret_cast<const char*>(&h), sizeof h);\n'
        '}\n'
        'void d(int fd, void* p, long n) { ::read(fd, p, n); }\n'
        'long e(Writer& w) { return w.write_file("fine: not POSIX"); }\n'
        'void sup(FILE* f) { fwrite("x", 1, 1, f); }  // hgp-lint: allow(raw-binary-io)\n',
        {"raw-binary-io"},
    ),
    "src/io/blob.cpp": (
        '// serialization home: raw binary I/O is allowed under src/io\n'
        '#include <cstdio>\n'
        'void w(FILE* f, const char* p, long n) { fwrite(p, 1, n, f); }\n',
        set(),
    ),
    "src/bad/sockets.cpp": (
        '// raw socket calls outside src/net\n'
        '#include <sys/socket.h>\n'
        'int a() { return socket(AF_UNIX, SOCK_STREAM, 0); }\n'
        'long b(int fd, const void* p, long n) { return ::send(fd, p, n, 0); }\n'
        'long c(int fd, void* p, long n) { return recv(fd, p, n, 0); }\n'
        'int d(int fd) { return ::listen(fd, 8); }\n'
        'int e(int* fds) { return socketpair(AF_UNIX, SOCK_STREAM, 0, fds); }\n'
        'void fine(Channel& ch, Frame f) { ch.send(f); }\n'
        'void fine2(Log* log) { log->send("x"); }\n'
        'void fine3(Checkpoint& c, const Key& k) { c.bind(k); }\n'
        'Socket fine4() { return Socket::connect_unix("/s"); }\n'
        '// a comment saying connect() must not fire\n'
        'const char* s = "socket(AF_INET)";\n'
        'int sup(int fd) { return ::accept(fd, 0, 0); }  '
        '// hgp-lint: allow(raw-socket)\n',
        {"raw-socket"},
    ),
    "src/net/socket.cpp": (
        '// socket layer home — the one place the BSD surface is spoken\n'
        '#include <sys/socket.h>\n'
        'int open_unix() { return ::socket(AF_UNIX, SOCK_STREAM, 0); }\n',
        set(),
    ),
    "src/obs/introspect.cpp": (
        '// audited per-file exemption: the scrape endpoint predates src/net\n'
        '#include <sys/socket.h>\n'
        'long pump(int fd, void* p, long n) { return ::recv(fd, p, n, 0); }\n',
        set(),
    ),
    "src/bad/locks.cpp": (
        '// raw sync primitives outside the annotated layer\n'
        '#include <mutex>\n'
        'std::mutex m;\n'
        'std::shared_mutex sm;\n'
        'void f() { const std::lock_guard<std::mutex> l(m); }\n'
        'std::condition_variable cv;\n'
        'std::unique_lock<std::mutex> u(m);  // hgp-lint: allow(raw-mutex)\n'
        '// std::mutex in a comment must not fire\n'
        'void fine(hgp::Mutex& mu) { const hgp::MutexLock lock(mu); }\n',
        {"raw-mutex"},
    ),
    "src/util/sync.hpp": (
        '// annotated sync layer — the one home of the std primitives\n'
        '#pragma once\n'
        '#include <mutex>\n'
        'namespace hgp { class Mutex { std::mutex mu_; }; }\n',
        set(),
    ),
    "src/good/clean.hpp": (
        '// a perfectly fine header\n'
        '#pragma once\n'
        'namespace x { int f(); }\n',
        set(),
    ),
    "src/obs/trace.cpp": (
        '// telemetry exporter — the sanctioned direct-write sink\n'
        '#include <cstdio>\n'
        'void export_now() { std::printf("{}"); }\n',
        set(),
    ),
    "src/obs/flight_recorder.cpp": (
        '// flight-recorder emitter — registered by file, like every sink\n'
        '#include <cstdio>\n'
        'void dump_now() { std::printf("{}"); }\n',
        set(),
    ),
    "src/obs/not_registered.cpp": (
        '// lives under src/obs but is NOT in NO_STDOUT_EXEMPT_FILES: the\n'
        '// exemption is per registered file, not an obs-directory blanket\n'
        '#include <cstdio>\n'
        'void leak() { std::printf("{}"); }\n',
        {"no-stdout"},
    ),
}


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="hgp_lint_fixture_") as root:
        for rel, (contents, _) in FIXTURES.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        findings = run_lint(root)
        fired: dict[str, set[str]] = {}
        for f in findings:
            fired.setdefault(f.path.replace(os.sep, "/"), set()).add(f.rule)
        for rel, (_, expected) in FIXTURES.items():
            got = fired.get(rel, set())
            if expected - got:
                print(f"SELF-TEST MISS: {rel}: expected {sorted(expected)}, "
                      f"got {sorted(got)}")
                failures += 1
            if not expected and got:
                print(f"SELF-TEST FALSE POSITIVE: {rel}: fired {sorted(got)}")
                failures += 1
        # `throw std::logic_error` suppressed on line 10 must NOT be counted:
        throw_hits = [f for f in findings
                      if f.rule == "throw-policy" and "throws.cpp" in f.path]
        if sorted(f.line for f in throw_hits) != [3, 4]:
            print("SELF-TEST MISS: throw-policy should fire exactly on lines "
                  f"3 and 4, got {sorted(f.line for f in throw_hits)}")
            failures += 1
        rawio_hits = [f for f in findings
                      if f.rule == "raw-binary-io" and "rawio.cpp" in f.path]
        if sorted(f.line for f in rawio_hits) != [3, 4, 6, 8]:
            print("SELF-TEST MISS: raw-binary-io should fire exactly on lines "
                  f"3, 4, 6 and 8, got {sorted(f.line for f in rawio_hits)}")
            failures += 1
        stdout_hits = [f for f in findings
                       if f.rule == "no-stdout" and "prints.cpp" in f.path]
        if sorted(f.line for f in stdout_hits) != [4, 5, 6]:
            print("SELF-TEST MISS: no-stdout should fire exactly on lines "
                  f"4, 5 and 6, got {sorted(f.line for f in stdout_hits)}")
            failures += 1
        socket_hits = [f for f in findings
                       if f.rule == "raw-socket" and "sockets.cpp" in f.path]
        if sorted(f.line for f in socket_hits) != [3, 4, 5, 6, 7]:
            print("SELF-TEST MISS: raw-socket should fire exactly on lines "
                  f"3-7, got {sorted(f.line for f in socket_hits)}")
            failures += 1
        mutex_hits = [f for f in findings
                      if f.rule == "raw-mutex" and "locks.cpp" in f.path]
        if sorted(f.line for f in mutex_hits) != [3, 4, 5, 6]:
            print("SELF-TEST MISS: raw-mutex should fire exactly on lines "
                  f"3, 4, 5 and 6, got {sorted(f.line for f in mutex_hits)}")
            failures += 1
    if failures:
        print(f"hgp_lint self-test: {failures} failure(s)")
        return 1
    print("hgp_lint self-test: all rules detect their fixture violations")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: the repo containing "
                             "this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture-based rule tests")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, LIB_DIR)):
        print(f"hgp_lint: no {LIB_DIR}/ under {root}", file=sys.stderr)
        return 2

    findings = run_lint(root)
    for f in findings:
        print(f)
    if findings:
        print(f"hgp_lint: {len(findings)} violation(s)")
        return 1
    print("hgp_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
