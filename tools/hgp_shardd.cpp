// hgp_shardd — shard worker process for the sharded solver.
//
//   hgp_shardd --connect PATH | --connect-tcp PORT
//              [--heartbeat-ms MS] [--idle-timeout-ms MS]
//              [--fault SITE,INDEX,ACTION[,MS[,PROB[,SEED]]]] ...
//
// Connects to the coordinator (src/runtime/coordinator.hpp), then hands
// the connection to run_shard_server: handshake, Job load from the
// embedded snapshot blob, Assign → solve → BatchResult until Shutdown.
// All solving runs through solve_forest_tree, so every result is
// bit-identical to the coordinator's in-process path.
//
// --fault arms the process-local FaultInjector before serving — the
// distributed chaos storm drives worker crashes, hangs and torn frames
// through this flag with seeded probabilistic schedules.  Actions:
//   throw | stall | infeasible | torn-frame | short-write | refuse | kill
// `kill` raises SIGKILL at the site (only meaningful at shardd.kill,
// polled before each tree solve) — the worker dies mid-solve with no
// goodbye, exactly like a crashed machine.
//
// Exit codes follow hgp_solve's mapping (docs/RESILIENCE.md), plus
//   0 clean Shutdown from the coordinator
//   10 coordinator unavailable (refused connect, vanished peer)
#include <signal.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "runtime/shard_server.hpp"
#include "util/fault_injector.hpp"
#include "util/status.hpp"

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitUnavailable = 10;

int exit_code_for(hgp::StatusCode code) {
  switch (code) {
    case hgp::StatusCode::kOk: return 0;
    case hgp::StatusCode::kInvalidInput: return 3;
    case hgp::StatusCode::kInfeasible: return 4;
    case hgp::StatusCode::kDeadlineExceeded: return 5;
    case hgp::StatusCode::kCancelled: return 6;
    case hgp::StatusCode::kInternal: return 1;
    case hgp::StatusCode::kResourceExhausted: return 7;
    case hgp::StatusCode::kDataLoss: return 9;
    case hgp::StatusCode::kUnavailable: return kExitUnavailable;
  }
  return 1;
}

void print_usage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s --connect PATH | --connect-tcp PORT\n"
      "          [--heartbeat-ms MS] [--idle-timeout-ms MS]\n"
      "          [--fault SITE,INDEX,ACTION[,MS[,PROB[,SEED]]]] ...\n"
      "\n"
      "  --connect PATH       coordinator's unix-domain socket\n"
      "  --connect-tcp PORT   coordinator's TCP loopback port\n"
      "  --heartbeat-ms MS    override the coordinator-requested cadence\n"
      "  --idle-timeout-ms MS exit 10 when the coordinator goes silent\n"
      "                       this long (default: wait forever)\n"
      "  --fault SPEC         arm a FaultInjector entry; ACTION is one of\n"
      "                       throw|stall|infeasible|torn-frame|short-write|\n"
      "                       refuse|kill; INDEX -1 = every occurrence;\n"
      "                       MS = stall duration, PROB/SEED make the entry\n"
      "                       a seeded probabilistic schedule\n",
      argv0);
}

[[noreturn]] void usage_error(const char* argv0, const std::string& what) {
  std::fprintf(stderr, "hgp_shardd: %s\n", what.c_str());
  print_usage(stderr, argv0);
  std::exit(kExitUsage);
}

double parse_double(const char* argv0, const char* flag,
                    const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || errno != 0 ||
      !std::isfinite(parsed)) {
    usage_error(argv0, std::string("invalid number '") + value + "' for " +
                           flag);
  }
  return parsed;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

hgp::FaultInjector::Action parse_action(const char* argv0,
                                        const std::string& name) {
  using Action = hgp::FaultInjector::Action;
  if (name == "throw") return Action::kThrow;
  if (name == "stall") return Action::kStall;
  if (name == "infeasible") return Action::kInfeasible;
  if (name == "torn-frame") return Action::kNetTornFrame;
  if (name == "short-write") return Action::kIoShortWrite;
  if (name == "refuse") return Action::kNetConnectRefused;
  if (name == "kill") return Action::kKillProcess;
  usage_error(argv0, "unknown fault action '" + name + "'");
}

/// SITE,INDEX,ACTION[,MS[,PROB[,SEED]]] → armed FaultInjector entry.
void arm_fault(const char* argv0, const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ',');
  if (parts.size() < 3 || parts.size() > 6) {
    usage_error(argv0, "malformed --fault spec '" + spec + "'");
  }
  const int index = static_cast<int>(
      parse_double(argv0, "--fault index", parts[1]));
  hgp::FaultInjector::Fault fault;
  fault.action = parse_action(argv0, parts[2]);
  if (parts.size() > 3) {
    fault.stall_ms = parse_double(argv0, "--fault stall-ms", parts[3]);
  }
  if (parts.size() > 4) {
    fault.probability = parse_double(argv0, "--fault probability", parts[4]);
  }
  if (parts.size() > 5) {
    fault.seed = static_cast<std::uint64_t>(
        parse_double(argv0, "--fault seed", parts[5]));
  }
  hgp::FaultInjector::instance().arm(parts[0], index, fault);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hgp;
  std::string unix_path;
  int tcp_port = 0;
  ShardServerOptions opt;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        usage_error(argv[0], std::string("missing value for ") + flag);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      print_usage(stdout, argv[0]);
      return 0;
    } else if (!std::strcmp(argv[i], "--connect")) {
      unix_path = need("--connect");
    } else if (!std::strcmp(argv[i], "--connect-tcp")) {
      tcp_port = static_cast<int>(
          parse_double(argv[0], "--connect-tcp", need("--connect-tcp")));
    } else if (!std::strcmp(argv[i], "--heartbeat-ms")) {
      opt.heartbeat_ms =
          parse_double(argv[0], "--heartbeat-ms", need("--heartbeat-ms"));
    } else if (!std::strcmp(argv[i], "--idle-timeout-ms")) {
      opt.idle_timeout_ms = parse_double(argv[0], "--idle-timeout-ms",
                                         need("--idle-timeout-ms"));
    } else if (!std::strcmp(argv[i], "--fault")) {
      arm_fault(argv[0], need("--fault"));
    } else {
      usage_error(argv[0], std::string("unknown argument '") + argv[i] + "'");
    }
  }
  if (unix_path.empty() == (tcp_port == 0)) {
    usage_error(argv[0], "exactly one of --connect / --connect-tcp required");
  }

  // The chaos storm's crash schedule: a kKillProcess armed at shardd.kill
  // takes the whole process down right before tree `index`'s solve — from
  // the coordinator's side, a machine that died mid-batch.
  opt.on_tree_start = [](int tree_index) {
    if (FaultInjector::instance().poll_io("shardd.kill", tree_index) ==
        FaultInjector::Action::kKillProcess) {
      ::raise(SIGKILL);
    }
  };

  try {
    const Deadline connect_deadline = Deadline::after_ms(10000);
    net::Socket sock = unix_path.empty()
                           ? net::connect_tcp_loopback(tcp_port, connect_deadline)
                           : net::connect_unix(unix_path, connect_deadline);
    net::FrameChannel channel(std::move(sock));
    const ShardServerReport report = run_shard_server(channel, opt);
    if (!report.exit_status.ok()) {
      std::fprintf(stderr, "hgp_shardd: %s\n",
                   report.exit_status.to_string().c_str());
    }
    return exit_code_for(report.exit_status.code);
  } catch (const SolveError& e) {
    std::fprintf(stderr, "hgp_shardd: %s\n", e.what());
    return exit_code_for(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hgp_shardd: %s\n", e.what());
    return 1;
  }
}
