// hgp_chaos — chaos harness for the solver service layer.
//
//   hgp_chaos [--requests N] [--seed S] [--metrics FILE] [--verbose]
//             [--obs-socket PATH] [--flight-dump FILE] [--hold-open-ms N]
//
// Fires N concurrent requests at a SolverService while seeded probabilistic
// fault schedules (util/fault_injector.hpp) crash trees, kill solves at the
// finalize boundary and break fallback stages; a canceller thread aborts a
// random subset of requests in flight; a small admission queue and a global
// memory budget put the service under the pressure it exists to absorb.
//
// The harness then asserts the service's contract:
//   * every request ends in a documented terminal status (never hangs,
//     never leaks an unclassified exception, never OOM-aborts),
//   * every placed result is a valid placement with finite cost,
//   * no request exceeds its retry budget,
//   * the run exercised ≥ 1 admission rejection, ≥ 1 successful retry and
//     ≥ 1 checkpoint-resume (the three behaviours the service adds).
//
// Exit 0 when every invariant held, 1 otherwise.  Deterministic in --seed
// up to OS scheduling (fault draws are seeded streams consumed in arrival
// order).  CI runs this under ASan — see scripts/chaos_smoke.sh.
//
// Observability hooks (PR 8): --obs-socket exposes the storm service's
// live introspection endpoint so CI can scrape /metrics and /requests
// mid-storm (scripts/obs_endpoint_smoke.sh); --hold-open-ms keeps the
// endpoint alive that long after the phases finish so a scraper never
// races the exit; --flight-dump names the flight-recorder file the
// services dump on watchdog cancels and the harness attaches (as
// FILE.assert) to every failed CHAOS_EXPECT.  Phase 4 stalls attempts
// under an aggressive watchdog and asserts the dump names every
// retry/degrade/spill step of the affected request.
//
// Churn phase (PR 9): phase 5 opens an incremental session and fires
// concurrent seeded churn batches at it through submit_resolve while a
// probabilistic fault schedule crashes trees mid-resolve.  Losers of the
// optimistic commit race must see the documented kInvalidInput rejection
// and succeed after rebasing; failed resolves must leave the committed
// session state untouched (the same batch resubmits verbatim); and the
// final committed placement must validate against the final committed
// graph.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <mutex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/placement.hpp"
#include "net/channel.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/service.hpp"
#include "util/fault_injector.hpp"
#include "util/memory_budget.hpp"
#include "util/prng.hpp"

namespace {

using namespace hgp;

int g_failures = 0;
std::string g_flight_dump;  // --flight-dump (or a temp default)

/// Every failed expectation gets a flight-recorder dump next to the
/// configured dump file: the journal tail says what the service was doing
/// when the invariant broke, which a bare condition string cannot.
void attach_flight_dump(const char* cond) {
  if (g_flight_dump.empty()) return;
  const std::string path = g_flight_dump + ".assert";
  const Status s = obs::FlightRecorder::global().dump_to_file(
      path, std::string("chaos assertion failed: ") + cond);
  if (s.ok()) {
    std::fprintf(stderr, "  flight recorder attached: %s\n", path.c_str());
  }
}

#define CHAOS_EXPECT(cond, ...)              \
  do {                                       \
    if (!(cond)) {                           \
      ++g_failures;                          \
      std::fprintf(stderr, "FAIL: ");        \
      std::fprintf(stderr, __VA_ARGS__);     \
      std::fprintf(stderr, "  [%s]\n", #cond); \
      attach_flight_dump(#cond);             \
    }                                        \
  } while (0)

FaultInjector::Fault prob_throw(double p, std::uint64_t seed) {
  FaultInjector::Fault f;
  f.action = FaultInjector::Action::kThrow;
  f.probability = p;
  f.seed = seed;
  return f;
}

bool documented_terminal(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kInfeasible:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
      return true;
    case StatusCode::kInvalidInput:
      // The harness submits only valid inputs; seeing this is a bug.
      return false;
    case StatusCode::kDataLoss:
      // Spill/recovery integrity failures degrade to in-memory operation;
      // a request must never surface kDataLoss as its terminal status.
      return false;
    case StatusCode::kUnavailable:
      // Shard loss degrades to in-process solving (coordinator.hpp); a
      // request must never surface kUnavailable as its terminal status.
      return false;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 200;
  std::uint64_t seed = 1;
  std::string metrics_path;
  std::string obs_socket;
  std::string flight_dump;
  std::string shardd_path;
  long hold_open_ms = 0;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hgp_chaos: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--requests")) {
      requests = std::atoi(need("--requests").c_str());
      if (requests < 1) {
        std::fprintf(stderr, "hgp_chaos: --requests must be >= 1\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(need("--seed").c_str(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics_path = need("--metrics");
    } else if (!std::strcmp(argv[i], "--obs-socket")) {
      obs_socket = need("--obs-socket");
    } else if (!std::strcmp(argv[i], "--flight-dump")) {
      flight_dump = need("--flight-dump");
    } else if (!std::strcmp(argv[i], "--shardd")) {
      shardd_path = need("--shardd");
    } else if (!std::strcmp(argv[i], "--hold-open-ms")) {
      hold_open_ms = std::strtol(need("--hold-open-ms").c_str(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      std::printf(
          "usage: hgp_chaos [--requests N] [--seed S] [--metrics FILE]\n"
          "                 [--obs-socket PATH] [--flight-dump FILE]\n"
          "                 [--shardd PATH] [--hold-open-ms N] [--verbose]\n"
          "  --shardd PATH  shard worker binary; enables phase 6, the\n"
          "                 distributed storm over real worker processes\n");
      return 0;
    } else {
      std::fprintf(stderr, "hgp_chaos: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  if (flight_dump.empty()) {
    flight_dump = (std::filesystem::temp_directory_path() /
                   "hgp-chaos-flight.json")
                      .string();
  }
  g_flight_dump = flight_dump;

  Rng master(seed);
  Graph g = gen::planted_partition(32, 4, 0.7, 0.08, master,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / 32);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});

  // A budget large enough that healthy solves pass but small enough that
  // the accounting paths run for real (arena chunks charge against it).
  MemoryBudget::global().set_limit(256u << 20);

  ServiceOptions sopt;
  sopt.workers = 4;
  sopt.max_queue = 16;
  sopt.retry.max_retries = 2;
  sopt.retry.backoff_base_ms = 1;
  sopt.retry.backoff_max_ms = 8;
  sopt.retry.jitter_seed = seed;
  sopt.stuck_after_ms = 2000;  // generous: a smoke check, not a trigger
  sopt.watchdog_poll_ms = 50;

  // ---- Phase 1: deterministic admission rejection under budget pressure.
  // Saturate the budget above the admission threshold, submit, restore.
  {
    SolverService service(sopt);
    const std::size_t hog = static_cast<std::size_t>(
        static_cast<double>(MemoryBudget::global().limit()) * 0.99);
    if (!MemoryBudget::global().try_reserve(hog)) {
      CHAOS_EXPECT(false, "budget hog reservation unexpectedly failed\n");
    } else {
      auto req = service.submit(g, h);
      const RetrySolveReport& rep = req->wait();
      CHAOS_EXPECT(rep.status.code == StatusCode::kResourceExhausted,
                   "budget-pressure submit returned %s\n",
                   status_code_name(rep.status.code));
      CHAOS_EXPECT(!rep.has_result,
                   "admission-rejected request carried a result\n");
      MemoryBudget::global().release(hog);
    }
    CHAOS_EXPECT(service.stats().rejected_budget >= 1,
                 "no budget admission rejection recorded\n");
  }

  // ---- Phase 2: the storm.  Probabilistic fault schedules at the solver's
  // injection sites (seeded: same --seed, same schedule), random caller
  // cancellations, a small queue, all workers busy.
  FaultScope tree_faults("solve_one_tree", FaultInjector::kEveryIndex,
                         prob_throw(0.30, seed * 2 + 1));
  FaultScope finalize_faults("solve_finalize", 0,
                             prob_throw(0.12, seed * 3 + 1));
  FaultScope multilevel_faults("fallback_multilevel", 0,
                               prob_throw(0.20, seed * 5 + 1));

  // The storm service is the one with the live endpoint: it exists for
  // most of the run and is what a scraper should be watching.  Later
  // phases leave obs_socket empty — a second bind would steal (and on
  // destruction unlink) the path out from under this service.
  ServiceOptions storm_opt = sopt;
  storm_opt.obs_socket = obs_socket;
  storm_opt.flight_dump_path = flight_dump;
  SolverService service(storm_opt);
  std::vector<std::shared_ptr<ServiceRequest>> handles;
  handles.reserve(static_cast<std::size_t>(requests));

  SolverOptions base;
  base.num_trees = 2;
  base.epsilon = 0.5;

  // The canceller runs concurrently with submission so cancels land on
  // queued and in-flight requests, not on corpses: the submitter hands it
  // victims through a small mailbox.
  std::mutex cancel_mu;
  std::vector<std::shared_ptr<ServiceRequest>> cancel_mailbox;
  std::atomic<bool> submitting{true};
  std::thread canceller([&] {
    Rng delay(seed ^ 0xDEADBEEF);
    for (;;) {
      std::shared_ptr<ServiceRequest> victim;
      {
        const std::lock_guard<std::mutex> lock(cancel_mu);
        if (!cancel_mailbox.empty()) {
          victim = std::move(cancel_mailbox.back());
          cancel_mailbox.pop_back();
        }
      }
      if (victim == nullptr) {
        if (!submitting.load(std::memory_order_acquire)) return;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<std::int64_t>(delay.next_double(50, 1500))));
      victim->cancel();
    }
  });

  Rng pace = master.fork(0xCA);
  for (int i = 0; i < requests; ++i) {
    // Most arrivals respect backpressure (bounded wait for queue space) so
    // the bulk of the load is admitted; the rest barge in mid-burst and
    // overflow into admission rejections when the queue is at its bound.
    if (pace.next_bool(0.8)) {
      for (int spin = 0;
           spin < 400 && service.queue_depth() >= sopt.max_queue; ++spin) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
    SolverOptions opt = base;
    opt.seed = seed + static_cast<std::uint64_t>(i);
    auto req = service.submit(g, h, opt);
    handles.push_back(req);
    if (pace.next_bool(0.06)) {
      const std::lock_guard<std::mutex> lock(cancel_mu);
      cancel_mailbox.push_back(req);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(pace.next_double(0, 300))));
  }
  submitting.store(false, std::memory_order_release);

  service.drain();
  canceller.join();

  // ---- Verification.
  int ok_count = 0, cancelled = 0, rejected = 0, degraded_results = 0,
      failed_terminal = 0, retry_successes = 0, checkpoint_resumes = 0;
  for (const auto& req : handles) {
    CHAOS_EXPECT(req->done(), "request %llu not terminal after drain\n",
                 static_cast<unsigned long long>(req->id()));
    const RetrySolveReport& rep = req->wait();
    CHAOS_EXPECT(documented_terminal(rep.status.code),
                 "request %llu ended in undocumented status %s\n",
                 static_cast<unsigned long long>(req->id()),
                 status_code_name(rep.status.code));
    CHAOS_EXPECT(rep.retries_used <= sopt.retry.max_retries,
                 "request %llu used %d retries (budget %d)\n",
                 static_cast<unsigned long long>(req->id()), rep.retries_used,
                 sopt.retry.max_retries);
    if (rep.has_result) {
      try {
        validate_placement(g, h, rep.result.placement);
      } catch (const std::exception& e) {
        CHAOS_EXPECT(false, "request %llu produced invalid placement: %s\n",
                     static_cast<unsigned long long>(req->id()), e.what());
      }
      CHAOS_EXPECT(std::isfinite(rep.result.cost),
                   "request %llu result cost not finite\n",
                   static_cast<unsigned long long>(req->id()));
      if (rep.result.telemetry.checkpoint_trees > 0) ++checkpoint_resumes;
    }
    switch (rep.status.code) {
      case StatusCode::kOk:
        ++ok_count;
        if (rep.retries_used > 0) ++retry_successes;
        break;
      case StatusCode::kCancelled:
        ++cancelled;
        break;
      case StatusCode::kResourceExhausted:
        if (rep.has_result) {
          ++degraded_results;
        } else {
          ++rejected;
        }
        break;
      default:
        if (rep.has_result) {
          ++degraded_results;
        } else {
          ++failed_terminal;
        }
        break;
    }
  }

  const SolverService::Stats stats = service.stats();
  std::printf(
      "hgp_chaos: %d requests — %d ok (%d after retries), %d cancelled, "
      "%d rejected, %d degraded, %d failed\n",
      requests, ok_count, retry_successes, cancelled, rejected,
      degraded_results, failed_terminal);
  std::printf(
      "service: admitted %llu, rejected %llu (queue %llu, budget %llu, "
      "draining %llu), retries %llu, degrades %llu, watchdog cancels %llu, "
      "checkpoint trees %llu\n",
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.rejected()),
      static_cast<unsigned long long>(stats.rejected_queue_full),
      static_cast<unsigned long long>(stats.rejected_budget),
      static_cast<unsigned long long>(stats.rejected_draining),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.degrades),
      static_cast<unsigned long long>(stats.watchdog_cancels),
      static_cast<unsigned long long>(stats.checkpoint_trees));
  if (verbose) {
    for (const auto& req : handles) {
      const RetrySolveReport& rep = req->wait();
      std::printf("  req %3llu: %-18s retries=%d degrades=%d ckpt=%d%s\n",
                  static_cast<unsigned long long>(req->id()),
                  status_code_name(rep.status.code), rep.retries_used,
                  rep.degrades,
                  rep.has_result ? rep.result.telemetry.checkpoint_trees : 0,
                  rep.has_result ? "" : " (no result)");
    }
  }

  // The acceptance counters: phase 1 guarantees the admission rejection;
  // the storm's fault schedule makes retry successes and checkpoint
  // resumes overwhelmingly likely at the default scale (p ≈ 1 - 1e-6 at
  // 200 requests; smaller --requests runs may need a different seed).
  CHAOS_EXPECT(retry_successes >= 1, "no request succeeded after a retry\n");
  CHAOS_EXPECT(checkpoint_resumes >= 1,
               "no request resumed trees from a checkpoint\n");
  CHAOS_EXPECT(stats.checkpoint_trees >= 1,
               "service counted no checkpoint-served trees\n");

  // ---- Phase 3: durability across a service restart.  Part A: a service
  // with a spill directory and no retry budget, where every attempt dies
  // at the finalize boundary — *after* all trees completed — so each
  // terminal failure spills a full checkpoint.  Part B: a fresh service
  // (the "restarted process") over the same directory must recover the
  // spills and serve every tree of the re-submitted requests from them.
  // Destroying the first service models the kill: nothing survives it but
  // the spill files on disk, which is exactly what a dead process leaves.
  {
    // Mask the storm's probabilistic schedules (re-arming a (site, index)
    // overwrites): phase 3 needs solves that fail only where it says.
    FaultScope quiet_trees("solve_one_tree", FaultInjector::kEveryIndex, {});
    FaultScope quiet_ml("fallback_multilevel", 0, {});

    std::string spill_dir = [] {
      std::string templ = (std::filesystem::temp_directory_path() /
                           "hgp-chaos-spill-XXXXXX")
                              .string();
      return ::mkdtemp(templ.data()) != nullptr ? templ : std::string();
    }();
    CHAOS_EXPECT(!spill_dir.empty(), "mkdtemp failed for the spill dir\n");
    if (!spill_dir.empty()) {
      ServiceOptions dopt = sopt;
      dopt.workers = 2;
      dopt.retry.max_retries = 0;  // first failure is terminal → one spill
      dopt.spill_dir = spill_dir;
      constexpr int kPhase3Requests = 4;
      auto phase3_opt = [&](int i) {
        SolverOptions opt = base;
        opt.seed = seed + 1000 + static_cast<std::uint64_t>(i);
        opt.fallback = FallbackPolicy::kNone;  // let the failure propagate
        return opt;
      };
      {
        FaultScope kill_finalize("solve_finalize", 0, prob_throw(1.0, 1));
        SolverService crashing(dopt);
        std::vector<std::shared_ptr<ServiceRequest>> doomed;
        for (int i = 0; i < kPhase3Requests; ++i) {
          doomed.push_back(crashing.submit(g, h, phase3_opt(i)));
        }
        for (const auto& req : doomed) {
          const RetrySolveReport& rep = req->wait();
          CHAOS_EXPECT(!rep.ok(),
                       "phase 3 request %llu survived the finalize kill\n",
                       static_cast<unsigned long long>(req->id()));
        }
        CHAOS_EXPECT(
            crashing.stats().checkpoint_spills >=
                static_cast<std::uint64_t>(kPhase3Requests),
            "phase 3 spilled %llu checkpoints, expected >= %d\n",
            static_cast<unsigned long long>(
                crashing.stats().checkpoint_spills),
            kPhase3Requests);
      }  // service destroyed: the process "died", only the spills survive

      SolverService restarted(dopt);
      std::vector<std::shared_ptr<ServiceRequest>> resumed;
      for (int i = 0; i < kPhase3Requests; ++i) {
        resumed.push_back(restarted.submit(g, h, phase3_opt(i)));
      }
      for (const auto& req : resumed) {
        const RetrySolveReport& rep = req->wait();
        CHAOS_EXPECT(rep.ok(), "phase 3 restart request %llu ended %s\n",
                     static_cast<unsigned long long>(req->id()),
                     status_code_name(rep.status.code));
        // Every tree must come from the recovered checkpoint: a restarted
        // process re-solving completed trees is exactly the waste this
        // subsystem exists to avoid.
        CHAOS_EXPECT(
            rep.has_result &&
                rep.result.telemetry.checkpoint_trees == base.num_trees,
            "phase 3 restart request %llu resumed %d/%d trees\n",
            static_cast<unsigned long long>(req->id()),
            rep.has_result ? rep.result.telemetry.checkpoint_trees : 0,
            base.num_trees);
      }
      const SolverService::Stats rstats = restarted.stats();
      CHAOS_EXPECT(rstats.checkpoint_recovered >=
                       static_cast<std::uint64_t>(kPhase3Requests),
                   "phase 3 recovered %llu spills, expected >= %d\n",
                   static_cast<unsigned long long>(rstats.checkpoint_recovered),
                   kPhase3Requests);
      // Success consumes the spill: nothing stale may linger for the next
      // restart to trip over.
      std::size_t leftover = 0;
      for (const auto& e : std::filesystem::directory_iterator(spill_dir)) {
        leftover += e.path().extension() == ".ckpt" ? 1u : 0u;
      }
      CHAOS_EXPECT(leftover == 0,
                   "phase 3 left %zu spill file(s) after success\n", leftover);
      std::printf(
          "phase 3: %d crash-spilled requests resumed after restart "
          "(%llu spills recovered)\n",
          kPhase3Requests,
          static_cast<unsigned long long>(rstats.checkpoint_recovered));
      std::error_code ec;
      std::filesystem::remove_all(spill_dir, ec);
    }
  }

  // ---- Phase 4: watchdog-cancel storm with the flight recorder attached.
  // Deterministic, not probabilistic: (a) a budget-squeezed request walks
  // the degradation ladder; (b) a request whose second tree always stalls
  // far past an aggressive stuck-threshold is watchdog-cancelled on every
  // attempt, spilling its one completed tree at each retry boundary.  The
  // service dumps the flight recorder on each watchdog cancel, so after
  // the storm the dump file must name every retry/degrade/spill step.
  {
    // Mask the storm's probabilistic schedules (re-arming overwrites);
    // the stall below is armed at exact index 1, which outranks the
    // every-index quiet entry only for tree 1.
    FaultScope quiet_trees("solve_one_tree", FaultInjector::kEveryIndex, {});
    FaultScope quiet_fin("solve_finalize", 0, {});
    FaultScope quiet_ml("fallback_multilevel", 0, {});

    std::string wd_spill_dir = [] {
      std::string templ = (std::filesystem::temp_directory_path() /
                           "hgp-chaos-wd-XXXXXX")
                              .string();
      return ::mkdtemp(templ.data()) != nullptr ? templ : std::string();
    }();
    CHAOS_EXPECT(!wd_spill_dir.empty(),
                 "mkdtemp failed for the watchdog spill dir\n");
    if (!wd_spill_dir.empty()) {
      ServiceOptions wopt = sopt;
      wopt.workers = 1;
      wopt.retry.max_retries = 1;
      wopt.retry.backoff_base_ms = 1;
      wopt.retry.backoff_max_ms = 2;
      wopt.stuck_after_ms = 40;
      wopt.watchdog_poll_ms = 5;
      wopt.spill_dir = wd_spill_dir;
      wopt.flight_dump_path = flight_dump;
      // The squeeze targets the solve, not admission.
      wopt.admission_max_utilization = 2.0;
      SolverService wd(wopt);

      // (a) leave the solve less headroom than one arena chunk, so every
      // attempt throws kResourceExhausted and the ladder steps (forced
      // pruning, then halved trees) before burning retries.
      const std::size_t limit = MemoryBudget::global().limit();
      const std::size_t used = MemoryBudget::global().used();
      const std::size_t squeeze =
          limit > used + (4u << 10) ? limit - used - (4u << 10) : 0;
      if (squeeze > 0 && MemoryBudget::global().try_reserve(squeeze)) {
        SolverOptions sqopt = base;
        sqopt.seed = seed + 5000;
        auto squeezed = wd.submit(g, h, sqopt);
        const RetrySolveReport& rep = squeezed->wait();
        MemoryBudget::global().release(squeeze);
        CHAOS_EXPECT(rep.degrades >= 1,
                     "budget squeeze produced no degradation steps\n");
      } else {
        CHAOS_EXPECT(false, "budget squeeze reservation failed\n");
      }

      // (b) the stall: tree 1 sleeps 400 ms at its injection site against
      // a 40 ms stuck-threshold.  Tree 0 completes and is checkpointed,
      // so each watchdog cancel is followed by a non-empty spill.
      FaultInjector::Fault stall;
      stall.action = FaultInjector::Action::kStall;
      stall.probability = 1.0;
      stall.stall_ms = 400;
      FaultScope stall_tree1("solve_one_tree", 1, stall);
      SolverOptions stopt = base;
      stopt.seed = seed + 6000;
      auto stuck = wd.submit(g, h, stopt);
      const RetrySolveReport& srep = stuck->wait();
      CHAOS_EXPECT(srep.status.code == StatusCode::kCancelled,
                   "stalled request ended %s, expected CANCELLED\n",
                   status_code_name(srep.status.code));
      CHAOS_EXPECT(srep.retry_budget_exhausted,
                   "stalled request did not exhaust its retry budget\n");
      const SolverService::Stats wstats = wd.stats();
      CHAOS_EXPECT(wstats.watchdog_cancels >= 2,
                   "watchdog cancelled %llu attempts, expected >= 2\n",
                   static_cast<unsigned long long>(wstats.watchdog_cancels));
      CHAOS_EXPECT(wstats.checkpoint_spills >= 1,
                   "watchdog storm spilled %llu checkpoints, expected >= 1\n",
                   static_cast<unsigned long long>(wstats.checkpoint_spills));

#if HGP_OBS_ENABLED
      // The dump written at the second watchdog cancel must carry the
      // affected request's whole causal chain so far.  (Under HGP_OBS=OFF
      // the journal and the dump hook compile out — the storm's behavioral
      // assertions above still ran; there is just no file to inspect.)
      std::ifstream dump_in(flight_dump);
      std::string dump((std::istreambuf_iterator<char>(dump_in)),
                       std::istreambuf_iterator<char>());
      CHAOS_EXPECT(!dump.empty(), "no flight-recorder dump at %s\n",
                   flight_dump.c_str());
      for (const char* kind :
           {"watchdog_cancel", "retry", "backoff", "checkpoint_spill",
            "checkpoint_record", "degrade", "attempt_start", "attempt_end"}) {
        const std::string needle = "\"kind\": \"" + std::string(kind) + "\"";
        CHAOS_EXPECT(dump.find(needle) != std::string::npos,
                     "flight dump missing %s events\n", kind);
      }
      const std::string stuck_id =
          "\"request\": " + std::to_string(stuck->id());
      CHAOS_EXPECT(dump.find(stuck_id) != std::string::npos,
                   "flight dump never names the stalled request %llu\n",
                   static_cast<unsigned long long>(stuck->id()));
      std::printf(
          "phase 4: watchdog storm dumped the flight recorder (%zu bytes, "
          "%llu cancels)\n",
          dump.size(), static_cast<unsigned long long>(wstats.watchdog_cancels));
#endif  // HGP_OBS_ENABLED
      std::error_code ec;
      std::filesystem::remove_all(wd_spill_dir, ec);
    }
  }

  // ---- Phase 5: churn.  An incremental session under concurrent seeded
  // churn batches while trees crash probabilistically mid-resolve.  The
  // contract: a failed resolve never damages the committed state (the same
  // batch resubmits and eventually lands), a lost commit race surfaces as
  // the documented kInvalidInput (rebase and go again), and after the storm
  // the committed placement is valid for the committed graph.
  {
    // The base instance rounds every demand to one unit at units=3
    // (d <= 1/3), so drift-only churn cannot push the rounded instance
    // over the hierarchy's 4x3-unit capacity: every resolve ends kOk,
    // stale, or fault-injected failure — never infeasible.
    Rng crng(seed ^ 0x636875726eull);
    Graph churn_g = gen::planted_partition(10, 4, 0.75, 0.1, crng,
                                           gen::WeightRange{2.0, 6.0},
                                           gen::WeightRange{1.0, 2.0});
    gen::set_uniform_demands(churn_g, 0.25);
    auto churn_base = std::make_shared<const Graph>(std::move(churn_g));

    FaultScope churn_faults("solve_one_tree", FaultInjector::kEveryIndex,
                            prob_throw(0.25, seed * 7 + 1));
    ServiceOptions copt = sopt;
    copt.workers = 2;
    SolverService churn_service(copt);
    IncrementalOptions iopt;
    iopt.num_trees = 2;
    iopt.units_override = 3;
    iopt.seed = seed;
    std::shared_ptr<IncrementalSession> session;
    try {
      // The base solve runs under the fault schedule too; a few attempts
      // ride out an unlucky first draw.
      for (int attempt = 0;; ++attempt) {
        try {
          session = churn_service.open_incremental(churn_base, h, iopt);
          break;
        } catch (const SolveError&) {
          if (attempt >= 16) throw;
        }
      }
    } catch (const SolveError& e) {
      CHAOS_EXPECT(false, "phase 5 base solve never survived: %s\n", e.what());
    }
    if (session != nullptr) {
      constexpr int kChurners = 3;
      constexpr int kBatchesPerThread = 3;
      std::atomic<int> committed{0}, stale_rebases{0}, faulted_retries{0},
          stuck_batches{0};
      std::vector<std::thread> churners;
      churners.reserve(kChurners);
      for (int t = 0; t < kChurners; ++t) {
        churners.emplace_back([&, t] {
          Rng rng(seed * 131 + static_cast<std::uint64_t>(t));
          for (int b = 0; b < kBatchesPerThread; ++b) {
            bool landed = false;
            for (int attempt = 0; attempt < 64 && !landed; ++attempt) {
              const auto log = session->begin_batch();
              gen::ChurnOptions churn;
              churn.ops = 2;
              churn.w_add_vertex = 0;
              churn.w_remove_vertex = 0;
              churn.w_add_edge = 0;
              churn.w_remove_edge = 0;
              churn.demand_lo = 0.05;
              churn.demand_hi = 0.30;
              gen::churn(*log, churn, rng);
              if (log->empty()) {
                landed = true;
                break;
              }
              const RetrySolveReport& rep =
                  churn_service.submit_resolve(session, log)->wait();
              if (rep.ok()) {
                committed.fetch_add(1, std::memory_order_relaxed);
                landed = true;
              } else if (rep.status.code == StatusCode::kInvalidInput) {
                // Lost the commit race: rebase on the new snapshot.
                stale_rebases.fetch_add(1, std::memory_order_relaxed);
              } else {
                // Fault-injected failure: the committed state is untouched,
                // so the SAME log is still current — resubmit it verbatim.
                CHAOS_EXPECT(documented_terminal(rep.status.code),
                             "phase 5 resolve ended in undocumented %s\n",
                             status_code_name(rep.status.code));
                faulted_retries.fetch_add(1, std::memory_order_relaxed);
                for (int again = 0; again < 64 && !landed; ++again) {
                  const RetrySolveReport& r2 =
                      churn_service.submit_resolve(session, log)->wait();
                  if (r2.ok()) {
                    committed.fetch_add(1, std::memory_order_relaxed);
                    landed = true;
                  } else if (r2.status.code == StatusCode::kInvalidInput) {
                    break;  // someone else committed meanwhile: rebase
                  }
                }
              }
            }
            if (!landed) stuck_batches.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      for (auto& t : churners) t.join();
      churn_service.drain();

      CHAOS_EXPECT(stuck_batches.load() == 0,
                   "phase 5: %d churn batch(es) never committed\n",
                   stuck_batches.load());
      CHAOS_EXPECT(committed.load() == kChurners * kBatchesPerThread,
                   "phase 5 committed %d batches, expected %d\n",
                   committed.load(), kChurners * kBatchesPerThread);
      CHAOS_EXPECT(churn_service.stats().resolves >=
                       static_cast<std::uint64_t>(committed.load()),
                   "phase 5 service counted %llu resolves for %d commits\n",
                   static_cast<unsigned long long>(
                       churn_service.stats().resolves),
                   committed.load());
      // The committed chain survived the storm intact.
      const HgpResult& last = session->last();
      try {
        validate_placement(*session->graph(), h, last.placement);
      } catch (const std::exception& e) {
        CHAOS_EXPECT(false, "phase 5 final placement invalid: %s\n", e.what());
      }
      CHAOS_EXPECT(std::isfinite(last.cost),
                   "phase 5 final cost not finite\n");
      std::printf(
          "phase 5: %d churn batches committed (%d stale rebases, %d "
          "fault-retried resolves)\n",
          committed.load(), stale_rebases.load(), faulted_retries.load());
    }
  }

  // ---- Phase 6: the distributed storm (enabled by --shardd).  Coordinated
  // solves over REAL worker processes while the fleet is killed mid-solve
  // (seeded SIGKILL at a tree boundary), heartbeats stall past the lease,
  // frames are torn on the wire, and a zombie peer delivers a hostile
  // stale-epoch result.  Invariants: every request reaches a terminal
  // state, every placement validates, every coordinated result is
  // BIT-identical to the single-process baseline, and across the storm at
  // least one lease expired, one batch was reassigned, and one zombie was
  // fenced — with zero lost or double-counted trees.
  if (!shardd_path.empty()) {
    // Mask the in-process storm schedules: phase 6's baseline and its
    // final aggregation must fail only where the *distributed* schedule
    // says, or the differential would diverge for the wrong reason.
    FaultScope quiet_trees("solve_one_tree", FaultInjector::kEveryIndex, {});
    FaultScope quiet_fin("solve_finalize", 0, {});
    FaultScope quiet_ml("fallback_multilevel", 0, {});

    int total_lease_expiries = 0;
    int total_reassigned = 0;
    int total_zombies = 0;
    int total_lost = 0;

    SolverOptions p6;
    p6.num_trees = 6;
    p6.epsilon = 0.5;

    // One coordinated request under `copt` (plus optionally an adopted
    // scripted peer), checked bit-for-bit against the single-process
    // baseline of the same instance.
    auto run_distributed = [&](const char* label, std::uint64_t inst_seed,
                               CoordinatorOptions copt,
                               std::function<net::Socket(const Graph&)> adopt)
        -> const CoordinatorReport* {
      static CoordinatorReport last;
      Rng prng(inst_seed);
      Graph pg = gen::planted_partition(24, 4, 0.75, 0.05, prng,
                                        gen::WeightRange{2.0, 6.0},
                                        gen::WeightRange{1.0, 2.0});
      gen::set_uniform_demands(pg, 4.0 / 24.0);
      SolverOptions opt = p6;
      opt.seed = inst_seed;
      const HgpResult want = solve_hgp(pg, h, opt);
      try {
        ShardCoordinator coord(pg, h, opt, copt);
        if (adopt) coord.adopt_shard(adopt(pg));
        const HgpResult got = coord.solve();
        CHAOS_EXPECT(std::memcmp(&got.cost, &want.cost, sizeof got.cost) == 0,
                     "phase 6 [%s]: cost diverged (%.17g vs %.17g)\n", label,
                     got.cost, want.cost);
        CHAOS_EXPECT(got.placement.leaf_of == want.placement.leaf_of,
                     "phase 6 [%s]: placement diverged\n", label);
        CHAOS_EXPECT(got.best_tree == want.best_tree,
                     "phase 6 [%s]: best_tree diverged\n", label);
        try {
          validate_placement(pg, h, got.placement);
        } catch (const std::exception& e) {
          CHAOS_EXPECT(false, "phase 6 [%s]: placement invalid: %s\n", label,
                       e.what());
        }
        const CoordinatorReport& rep = coord.report();
        // Exactly-once accounting: a batch completes remotely at most once
        // (trees the fleet lost are re-solved in-process, which does not
        // count here), so remote completions can never exceed the batch
        // count — a double-counted batch would push it over.  A hostile or
        // duplicate result that slipped the fence would also have broken
        // the bit-identity checked above.
        CHAOS_EXPECT(rep.batches_completed <= p6.num_trees,
                     "phase 6 [%s]: %d remote completions for %d batches\n",
                     label, rep.batches_completed, p6.num_trees);
        CHAOS_EXPECT(rep.trees_from_shards <= p6.num_trees,
                     "phase 6 [%s]: %d remote trees for %d sampled\n", label,
                     rep.trees_from_shards, p6.num_trees);
        total_lease_expiries += rep.lease_expiries;
        total_reassigned += rep.batches_reassigned;
        total_zombies += rep.zombies_fenced;
        total_lost += rep.shards_lost;
        if (verbose) {
          std::printf(
              "phase 6 [%s]: %d up %d lost %d expiries %d reassigned "
              "%d zombies %d/%d remote\n",
              label, rep.shards_up, rep.shards_lost, rep.lease_expiries,
              rep.batches_reassigned, rep.zombies_fenced,
              rep.trees_from_shards, p6.num_trees);
        }
        last = rep;
        return &last;
      } catch (const SolveError& e) {
        CHAOS_EXPECT(false, "phase 6 [%s]: non-terminal failure %s: %s\n",
                     label, status_code_name(e.code()), e.what());
        return nullptr;
      }
    };

    auto spawn_opts = [&](int shards) {
      CoordinatorOptions copt;
      copt.num_shards = shards;
      copt.shardd_path = shardd_path;
      copt.batch_size = 1;
      return copt;
    };

    // (a) Clean fleet: everything remote, nothing lost.
    if (const CoordinatorReport* rep =
            run_distributed("clean", seed + 600, spawn_opts(3), nullptr)) {
      CHAOS_EXPECT(rep->shards_lost == 0 && rep->trees_from_shards == 6,
                   "phase 6 [clean]: %d lost, %d/6 remote\n", rep->shards_lost,
                   rep->trees_from_shards);
    }

    // (b) SIGKILL mid-solve: every worker is armed to die the moment it
    // starts tree 3, so whoever the batch lands on is killed; the respawn
    // budget burns down and the survivors (or the in-process fallback)
    // finish.  Seeded and deterministic per worker.
    {
      CoordinatorOptions copt = spawn_opts(2);
      copt.shard_args = {"--fault", "shardd.kill,3,kill"};
      copt.respawn_limit = 1;
      if (const CoordinatorReport* rep =
              run_distributed("sigkill", seed + 601, copt, nullptr)) {
        CHAOS_EXPECT(rep->shards_lost >= 1,
                     "phase 6 [sigkill]: no shard was ever lost\n");
        CHAOS_EXPECT(rep->batches_reassigned >= 1,
                     "phase 6 [sigkill]: kill forced no reassignment\n");
      }
    }

    // (c) Stalled heartbeats: the worker's beater and its first tree solve
    // both stall far past the lease, so the coordinator must detect the
    // hang by lease expiry (the socket stays open — nothing else tells).
    {
      CoordinatorOptions copt = spawn_opts(2);
      copt.lease_ms = 200;
      copt.shard_args = {"--fault", "shardd.heartbeat,0,stall,1500",
                         "--fault", "shardd.tree,0,stall,1500"};
      if (const CoordinatorReport* rep =
              run_distributed("stall", seed + 602, copt, nullptr)) {
        CHAOS_EXPECT(rep->lease_expiries >= 1,
                     "phase 6 [stall]: hung shard never lost its lease\n");
      }
    }

    // (d) Torn frames: every worker flips one byte in ~15% of its frames;
    // the per-frame CRC must convert each into a detected kDataLoss (dead
    // shard) rather than accepted garbage.  Which frames tear is seeded.
    {
      CoordinatorOptions copt = spawn_opts(2);
      copt.respawn_limit = 2;
      copt.shard_args = {"--fault",
                         "net.frame,0,torn-frame,0,0.15," +
                             std::to_string(seed * 11 + 3)};
      (void)run_distributed("torn", seed + 603, copt, nullptr);
    }

    // (e) Zombie: an adopted scripted peer answers its first assignment
    // with a hostile zero-cost result under a WRONG epoch — the fence must
    // discard it — then crashes so its lease's batch is reassigned to the
    // one honest spawned worker.
    {
      CoordinatorOptions copt = spawn_opts(1);
      auto zombie = [](const Graph& zg) {
        auto [mine, theirs] = net::socket_pair();
        const std::uint64_t fp = graph_fingerprint(zg);
        const std::size_t n = static_cast<std::size_t>(zg.vertex_count());
        std::thread([sock = std::move(theirs), fp, n]() mutable {
          try {
            net::FrameChannel ch(std::move(sock));
            const Deadline d = Deadline::after_ms(20000);
            net::handshake_server(ch, d);
            auto job = ch.recv(d);
            if (!job.has_value()) return;
            net::JobAckMsg ack;
            ack.graph_fingerprint = fp;
            ack.num_trees = net::decode_job(job->payload).num_trees;
            ch.send(net::kMsgJobAck, net::encode_job_ack(ack), d);
            auto assign = ch.recv(d);
            if (!assign.has_value() || assign->type != net::kMsgAssign) return;
            const net::AssignMsg a = net::decode_assign(assign->payload);
            net::BatchResultMsg stale;
            stale.epoch = a.epoch + 7;  // a previous life's lease
            stale.batch_id = a.batch_id;
            for (std::int32_t ti : a.tree_indices) {
              net::TreeResultWire tr;
              tr.tree_index = ti;
              tr.status = static_cast<std::uint8_t>(StatusCode::kOk);
              tr.cost = 0.0;  // would win any arg-min if not fenced
              tr.leaf_of.assign(n, 0);
              stale.trees.push_back(std::move(tr));
            }
            ch.send(net::kMsgBatchResult, net::encode_batch_result(stale), d);
            ch.close();  // crash: the fenced batch must be reassigned
          } catch (...) {
          }
        }).detach();  // hgp-lint: allow(naked-thread)
        return std::move(mine);
      };
      if (const CoordinatorReport* rep =
              run_distributed("zombie", seed + 604, copt, zombie)) {
        CHAOS_EXPECT(rep->zombies_fenced >= 1,
                     "phase 6 [zombie]: stale-epoch result was not fenced\n");
        CHAOS_EXPECT(rep->batches_reassigned >= 1,
                     "phase 6 [zombie]: fenced batch was not reassigned\n");
      }
    }

    CHAOS_EXPECT(total_lease_expiries >= 1,
                 "phase 6: storm produced no lease expiry\n");
    CHAOS_EXPECT(total_reassigned >= 1,
                 "phase 6: storm produced no reassignment\n");
    CHAOS_EXPECT(total_zombies >= 1,
                 "phase 6: storm produced no zombie fence\n");
    CHAOS_EXPECT(total_lost >= 1, "phase 6: storm lost no shard at all\n");
    std::printf(
        "phase 6: distributed storm done (%d shards lost, %d lease "
        "expiries, %d reassignments, %d zombies fenced; all results "
        "bit-identical)\n",
        total_lost, total_lease_expiries, total_reassigned, total_zombies);
  }

  // Give a scraper racing the storm a grace window before the endpoint
  // (owned by the storm service, still alive here) disappears.
  if (hold_open_ms > 0) {
    std::printf("holding introspection endpoint open for %ld ms\n",
                hold_open_ms);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_open_ms));
  }

  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    obs::MetricsRegistry::global().write_json(os);
    if (!os) {
      std::fprintf(stderr, "hgp_chaos: cannot write metrics file '%s'\n",
                   metrics_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "hgp_chaos: %d invariant violation(s)\n", g_failures);
    return 1;
  }
  std::printf("hgp_chaos: all invariants held\n");
  return 0;
}
