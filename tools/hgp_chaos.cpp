// hgp_chaos — chaos harness for the solver service layer.
//
//   hgp_chaos [--requests N] [--seed S] [--metrics FILE] [--verbose]
//
// Fires N concurrent requests at a SolverService while seeded probabilistic
// fault schedules (util/fault_injector.hpp) crash trees, kill solves at the
// finalize boundary and break fallback stages; a canceller thread aborts a
// random subset of requests in flight; a small admission queue and a global
// memory budget put the service under the pressure it exists to absorb.
//
// The harness then asserts the service's contract:
//   * every request ends in a documented terminal status (never hangs,
//     never leaks an unclassified exception, never OOM-aborts),
//   * every placed result is a valid placement with finite cost,
//   * no request exceeds its retry budget,
//   * the run exercised ≥ 1 admission rejection, ≥ 1 successful retry and
//     ≥ 1 checkpoint-resume (the three behaviours the service adds).
//
// Exit 0 when every invariant held, 1 otherwise.  Deterministic in --seed
// up to OS scheduling (fault draws are seeded streams consumed in arrival
// order).  CI runs this under ASan — see scripts/chaos_smoke.sh.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <mutex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/placement.hpp"
#include "obs/metrics.hpp"
#include "runtime/service.hpp"
#include "util/fault_injector.hpp"
#include "util/memory_budget.hpp"
#include "util/prng.hpp"

namespace {

using namespace hgp;

int g_failures = 0;

#define CHAOS_EXPECT(cond, ...)              \
  do {                                       \
    if (!(cond)) {                           \
      ++g_failures;                          \
      std::fprintf(stderr, "FAIL: ");        \
      std::fprintf(stderr, __VA_ARGS__);     \
      std::fprintf(stderr, "  [%s]\n", #cond); \
    }                                        \
  } while (0)

FaultInjector::Fault prob_throw(double p, std::uint64_t seed) {
  FaultInjector::Fault f;
  f.action = FaultInjector::Action::kThrow;
  f.probability = p;
  f.seed = seed;
  return f;
}

bool documented_terminal(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kInfeasible:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
      return true;
    case StatusCode::kInvalidInput:
      // The harness submits only valid inputs; seeing this is a bug.
      return false;
    case StatusCode::kDataLoss:
      // Spill/recovery integrity failures degrade to in-memory operation;
      // a request must never surface kDataLoss as its terminal status.
      return false;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 200;
  std::uint64_t seed = 1;
  std::string metrics_path;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hgp_chaos: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--requests")) {
      requests = std::atoi(need("--requests").c_str());
      if (requests < 1) {
        std::fprintf(stderr, "hgp_chaos: --requests must be >= 1\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(need("--seed").c_str(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics_path = need("--metrics");
    } else if (!std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      std::printf(
          "usage: hgp_chaos [--requests N] [--seed S] [--metrics FILE]\n"
          "                 [--verbose]\n");
      return 0;
    } else {
      std::fprintf(stderr, "hgp_chaos: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  Rng master(seed);
  Graph g = gen::planted_partition(32, 4, 0.7, 0.08, master,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / 32);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});

  // A budget large enough that healthy solves pass but small enough that
  // the accounting paths run for real (arena chunks charge against it).
  MemoryBudget::global().set_limit(256u << 20);

  ServiceOptions sopt;
  sopt.workers = 4;
  sopt.max_queue = 16;
  sopt.retry.max_retries = 2;
  sopt.retry.backoff_base_ms = 1;
  sopt.retry.backoff_max_ms = 8;
  sopt.retry.jitter_seed = seed;
  sopt.stuck_after_ms = 2000;  // generous: a smoke check, not a trigger
  sopt.watchdog_poll_ms = 50;

  // ---- Phase 1: deterministic admission rejection under budget pressure.
  // Saturate the budget above the admission threshold, submit, restore.
  {
    SolverService service(sopt);
    const std::size_t hog = static_cast<std::size_t>(
        static_cast<double>(MemoryBudget::global().limit()) * 0.99);
    if (!MemoryBudget::global().try_reserve(hog)) {
      CHAOS_EXPECT(false, "budget hog reservation unexpectedly failed\n");
    } else {
      auto req = service.submit(g, h);
      const RetrySolveReport& rep = req->wait();
      CHAOS_EXPECT(rep.status.code == StatusCode::kResourceExhausted,
                   "budget-pressure submit returned %s\n",
                   status_code_name(rep.status.code));
      CHAOS_EXPECT(!rep.has_result,
                   "admission-rejected request carried a result\n");
      MemoryBudget::global().release(hog);
    }
    CHAOS_EXPECT(service.stats().rejected_budget >= 1,
                 "no budget admission rejection recorded\n");
  }

  // ---- Phase 2: the storm.  Probabilistic fault schedules at the solver's
  // injection sites (seeded: same --seed, same schedule), random caller
  // cancellations, a small queue, all workers busy.
  FaultScope tree_faults("solve_one_tree", FaultInjector::kEveryIndex,
                         prob_throw(0.30, seed * 2 + 1));
  FaultScope finalize_faults("solve_finalize", 0,
                             prob_throw(0.12, seed * 3 + 1));
  FaultScope multilevel_faults("fallback_multilevel", 0,
                               prob_throw(0.20, seed * 5 + 1));

  SolverService service(sopt);
  std::vector<std::shared_ptr<ServiceRequest>> handles;
  handles.reserve(static_cast<std::size_t>(requests));

  SolverOptions base;
  base.num_trees = 2;
  base.epsilon = 0.5;

  // The canceller runs concurrently with submission so cancels land on
  // queued and in-flight requests, not on corpses: the submitter hands it
  // victims through a small mailbox.
  std::mutex cancel_mu;
  std::vector<std::shared_ptr<ServiceRequest>> cancel_mailbox;
  std::atomic<bool> submitting{true};
  std::thread canceller([&] {
    Rng delay(seed ^ 0xDEADBEEF);
    for (;;) {
      std::shared_ptr<ServiceRequest> victim;
      {
        const std::lock_guard<std::mutex> lock(cancel_mu);
        if (!cancel_mailbox.empty()) {
          victim = std::move(cancel_mailbox.back());
          cancel_mailbox.pop_back();
        }
      }
      if (victim == nullptr) {
        if (!submitting.load(std::memory_order_acquire)) return;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<std::int64_t>(delay.next_double(50, 1500))));
      victim->cancel();
    }
  });

  Rng pace = master.fork(0xCA);
  for (int i = 0; i < requests; ++i) {
    // Most arrivals respect backpressure (bounded wait for queue space) so
    // the bulk of the load is admitted; the rest barge in mid-burst and
    // overflow into admission rejections when the queue is at its bound.
    if (pace.next_bool(0.8)) {
      for (int spin = 0;
           spin < 400 && service.queue_depth() >= sopt.max_queue; ++spin) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
    SolverOptions opt = base;
    opt.seed = seed + static_cast<std::uint64_t>(i);
    auto req = service.submit(g, h, opt);
    handles.push_back(req);
    if (pace.next_bool(0.06)) {
      const std::lock_guard<std::mutex> lock(cancel_mu);
      cancel_mailbox.push_back(req);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(pace.next_double(0, 300))));
  }
  submitting.store(false, std::memory_order_release);

  service.drain();
  canceller.join();

  // ---- Verification.
  int ok_count = 0, cancelled = 0, rejected = 0, degraded_results = 0,
      failed_terminal = 0, retry_successes = 0, checkpoint_resumes = 0;
  for (const auto& req : handles) {
    CHAOS_EXPECT(req->done(), "request %llu not terminal after drain\n",
                 static_cast<unsigned long long>(req->id()));
    const RetrySolveReport& rep = req->wait();
    CHAOS_EXPECT(documented_terminal(rep.status.code),
                 "request %llu ended in undocumented status %s\n",
                 static_cast<unsigned long long>(req->id()),
                 status_code_name(rep.status.code));
    CHAOS_EXPECT(rep.retries_used <= sopt.retry.max_retries,
                 "request %llu used %d retries (budget %d)\n",
                 static_cast<unsigned long long>(req->id()), rep.retries_used,
                 sopt.retry.max_retries);
    if (rep.has_result) {
      try {
        validate_placement(g, h, rep.result.placement);
      } catch (const std::exception& e) {
        CHAOS_EXPECT(false, "request %llu produced invalid placement: %s\n",
                     static_cast<unsigned long long>(req->id()), e.what());
      }
      CHAOS_EXPECT(std::isfinite(rep.result.cost),
                   "request %llu result cost not finite\n",
                   static_cast<unsigned long long>(req->id()));
      if (rep.result.telemetry.checkpoint_trees > 0) ++checkpoint_resumes;
    }
    switch (rep.status.code) {
      case StatusCode::kOk:
        ++ok_count;
        if (rep.retries_used > 0) ++retry_successes;
        break;
      case StatusCode::kCancelled:
        ++cancelled;
        break;
      case StatusCode::kResourceExhausted:
        if (rep.has_result) {
          ++degraded_results;
        } else {
          ++rejected;
        }
        break;
      default:
        if (rep.has_result) {
          ++degraded_results;
        } else {
          ++failed_terminal;
        }
        break;
    }
  }

  const SolverService::Stats stats = service.stats();
  std::printf(
      "hgp_chaos: %d requests — %d ok (%d after retries), %d cancelled, "
      "%d rejected, %d degraded, %d failed\n",
      requests, ok_count, retry_successes, cancelled, rejected,
      degraded_results, failed_terminal);
  std::printf(
      "service: admitted %llu, rejected %llu (queue %llu, budget %llu, "
      "draining %llu), retries %llu, degrades %llu, watchdog cancels %llu, "
      "checkpoint trees %llu\n",
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.rejected()),
      static_cast<unsigned long long>(stats.rejected_queue_full),
      static_cast<unsigned long long>(stats.rejected_budget),
      static_cast<unsigned long long>(stats.rejected_draining),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.degrades),
      static_cast<unsigned long long>(stats.watchdog_cancels),
      static_cast<unsigned long long>(stats.checkpoint_trees));
  if (verbose) {
    for (const auto& req : handles) {
      const RetrySolveReport& rep = req->wait();
      std::printf("  req %3llu: %-18s retries=%d degrades=%d ckpt=%d%s\n",
                  static_cast<unsigned long long>(req->id()),
                  status_code_name(rep.status.code), rep.retries_used,
                  rep.degrades,
                  rep.has_result ? rep.result.telemetry.checkpoint_trees : 0,
                  rep.has_result ? "" : " (no result)");
    }
  }

  // The acceptance counters: phase 1 guarantees the admission rejection;
  // the storm's fault schedule makes retry successes and checkpoint
  // resumes overwhelmingly likely at the default scale (p ≈ 1 - 1e-6 at
  // 200 requests; smaller --requests runs may need a different seed).
  CHAOS_EXPECT(retry_successes >= 1, "no request succeeded after a retry\n");
  CHAOS_EXPECT(checkpoint_resumes >= 1,
               "no request resumed trees from a checkpoint\n");
  CHAOS_EXPECT(stats.checkpoint_trees >= 1,
               "service counted no checkpoint-served trees\n");

  // ---- Phase 3: durability across a service restart.  Part A: a service
  // with a spill directory and no retry budget, where every attempt dies
  // at the finalize boundary — *after* all trees completed — so each
  // terminal failure spills a full checkpoint.  Part B: a fresh service
  // (the "restarted process") over the same directory must recover the
  // spills and serve every tree of the re-submitted requests from them.
  // Destroying the first service models the kill: nothing survives it but
  // the spill files on disk, which is exactly what a dead process leaves.
  {
    // Mask the storm's probabilistic schedules (re-arming a (site, index)
    // overwrites): phase 3 needs solves that fail only where it says.
    FaultScope quiet_trees("solve_one_tree", FaultInjector::kEveryIndex, {});
    FaultScope quiet_ml("fallback_multilevel", 0, {});

    std::string spill_dir = [] {
      std::string templ = (std::filesystem::temp_directory_path() /
                           "hgp-chaos-spill-XXXXXX")
                              .string();
      return ::mkdtemp(templ.data()) != nullptr ? templ : std::string();
    }();
    CHAOS_EXPECT(!spill_dir.empty(), "mkdtemp failed for the spill dir\n");
    if (!spill_dir.empty()) {
      ServiceOptions dopt = sopt;
      dopt.workers = 2;
      dopt.retry.max_retries = 0;  // first failure is terminal → one spill
      dopt.spill_dir = spill_dir;
      constexpr int kPhase3Requests = 4;
      auto phase3_opt = [&](int i) {
        SolverOptions opt = base;
        opt.seed = seed + 1000 + static_cast<std::uint64_t>(i);
        opt.fallback = FallbackPolicy::kNone;  // let the failure propagate
        return opt;
      };
      {
        FaultScope kill_finalize("solve_finalize", 0, prob_throw(1.0, 1));
        SolverService crashing(dopt);
        std::vector<std::shared_ptr<ServiceRequest>> doomed;
        for (int i = 0; i < kPhase3Requests; ++i) {
          doomed.push_back(crashing.submit(g, h, phase3_opt(i)));
        }
        for (const auto& req : doomed) {
          const RetrySolveReport& rep = req->wait();
          CHAOS_EXPECT(!rep.ok(),
                       "phase 3 request %llu survived the finalize kill\n",
                       static_cast<unsigned long long>(req->id()));
        }
        CHAOS_EXPECT(
            crashing.stats().checkpoint_spills >=
                static_cast<std::uint64_t>(kPhase3Requests),
            "phase 3 spilled %llu checkpoints, expected >= %d\n",
            static_cast<unsigned long long>(
                crashing.stats().checkpoint_spills),
            kPhase3Requests);
      }  // service destroyed: the process "died", only the spills survive

      SolverService restarted(dopt);
      std::vector<std::shared_ptr<ServiceRequest>> resumed;
      for (int i = 0; i < kPhase3Requests; ++i) {
        resumed.push_back(restarted.submit(g, h, phase3_opt(i)));
      }
      for (const auto& req : resumed) {
        const RetrySolveReport& rep = req->wait();
        CHAOS_EXPECT(rep.ok(), "phase 3 restart request %llu ended %s\n",
                     static_cast<unsigned long long>(req->id()),
                     status_code_name(rep.status.code));
        // Every tree must come from the recovered checkpoint: a restarted
        // process re-solving completed trees is exactly the waste this
        // subsystem exists to avoid.
        CHAOS_EXPECT(
            rep.has_result &&
                rep.result.telemetry.checkpoint_trees == base.num_trees,
            "phase 3 restart request %llu resumed %d/%d trees\n",
            static_cast<unsigned long long>(req->id()),
            rep.has_result ? rep.result.telemetry.checkpoint_trees : 0,
            base.num_trees);
      }
      const SolverService::Stats rstats = restarted.stats();
      CHAOS_EXPECT(rstats.checkpoint_recovered >=
                       static_cast<std::uint64_t>(kPhase3Requests),
                   "phase 3 recovered %llu spills, expected >= %d\n",
                   static_cast<unsigned long long>(rstats.checkpoint_recovered),
                   kPhase3Requests);
      // Success consumes the spill: nothing stale may linger for the next
      // restart to trip over.
      std::size_t leftover = 0;
      for (const auto& e : std::filesystem::directory_iterator(spill_dir)) {
        leftover += e.path().extension() == ".ckpt" ? 1u : 0u;
      }
      CHAOS_EXPECT(leftover == 0,
                   "phase 3 left %zu spill file(s) after success\n", leftover);
      std::printf(
          "phase 3: %d crash-spilled requests resumed after restart "
          "(%llu spills recovered)\n",
          kPhase3Requests,
          static_cast<unsigned long long>(rstats.checkpoint_recovered));
      std::error_code ec;
      std::filesystem::remove_all(spill_dir, ec);
    }
  }

  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    obs::MetricsRegistry::global().write_json(os);
    if (!os) {
      std::fprintf(stderr, "hgp_chaos: cannot write metrics file '%s'\n",
                   metrics_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "hgp_chaos: %d invariant violation(s)\n", g_failures);
    return 1;
  }
  std::printf("hgp_chaos: all invariants held\n");
  return 0;
}
