#include "net/frame.hpp"

#include <cstring>
#include <limits>

#include "io/snapshot.hpp"  // io::crc32 — shared CRC machinery

namespace hgp::net {

namespace {

[[noreturn]] void frame_fail(const std::string& why) {
  throw SolveError(StatusCode::kDataLoss, "wire frame: " + why);
}

}  // namespace

std::vector<std::byte> encode_frame(std::uint16_t type,
                                    std::span<const std::byte> payload) {
  if (payload.size() > kMaxFramePayload) {
    throw SolveError(StatusCode::kInvalidInput,
                     "frame payload exceeds kMaxFramePayload (" +
                         std::to_string(payload.size()) + " bytes)");
  }
  FrameHeader header;
  header.type = type;
  header.payload_size = static_cast<std::uint32_t>(payload.size());
  header.payload_crc32 = io::crc32(payload.data(), payload.size());
  header.header_crc32 = io::crc32(&header, kFrameHeaderSize - sizeof(std::uint32_t));

  std::vector<std::byte> out(kFrameHeaderSize + payload.size());
  std::memcpy(out.data(), &header, kFrameHeaderSize);
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderSize, payload.data(), payload.size());
  }
  return out;
}

FrameHeader decode_frame_header(std::span<const std::byte> bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    frame_fail("truncated header (" + std::to_string(bytes.size()) + " of " +
               std::to_string(kFrameHeaderSize) + " bytes)");
  }
  FrameHeader header;
  std::memcpy(&header, bytes.data(), kFrameHeaderSize);
  // The header CRC is checked FIRST: with a corrupt header no other field
  // (including payload_size) may be trusted.
  const std::uint32_t expect =
      io::crc32(bytes.data(), kFrameHeaderSize - sizeof(std::uint32_t));
  if (header.header_crc32 != expect) {
    frame_fail("header CRC mismatch");
  }
  if (header.magic != kFrameMagic) {
    frame_fail("bad magic");
  }
  if (header.version != kProtocolVersion) {
    frame_fail("protocol version mismatch (frame v" +
               std::to_string(header.version) + ", this build speaks v" +
               std::to_string(kProtocolVersion) + ")");
  }
  if (header.payload_size > kMaxFramePayload) {
    frame_fail("payload size " + std::to_string(header.payload_size) +
               " exceeds the frame cap");
  }
  return header;
}

void check_frame_payload(const FrameHeader& header,
                         std::span<const std::byte> payload) {
  if (payload.size() != header.payload_size) {
    frame_fail("payload size mismatch");
  }
  if (io::crc32(payload.data(), payload.size()) != header.payload_crc32) {
    frame_fail("payload CRC mismatch");
  }
}

Frame decode_frame(std::span<const std::byte> bytes) {
  const FrameHeader header = decode_frame_header(bytes);
  if (bytes.size() != kFrameHeaderSize + header.payload_size) {
    frame_fail("frame length mismatch (have " + std::to_string(bytes.size()) +
               " bytes, header claims " +
               std::to_string(kFrameHeaderSize + header.payload_size) + ")");
  }
  const auto payload = bytes.subspan(kFrameHeaderSize, header.payload_size);
  check_frame_payload(header, payload);
  Frame frame;
  frame.type = header.type;
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

// ---------------------------------------------------------------------------

void WireWriter::append(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::byte*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + size);
}

void WireWriter::blob(std::span<const std::byte> bytes) {
  u32(static_cast<std::uint32_t>(bytes.size()));
  if (!bytes.empty()) append(bytes.data(), bytes.size());
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  if (!s.empty()) append(s.data(), s.size());
}

void WireWriter::i64_span(std::span<const std::int64_t> values) {
  u32(static_cast<std::uint32_t>(values.size()));
  if (!values.empty()) append(values.data(), values.size_bytes());
}

void WireWriter::i32_span(std::span<const std::int32_t> values) {
  u32(static_cast<std::uint32_t>(values.size()));
  if (!values.empty()) append(values.data(), values.size_bytes());
}

void WireReader::fail(const std::string& why) const {
  throw SolveError(StatusCode::kDataLoss, std::string(what_) + ": " + why);
}

void WireReader::read(void* out, std::size_t size) {
  if (size > remaining()) {
    fail("payload over-read (" + std::to_string(size) + " bytes wanted, " +
         std::to_string(remaining()) + " left)");
  }
  std::memcpy(out, payload_.data() + cursor_, size);
  cursor_ += size;
}

std::size_t WireReader::read_count(std::size_t elem_size) {
  std::uint32_t count = 0;
  read(&count, sizeof count);
  // Validated against the remaining payload BEFORE any allocation: a
  // hostile count cannot drive an allocation bomb or an over-read.
  if (elem_size != 0 && count > remaining() / elem_size) {
    fail("length prefix " + std::to_string(count) +
         " exceeds the remaining payload");
  }
  return count;
}

std::uint8_t WireReader::u8() {
  std::uint8_t v = 0;
  read(&v, sizeof v);
  return v;
}
std::uint16_t WireReader::u16() {
  std::uint16_t v = 0;
  read(&v, sizeof v);
  return v;
}
std::uint32_t WireReader::u32() {
  std::uint32_t v = 0;
  read(&v, sizeof v);
  return v;
}
std::uint64_t WireReader::u64() {
  std::uint64_t v = 0;
  read(&v, sizeof v);
  return v;
}
std::int32_t WireReader::i32() {
  std::int32_t v = 0;
  read(&v, sizeof v);
  return v;
}
std::int64_t WireReader::i64() {
  std::int64_t v = 0;
  read(&v, sizeof v);
  return v;
}
double WireReader::f64() {
  double v = 0;
  read(&v, sizeof v);
  return v;
}

std::vector<std::byte> WireReader::blob() {
  const std::size_t count = read_count(1);
  std::vector<std::byte> out(count);
  if (count > 0) read(out.data(), count);
  return out;
}

std::string WireReader::str() {
  const std::size_t count = read_count(1);
  std::string out(count, '\0');
  if (count > 0) read(out.data(), count);
  return out;
}

std::vector<std::int64_t> WireReader::i64_span() {
  const std::size_t count = read_count(sizeof(std::int64_t));
  std::vector<std::int64_t> out(count);
  if (count > 0) read(out.data(), count * sizeof(std::int64_t));
  return out;
}

std::vector<std::int32_t> WireReader::i32_span() {
  const std::size_t count = read_count(sizeof(std::int32_t));
  std::vector<std::int32_t> out(count);
  if (count > 0) read(out.data(), count * sizeof(std::int32_t));
  return out;
}

void WireReader::expect_exhausted() const {
  if (remaining() != 0) {
    fail(std::to_string(remaining()) + " trailing payload bytes");
  }
}

}  // namespace hgp::net
