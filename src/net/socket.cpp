#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/fault_injector.hpp"

namespace hgp::net {

namespace {

[[noreturn]] void throw_unavailable(const std::string& what, int err) {
  throw SolveError(StatusCode::kUnavailable,
                   what + ": " + std::strerror(err));
}

/// Bounded poll interval: short enough that deadline expiry and local
/// close are noticed promptly, long enough to stay off the scheduler.
int poll_interval_ms(const Deadline& deadline) {
  const double remaining = deadline.remaining_ms();
  return static_cast<int>(std::min(50.0, std::max(1.0, remaining)));
}

/// Waits until `fd` is ready for `events` or the deadline expires.
void wait_ready(int fd, short events, const Deadline& deadline,
                const char* what) {
  for (;;) {
    if (deadline.expired()) {
      throw SolveError(StatusCode::kDeadlineExceeded,
                       std::string(what) + " passed its deadline");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, poll_interval_ms(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_unavailable(what, errno);
    }
    if (rc > 0) return;  // ready, error or hangup — the syscall reports it
  }
}

void set_cloexec_nonblock(int fd) {
  // Non-blocking + poll is the deadline mechanism; CLOEXEC keeps shard
  // worker spawns from inheriting coordinator sockets.
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
  (void)::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw SolveError(StatusCode::kInvalidInput,
                     "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

Socket finish_connect(int fd, const Deadline& deadline, const char* what) {
  Socket sock(fd);
  wait_ready(fd, POLLOUT, deadline, what);
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) err = errno;
  if (err != 0) throw_unavailable(what, err);
  return sock;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_all(std::span<const std::byte> data,
                      const Deadline& deadline) {
  if (fd_ < 0) {
    throw SolveError(StatusCode::kUnavailable, "send on a closed socket");
  }
  std::size_t limit = data.size();
  const auto action = FaultInjector::instance().poll_io("net.send", 0);
  if (action == FaultInjector::Action::kIoShortWrite) {
    // Write a prefix, then drop the connection: the peer observes a torn
    // frame (EOF mid-frame → kDataLoss on its side), this side reports
    // the peer unavailable.
    limit = data.size() / 2;
  }
  std::size_t off = 0;
  while (off < limit) {
    wait_ready(fd_, POLLOUT, deadline, "net send");
    const ssize_t sent =
        ::send(fd_, data.data() + off, limit - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_unavailable("net send", errno);
    }
    off += static_cast<std::size_t>(sent);
  }
  if (action == FaultInjector::Action::kIoShortWrite) {
    shutdown_both();
    throw SolveError(StatusCode::kUnavailable,
                     "injected short write tore the connection");
  }
}

bool Socket::recv_exact(std::byte* out, std::size_t size,
                        const Deadline& deadline) {
  if (fd_ < 0) {
    throw SolveError(StatusCode::kUnavailable, "recv on a closed socket");
  }
  FaultInjector::instance().poll_io("net.recv", 0);  // kStall sleeps here
  std::size_t off = 0;
  while (off < size) {
    wait_ready(fd_, POLLIN, deadline, "net recv");
    const ssize_t got = ::recv(fd_, out + off, size - off, 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_unavailable("net recv", errno);
    }
    if (got == 0) {
      if (off == 0) return false;  // clean close between frames
      throw SolveError(StatusCode::kDataLoss,
                       "peer closed mid-read (torn stream: " +
                           std::to_string(off) + " of " +
                           std::to_string(size) + " bytes)");
    }
    off += static_cast<std::size_t>(got);
  }
  return true;
}

std::pair<Socket, Socket> socket_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw SolveError(StatusCode::kInternal,
                     std::string("socketpair: ") + std::strerror(errno));
  }
  set_cloexec_nonblock(fds[0]);
  set_cloexec_nonblock(fds[1]);
  return {Socket(fds[0]), Socket(fds[1])};
}

Socket connect_unix(const std::string& path, const Deadline& deadline) {
  const auto action = FaultInjector::instance().poll_io("net.connect", 0);
  if (action == FaultInjector::Action::kNetConnectRefused) {
    throw SolveError(StatusCode::kUnavailable,
                     "injected connect refusal to " + path);
  }
  const sockaddr_un addr = unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_unavailable("net connect (socket)", errno);
  set_cloexec_nonblock(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
          0 ||
      errno == EINPROGRESS || errno == EAGAIN) {
    return finish_connect(fd, deadline, "net connect");
  }
  const int err = errno;
  ::close(fd);
  throw_unavailable("net connect to " + path, err);
}

Socket connect_tcp_loopback(int port, const Deadline& deadline) {
  const auto action = FaultInjector::instance().poll_io("net.connect", 0);
  if (action == FaultInjector::Action::kNetConnectRefused) {
    throw SolveError(StatusCode::kUnavailable,
                     "injected connect refusal to loopback:" +
                         std::to_string(port));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_unavailable("net connect (socket)", errno);
  set_cloexec_nonblock(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
          0 ||
      errno == EINPROGRESS) {
    return finish_connect(fd, deadline, "net connect");
  }
  const int err = errno;
  ::close(fd);
  throw_unavailable("net connect to loopback:" + std::to_string(port), err);
}

Listener Listener::listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw SolveError(StatusCode::kInternal,
                     std::string("net listen (socket): ") +
                         std::strerror(errno));
  }
  set_cloexec_nonblock(fd);
  (void)::unlink(path.c_str());  // a stale socket file refuses the bind
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw SolveError(StatusCode::kInternal,
                     "net listen on " + path + ": " + std::strerror(err));
  }
  Listener out;
  out.socket_ = Socket(fd);
  out.path_ = path;
  return out;
}

Listener Listener::listen_tcp_loopback(int port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw SolveError(StatusCode::kInternal,
                     std::string("net listen (socket): ") +
                         std::strerror(errno));
  }
  set_cloexec_nonblock(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in bound;
  socklen_t bound_len = sizeof bound;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
          0) {
    const int err = errno;
    ::close(fd);
    throw SolveError(StatusCode::kInternal,
                     std::string("net listen on loopback: ") +
                         std::strerror(err));
  }
  Listener out;
  out.socket_ = Socket(fd);
  out.port_ = ntohs(bound.sin_port);
  return out;
}

Socket Listener::accept_connection(const Deadline& deadline) {
  if (!socket_.valid()) {
    throw SolveError(StatusCode::kUnavailable, "accept on a closed listener");
  }
  for (;;) {
    wait_ready(socket_.fd(), POLLIN, deadline, "net accept");
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_cloexec_nonblock(fd);
      return Socket(fd);
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_unavailable("net accept", errno);
  }
}

void Listener::close() {
  socket_.close();
  if (!path_.empty()) {
    (void)::unlink(path_.c_str());
    path_.clear();
  }
}

}  // namespace hgp::net
