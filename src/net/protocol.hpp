// The coordinator↔shard message vocabulary (rides on channel.hpp frames).
//
// Conversation, in order:
//
//   shard → coord   Hello{version, role}          (channel.hpp handshake)
//   coord → shard   HelloAck{version}
//   coord → shard   Job{solve params, snapshot blob}
//   shard → coord   JobAck{graph fingerprint, num trees}
//   coord → shard   Assign{epoch, batch, tree indices}     (repeated)
//   shard → coord   Heartbeat{epoch, batch, progress}      (streamed)
//   shard → coord   BatchResult{epoch, batch, per-tree results}
//   coord → shard   Shutdown{}
//
// The Job's instance payload is a PR-6 snapshot container blob (graph +
// hierarchy + forest sections, src/io/snapshot.hpp) embedded whole: the
// shard re-runs the full snapshot validation stack — CRCs, fingerprint,
// semantic invariants — before trusting a single byte of the instance.
// Epochs implement zombie fencing: every Assign carries the batch's
// current epoch, every result echoes it, and the coordinator discards any
// result whose epoch is stale (the batch was reassigned after this shard
// was declared dead).
//
// Decode functions throw SolveError{kDataLoss} on any malformed payload,
// with the WireReader's no-allocation-bomb validation discipline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tree_dp.hpp"
#include "net/frame.hpp"
#include "util/status.hpp"

namespace hgp::net {

// Message types (channel.hpp owns 1-2 for the handshake).
constexpr std::uint16_t kMsgJob = 3;
constexpr std::uint16_t kMsgJobAck = 4;
constexpr std::uint16_t kMsgAssign = 5;
constexpr std::uint16_t kMsgHeartbeat = 6;
constexpr std::uint16_t kMsgBatchResult = 7;
constexpr std::uint16_t kMsgShutdown = 8;

/// Everything a shard needs to solve assigned trees bit-identically to the
/// coordinator's in-process path: the solve parameters plus the instance
/// snapshot blob (graph + hierarchy + forest container).
struct JobMsg {
  double epsilon = 0;
  std::int64_t units_override = 0;
  std::uint64_t seed = 0;
  std::int32_t num_trees = 0;
  std::uint8_t force_prune = 0;
  /// Heartbeat cadence the coordinator expects, in ms.
  double heartbeat_ms = 0;
  /// Snapshot container: graph sections, hierarchy sections, forest
  /// sections (src/io/snapshot.hpp codecs, in that order).
  std::vector<std::byte> snapshot_blob;
};

struct JobAckMsg {
  std::uint64_t graph_fingerprint = 0;
  std::int32_t num_trees = 0;
};

struct AssignMsg {
  std::uint64_t epoch = 0;
  std::uint32_t batch_id = 0;
  std::vector<std::int32_t> tree_indices;
};

struct HeartbeatMsg {
  std::uint64_t epoch = 0;       ///< 0 when idle
  std::uint32_t batch_id = 0;
  /// Trees finished within the current batch (progress counter).
  std::uint64_t trees_done = 0;
  std::uint8_t idle = 0;
};

/// One tree's result.  `leaf_of` is present only when status == kOk; the
/// stats travel so resumed telemetry stays honest (checkpoint.hpp).
struct TreeResultWire {
  std::int32_t tree_index = 0;
  std::uint8_t status = 0;  ///< StatusCode
  std::string error;
  double cost = 0;
  TreeDpStats stats;
  std::vector<std::int64_t> leaf_of;
};

struct BatchResultMsg {
  std::uint64_t epoch = 0;
  std::uint32_t batch_id = 0;
  std::vector<TreeResultWire> trees;
};

std::vector<std::byte> encode_job(const JobMsg& msg);
JobMsg decode_job(std::span<const std::byte> payload);

std::vector<std::byte> encode_job_ack(const JobAckMsg& msg);
JobAckMsg decode_job_ack(std::span<const std::byte> payload);

std::vector<std::byte> encode_assign(const AssignMsg& msg);
AssignMsg decode_assign(std::span<const std::byte> payload);

std::vector<std::byte> encode_heartbeat(const HeartbeatMsg& msg);
HeartbeatMsg decode_heartbeat(std::span<const std::byte> payload);

std::vector<std::byte> encode_batch_result(const BatchResultMsg& msg);
BatchResultMsg decode_batch_result(std::span<const std::byte> payload);

}  // namespace hgp::net
