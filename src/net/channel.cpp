#include "net/channel.hpp"

#include "util/fault_injector.hpp"

namespace hgp::net {

void FrameChannel::send(std::uint16_t type, std::span<const std::byte> payload,
                        const Deadline& deadline) {
  std::vector<std::byte> wire = encode_frame(type, payload);
  if (FaultInjector::instance().poll_io("net.frame", 0) ==
      FaultInjector::Action::kNetTornFrame) {
    // Corrupt one mid-frame byte before transmission: the receiver's CRC
    // check must reject the frame (kDataLoss), exactly as bit rot on a
    // real wire would be caught.
    wire[wire.size() / 2] ^= std::byte{0x40};
  }
  socket_.send_all(wire, deadline);
}

std::optional<Frame> FrameChannel::recv(const Deadline& deadline) {
  std::byte header_bytes[kFrameHeaderSize];
  if (!socket_.recv_exact(header_bytes, kFrameHeaderSize, deadline)) {
    return std::nullopt;  // clean close between frames
  }
  const FrameHeader header =
      decode_frame_header(std::span<const std::byte>(header_bytes));
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_size);  // capped by the header check
  if (header.payload_size > 0 &&
      !socket_.recv_exact(frame.payload.data(), frame.payload.size(),
                          deadline)) {
    throw SolveError(StatusCode::kDataLoss,
                     "peer closed between a frame header and its payload");
  }
  check_frame_payload(header, frame.payload);
  return frame;
}

namespace {

/// The Hello payload carries the protocol version redundantly with the
/// frame header: a header-level mismatch already fails frame decode, but
/// the explicit exchange gives the *peer* a chance to report skew in a
/// frame the old version still understands.
std::vector<std::byte> hello_payload(std::uint32_t version,
                                     std::uint32_t role) {
  WireWriter w;
  w.u32(version);
  w.u32(role);
  return w.take();
}

}  // namespace

void handshake_client(FrameChannel& ch, std::uint32_t role,
                      const Deadline& deadline) {
  ch.send(kMsgHello, hello_payload(kProtocolVersion, role), deadline);
  std::optional<Frame> ack = ch.recv(deadline);
  if (!ack.has_value()) {
    throw SolveError(StatusCode::kUnavailable,
                     "peer closed during the version handshake");
  }
  if (ack->type != kMsgHelloAck) {
    throw SolveError(StatusCode::kDataLoss,
                     "handshake expected HelloAck, got frame type " +
                         std::to_string(ack->type));
  }
  WireReader r(ack->payload, "HelloAck");
  const std::uint32_t peer_version = r.u32();
  r.expect_exhausted();
  if (peer_version != kProtocolVersion) {
    throw SolveError(StatusCode::kDataLoss,
                     "protocol version mismatch (peer v" +
                         std::to_string(peer_version) +
                         ", this build speaks v" +
                         std::to_string(kProtocolVersion) + ")");
  }
}

std::uint32_t handshake_server(FrameChannel& ch, const Deadline& deadline) {
  std::optional<Frame> hello = ch.recv(deadline);
  if (!hello.has_value()) {
    throw SolveError(StatusCode::kUnavailable,
                     "peer closed during the version handshake");
  }
  if (hello->type != kMsgHello) {
    throw SolveError(StatusCode::kDataLoss,
                     "handshake expected Hello, got frame type " +
                         std::to_string(hello->type));
  }
  WireReader r(hello->payload, "Hello");
  const std::uint32_t peer_version = r.u32();
  const std::uint32_t role = r.u32();
  r.expect_exhausted();
  if (peer_version != kProtocolVersion) {
    throw SolveError(StatusCode::kDataLoss,
                     "protocol version mismatch (peer v" +
                         std::to_string(peer_version) +
                         ", this build speaks v" +
                         std::to_string(kProtocolVersion) + ")");
  }
  WireWriter ack;
  ack.u32(kProtocolVersion);
  ch.send(kMsgHelloAck, ack.take(), deadline);
  return role;
}

}  // namespace hgp::net
