// Length-prefixed framed messages with per-frame CRC-32: the unit of the
// shard wire protocol (src/net/protocol.hpp rides on top).
//
// Frame layout (all integers little-endian, like the snapshot container):
//
//   FrameHeader { u32 magic = "HGPM"; u16 version; u16 type;
//                 u32 payload_size; u32 payload_crc32; u32 header_crc32 }
//   payload…     (payload_size bytes)
//
// header_crc32 covers the 16 header bytes before it; payload_crc32 covers
// the payload (CRC of src/io/snapshot.hpp, shared machinery).  Integrity
// discipline mirrors snapshot.cpp: every malformed input — bad magic,
// version skew, a hostile length, any bit flip, truncation — yields a
// typed SolveError{kDataLoss} before any allocation sized from untrusted
// bytes, never UB.  A stream that ends cleanly *between* frames is not a
// decode failure but a peer departure: the channel layer reports it as
// kUnavailable (see channel.hpp), keeping "bytes are wrong" (kDataLoss)
// distinct from "peer is gone" (kUnavailable).
//
// WireWriter/WireReader are the payload codec primitives: bounds-checked
// cursor reads in the SectionView idiom, with blob/string lengths
// validated against the remaining payload BEFORE allocation.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace hgp::net {

static_assert(std::endian::native == std::endian::little,
              "wire frames require a little-endian host");

/// Bumped on any frame- or message-layout change; both the frame header
/// and the Hello handshake carry it, so skew is caught before any typed
/// payload is trusted.
constexpr std::uint16_t kProtocolVersion = 1;

/// Upper bound on one frame's payload: large enough for a job frame
/// embedding a graph+forest snapshot blob, small enough that a hostile
/// length field cannot drive an allocation bomb.
constexpr std::uint32_t kMaxFramePayload = 256u << 20;  // 256 MiB

constexpr std::uint32_t kFrameMagic = 0x4D504748;  // "HGPM" little-endian

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc32 = 0;
  std::uint32_t header_crc32 = 0;  ///< over the 16 bytes above
};
static_assert(sizeof(FrameHeader) == 20);
constexpr std::size_t kFrameHeaderSize = sizeof(FrameHeader);

/// One decoded frame: the type tag plus the validated payload bytes.
struct Frame {
  std::uint16_t type = 0;
  std::vector<std::byte> payload;
};

/// The complete wire image of one frame (header + payload + CRCs).
std::vector<std::byte> encode_frame(std::uint16_t type,
                                    std::span<const std::byte> payload);

/// Validates the 20 header bytes: magic, version, header CRC, payload
/// size cap.  Throws SolveError{kDataLoss} on any mismatch; the caller
/// may then read exactly header.payload_size payload bytes.
FrameHeader decode_frame_header(std::span<const std::byte> bytes);

/// Validates a payload against its (already validated) header's CRC.
void check_frame_payload(const FrameHeader& header,
                         std::span<const std::byte> payload);

/// Decodes `bytes` as exactly one whole frame.  Truncation, trailing
/// garbage, or any corruption throws SolveError{kDataLoss} (the property
/// tests in tests/test_net.cpp drive every truncation and bit flip
/// through this).
Frame decode_frame(std::span<const std::byte> bytes);

// ---------------------------------------------------------------------------
// Payload codec primitives.

/// Accumulates one frame's payload from fixed-width scalars and
/// length-prefixed blobs/strings.
class WireWriter {
 public:
  void u8(std::uint8_t v) { append(&v, 1); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i32(std::int32_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }

  /// u32 length prefix + raw bytes.
  void blob(std::span<const std::byte> bytes);
  void str(const std::string& s);
  /// u32 count prefix + count little-endian i64 values.
  void i64_span(std::span<const std::int64_t> values);
  /// u32 count prefix + count little-endian i32 values.
  void i32_span(std::span<const std::int32_t> values);

  std::span<const std::byte> bytes() const { return bytes_; }
  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  void append(const void* data, std::size_t size);

  std::vector<std::byte> bytes_;
};

/// Bounds-checked cursor over one frame's payload.  Over-reads, hostile
/// length prefixes and trailing garbage throw SolveError{kDataLoss}
/// naming `what` (the message being decoded).
class WireReader {
 public:
  WireReader(std::span<const std::byte> payload, const char* what)
      : payload_(payload), what_(what) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();

  /// Length-prefixed blob; the length is validated against the remaining
  /// payload BEFORE any allocation.
  std::vector<std::byte> blob();
  std::string str();
  std::vector<std::int64_t> i64_span();
  std::vector<std::int32_t> i32_span();

  std::size_t remaining() const { return payload_.size() - cursor_; }

  /// A decoder that consumed its payload must land exactly at the end;
  /// trailing bytes mean the payload is not what the type claims.
  void expect_exhausted() const;

  [[noreturn]] void fail(const std::string& why) const;

 private:
  void read(void* out, std::size_t size);
  std::size_t read_count(std::size_t elem_size);

  std::span<const std::byte> payload_;
  const char* what_;
  std::size_t cursor_ = 0;
};

}  // namespace hgp::net
