// FrameChannel: framed, CRC-checked messages over one stream socket, plus
// the protocol-version handshake.
//
// Error taxonomy (the part callers dispatch on):
//   kDataLoss          the bytes are wrong — corrupt header/payload CRC,
//                      version skew, torn stream mid-frame.
//   kUnavailable       the peer is gone — clean close between frames,
//                      reset, refused connect.
//   kDeadlineExceeded  the peer is too slow — a cooperative deadline
//                      expired while waiting.
//
// One channel supports one concurrent sender and one concurrent receiver
// (the shard worker sends heartbeats from a second thread; it serializes
// its sends with its own mutex).  send() polls the net.frame fault site:
// kNetTornFrame corrupts one encoded byte before transmission, so the
// receiving side's CRC discipline — not good luck — is what keeps a torn
// frame out of the solve.
#pragma once

#include <optional>
#include <span>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace hgp::net {

class FrameChannel {
 public:
  FrameChannel() = default;
  explicit FrameChannel(Socket socket) : socket_(std::move(socket)) {}

  bool valid() const { return socket_.valid(); }
  Socket& socket() { return socket_; }

  /// Encodes and writes one frame before `deadline`.
  void send(std::uint16_t type, std::span<const std::byte> payload,
            const Deadline& deadline);

  /// Reads one whole frame.  Returns std::nullopt on a clean close between
  /// frames (peer departed); throws kDataLoss / kUnavailable /
  /// kDeadlineExceeded per the taxonomy above.
  std::optional<Frame> recv(const Deadline& deadline);

  /// Wakes a thread blocked in recv and poisons further I/O.
  void shutdown() { socket_.shutdown_both(); }
  void close() { socket_.close(); }

 private:
  Socket socket_;
};

/// Client half of the handshake: sends Hello{version, role}, expects
/// HelloAck{version}.  Throws kDataLoss naming both versions on skew.
void handshake_client(FrameChannel& ch, std::uint32_t role,
                      const Deadline& deadline);

/// Server half: expects Hello, validates the version, replies HelloAck.
/// Returns the peer's role.  Throws kDataLoss on skew or a non-Hello
/// first frame.
std::uint32_t handshake_server(FrameChannel& ch, const Deadline& deadline);

/// Message types 1..15 are reserved for the handshake + shard protocol
/// (protocol.hpp); tests use >= 100.
constexpr std::uint16_t kMsgHello = 1;
constexpr std::uint16_t kMsgHelloAck = 2;

/// Hello roles.
constexpr std::uint32_t kRoleCoordinator = 0;
constexpr std::uint32_t kRoleShard = 1;

}  // namespace hgp::net
