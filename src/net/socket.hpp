// Stream sockets (unix-domain and TCP loopback) with cooperative
// deadlines — the transport under the framed shard protocol.
//
// Every blocking operation takes a Deadline and polls toward it, so a
// stalled peer can never wedge a caller past its budget: expiry throws
// SolveError{kDeadlineExceeded}, peer departure (refused connect, reset,
// clean close mid-read) throws SolveError{kUnavailable}, and a stream
// that dies *inside* a frame is the channel layer's kDataLoss.
//
// This is the only file in the tree allowed to make naked socket(2)/
// send/recv syscalls outside src/obs/introspect.cpp (enforced by the
// raw-socket lint rule, tools/hgp_lint.py): every other layer goes
// through Socket/Listener so deadlines, typed errors and FaultInjector
// sites are never bypassed.
//
// FaultInjector sites (polled; see util/fault_injector.hpp):
//   net.connect [0]  kNetConnectRefused → connect fails kUnavailable;
//                    kStall → delayed connect.
//   net.send    [0]  kIoShortWrite → a prefix of the bytes is written,
//                    then the connection is dropped (the peer observes a
//                    torn frame); kStall → stalled writer.
//   net.recv    [0]  kStall → stalled reader (the peer's heartbeats
//                    arrive late past their lease).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "util/deadline.hpp"
#include "util/status.hpp"

namespace hgp::net {

/// An owned stream-socket fd.  Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Writes all of `data` before `deadline`.  Throws kUnavailable when the
  /// peer is gone (EPIPE/ECONNRESET or the socket was closed locally),
  /// kDeadlineExceeded past the deadline.
  void send_all(std::span<const std::byte> data, const Deadline& deadline);

  /// Reads exactly `size` bytes before `deadline`.  Returns false on a
  /// clean close at offset 0 (the peer finished between frames); throws
  /// kDataLoss on EOF mid-buffer (torn stream), kUnavailable on a reset,
  /// kDeadlineExceeded past the deadline.
  bool recv_exact(std::byte* out, std::size_t size, const Deadline& deadline);

  /// Shuts down both directions without closing the fd — wakes a peer (or
  /// another thread) blocked in recv.  Safe on an invalid socket.
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// Connected AF_UNIX stream pair (tests and in-process shard harnesses).
std::pair<Socket, Socket> socket_pair();

/// Connects to a unix-domain socket at `path`.  Throws kUnavailable when
/// nobody listens (or the net.connect fault fires), kDeadlineExceeded
/// past the deadline.
Socket connect_unix(const std::string& path, const Deadline& deadline);

/// Connects to TCP 127.0.0.1:`port` (loopback only — the wire protocol
/// carries no auth, so cross-host deployments tunnel it).
Socket connect_tcp_loopback(int port, const Deadline& deadline);

/// A listening socket accepting shard connections.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  /// Binds + listens on a unix-domain socket, unlinking a stale `path`
  /// first.  Throws SolveError{kInternal} on failure.
  static Listener listen_unix(const std::string& path);
  /// Binds + listens on TCP 127.0.0.1; port 0 picks an ephemeral port
  /// (read it back from port()).
  static Listener listen_tcp_loopback(int port);

  bool valid() const { return socket_.valid(); }
  /// Bound TCP port (0 for unix listeners).
  int port() const { return port_; }
  const std::string& path() const { return path_; }

  /// Accepts one connection before `deadline`; kDeadlineExceeded past it.
  Socket accept_connection(const Deadline& deadline);

  /// Closes the listening fd and unlinks a unix socket path.
  void close();
  ~Listener() { close(); }

 private:
  Socket socket_;
  int port_ = 0;
  std::string path_;
};

}  // namespace hgp::net
