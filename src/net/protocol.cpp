#include "net/protocol.hpp"

namespace hgp::net {

namespace {

void write_stats(WireWriter& w, const TreeDpStats& s) {
  w.u64(s.signature_count);
  w.u64(s.feasible_states);
  w.u64(s.merge_operations);
  w.u64(s.merges_rejected);
  w.u64(s.states_pruned);
  w.u64(s.subtree_tasks);
  w.u64(s.arena_bytes);
  w.u64(s.nodes_built);
  w.u64(s.nodes_reused);
}

TreeDpStats read_stats(WireReader& r) {
  TreeDpStats s;
  s.signature_count = r.u64();
  s.feasible_states = r.u64();
  s.merge_operations = r.u64();
  s.merges_rejected = r.u64();
  s.states_pruned = r.u64();
  s.subtree_tasks = r.u64();
  s.arena_bytes = r.u64();
  s.nodes_built = r.u64();
  s.nodes_reused = r.u64();
  return s;
}

}  // namespace

std::vector<std::byte> encode_job(const JobMsg& msg) {
  WireWriter w;
  w.f64(msg.epsilon);
  w.i64(msg.units_override);
  w.u64(msg.seed);
  w.i32(msg.num_trees);
  w.u8(msg.force_prune);
  w.f64(msg.heartbeat_ms);
  w.blob(msg.snapshot_blob);
  return w.take();
}

JobMsg decode_job(std::span<const std::byte> payload) {
  WireReader r(payload, "Job");
  JobMsg msg;
  msg.epsilon = r.f64();
  msg.units_override = r.i64();
  msg.seed = r.u64();
  msg.num_trees = r.i32();
  msg.force_prune = r.u8();
  msg.heartbeat_ms = r.f64();
  msg.snapshot_blob = r.blob();
  r.expect_exhausted();
  if (!(msg.epsilon > 0) || msg.num_trees < 1) {
    r.fail("implausible solve parameters");
  }
  return msg;
}

std::vector<std::byte> encode_job_ack(const JobAckMsg& msg) {
  WireWriter w;
  w.u64(msg.graph_fingerprint);
  w.i32(msg.num_trees);
  return w.take();
}

JobAckMsg decode_job_ack(std::span<const std::byte> payload) {
  WireReader r(payload, "JobAck");
  JobAckMsg msg;
  msg.graph_fingerprint = r.u64();
  msg.num_trees = r.i32();
  r.expect_exhausted();
  return msg;
}

std::vector<std::byte> encode_assign(const AssignMsg& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.u32(msg.batch_id);
  w.i32_span(msg.tree_indices);
  return w.take();
}

AssignMsg decode_assign(std::span<const std::byte> payload) {
  WireReader r(payload, "Assign");
  AssignMsg msg;
  msg.epoch = r.u64();
  msg.batch_id = r.u32();
  msg.tree_indices = r.i32_span();
  r.expect_exhausted();
  if (msg.epoch == 0 || msg.tree_indices.empty()) {
    r.fail("empty assignment");
  }
  return msg;
}

std::vector<std::byte> encode_heartbeat(const HeartbeatMsg& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.u32(msg.batch_id);
  w.u64(msg.trees_done);
  w.u8(msg.idle);
  return w.take();
}

HeartbeatMsg decode_heartbeat(std::span<const std::byte> payload) {
  WireReader r(payload, "Heartbeat");
  HeartbeatMsg msg;
  msg.epoch = r.u64();
  msg.batch_id = r.u32();
  msg.trees_done = r.u64();
  msg.idle = r.u8();
  r.expect_exhausted();
  return msg;
}

std::vector<std::byte> encode_batch_result(const BatchResultMsg& msg) {
  WireWriter w;
  w.u64(msg.epoch);
  w.u32(msg.batch_id);
  w.u32(static_cast<std::uint32_t>(msg.trees.size()));
  for (const TreeResultWire& t : msg.trees) {
    w.i32(t.tree_index);
    w.u8(t.status);
    w.str(t.error);
    w.f64(t.cost);
    write_stats(w, t.stats);
    w.i64_span(t.leaf_of);
  }
  return w.take();
}

BatchResultMsg decode_batch_result(std::span<const std::byte> payload) {
  WireReader r(payload, "BatchResult");
  BatchResultMsg msg;
  msg.epoch = r.u64();
  msg.batch_id = r.u32();
  const std::uint32_t count = r.u32();
  // Each tree result occupies ≥ the fixed scalar footprint, so a hostile
  // count is bounded by the remaining payload before anything is reserved.
  constexpr std::size_t kMinTreeBytes = 4 + 1 + 4 + 8 + 9 * 8 + 4;
  if (count > r.remaining() / kMinTreeBytes) {
    r.fail("tree-result count exceeds the remaining payload");
  }
  msg.trees.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TreeResultWire t;
    t.tree_index = r.i32();
    t.status = r.u8();
    t.error = r.str();
    t.cost = r.f64();
    t.stats = read_stats(r);
    t.leaf_of = r.i64_span();
    msg.trees.push_back(std::move(t));
  }
  r.expect_exhausted();
  return msg;
}

}  // namespace hgp::net
