// Experiment report helpers: headers, check lines and CSV sidecar output.
#pragma once

#include <string>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace hgp::exp {

/// Prints the experiment banner ("== E5: ...") and the claim under test.
void print_header(const std::string& id, const std::string& title,
                  const std::string& claim);

/// Prints a PASS/FAIL line for a measured bound; returns `ok`.
bool check(const std::string& what, bool ok);

/// Writes `csv` next to the binary as <name>.csv when HGP_BENCH_CSV is set
/// (so plotting is opt-in and CI stays clean).
void maybe_write_csv(const CsvWriter& csv, const std::string& name);

}  // namespace hgp::exp
