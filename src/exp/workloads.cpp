#include "exp/workloads.hpp"

#include <algorithm>
#include <cmath>

namespace hgp::exp {

const char* family_name(Family f) {
  switch (f) {
    case Family::StreamDag: return "stream-dag";
    case Family::PlantedPartition: return "planted";
    case Family::Grid: return "grid";
    case Family::ScaleFree: return "scale-free";
    case Family::Random: return "random";
    case Family::RandomTree: return "tree";
  }
  return "?";
}

std::vector<Family> all_families() {
  return {Family::StreamDag, Family::PlantedPartition, Family::Grid,
          Family::ScaleFree, Family::Random, Family::RandomTree};
}

namespace {

/// Rescales demands so total load = load_factor × leaf count, clamped into
/// the legal (0, 1] per-task range.
void scale_load(Graph& g, const Hierarchy& h, double load_factor, Rng& rng) {
  const double target =
      load_factor * static_cast<double>(h.leaf_count());
  std::vector<double> d(static_cast<std::size_t>(g.vertex_count()));
  double total = 0;
  for (auto& x : d) {
    x = rng.next_double(0.5, 1.5);
    total += x;
  }
  const double scale = target / total;
  for (auto& x : d) x = std::clamp(x * scale, 1e-4, 1.0);
  g.set_demands(std::move(d));
}

}  // namespace

Graph make_workload(Family family, Vertex n, const Hierarchy& h,
                    std::uint64_t seed, double load_factor) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(family));
  Graph g;
  switch (family) {
    case Family::StreamDag: {
      gen::StreamDagOptions opt;
      opt.sources = std::max(2, n / 12);
      opt.sinks = std::max(1, n / 16);
      opt.stages = 3;
      opt.stage_width = std::max(2, (n - opt.sources - opt.sinks) / 3);
      g = gen::stream_dag(opt, rng);
      break;
    }
    case Family::PlantedPartition: {
      const int clusters = narrow<int>(std::max<std::int64_t>(
          2, std::min<std::int64_t>(h.nodes_at(1), n / 4)));
      g = gen::planted_partition(n, clusters, std::min(1.0, 12.0 / n), 0.02,
                                 rng, gen::WeightRange{2.0, 6.0},
                                 gen::WeightRange{1.0, 2.0});
      break;
    }
    case Family::Grid: {
      const int side = std::max(2, static_cast<int>(std::lround(
                                       std::sqrt(static_cast<double>(n)))));
      g = gen::grid2d(side, side, gen::WeightRange{1.0, 4.0}, &rng);
      break;
    }
    case Family::ScaleFree:
      g = gen::barabasi_albert(n, 2, rng, gen::WeightRange{1.0, 4.0});
      break;
    case Family::Random:
      g = gen::erdos_renyi(n, std::min(1.0, 6.0 / n), rng,
                           gen::WeightRange{1.0, 4.0});
      break;
    case Family::RandomTree:
      g = gen::random_tree(n, rng, gen::WeightRange{1.0, 8.0});
      break;
  }
  scale_load(g, h, load_factor, rng);
  return g;
}

Tree make_tree_workload(Vertex n, const Hierarchy& h, std::uint64_t seed,
                        double load_factor) {
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 17);
  const Graph g = gen::random_tree(n, rng, gen::WeightRange{1.0, 9.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(t.leaves().size());
  double total = 0;
  for (auto& x : d) {
    x = rng.next_double(0.5, 1.5);
    total += x;
  }
  const double target = load_factor * static_cast<double>(h.leaf_count());
  for (auto& x : d) x = std::clamp(x * target / total, 1e-4, 1.0);
  t.set_leaf_demands(d);
  return t;
}

DemandUnits auto_units(const Tree& t, const Hierarchy& h,
                       double units_per_job) {
  const double jobs = static_cast<double>(t.leaf_count());
  const double per_leaf_capacity =
      t.total_demand() / static_cast<double>(h.leaf_count());
  // units so that the average job (total/jobs of demand) gets
  // `units_per_job` units: U = units_per_job · jobs / total.
  const double u = units_per_job * jobs / std::max(1e-9, t.total_demand());
  (void)per_leaf_capacity;
  return std::max<DemandUnits>(4, static_cast<DemandUnits>(std::ceil(u)));
}

Hierarchy hierarchy_socket_core_ht() {
  return Hierarchy({2, 4, 2}, {10.0, 4.0, 1.0, 0.0});
}

Hierarchy hierarchy_two_level(int sockets, int cores) {
  return Hierarchy({sockets, cores}, {4.0, 1.0, 0.0});
}

Hierarchy hierarchy_flat(int k) { return Hierarchy::kbgp(k); }

Hierarchy hierarchy_of_height(int height) {
  std::vector<double> cm;
  for (int j = height; j >= 0; --j) {
    cm.push_back(std::pow(2.0, j) - 1.0);
  }
  return Hierarchy::uniform(height, 2, std::move(cm));
}

}  // namespace hgp::exp
