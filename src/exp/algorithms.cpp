#include "exp/algorithms.hpp"

#include "baseline/greedy.hpp"
#include "baseline/local_search.hpp"
#include "baseline/multilevel.hpp"
#include "baseline/random_placement.hpp"
#include "baseline/recursive_bisection.hpp"
#include "runtime/solver.hpp"
#include "hierarchy/cost.hpp"
#include "util/timer.hpp"

namespace hgp::exp {

namespace {

AlgoResult finish(const Graph& g, const Hierarchy& h, Placement p,
                  const Timer& timer) {
  AlgoResult r;
  r.seconds = timer.seconds();
  r.cost = placement_cost(g, h, p);
  r.max_violation = load_report(g, h, p).max_violation();
  r.placement = std::move(p);
  return r;
}

}  // namespace

Algorithm solver_algorithm(double epsilon, int num_trees,
                           std::int64_t units, const std::string& label) {
  return Algorithm{
      label,
      [epsilon, num_trees, units](const Graph& g, const Hierarchy& h,
                                  std::uint64_t seed) {
        Timer timer;
        SolverOptions opt;
        opt.epsilon = epsilon;
        opt.num_trees = num_trees;
        opt.units_override = units;
        opt.seed = seed;
        const HgpResult res = solve_hgp(g, h, opt);
        return finish(g, h, res.placement, timer);
      }};
}

std::vector<Algorithm> comparison_algorithms(double epsilon, int num_trees,
                                             std::int64_t units) {
  std::vector<Algorithm> algos;
  algos.push_back(Algorithm{
      "random",
      [](const Graph& g, const Hierarchy& h, std::uint64_t seed) {
        Timer timer;
        Rng rng(seed);
        return finish(g, h, random_placement(g, h, rng), timer);
      }});
  algos.push_back(Algorithm{
      "greedy",
      [](const Graph& g, const Hierarchy& h, std::uint64_t) {
        Timer timer;
        return finish(g, h, greedy_placement(g, h), timer);
      }});
  algos.push_back(Algorithm{
      "recursive-bisect",
      [](const Graph& g, const Hierarchy& h, std::uint64_t seed) {
        Timer timer;
        Rng rng(seed);
        return finish(g, h, recursive_bisection_placement(g, h, rng), timer);
      }});
  algos.push_back(Algorithm{
      "multilevel",
      [](const Graph& g, const Hierarchy& h, std::uint64_t seed) {
        Timer timer;
        Rng rng(seed);
        return finish(g, h, multilevel_placement(g, h, rng), timer);
      }});
  algos.push_back(Algorithm{
      "greedy+ls",
      [](const Graph& g, const Hierarchy& h, std::uint64_t) {
        Timer timer;
        Placement p = greedy_placement(g, h);
        LocalSearchOptions ls;
        ls.enable_swaps = g.vertex_count() <= 256;
        local_search(g, h, p, ls);
        return finish(g, h, std::move(p), timer);
      }});
  algos.push_back(solver_algorithm(epsilon, num_trees, units));
  return algos;
}

}  // namespace hgp::exp
