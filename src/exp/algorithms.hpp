// A uniform interface over every placement algorithm in the repository,
// used by benches to produce like-for-like comparison tables.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "hierarchy/placement.hpp"

namespace hgp::exp {

struct AlgoResult {
  Placement placement;
  double cost = 0;           ///< Eq. 1 on G
  double max_violation = 0;  ///< worst level violation factor
  double seconds = 0;        ///< wall-clock solve time
};

struct Algorithm {
  std::string name;
  /// Deterministic in (g, h, seed).
  std::function<AlgoResult(const Graph&, const Hierarchy&, std::uint64_t)> run;
};

/// All comparison algorithms: random, greedy, recursive bisection,
/// multilevel, multilevel+local-search, and the paper's solver ("hgp-dp").
/// `epsilon`/`num_trees` configure the solver entry.
std::vector<Algorithm> comparison_algorithms(double epsilon = 0.5,
                                             int num_trees = 3,
                                             std::int64_t units = 8);

/// Just the paper's solver, with the given configuration.
Algorithm solver_algorithm(double epsilon, int num_trees,
                           std::int64_t units = 8,
                           const std::string& label = "hgp-dp");

}  // namespace hgp::exp
