// Named workload families shared by the benchmark harness and examples.
//
// Each family fixes a graph generator + demand model; instances are
// deterministic in (family, size, seed).  The families cover the paper's
// motivating workload (stream-processing DAGs) plus the standard
// partitioning test beds.
#pragma once

#include <string>
#include <vector>

#include "core/demand.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "hierarchy/hierarchy.hpp"

namespace hgp::exp {

enum class Family {
  StreamDag,        ///< layered operator pipelines (TidalRace-style, §1)
  PlantedPartition, ///< clustered communication (ground-truth locality)
  Grid,             ///< 2-D mesh (scientific computing stencil)
  ScaleFree,        ///< Barabási–Albert hubs
  Random,           ///< Erdős–Rényi
  RandomTree,       ///< tree-structured task graphs (the HGPT native case)
};

const char* family_name(Family f);
std::vector<Family> all_families();

/// Builds an instance of roughly n tasks with demands scaled so the total
/// load is about `load_factor` × the hierarchy's total capacity.
Graph make_workload(Family family, Vertex n, const Hierarchy& h,
                    std::uint64_t seed, double load_factor = 0.6);

/// Random weighted tree whose leaves are jobs, demands scaled so the total
/// load is `load_factor` × the hierarchy capacity — the native HGPT
/// instance shape used by the tree-solver experiments.
Tree make_tree_workload(Vertex n, const Hierarchy& h, std::uint64_t seed,
                        double load_factor = 0.6);

/// A demand resolution giving each job roughly `units_per_job` units
/// (coarser than the paper's n/ε, which is exponential-friendly only for
/// small instances).  With the library's one-unit floor the violation
/// guarantee at level j is min(1+ε_eff, 2)·(1+j).
DemandUnits auto_units(const Tree& t, const Hierarchy& h,
                       double units_per_job = 2.0);

/// Standard hierarchies used across experiments.
Hierarchy hierarchy_socket_core_ht();           ///< 2×4×2, cm {10,4,1,0}
Hierarchy hierarchy_two_level(int sockets, int cores);  ///< cm {4,1,0}
Hierarchy hierarchy_flat(int k);                ///< k-BGP: {1,0}
Hierarchy hierarchy_of_height(int height);      ///< uniform deg-2, cm 2^j

}  // namespace hgp::exp
