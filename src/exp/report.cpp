#include "exp/report.hpp"

#include <cstdio>
#include <cstdlib>

namespace hgp::exp {

void print_header(const std::string& id, const std::string& title,
                  const std::string& claim) {
  std::printf("\n== %s: %s\n", id.c_str(), title.c_str());
  std::printf("   claim: %s\n\n", claim.c_str());
}

bool check(const std::string& what, bool ok) {
  std::printf("   [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok;
}

void maybe_write_csv(const CsvWriter& csv, const std::string& name) {
  if (std::getenv("HGP_BENCH_CSV") == nullptr) return;
  const std::string path = name + ".csv";
  csv.write_file(path);
  std::printf("   wrote %s\n", path.c_str());
}

}  // namespace hgp::exp
