#include "exp/report.hpp"

#include <cstdio>
#include <cstdlib>

namespace hgp::exp {

// This translation unit IS the console report sink for the bench/example
// binaries — stdout here is its contract, so the no-stdout lint rule is
// suppressed line by line rather than rerouted.

void print_header(const std::string& id, const std::string& title,
                  const std::string& claim) {
  std::printf("\n== %s: %s\n", id.c_str(), title.c_str());  // hgp-lint: allow(no-stdout)
  std::printf("   claim: %s\n\n", claim.c_str());  // hgp-lint: allow(no-stdout)
}

bool check(const std::string& what, bool ok) {
  std::printf("   [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());  // hgp-lint: allow(no-stdout)
  return ok;
}

void maybe_write_csv(const CsvWriter& csv, const std::string& name) {
  if (std::getenv("HGP_BENCH_CSV") == nullptr) return;
  const std::string path = name + ".csv";
  csv.write_file(path);
  std::printf("   wrote %s\n", path.c_str());  // hgp-lint: allow(no-stdout)
}

}  // namespace hgp::exp
