#include "decomp/patch.hpp"

#include <algorithm>
#include <cstddef>

#include "util/check.hpp"

namespace hgp {
namespace {

/// Mutable node-array view of a tree under surgery.  Node ids are stable
/// while patching; dead ids are compacted away at rebuild time.
struct Workspace {
  std::vector<Vertex> parent;
  std::vector<Weight> weight;  // parent-edge weight, indexed by child
  std::vector<char> dead;
  /// Stable id of the vertex mapped to a leaf node (kInvalidVertex for
  /// internal nodes).
  std::vector<Vertex> leaf_stable;
  std::vector<std::vector<Vertex>> kids;
  Vertex root = kInvalidVertex;

  Vertex new_node(Vertex p, Weight w, Vertex stable) {
    const Vertex id = narrow<Vertex>(parent.size());
    parent.push_back(p);
    weight.push_back(w);
    dead.push_back(0);
    leaf_stable.push_back(stable);
    kids.emplace_back();
    return id;
  }

  void replace_child(Vertex p, Vertex was, Vertex now) {
    auto& c = kids[static_cast<std::size_t>(p)];
    auto it = std::find(c.begin(), c.end(), was);
    HGP_ASSERT(it != c.end());
    *it = now;
  }
};

Workspace load(const DecompTree& dt) {
  const Tree& t = dt.tree();
  const Vertex n = t.node_count();
  Workspace ws;
  ws.parent.resize(static_cast<std::size_t>(n));
  ws.weight.resize(static_cast<std::size_t>(n));
  ws.dead.assign(static_cast<std::size_t>(n), 0);
  ws.leaf_stable.assign(static_cast<std::size_t>(n), kInvalidVertex);
  ws.kids.resize(static_cast<std::size_t>(n));
  ws.root = t.root();
  for (Vertex v = 0; v < n; ++v) {
    const auto i = static_cast<std::size_t>(v);
    ws.parent[i] = t.parent(v);
    ws.weight[i] = v == t.root() ? 0 : t.parent_weight(v);
    HGP_CHECK_MSG(v == t.root() || !t.parent_edge_infinite(v),
                  "patch_decomp_tree: uncuttable edges unsupported");
    const auto c = t.children(v);
    ws.kids[i].assign(c.begin(), c.end());
    if (t.is_leaf(v)) ws.leaf_stable[i] = dt.vertex_of_leaf(v);
  }
  return ws;
}

/// Adds `delta` to every parent-edge weight strictly below `stop` on the
/// path from `v` to `stop` (an ancestor of v).
std::uint64_t bump_to(Workspace& ws, Vertex v, Vertex stop, Weight delta) {
  std::uint64_t edits = 0;
  while (v != stop) {
    HGP_ASSERT(v != kInvalidVertex);
    ws.weight[static_cast<std::size_t>(v)] += delta;
    ++edits;
    v = ws.parent[static_cast<std::size_t>(v)];
  }
  return edits;
}

}  // namespace

DecompTree patch_decomp_tree(const DecompTree& old_tree,
                             const MutationLog& log,
                             const MutationLog::Materialized& mat,
                             PatchStats* stats) {
  const Graph& base = log.base();
  const Vertex base_n = base.vertex_count();
  HGP_CHECK_MSG(old_tree.graph_vertex_count() == base_n,
                "patch_decomp_tree: tree does not cover log.base()");

  Workspace ws = load(old_tree);
  const std::vector<MutationLog::EdgeDelta> deltas = log.edge_deltas();
  PatchStats local;

  // Phase A: deltas between base vertices, applied on the old structure
  // (removed vertices still have their leaves; their edge removals must be
  // charged to the boundaries before the leaf disappears).
  for (const auto& d : deltas) {
    if (d.u >= base_n || d.v >= base_n) continue;
    const Weight delta = (d.new_present ? d.new_weight : Weight{0}) -
                         (d.old_present ? d.old_weight : Weight{0});
    const Vertex lu = old_tree.leaf_of_vertex(d.u);
    const Vertex lv = old_tree.leaf_of_vertex(d.v);
    const Vertex l = old_tree.tree().lca(lu, lv);
    local.weight_edits += bump_to(ws, lu, l, delta);
    local.weight_edits += bump_to(ws, lv, l, delta);
  }

  // Phase B: drop leaves of removed vertices; contract unary parents.  The
  // surviving child keeps its own parent-edge weight: after phase A its
  // boundary already reflects the final edge set, and the contracted
  // parent's cluster now equals the child's.
  for (Vertex s = 0; s < base_n; ++s) {
    if (log.alive(s)) continue;
    const Vertex x = old_tree.leaf_of_vertex(s);
    const Vertex p = ws.parent[static_cast<std::size_t>(x)];
    HGP_CHECK_MSG(p != kInvalidVertex,
                  "patch_decomp_tree: cannot remove the only leaf");
    ws.dead[static_cast<std::size_t>(x)] = 1;
    auto& pc = ws.kids[static_cast<std::size_t>(p)];
    pc.erase(std::find(pc.begin(), pc.end(), x));
    ++local.removed_leaves;
    if (pc.size() == 1) {
      const Vertex c = pc.front();
      const Vertex gp = ws.parent[static_cast<std::size_t>(p)];
      ws.dead[static_cast<std::size_t>(p)] = 1;
      pc.clear();
      ws.parent[static_cast<std::size_t>(c)] = gp;
      if (gp == kInvalidVertex) {
        ws.root = c;
        ws.weight[static_cast<std::size_t>(c)] = 0;
      } else {
        ws.replace_child(gp, p, c);
      }
    }
  }

  // Phase C: insert added vertices (stable-id order) as new leaves.  Anchor
  // = heaviest already-present neighbour in the final graph (ties: smallest
  // stable id); the new leaf splits the anchor leaf into a sibling pair so
  // clusters stay laminar.  Isolated vertices hang off the root with
  // boundary 0.  Edge weights toward added vertices are applied in phase D,
  // so every new parent edge starts at the anchor's current weight.
  std::vector<Vertex> leaf_node(
      static_cast<std::size_t>(log.stable_id_count()), kInvalidVertex);
  for (Vertex s = 0; s < base_n; ++s) {
    if (log.alive(s)) leaf_node[static_cast<std::size_t>(s)] =
        old_tree.leaf_of_vertex(s);
  }
  for (Vertex s = base_n; s < log.stable_id_count(); ++s) {
    if (!log.alive(s)) continue;
    const Vertex xc = mat.compact_of[static_cast<std::size_t>(s)];
    Vertex anchor_stable = kInvalidVertex;
    Weight anchor_w = 0;
    for (const HalfEdge& h : mat.graph.neighbors(xc)) {
      const Vertex ns = mat.stable_of[static_cast<std::size_t>(h.to)];
      if (leaf_node[static_cast<std::size_t>(ns)] == kInvalidVertex) continue;
      if (anchor_stable == kInvalidVertex || h.weight > anchor_w ||
          (h.weight == anchor_w && ns < anchor_stable)) {
        anchor_stable = ns;
        anchor_w = h.weight;
      }
    }
    Vertex x;
    if (anchor_stable != kInvalidVertex) {
      const Vertex leaf = leaf_node[static_cast<std::size_t>(anchor_stable)];
      const auto li = static_cast<std::size_t>(leaf);
      Vertex p;
      if (leaf == ws.root) {
        // The anchor leaf was the whole tree; the new internal node becomes
        // the root and the old leaf's boundary (the full vertex set minus
        // the isolated-so-far newcomer) is 0.
        p = ws.new_node(kInvalidVertex, 0, kInvalidVertex);
        ws.root = p;
        ws.weight[li] = 0;
      } else {
        const Vertex gp = ws.parent[li];
        p = ws.new_node(gp, ws.weight[li], kInvalidVertex);
        ws.replace_child(gp, leaf, p);
      }
      ws.parent[li] = p;
      ws.kids[static_cast<std::size_t>(p)].push_back(leaf);
      x = ws.new_node(p, 0, s);
      ws.kids[static_cast<std::size_t>(p)].push_back(x);
    } else if (ws.kids[static_cast<std::size_t>(ws.root)].empty()) {
      // Single-leaf tree gaining an isolated vertex: new root over both.
      const Vertex old_root = ws.root;
      const Vertex p = ws.new_node(kInvalidVertex, 0, kInvalidVertex);
      ws.root = p;
      ws.parent[static_cast<std::size_t>(old_root)] = p;
      ws.weight[static_cast<std::size_t>(old_root)] = 0;
      ws.kids[static_cast<std::size_t>(p)].push_back(old_root);
      x = ws.new_node(p, 0, s);
      ws.kids[static_cast<std::size_t>(p)].push_back(x);
    } else {
      x = ws.new_node(ws.root, 0, s);
      ws.kids[static_cast<std::size_t>(ws.root)].push_back(x);
    }
    leaf_node[static_cast<std::size_t>(s)] = x;
    ++local.added_leaves;
  }

  // Phase D: deltas involving added vertices, applied on the new structure
  // (depths recomputed; parent-walk LCA).
  bool has_new_deltas = false;
  for (const auto& d : deltas) {
    if (d.u >= base_n || d.v >= base_n) {
      has_new_deltas = true;
      break;
    }
  }
  if (has_new_deltas) {
    std::vector<int> depth(ws.parent.size(), -1);
    std::vector<Vertex> stack{ws.root};
    depth[static_cast<std::size_t>(ws.root)] = 0;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const Vertex c : ws.kids[static_cast<std::size_t>(v)]) {
        depth[static_cast<std::size_t>(c)] =
            depth[static_cast<std::size_t>(v)] + 1;
        stack.push_back(c);
      }
    }
    for (const auto& d : deltas) {
      if (d.u < base_n && d.v < base_n) continue;
      // An endpoint is an added vertex, so the edge cannot exist in the
      // base graph and both endpoints must still be alive.
      HGP_ASSERT(!d.old_present && d.new_present);
      const Weight delta = d.new_weight;
      Vertex a = leaf_node[static_cast<std::size_t>(d.u)];
      Vertex b = leaf_node[static_cast<std::size_t>(d.v)];
      HGP_ASSERT(a != kInvalidVertex && b != kInvalidVertex);
      while (depth[static_cast<std::size_t>(a)] >
             depth[static_cast<std::size_t>(b)]) {
        ws.weight[static_cast<std::size_t>(a)] += delta;
        ++local.weight_edits;
        a = ws.parent[static_cast<std::size_t>(a)];
      }
      while (depth[static_cast<std::size_t>(b)] >
             depth[static_cast<std::size_t>(a)]) {
        ws.weight[static_cast<std::size_t>(b)] += delta;
        ++local.weight_edits;
        b = ws.parent[static_cast<std::size_t>(b)];
      }
      while (a != b) {
        ws.weight[static_cast<std::size_t>(a)] += delta;
        ws.weight[static_cast<std::size_t>(b)] += delta;
        local.weight_edits += 2;
        a = ws.parent[static_cast<std::size_t>(a)];
        b = ws.parent[static_cast<std::size_t>(b)];
      }
    }
  }

  // Rebuild: compact live nodes preserving relative id order (survivors
  // keep their order, new nodes follow), so repeated patching of the same
  // (tree, log) pair is bit-identical.
  const std::size_t total = ws.parent.size();
  std::vector<Vertex> new_id(total, kInvalidVertex);
  Vertex live = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (!ws.dead[i]) new_id[i] = live++;
  }
  std::vector<Vertex> parent2(static_cast<std::size_t>(live));
  std::vector<Weight> weight2(static_cast<std::size_t>(live));
  std::vector<Vertex> leaf_vertex(static_cast<std::size_t>(live),
                                  kInvalidVertex);
  for (std::size_t i = 0; i < total; ++i) {
    if (ws.dead[i]) continue;
    const auto ni = static_cast<std::size_t>(new_id[i]);
    parent2[ni] = ws.parent[i] == kInvalidVertex
                      ? kInvalidVertex
                      : new_id[static_cast<std::size_t>(ws.parent[i])];
    weight2[ni] = ws.weight[i];
    if (ws.leaf_stable[i] != kInvalidVertex) {
      leaf_vertex[ni] =
          mat.compact_of[static_cast<std::size_t>(ws.leaf_stable[i])];
    }
  }
  Tree tree = Tree::from_parents(std::move(parent2), std::move(weight2));
  std::vector<double> demand(static_cast<std::size_t>(tree.node_count()), 0);
  for (Vertex t = 0; t < tree.node_count(); ++t) {
    if (leaf_vertex[static_cast<std::size_t>(t)] != kInvalidVertex) {
      demand[static_cast<std::size_t>(t)] =
          mat.graph.demand(leaf_vertex[static_cast<std::size_t>(t)]);
    }
  }
  tree.set_demands(std::move(demand));

  if (stats != nullptr) {
    stats->removed_leaves += local.removed_leaves;
    stats->added_leaves += local.added_leaves;
    stats->weight_edits += local.weight_edits;
  }
  return DecompTree(std::move(tree), std::move(leaf_vertex), mat.graph);
}

ForestPatch patch_forest(const std::vector<DecompTree>& forest,
                         const MutationLog& log,
                         const MutationLog::Materialized& mat) {
  ForestPatch out;
  out.stats.dirty_vertices = narrow<Vertex>(log.touched().size());
  out.forest.reserve(forest.size());
  for (const DecompTree& dt : forest) {
    out.forest.push_back(patch_decomp_tree(dt, log, mat, &out.stats));
  }
  return out;
}

}  // namespace hgp
