// Bipartition heuristics ("cutters") used by the recursive decomposition
// builder.  A cutter splits a (connected or not) graph into two non-empty
// sides; the builder recurses on both.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/prng.hpp"

namespace hgp {

/// Strategy interface.  Implementations must return both sides non-empty
/// for graphs with ≥ 2 vertices and be deterministic in `rng`.
class Cutter {
 public:
  virtual ~Cutter() = default;
  virtual std::vector<char> cut(const Graph& g, Rng& rng) const = 0;
  virtual std::string name() const = 0;
};

/// Fiedler-vector bisection balanced by demand (the default).
class SpectralCutter final : public Cutter {
 public:
  std::vector<char> cut(const Graph& g, Rng& rng) const override;
  std::string name() const override { return "spectral"; }
};

/// Random balanced split — the ablation baseline: structure-oblivious
/// trees show how much solution quality depends on tree cut quality.
class RandomCutter final : public Cutter {
 public:
  std::vector<char> cut(const Graph& g, Rng& rng) const override;
  std::string name() const override { return "random"; }
};

/// Spectral seed + Fiduccia–Mattheyses-style refinement passes: moves the
/// best-gain vertex between sides while keeping each side within
/// [balance_floor, 1-balance_floor] of the total demand.
class FmCutter final : public Cutter {
 public:
  explicit FmCutter(int passes = 4, double balance_floor = 0.25)
      : passes_(passes), balance_floor_(balance_floor) {}
  std::vector<char> cut(const Graph& g, Rng& rng) const override;
  std::string name() const override { return "spectral+fm"; }

 private:
  int passes_;
  double balance_floor_;
};

/// Recursive global-minimum-cut splitting (Stoer–Wagner).  Produces the
/// best-possible cut weight at every split but possibly extreme imbalance;
/// an instructive corner of the cutter ablation (E9): great cut quality on
/// subtree sets, deep skinny trees elsewhere.
class MinCutCutter final : public Cutter {
 public:
  std::vector<char> cut(const Graph& g, Rng& rng) const override;
  std::string name() const override { return "min-cut"; }
};

/// Applies FM refinement to an existing bipartition in place; returns the
/// resulting cut weight.  Exposed for baselines (recursive bisection).
Weight fm_refine(const Graph& g, std::vector<char>& side, int passes,
                 double balance_floor);

}  // namespace hgp
