// FRT-style metric decomposition trees (Fakcharoenphol–Rao–Talwar).
//
// The paper's embedding step samples from Räcke's *cut-based* tree
// distribution; the metric-embedding lineage it cites (§1.1) instead
// embeds the shortest-path metric into hierarchically separated trees.
// This builder implements the FRT partition scheme — random permutation +
// random radius scale, geometrically shrinking ball radii — over the
// "communication closeness" metric (edge length 1/w), then re-weights the
// resulting laminar hierarchy with exact G-boundary weights so the
// DecompTree contract (Proposition 1) still holds.
//
// Purpose: an ablation family for experiment E9 — distance-based trees
// group heavy communicators like cut-based trees do, but their split
// boundaries ignore cut structure, which the stretch measurements expose.
#pragma once

#include "decomp/decomp_tree.hpp"
#include "util/prng.hpp"

namespace hgp {

/// Builds one FRT-partition decomposition tree.  Requires ≥ 1 vertex;
/// infinite metric distances (disconnected pairs) separate at the top.
DecompTree build_frt_tree(const Graph& g, Rng& rng);

}  // namespace hgp
