#include "decomp/builder.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"

namespace hgp {

namespace {

/// One recursion frame: a vertex set awaiting expansion, and the id of the
/// tree node that represents it.
struct Frame {
  std::vector<Vertex> vertices;
  Vertex node;
};

/// δ_G(S) for S given as a vertex list.
Weight boundary_of(const Graph& g, const std::vector<Vertex>& set,
                   std::vector<char>& scratch) {
  for (Vertex v : set) scratch[static_cast<std::size_t>(v)] = 1;
  const Weight w = g.boundary_weight(scratch);
  for (Vertex v : set) scratch[static_cast<std::size_t>(v)] = 0;
  return w;
}

}  // namespace

DecompTree build_decomp_tree(const Graph& g, Rng& rng, const Cutter& cutter,
                             const ExecContext* exec) {
  const Vertex n = g.vertex_count();
  HGP_CHECK_MSG(n >= 1, "cannot decompose the empty graph");
  HGP_TRACE_SPAN_ARG("decomp.tree_build", n);

  std::vector<Vertex> parent;
  std::vector<Weight> parent_weight;
  std::vector<Vertex> leaf_vertex;
  std::vector<char> scratch(static_cast<std::size_t>(n), 0);

  auto new_node = [&](Vertex par, Weight w) {
    parent.push_back(par);
    parent_weight.push_back(w);
    leaf_vertex.push_back(kInvalidVertex);
    return narrow<Vertex>(parent.size() - 1);
  };

  std::vector<Frame> stack;
  {
    std::vector<Vertex> all(static_cast<std::size_t>(n));
    for (Vertex v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
    stack.push_back(Frame{std::move(all), new_node(kInvalidVertex, 0)});
  }

  while (!stack.empty()) {
    if (exec != nullptr) exec->check("decomposition tree build");
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.vertices.size() == 1) {
      leaf_vertex[static_cast<std::size_t>(frame.node)] = frame.vertices[0];
      continue;
    }
    const Graph sub = g.induced_subgraph(frame.vertices);
    std::vector<std::vector<Vertex>> parts;
    Vertex comp_count = 0;
    const auto comp = sub.components(&comp_count);
    if (comp_count > 1) {
      // Free split along connected components.
      HGP_COUNTER_ADD("decomp.component_splits", 1);
      parts.assign(static_cast<std::size_t>(comp_count), {});
      for (std::size_t i = 0; i < frame.vertices.size(); ++i) {
        parts[static_cast<std::size_t>(comp[i])].push_back(frame.vertices[i]);
      }
    } else {
      HGP_COUNTER_ADD("decomp.cuts_evaluated", 1);
      const std::vector<char> side = cutter.cut(sub, rng);
      HGP_CHECK_MSG(side.size() == frame.vertices.size(),
                    "cutter returned wrong-size bipartition");
      parts.assign(2, {});
      for (std::size_t i = 0; i < frame.vertices.size(); ++i) {
        parts[side[i] ? 1 : 0].push_back(frame.vertices[i]);
      }
      HGP_CHECK_MSG(!parts[0].empty() && !parts[1].empty(),
                    "cutter '" << cutter.name()
                               << "' returned an empty side");
    }
    for (auto& part : parts) {
      const Weight w = boundary_of(g, part, scratch);
      const Vertex child = new_node(frame.node, w);
      stack.push_back(Frame{std::move(part), child});
    }
  }

  HGP_COUNTER_ADD("decomp.trees_built", 1);
  Tree tree = Tree::from_parents(std::move(parent), std::move(parent_weight));
  if (g.has_demands()) {
    std::vector<double> demand(static_cast<std::size_t>(tree.node_count()),
                               0.0);
    for (Vertex t : tree.leaves()) {
      demand[static_cast<std::size_t>(t)] =
          g.demand(leaf_vertex[static_cast<std::size_t>(t)]);
    }
    tree.set_demands(std::move(demand));
  }
  return DecompTree(std::move(tree), std::move(leaf_vertex), g);
}

std::vector<DecompTree> build_decomposition_forest(const Graph& g, int count,
                                                   std::uint64_t seed,
                                                   const Cutter& cutter,
                                                   ThreadPool* pool,
                                                   const ExecContext* exec) {
  HGP_CHECK(count >= 1);
  std::vector<DecompTree> forest;
  forest.reserve(static_cast<std::size_t>(count));
  if (pool == nullptr) {
    Rng rng(seed);
    for (int i = 0; i < count; ++i) {
      Rng child = rng.fork(static_cast<std::uint64_t>(i));
      forest.push_back(build_decomp_tree(g, child, cutter, exec));
    }
    return forest;
  }
  Rng rng(seed);
  std::vector<Rng> rngs;
  for (int i = 0; i < count; ++i) {
    rngs.push_back(rng.fork(static_cast<std::uint64_t>(i)));
  }
  auto built = parallel_map(
      *pool, static_cast<std::size_t>(count),
      [&](std::size_t i) {
        Rng local = rngs[i];
        return build_decomp_tree(g, local, cutter, exec);
      },
      exec);
  for (auto& t : built) forest.push_back(std::move(t));
  return forest;
}

}  // namespace hgp
