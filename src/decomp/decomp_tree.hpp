// Decomposition trees (paper §4).
//
// A decomposition tree T of a graph G is a rooted tree whose leaves are in
// bijection with V(G); every internal node represents the subset of V(G)
// under it, and the edge above a node carries weight w_T(e) = w(δ_G(S)),
// the G-boundary of that subset — exactly the paper's definition of
// decomposition-tree edge weights.  Proposition 1 (w_T(CUT_T(P)) ≥
// w(δ_G(m(P)))) then holds by cut sub-additivity.
//
// The paper samples such trees from Räcke's congestion-minimization
// distribution; this library builds them by randomized recursive
// partitioning (see builder.hpp and DESIGN.md §2 for the substitution
// rationale) — the solver only depends on this interface.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace hgp {

class DecompTree {
 public:
  /// Empty tree (useful as a container element before assignment).
  DecompTree() = default;

  /// `tree`: rooted tree whose leaves carry the demands of the mapped
  /// G-vertices; `leaf_vertex[t]` = G-vertex of leaf node t (kInvalidVertex
  /// for internal nodes).  Checks the bijection and weight consistency is
  /// the builder's job; this constructor validates shape only.
  DecompTree(Tree tree, std::vector<Vertex> leaf_vertex, const Graph& g);

  const Tree& tree() const { return tree_; }

  /// G-vertex mapped to a T-leaf (m_V restricted to leaves).
  Vertex vertex_of_leaf(Vertex t_leaf) const {
    HGP_ASSERT(leaf_vertex_[static_cast<std::size_t>(t_leaf)] !=
               kInvalidVertex);
    return leaf_vertex_[static_cast<std::size_t>(t_leaf)];
  }

  /// T-leaf hosting a G-vertex (m'_V).
  Vertex leaf_of_vertex(Vertex g_vertex) const {
    return vertex_leaf_[static_cast<std::size_t>(g_vertex)];
  }

  /// Translates a subset of T-leaves into the corresponding G-vertex set
  /// (the paper's m(P_T)).
  std::vector<Vertex> map_leaf_set(std::span<const Vertex> t_leaves) const;

  /// Vertex count of the underlying graph.
  Vertex graph_vertex_count() const {
    return narrow<Vertex>(vertex_leaf_.size());
  }

 private:
  Tree tree_;
  std::vector<Vertex> leaf_vertex_;
  std::vector<Vertex> vertex_leaf_;
};

}  // namespace hgp
