#include "decomp/cutter.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/mincut.hpp"
#include "graph/spectral.hpp"

namespace hgp {

namespace {

double demand_or_unit(const Graph& g, Vertex v) {
  return g.has_demands() ? g.demand(v) : 1.0;
}

}  // namespace

std::vector<char> SpectralCutter::cut(const Graph& g, Rng& rng) const {
  return spectral_bisect(g, rng);
}

std::vector<char> RandomCutter::cut(const Graph& g, Rng& rng) const {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  HGP_CHECK(n >= 2);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<char> side(n, 0);
  for (std::size_t i = 0; i < n / 2; ++i) side[order[i]] = 1;
  return side;
}

Weight fm_refine(const Graph& g, std::vector<char>& side, int passes,
                 double balance_floor) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  HGP_CHECK(side.size() == n);
  HGP_CHECK(balance_floor >= 0.0 && balance_floor < 0.5);

  double total = 0;
  double load1 = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    total += demand_or_unit(g, v);
    if (side[static_cast<std::size_t>(v)]) load1 += demand_or_unit(g, v);
  }
  const double floor_load = balance_floor * total;

  auto gain_of = [&](Vertex v) {
    Weight same = 0, other = 0;
    for (const HalfEdge& h : g.neighbors(v)) {
      if (side[static_cast<std::size_t>(h.to)] ==
          side[static_cast<std::size_t>(v)]) {
        same += h.weight;
      } else {
        other += h.weight;
      }
    }
    return other - same;
  };

  Weight cut = g.cut_weight(side);
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<char> locked(n, 0);
    std::vector<char> best_side = side;
    Weight best_cut = cut;
    Weight running = cut;
    double running_load1 = load1;
    bool improved_this_pass = false;
    for (std::size_t step = 0; step < n; ++step) {
      // Pick the unlocked vertex with maximum gain whose move keeps balance.
      Vertex pick = kInvalidVertex;
      Weight pick_gain = -std::numeric_limits<Weight>::infinity();
      for (Vertex v = 0; v < g.vertex_count(); ++v) {
        if (locked[static_cast<std::size_t>(v)]) continue;
        const double d = demand_or_unit(g, v);
        const double new_load1 =
            side[static_cast<std::size_t>(v)] ? running_load1 - d
                                              : running_load1 + d;
        if (new_load1 < floor_load || total - new_load1 < floor_load) continue;
        const Weight gain = gain_of(v);
        if (gain > pick_gain) {
          pick_gain = gain;
          pick = v;
        }
      }
      if (pick == kInvalidVertex) break;
      const double d = demand_or_unit(g, pick);
      running_load1 += side[static_cast<std::size_t>(pick)] ? -d : d;
      side[static_cast<std::size_t>(pick)] ^= 1;
      locked[static_cast<std::size_t>(pick)] = 1;
      running -= pick_gain;
      if (running < best_cut - 1e-12) {
        best_cut = running;
        best_side = side;
        load1 = running_load1;
        improved_this_pass = true;
      }
    }
    side = best_side;
    cut = best_cut;
    // Recompute load1 from the accepted prefix (it tracked the best state
    // only when improving; refresh to stay exact).
    load1 = 0;
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (side[static_cast<std::size_t>(v)]) load1 += demand_or_unit(g, v);
    }
    if (!improved_this_pass) break;
  }
  return cut;
}

std::vector<char> MinCutCutter::cut(const Graph& g, Rng& rng) const {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  HGP_CHECK(n >= 2);
  if (g.edge_count() == 0) {
    // Min cut is 0 anywhere; fall back to an arbitrary balanced split.
    std::vector<char> side(n, 0);
    side[rng.next_below(n)] = 1;
    return side;
  }
  return global_min_cut(g).side;
}

std::vector<char> FmCutter::cut(const Graph& g, Rng& rng) const {
  std::vector<char> side = spectral_bisect(g, rng);
  fm_refine(g, side, passes_, balance_floor_);
  // FM never empties a side thanks to the balance floor, but guard the
  // degenerate two-vertex case anyway.
  bool any0 = false, any1 = false;
  for (char c : side) (c ? any1 : any0) = true;
  if (!any0 || !any1) {
    side.assign(side.size(), 0);
    side[0] = 1;
  }
  return side;
}

}  // namespace hgp
