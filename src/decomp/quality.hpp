// Embedding-quality measurement (Proposition 1 / Theorem 6 empirics).
//
// For random leaf subsets P_T, compares the tree cut w_T(CUT_T(P_T)) with
// the true G-boundary w(δ_G(m(P_T))).  Proposition 1 guarantees ratio ≥ 1;
// the average ratio ("stretch") quantifies how much the O(log n) embedding
// loss costs on a given instance — experiment E9.
#pragma once

#include <vector>

#include "decomp/decomp_tree.hpp"
#include "util/prng.hpp"

namespace hgp {

struct CutQuality {
  std::size_t samples = 0;
  double mean_ratio = 0;   ///< average of tree-cut / graph-cut
  double max_ratio = 0;
  double min_ratio = 0;    ///< Proposition 1 predicts ≥ 1
};

/// Sampling strategy: half the samples are uniform random leaf subsets,
/// half are subtree leaf sets (where the tree is exact by construction).
CutQuality measure_cut_quality(const Graph& g, const DecompTree& dt,
                               int samples, Rng& rng);

/// Single-subset ratio; returns 0 when the G-cut is 0 (uncut subset).
double cut_ratio(const Graph& g, const DecompTree& dt,
                 const std::vector<char>& leaf_in_set);

}  // namespace hgp
