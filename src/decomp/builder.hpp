// Recursive-cut decomposition-tree builder.
//
// build_decomp_tree() recursively bipartitions V(G) with a Cutter; each
// recursion node becomes a tree node whose parent-edge weight is the exact
// G-boundary of its vertex set (the paper's w_T definition).  Disconnected
// regions split along component lines first (their mutual cut is free).
//
// build_decomposition_forest() samples several independent randomized trees
// — the practical stand-in for Räcke's tree distribution (Theorem 6); the
// end-to-end solver solves HGP on each and keeps the best mapped-back
// solution (Theorem 7's arg-min).
#pragma once

#include <cstdint>
#include <vector>

#include "decomp/cutter.hpp"
#include "decomp/decomp_tree.hpp"
#include "parallel/thread_pool.hpp"
#include "util/deadline.hpp"

namespace hgp {

/// Builds one decomposition tree of g.  Requires ≥ 1 vertex.  A non-null
/// `exec` is polled once per recursion frame; expiry/cancellation unwinds
/// with SolveError{kDeadlineExceeded|kCancelled}.
DecompTree build_decomp_tree(const Graph& g, Rng& rng, const Cutter& cutter,
                             const ExecContext* exec = nullptr);

/// Builds `count` independent trees (seeds forked from `seed`), in parallel
/// when a pool is supplied.
std::vector<DecompTree> build_decomposition_forest(
    const Graph& g, int count, std::uint64_t seed, const Cutter& cutter,
    ThreadPool* pool = nullptr, const ExecContext* exec = nullptr);

}  // namespace hgp
