#include "decomp/frt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "obs/obs.hpp"

namespace hgp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Single-source shortest paths with edge length 1/w ("communication
/// closeness": heavy channels are short).
std::vector<double> dijkstra(const Graph& g, Vertex source) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  std::vector<double> dist(n, kInf);
  using Item = std::pair<double, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    for (const HalfEdge& e : g.neighbors(v)) {
      const double len = e.weight > 0 ? 1.0 / e.weight : kInf;
      const double nd = d + len;
      if (nd < dist[static_cast<std::size_t>(e.to)]) {
        dist[static_cast<std::size_t>(e.to)] = nd;
        queue.emplace(nd, e.to);
      }
    }
  }
  return dist;
}

}  // namespace

DecompTree build_frt_tree(const Graph& g, Rng& rng) {
  const Vertex n = g.vertex_count();
  HGP_CHECK_MSG(n >= 1, "cannot decompose the empty graph");
  HGP_TRACE_SPAN_ARG("decomp.frt_build", n);

  // All-pairs distances (laptop-scale: n Dijkstras).
  std::vector<std::vector<double>> dist(static_cast<std::size_t>(n));
  double diameter = 1.0;
  for (Vertex v = 0; v < n; ++v) {
    dist[static_cast<std::size_t>(v)] = dijkstra(g, v);
    for (double d : dist[static_cast<std::size_t>(v)]) {
      if (d < kInf) diameter = std::max(diameter, d);
    }
  }

  // FRT randomness: permutation π and radius scale β ∈ [1, 2).
  std::vector<Vertex> pi(static_cast<std::size_t>(n));
  std::iota(pi.begin(), pi.end(), Vertex{0});
  rng.shuffle(pi);
  const double beta = rng.next_double(1.0, 2.0);

  // Tree assembly (same node bookkeeping as the recursive-cut builder).
  std::vector<Vertex> parent;
  std::vector<Weight> weight;
  std::vector<Vertex> leaf_vertex;
  std::vector<char> scratch(static_cast<std::size_t>(n), 0);
  auto new_node = [&](Vertex par, Weight w) {
    parent.push_back(par);
    weight.push_back(w);
    leaf_vertex.push_back(kInvalidVertex);
    return narrow<Vertex>(parent.size() - 1);
  };
  auto boundary_of = [&](const std::vector<Vertex>& set) {
    for (Vertex v : set) scratch[static_cast<std::size_t>(v)] = 1;
    const Weight w = g.boundary_weight(scratch);
    for (Vertex v : set) scratch[static_cast<std::size_t>(v)] = 0;
    return w;
  };

  struct Frame {
    std::vector<Vertex> vertices;
    Vertex node;
    double radius;
  };
  std::vector<Frame> stack;
  {
    std::vector<Vertex> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), Vertex{0});
    stack.push_back(
        Frame{std::move(all), new_node(kInvalidVertex, 0), beta * diameter});
  }
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.vertices.size() == 1) {
      leaf_vertex[static_cast<std::size_t>(frame.node)] = frame.vertices[0];
      continue;
    }
    // FRT split: each vertex joins the cluster of the first permutation
    // center within the current radius.  Unreachable vertices (infinite
    // distance to every center ahead of them) become their own cluster
    // root eventually because every vertex is its own 0-distance center.
    std::vector<std::vector<Vertex>> clusters;
    std::vector<int> assigned(static_cast<std::size_t>(n), -1);
    for (const Vertex center : pi) {
      std::vector<Vertex> cluster;
      for (const Vertex v : frame.vertices) {
        if (assigned[static_cast<std::size_t>(v)] >= 0) continue;
        if (dist[static_cast<std::size_t>(center)]
                [static_cast<std::size_t>(v)] <= frame.radius) {
          cluster.push_back(v);
        }
      }
      if (cluster.empty()) continue;
      for (const Vertex v : cluster) {
        assigned[static_cast<std::size_t>(v)] = narrow<int>(clusters.size());
      }
      clusters.push_back(std::move(cluster));
    }
    if (clusters.size() == 1) {
      // No split at this radius; shrink and retry on the same node.
      stack.push_back(Frame{std::move(clusters[0]), frame.node,
                            frame.radius / 2});
      continue;
    }
    HGP_COUNTER_ADD("decomp.frt_levels", 1);
    for (auto& cluster : clusters) {
      const Weight w = boundary_of(cluster);
      const Vertex child = new_node(frame.node, w);
      stack.push_back(Frame{std::move(cluster), child, frame.radius / 2});
    }
  }

  Tree tree = Tree::from_parents(std::move(parent), std::move(weight));
  if (g.has_demands()) {
    std::vector<double> demand(static_cast<std::size_t>(tree.node_count()),
                               0.0);
    for (Vertex t : tree.leaves()) {
      demand[static_cast<std::size_t>(t)] =
          g.demand(leaf_vertex[static_cast<std::size_t>(t)]);
    }
    tree.set_demands(std::move(demand));
  }
  return DecompTree(std::move(tree), std::move(leaf_vertex), g);
}

}  // namespace hgp
