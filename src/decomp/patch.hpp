// Incremental patching of decomposition trees under a MutationLog.
//
// A DecompTree built for the base graph stays structurally valid for most
// of a churn batch: a mutation only affects the tree nodes whose clusters
// contain a touched vertex.  patch_decomp_tree() edits the existing tree
// in four deterministic phases instead of re-running the cut recursion:
//
//   A. Edge deltas between base vertices adjust boundary weights along the
//      two leaf→LCA paths (strictly below the LCA) in the *old* structure.
//   B. Removed vertices drop their leaves; unary parents are contracted
//      keeping the surviving child's parent-edge weight (the removed
//      sibling's cluster no longer separates the child from the rest).
//   C. Added vertices are inserted in stable-id order as new leaves: the
//      anchor is the heaviest already-present neighbour in the materialized
//      graph (ties → smallest stable id) and the new leaf splits the
//      anchor leaf into a sibling pair; isolated vertices attach under the
//      root with weight 0.
//   D. Edge deltas involving added vertices adjust weights along leaf→LCA
//      paths in the *new* structure.
//
// The patched tree is exactly what the from-scratch differential arm in
// tests/test_churn_differential.cpp solves on, so incremental vs scratch
// comparisons are bit-identical by construction: same forest, same DP.
// Quality drift versus a cold re-decomposition is a separate question
// measured by the E12 churn experiment.
//
// Determinism contract: deltas are processed in (u,v) order, additions in
// stable-id order, and surviving node ids keep their relative order (new
// nodes appended), so two runs over the same (tree, log) produce
// bit-identical patched trees — which the DP reuse-store hashing relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "decomp/decomp_tree.hpp"
#include "graph/mutation_log.hpp"

namespace hgp {

struct PatchStats {
  /// Live stable ids whose incident edges or demand changed (plus adds).
  Vertex dirty_vertices = 0;
  /// Leaves removed / inserted per tree, summed over the forest.
  Vertex removed_leaves = 0;
  Vertex added_leaves = 0;
  /// Parent-edge weight increments applied while walking leaf→LCA paths.
  std::uint64_t weight_edits = 0;
};

/// Patches one decomposition tree (built over `log.base()`) so it covers
/// `mat.graph` (== log.materialize()).  `stats`, when non-null, is
/// accumulated into.
DecompTree patch_decomp_tree(const DecompTree& old_tree,
                             const MutationLog& log,
                             const MutationLog::Materialized& mat,
                             PatchStats* stats = nullptr);

struct ForestPatch {
  std::vector<DecompTree> forest;
  PatchStats stats;
};

/// Patches every tree of a forest; `mat` must be `log.materialize()`.
ForestPatch patch_forest(const std::vector<DecompTree>& forest,
                         const MutationLog& log,
                         const MutationLog::Materialized& mat);

}  // namespace hgp
