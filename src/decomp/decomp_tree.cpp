#include "decomp/decomp_tree.hpp"

namespace hgp {

DecompTree::DecompTree(Tree tree, std::vector<Vertex> leaf_vertex,
                       const Graph& g)
    : tree_(std::move(tree)), leaf_vertex_(std::move(leaf_vertex)) {
  HGP_CHECK(leaf_vertex_.size() ==
            static_cast<std::size_t>(tree_.node_count()));
  HGP_CHECK_MSG(tree_.leaf_count() == g.vertex_count(),
                "decomposition tree must have one leaf per graph vertex");
  vertex_leaf_.assign(static_cast<std::size_t>(g.vertex_count()),
                      kInvalidVertex);
  for (Vertex t = 0; t < tree_.node_count(); ++t) {
    const Vertex v = leaf_vertex_[static_cast<std::size_t>(t)];
    if (tree_.is_leaf(t)) {
      HGP_CHECK_MSG(v >= 0 && v < g.vertex_count(),
                    "leaf " << t << " maps to invalid vertex " << v);
      HGP_CHECK_MSG(vertex_leaf_[static_cast<std::size_t>(v)] ==
                        kInvalidVertex,
                    "vertex " << v << " mapped by two leaves");
      vertex_leaf_[static_cast<std::size_t>(v)] = t;
    } else {
      HGP_CHECK_MSG(v == kInvalidVertex,
                    "internal node " << t << " must not map a vertex");
    }
  }
}

std::vector<Vertex> DecompTree::map_leaf_set(
    std::span<const Vertex> t_leaves) const {
  std::vector<Vertex> out;
  out.reserve(t_leaves.size());
  for (Vertex t : t_leaves) out.push_back(vertex_of_leaf(t));
  return out;
}

}  // namespace hgp
