#include "decomp/quality.hpp"

#include <algorithm>
#include <limits>

namespace hgp {

double cut_ratio(const Graph& g, const DecompTree& dt,
                 const std::vector<char>& leaf_in_set) {
  const Tree& t = dt.tree();
  HGP_CHECK(leaf_in_set.size() == static_cast<std::size_t>(t.node_count()));
  const auto sep = t.leaf_separator(leaf_in_set);
  HGP_CHECK_MSG(sep.feasible, "decomposition trees have no uncuttable edges");
  std::vector<char> g_side(static_cast<std::size_t>(g.vertex_count()), 0);
  for (Vertex leaf : t.leaves()) {
    if (leaf_in_set[static_cast<std::size_t>(leaf)]) {
      g_side[static_cast<std::size_t>(dt.vertex_of_leaf(leaf))] = 1;
    }
  }
  const Weight graph_cut = g.boundary_weight(g_side);
  if (graph_cut <= 0) return 0.0;
  return sep.weight / graph_cut;
}

CutQuality measure_cut_quality(const Graph& g, const DecompTree& dt,
                               int samples, Rng& rng) {
  HGP_CHECK(samples >= 1);
  const Tree& t = dt.tree();
  CutQuality q;
  q.min_ratio = std::numeric_limits<double>::infinity();
  double sum = 0;
  int done = 0;
  for (int i = 0; i < samples; ++i) {
    std::vector<char> in_set(static_cast<std::size_t>(t.node_count()), 0);
    if (i % 2 == 0) {
      // Uniform random subset of leaves (skip trivial all/none draws).
      bool any = false, all = true;
      for (Vertex leaf : t.leaves()) {
        const bool pick = rng.next_bool(0.5);
        in_set[static_cast<std::size_t>(leaf)] = pick;
        any |= pick;
        all &= pick;
      }
      if (!any || all) continue;
    } else {
      // Leaves of a random internal subtree.
      const Vertex node =
          narrow<Vertex>(rng.next_below(
              static_cast<std::uint64_t>(t.node_count())));
      // Mark all leaves under `node`.
      std::vector<Vertex> stack{node};
      while (!stack.empty()) {
        const Vertex v = stack.back();
        stack.pop_back();
        if (t.is_leaf(v)) in_set[static_cast<std::size_t>(v)] = 1;
        for (Vertex c : t.children(v)) stack.push_back(c);
      }
      if (node == t.root()) continue;  // trivial full set
    }
    const double ratio = cut_ratio(g, dt, in_set);
    if (ratio <= 0) continue;  // subset with empty G-boundary
    sum += ratio;
    q.max_ratio = std::max(q.max_ratio, ratio);
    q.min_ratio = std::min(q.min_ratio, ratio);
    ++done;
  }
  q.samples = static_cast<std::size_t>(done);
  q.mean_ratio = done > 0 ? sum / done : 0.0;
  if (done == 0) q.min_ratio = 0.0;
  return q;
}

}  // namespace hgp
