// Mutation log over an immutable Graph (the op-log idiom).
//
// Graph is CSR and frozen after build; production churn (vertices joining
// and leaving, demand drift, channels appearing or changing volume) is
// therefore expressed as a MutationLog: an append-only sequence of typed
// ops recorded against a fixed *base* graph.  The log maintains a live
// overlay view (alive flags, demand values, an edge-state overlay) so ops
// are validated when appended, and materialize() compacts the live state
// into a fresh canonical Graph plus the stable-id ↔ compact-id maps the
// incremental solver needs to carry a placement across the mutation.
//
// Stable ids: base vertices keep their compact ids 0..n-1 for the log's
// lifetime; add_vertex() appends ids n, n+1, … .  Removing a vertex
// retires its stable id (never reused), and materialize() renumbers the
// survivors densely in stable-id order — so the relative order of
// surviving vertices is preserved, which downstream code (forest patching,
// decomp-tree leaf maps) relies on.
//
// Every op records enough of the prior state (`prev`) that
// append_undo_all() can rewind the log to the base state *including* the
// stable-id assignment — the metamorphic fingerprint test in
// tests/test_mutation_log.cpp pins that property.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace hgp {

enum class MutationKind : std::uint8_t {
  kAddVertex = 0,    ///< u = new stable id, value = demand
  kRemoveVertex = 1, ///< u = stable id, prev = demand at removal
  kAddEdge = 2,      ///< (u,v), value = weight
  kRemoveEdge = 3,   ///< (u,v), prev = weight at removal
  kReweightEdge = 4, ///< (u,v), value = new weight, prev = old weight
  kSetDemand = 5,    ///< u, value = new demand, prev = old demand
};

struct Mutation {
  MutationKind kind = MutationKind::kAddVertex;
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  double value = 0;
  double prev = 0;
};

class MutationLog {
 public:
  /// `base` must outlive the log.
  explicit MutationLog(const Graph& base);

  const Graph& base() const { return *base_; }

  // --- mutators (validated against the live state; violations throw) ----

  /// Returns the new vertex's stable id.  demand ∈ (0,1].
  Vertex add_vertex(double demand);
  /// Removes a live vertex; its incident edges are removed first (each
  /// recorded as its own kRemoveEdge op, so undo restores them).
  void remove_vertex(Vertex v);
  /// Adds an edge between distinct live vertices; must not already exist.
  void add_edge(Vertex u, Vertex v, Weight weight);
  void remove_edge(Vertex u, Vertex v);
  void reweight_edge(Vertex u, Vertex v, Weight weight);
  /// demand ∈ (0,1].
  void set_demand(Vertex v, double demand);

  // --- log inspection ---------------------------------------------------

  bool empty() const { return ops_.empty(); }
  std::size_t size() const { return ops_.size(); }
  const std::vector<Mutation>& ops() const { return ops_; }

  // --- live-state queries (stable ids) ----------------------------------

  /// Stable ids ever allocated (base n + adds); dead ids stay in range.
  Vertex stable_id_count() const { return narrow<Vertex>(alive_.size()); }
  Vertex live_vertex_count() const { return live_count_; }
  bool alive(Vertex stable_id) const {
    return alive_[static_cast<std::size_t>(stable_id)] != 0;
  }
  double demand_of(Vertex stable_id) const;
  bool has_edge(Vertex u, Vertex v) const;
  /// Weight of a live edge (has_edge must hold).
  Weight edge_weight(Vertex u, Vertex v) const;

  // --- derived views ----------------------------------------------------

  struct Materialized {
    Graph graph;
    /// stable id → compact id in `graph` (kInvalidVertex for dead ids).
    std::vector<Vertex> compact_of;
    /// compact id in `graph` → stable id.
    std::vector<Vertex> stable_of;
  };
  /// Compacts the live state into a canonical Graph.  Requires ≥ 1 live
  /// vertex.
  Materialized materialize() const;

  /// One net edge-state change vs the base graph (no-op overlay entries are
  /// filtered out).  Stable ids, u < v; sorted by (u,v).
  struct EdgeDelta {
    Vertex u = kInvalidVertex;
    Vertex v = kInvalidVertex;
    bool old_present = false;
    Weight old_weight = 0;
    bool new_present = false;
    Weight new_weight = 0;
  };
  std::vector<EdgeDelta> edge_deltas() const;

  /// Live stable ids whose incident edges or demand differ from base,
  /// plus every added vertex.  Sorted, unique.
  std::vector<Vertex> touched() const;

  /// Appends the inverse of every op logged so far (newest first).  The
  /// live state afterwards equals the base state — same vertices on the
  /// same stable ids, same edges, same demands — so materialize() returns
  /// a graph with the base graph's fingerprint.
  void append_undo_all();

  /// Minimal log over the same base with the same final state: cancelled
  /// add+remove pairs disappear and surviving added vertices are densely
  /// renumbered.  Deterministic (ops ordered by stable id / edge key).
  MutationLog compacted() const;

 private:
  struct EdgeState {
    bool present = false;
    Weight weight = 0;
  };

  static std::uint64_t edge_key(Vertex u, Vertex v);
  void check_live(Vertex v, const char* who) const;
  /// Base-graph edge lookup by adjacency scan (stable ids < base n).
  bool base_edge(Vertex u, Vertex v, Weight* w) const;
  /// Re-inserts a removed vertex on its original stable id (undo path).
  void revive_vertex(Vertex v, double demand);

  const Graph* base_;
  Vertex base_n_;
  std::vector<Mutation> ops_;
  std::vector<char> alive_;
  std::vector<double> demand_;
  Vertex live_count_ = 0;
  /// Edge-state overlay: entries shadow the base graph; ids absent here
  /// have their base state.
  std::unordered_map<std::uint64_t, EdgeState> edges_;
};

}  // namespace hgp
