#include "graph/tree.hpp"

#include <algorithm>
#include <array>
#include <limits>

namespace hgp {

namespace {
constexpr Weight kInf = std::numeric_limits<Weight>::infinity();
}

Tree Tree::from_parents(std::vector<Vertex> parent,
                        std::vector<Weight> parent_weight,
                        std::vector<char> infinite) {
  const std::size_t n = parent.size();
  HGP_CHECK(parent_weight.size() == n);
  if (infinite.empty()) infinite.assign(n, 0);
  HGP_CHECK(infinite.size() == n);
  Tree t;
  t.parent_ = std::move(parent);
  t.parent_weight_ = std::move(parent_weight);
  t.infinite_ = std::move(infinite);
  t.finalize();
  return t;
}

Tree Tree::from_graph(const Graph& g, Vertex root) {
  const Vertex n = g.vertex_count();
  HGP_CHECK(root >= 0 && root < n);
  HGP_CHECK_MSG(g.edge_count() == n - 1 && g.is_connected(),
                "from_graph requires a connected graph with n-1 edges");
  std::vector<Vertex> parent(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<Weight> weight(static_cast<std::size_t>(n), 0);
  std::vector<Vertex> stack{root};
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  seen[static_cast<std::size_t>(root)] = 1;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    for (const HalfEdge& h : g.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(h.to)]) {
        seen[static_cast<std::size_t>(h.to)] = 1;
        parent[static_cast<std::size_t>(h.to)] = v;
        weight[static_cast<std::size_t>(h.to)] = h.weight;
        stack.push_back(h.to);
      }
    }
  }
  Tree t = from_parents(std::move(parent), std::move(weight));
  if (g.has_demands()) {
    std::vector<double> demand(static_cast<std::size_t>(n), 0.0);
    for (Vertex leaf : t.leaves()) {
      demand[static_cast<std::size_t>(leaf)] = g.demand(leaf);
    }
    t.demand_ = std::move(demand);
  }
  return t;
}

void Tree::finalize() {
  const std::size_t n = parent_.size();
  HGP_CHECK(n >= 1);
  root_ = kInvalidVertex;
  std::vector<std::size_t> child_count(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex p = parent_[v];
    if (p == kInvalidVertex) {
      HGP_CHECK_MSG(root_ == kInvalidVertex, "multiple roots");
      root_ = narrow<Vertex>(v);
    } else {
      HGP_CHECK(p >= 0 && static_cast<std::size_t>(p) < n);
      ++child_count[static_cast<std::size_t>(p)];
    }
  }
  HGP_CHECK_MSG(root_ != kInvalidVertex, "no root (parent[v] == -1) found");

  child_offset_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    child_offset_[v + 1] = child_offset_[v] + child_count[v];
  }
  children_.resize(child_offset_[n]);
  std::vector<std::size_t> cursor(child_offset_.begin(),
                                  child_offset_.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex p = parent_[v];
    if (p != kInvalidVertex) {
      children_[cursor[static_cast<std::size_t>(p)]++] = narrow<Vertex>(v);
    }
  }

  // Depths + preorder + acyclicity check.
  depth_.assign(n, -1);
  preorder_.clear();
  preorder_.reserve(n);
  std::vector<Vertex> stack{root_};
  depth_[static_cast<std::size_t>(root_)] = 0;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    preorder_.push_back(v);
    for (const Vertex c : children(v)) {
      depth_[static_cast<std::size_t>(c)] =
          depth_[static_cast<std::size_t>(v)] + 1;
      stack.push_back(c);
    }
  }
  HGP_CHECK_MSG(preorder_.size() == n, "parent array contains a cycle");

  leaves_.clear();
  for (std::size_t v = 0; v < n; ++v) {
    if (children(narrow<Vertex>(v)).empty()) {
      leaves_.push_back(narrow<Vertex>(v));
    }
  }

  // Binary lifting table.
  int log = 1;
  while ((std::size_t{1} << log) < n) ++log;
  up_.assign(static_cast<std::size_t>(log), std::vector<Vertex>(n));
  for (std::size_t v = 0; v < n; ++v) {
    up_[0][v] = parent_[v] == kInvalidVertex ? root_ : parent_[v];
  }
  for (std::size_t k = 1; k < up_.size(); ++k) {
    for (std::size_t v = 0; v < n; ++v) {
      up_[k][v] = up_[k - 1][static_cast<std::size_t>(up_[k - 1][v])];
    }
  }
}

void Tree::set_demands(std::vector<double> demand) {
  HGP_CHECK(demand.size() == parent_.size());
  for (Vertex v = 0; v < node_count(); ++v) {
    if (!is_leaf(v)) {
      HGP_CHECK_MSG(demand[static_cast<std::size_t>(v)] == 0.0,
                    "internal nodes must have zero demand");
    }
  }
  demand_ = std::move(demand);
}

void Tree::set_leaf_demands(std::span<const double> leaf_demand) {
  HGP_CHECK(leaf_demand.size() == leaves_.size());
  demand_.assign(parent_.size(), 0.0);
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    demand_[static_cast<std::size_t>(leaves_[i])] = leaf_demand[i];
  }
}

double Tree::total_demand() const {
  double s = 0;
  for (double d : demand_) s += d;
  return s;
}

Vertex Tree::lca(Vertex u, Vertex v) const {
  HGP_CHECK(u >= 0 && u < node_count() && v >= 0 && v < node_count());
  if (depth(u) < depth(v)) std::swap(u, v);
  int diff = depth(u) - depth(v);
  for (std::size_t k = 0; k < up_.size(); ++k) {
    if (diff & (1 << k)) u = up_[k][static_cast<std::size_t>(u)];
  }
  if (u == v) return u;
  for (std::size_t k = up_.size(); k-- > 0;) {
    if (up_[k][static_cast<std::size_t>(u)] !=
        up_[k][static_cast<std::size_t>(v)]) {
      u = up_[k][static_cast<std::size_t>(u)];
      v = up_[k][static_cast<std::size_t>(v)];
    }
  }
  return parent_[static_cast<std::size_t>(u)];
}

Tree::LeafSeparator Tree::leaf_separator(const std::vector<char>& in_set) const {
  const std::size_t n = parent_.size();
  HGP_CHECK(in_set.size() == n);
  // dp[v][side] = (min cut weight, min #side-1 nodes) for the subtree of v
  // with v's component labelled `side`.  Leaves are forced by membership.
  struct Cell {
    Weight w = 0;
    std::int64_t ones = 0;
  };
  auto better = [](const Cell& a, const Cell& b) {
    if (a.w != b.w) return a.w < b.w;
    return a.ones < b.ones;
  };
  std::vector<std::array<Cell, 2>> dp(n);
  for (auto it = preorder_.rbegin(); it != preorder_.rend(); ++it) {
    const Vertex v = *it;
    auto& cell = dp[static_cast<std::size_t>(v)];
    if (is_leaf(v)) {
      const bool member = in_set[static_cast<std::size_t>(v)] != 0;
      cell[0] = Cell{member ? kInf : 0, 0};
      cell[1] = Cell{member ? 0 : kInf, 1};
      continue;
    }
    cell[0] = Cell{0, 0};
    cell[1] = Cell{0, 1};
    for (const Vertex c : children(v)) {
      const auto& cc = dp[static_cast<std::size_t>(c)];
      const Weight cut_w =
          parent_edge_infinite(c) ? kInf : parent_weight(c);
      for (int side = 0; side < 2; ++side) {
        Cell keep{cell[side].w + cc[side].w, cell[side].ones + cc[side].ones};
        Cell cut{cell[side].w + cc[1 - side].w + cut_w,
                 cell[side].ones + cc[1 - side].ones};
        cell[side] = better(keep, cut) ? keep : cut;
      }
    }
  }
  const auto& rc = dp[static_cast<std::size_t>(root_)];
  const Cell best = better(rc[0], rc[1]) ? rc[0] : rc[1];
  LeafSeparator result;
  if (best.w == kInf) {
    result.feasible = false;
    result.weight = kInf;
    return result;
  }
  result.weight = best.w;
  // Reconstruct labels top-down by replaying the child decisions.
  result.s_side.assign(n, 0);
  std::vector<char> label(n, 0);
  label[static_cast<std::size_t>(root_)] = better(rc[0], rc[1]) ? 0 : 1;
  for (const Vertex v : preorder_) {
    const int side = label[static_cast<std::size_t>(v)];
    for (const Vertex c : children(v)) {
      const auto& cc = dp[static_cast<std::size_t>(c)];
      const Weight cut_w =
          parent_edge_infinite(c) ? kInf : parent_weight(c);
      const Cell keep = cc[side];
      const Cell cut{cc[1 - side].w + cut_w, cc[1 - side].ones};
      label[static_cast<std::size_t>(c)] =
          static_cast<char>(better(keep, cut) ? side : 1 - side);
    }
  }
  result.s_side = std::move(label);
  return result;
}

Weight Tree::total_finite_edge_weight() const {
  Weight s = 0;
  for (Vertex v = 0; v < node_count(); ++v) {
    if (v != root_ && !parent_edge_infinite(v)) s += parent_weight(v);
  }
  return s;
}

}  // namespace hgp
