#include "graph/fingerprint.hpp"

#include <bit>

namespace hgp {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t graph_fingerprint(const Graph& g) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(g.vertex_count()));
  mix(h, static_cast<std::uint64_t>(g.edge_count()));
  for (const Edge& e : g.edges()) {
    mix(h, static_cast<std::uint64_t>(e.u));
    mix(h, static_cast<std::uint64_t>(e.v));
    mix(h, std::bit_cast<std::uint64_t>(e.weight));
  }
  mix(h, g.has_demands() ? 1 : 0);
  for (const double d : g.demands()) {
    mix(h, std::bit_cast<std::uint64_t>(d));
  }
  return h;
}

}  // namespace hgp
