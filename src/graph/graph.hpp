// Weighted undirected graph in compressed sparse row (CSR) form.
//
// The Graph is immutable after construction; use GraphBuilder to assemble
// edges (parallel edges are merged by summing weights, self-loops dropped —
// they never contribute to any cut).  Vertices carry optional processing
// demands d(v) ∈ (0,1] as required by the HGP problem definition.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hgp {

using Vertex = std::int32_t;
using EdgeId = std::int32_t;
using Weight = double;

constexpr Vertex kInvalidVertex = -1;

/// One endpoint view of an undirected edge, as seen from a vertex.
struct HalfEdge {
  Vertex to;
  Weight weight;
  EdgeId edge;
};

/// A full undirected edge (u < v is guaranteed by GraphBuilder).
struct Edge {
  Vertex u;
  Vertex v;
  Weight weight;
};

class Graph {
 public:
  Graph() = default;

  Vertex vertex_count() const { return narrow<Vertex>(offsets_.size() - 1); }
  EdgeId edge_count() const { return narrow<EdgeId>(edges_.size()); }

  /// Adjacency of v as a contiguous span of half edges.
  std::span<const HalfEdge> neighbors(Vertex v) const {
    HGP_ASSERT(v >= 0 && v < vertex_count());
    return {adjacency_.data() + offsets_[static_cast<std::size_t>(v)],
            adjacency_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  std::size_t degree(Vertex v) const { return neighbors(v).size(); }

  const Edge& edge(EdgeId e) const {
    HGP_ASSERT(e >= 0 && e < edge_count());
    return edges_[static_cast<std::size_t>(e)];
  }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Sum of all edge weights.
  Weight total_edge_weight() const { return total_edge_weight_; }

  /// Sum of edge weights incident to v.
  Weight weighted_degree(Vertex v) const {
    Weight s = 0;
    for (const HalfEdge& h : neighbors(v)) s += h.weight;
    return s;
  }

  /// Processing demand of v; demands() is empty iff demands were never set.
  bool has_demands() const { return !demand_.empty(); }
  double demand(Vertex v) const {
    HGP_ASSERT(has_demands());
    return demand_[static_cast<std::size_t>(v)];
  }
  const std::vector<double>& demands() const { return demand_; }
  void set_demands(std::vector<double> demand) {
    HGP_CHECK_MSG(demand.size() == static_cast<std::size_t>(vertex_count()),
                  "demand vector size must equal vertex count");
    demand_ = std::move(demand);
  }
  double total_demand() const {
    double s = 0;
    for (double d : demand_) s += d;
    return s;
  }

  /// Weight of edges crossing the bipartition given by side[v] ∈ {false,true}.
  Weight cut_weight(const std::vector<char>& side) const;

  /// Weight of edges with exactly one endpoint in the vertex set
  /// (in_set[v] != 0) — the boundary δ(S) used throughout the paper as
  /// w(CUT(S)).
  Weight boundary_weight(const std::vector<char>& in_set) const {
    return cut_weight(in_set);
  }

  /// Connected components; returns component id per vertex, ids in [0,k).
  std::vector<Vertex> components(Vertex* component_count = nullptr) const;
  bool is_connected() const;

  /// Induced subgraph on `vertices` (order defines new vertex ids).
  /// Demands are carried over when present.
  Graph induced_subgraph(std::span<const Vertex> vertices) const;

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_{0};
  std::vector<HalfEdge> adjacency_;
  std::vector<Edge> edges_;
  std::vector<double> demand_;
  Weight total_edge_weight_ = 0;
};

/// Accumulates edges, then builds an immutable Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex vertex_count);

  Vertex vertex_count() const { return vertex_count_; }

  /// Adds an undirected edge; self-loops are silently ignored, parallel
  /// edges are merged (weights summed) at build time.
  void add_edge(Vertex u, Vertex v, Weight weight);

  /// Sets the demand of one vertex (default for unset vertices is 1 / n
  /// unless demands are never touched, in which case the graph has none).
  void set_demand(Vertex v, double demand);

  /// Builds the CSR graph.  The builder is left empty afterwards.
  Graph build();

 private:
  Vertex vertex_count_;
  std::vector<Edge> pending_;
  std::vector<double> demand_;
  bool has_demand_ = false;
};

}  // namespace hgp
