#include "graph/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hgp {

namespace {

/// Removes the component along the all-ones direction and renormalizes.
bool deflate_and_normalize(std::vector<double>& x) {
  const double n = static_cast<double>(x.size());
  double mean = std::accumulate(x.begin(), x.end(), 0.0) / n;
  for (double& v : x) v -= mean;
  double norm = 0;
  for (double v : x) norm += v * v;
  norm = std::sqrt(norm);
  if (norm < 1e-14) return false;
  for (double& v : x) v /= norm;
  return true;
}

}  // namespace

std::vector<double> fiedler_vector(const Graph& g, Rng& rng,
                                   const FiedlerOptions& opt) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  HGP_CHECK(n >= 2);
  // Shift: (cI - L) has the Fiedler vector as its dominant non-constant
  // eigenvector when c ≥ λ_max(L); λ_max(L) ≤ 2 · max weighted degree.
  double max_wdeg = 0;
  std::vector<double> wdeg(n, 0);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    wdeg[static_cast<std::size_t>(v)] = g.weighted_degree(v);
    max_wdeg = std::max(max_wdeg, wdeg[static_cast<std::size_t>(v)]);
  }
  const double c = 2.0 * max_wdeg + 1.0;

  std::vector<double> x(n), y(n);
  for (double& v : x) v = rng.next_double() - 0.5;
  if (!deflate_and_normalize(x)) x[0] = 1.0;

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    // y = (cI - L) x = (c - wdeg(v)) x_v + Σ_u w(u,v) x_u.
    for (std::size_t v = 0; v < n; ++v) y[v] = (c - wdeg[v]) * x[v];
    for (const Edge& e : g.edges()) {
      y[static_cast<std::size_t>(e.u)] +=
          e.weight * x[static_cast<std::size_t>(e.v)];
      y[static_cast<std::size_t>(e.v)] +=
          e.weight * x[static_cast<std::size_t>(e.u)];
    }
    if (!deflate_and_normalize(y)) break;
    double diff = 0;
    for (std::size_t v = 0; v < n; ++v) diff += std::abs(y[v] - x[v]);
    x.swap(y);
    if (diff < opt.tolerance) break;
  }
  return x;
}

std::vector<char> spectral_bisect(const Graph& g, Rng& rng,
                                  const FiedlerOptions& opt) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  HGP_CHECK(n >= 2);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (g.edge_count() > 0) {
    const std::vector<double> f = fiedler_vector(g, rng, opt);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return f[a] < f[b]; });
  } else {
    rng.shuffle(order);
  }
  // Split at the demand-weighted median (unit demand when absent).
  double total = 0;
  auto demand_of = [&](std::size_t v) {
    return g.has_demands() ? g.demand(narrow<Vertex>(v)) : 1.0;
  };
  for (std::size_t v = 0; v < n; ++v) total += demand_of(v);
  std::vector<char> side(n, 0);
  double acc = 0;
  std::size_t placed = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t v = order[i];
    if (placed > 0 && acc + demand_of(v) / 2 > total / 2) break;
    side[v] = 1;
    acc += demand_of(v);
    ++placed;
  }
  return side;
}

}  // namespace hgp
