#include "graph/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace hgp {

namespace {
constexpr Weight kFlowEps = 1e-12;
}

Dinic::Dinic(Vertex n) : n_(n), adj_(static_cast<std::size_t>(n)) {
  HGP_CHECK(n >= 0);
}

void Dinic::add_arc(Vertex from, Vertex to, Weight capacity) {
  HGP_CHECK(from >= 0 && from < n_ && to >= 0 && to < n_);
  HGP_CHECK(capacity >= 0);
  auto& fa = adj_[static_cast<std::size_t>(from)];
  auto& ta = adj_[static_cast<std::size_t>(to)];
  fa.push_back(Arc{to, capacity, ta.size()});
  ta.push_back(Arc{from, 0, fa.size() - 1});
}

void Dinic::add_undirected_edge(Vertex u, Vertex v, Weight capacity) {
  HGP_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  HGP_CHECK(capacity >= 0);
  auto& ua = adj_[static_cast<std::size_t>(u)];
  auto& va = adj_[static_cast<std::size_t>(v)];
  ua.push_back(Arc{v, capacity, va.size()});
  va.push_back(Arc{u, capacity, ua.size() - 1});
}

bool Dinic::bfs(Vertex s, Vertex t) {
  level_.assign(static_cast<std::size_t>(n_), -1);
  std::queue<Vertex> q;
  level_[static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (const Arc& a : adj_[static_cast<std::size_t>(v)]) {
      if (a.capacity > kFlowEps && level_[static_cast<std::size_t>(a.to)] < 0) {
        level_[static_cast<std::size_t>(a.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        q.push(a.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

Weight Dinic::dfs(Vertex v, Vertex t, Weight limit) {
  if (v == t) return limit;
  for (std::size_t& i = iter_[static_cast<std::size_t>(v)];
       i < adj_[static_cast<std::size_t>(v)].size(); ++i) {
    Arc& a = adj_[static_cast<std::size_t>(v)][i];
    if (a.capacity <= kFlowEps ||
        level_[static_cast<std::size_t>(a.to)] !=
            level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const Weight pushed = dfs(a.to, t, std::min(limit, a.capacity));
    if (pushed > kFlowEps) {
      a.capacity -= pushed;
      adj_[static_cast<std::size_t>(a.to)][a.rev].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

MaxFlowResult Dinic::solve(Vertex s, Vertex t) {
  HGP_CHECK(s >= 0 && s < n_ && t >= 0 && t < n_);
  HGP_CHECK(s != t);
  MaxFlowResult result;
  while (bfs(s, t)) {
    iter_.assign(static_cast<std::size_t>(n_), 0);
    for (;;) {
      const Weight pushed =
          dfs(s, t, std::numeric_limits<Weight>::infinity());
      if (pushed <= kFlowEps) break;
      result.value += pushed;
    }
  }
  result.source_side.assign(static_cast<std::size_t>(n_), 0);
  // level_ holds the last (failed) BFS: exactly the residual-reachable set.
  for (Vertex v = 0; v < n_; ++v) {
    result.source_side[static_cast<std::size_t>(v)] =
        level_[static_cast<std::size_t>(v)] >= 0 ? 1 : 0;
  }
  return result;
}

MaxFlowResult Dinic::min_st_cut(const Graph& g, Vertex s, Vertex t) {
  Dinic d(g.vertex_count());
  for (const Edge& e : g.edges()) d.add_undirected_edge(e.u, e.v, e.weight);
  return d.solve(s, t);
}

}  // namespace hgp
