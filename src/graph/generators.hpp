// Synthetic workload generators.
//
// These reproduce the structural families the paper motivates (streaming
// operator DAGs pinned to core hierarchies) and the standard partitioning
// test families (random, clustered, mesh, scale-free, trees).  All
// generators are deterministic in their seed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/mutation_log.hpp"
#include "util/prng.hpp"

namespace hgp::gen {

/// Closed range for random edge weights; lo == hi gives constant weights.
struct WeightRange {
  Weight lo = 1.0;
  Weight hi = 1.0;
};

/// Erdős–Rényi G(n, p).  Guaranteed simple; may be disconnected.
Graph erdos_renyi(Vertex n, double p, Rng& rng, WeightRange w = {});

/// Planted-partition (stochastic block model): `clusters` equal groups,
/// intra-group edge probability p_in, inter-group p_out.  With
/// p_in >> p_out the optimal hierarchical placement is the planted one,
/// which makes approximation quality visible in experiments.
Graph planted_partition(Vertex n, int clusters, double p_in, double p_out,
                        Rng& rng, WeightRange w_in = {}, WeightRange w_out = {});

/// 2-D grid graph (rows × cols, 4-neighbour).
Graph grid2d(int rows, int cols, WeightRange w = {}, Rng* rng = nullptr);

/// 3-D grid graph (6-neighbour).
Graph grid3d(int nx, int ny, int nz, WeightRange w = {}, Rng* rng = nullptr);

/// Barabási–Albert preferential attachment; each new vertex attaches
/// `attach` edges.  Scale-free degree distribution.
Graph barabasi_albert(Vertex n, int attach, Rng& rng, WeightRange w = {});

/// Uniform random labelled tree on n vertices (via random Prüfer sequence).
Graph random_tree(Vertex n, Rng& rng, WeightRange w = {});

/// Cycle on n vertices.
Graph ring(Vertex n, WeightRange w = {}, Rng* rng = nullptr);

/// Complete graph on n vertices.
Graph complete(Vertex n, WeightRange w = {}, Rng* rng = nullptr);

/// Parameters of the layered stream-processing DAG generator (the
/// TidalRace-style workload from the paper's introduction: sources →
/// operator stages → sinks, with a few high-volume channels).
struct StreamDagOptions {
  int sources = 4;
  int sinks = 2;
  int stages = 3;            ///< operator layers between sources and sinks
  int stage_width = 8;       ///< operators per stage
  int max_fanout = 3;        ///< outgoing channels per task (≥ 1)
  double heavy_fraction = 0.2;  ///< fraction of channels with heavy volume
  Weight light_lo = 1.0, light_hi = 4.0;
  Weight heavy_lo = 20.0, heavy_hi = 50.0;
  double demand_lo = 0.05, demand_hi = 0.35;  ///< CPU-fraction demands
};

/// Layered communicating-task DAG (undirected communication volumes).
/// Vertex order: sources, stage 0, …, stage k-1, sinks.
Graph stream_dag(const StreamDagOptions& opt, Rng& rng);

/// Sets every demand to `d` (must be in (0,1]).
void set_uniform_demands(Graph& g, double d);

/// Draws demands i.i.d. uniform in [lo, hi] ⊆ (0,1].
void set_random_demands(Graph& g, Rng& rng, double lo, double hi);

/// Demands n/k-style used by the k-BGP reduction: every vertex gets 1/cap
/// so exactly `cap` vertices fit on a leaf.
void set_kbgp_demands(Graph& g, int vertices_per_leaf);

/// Parameters of the seeded churn-schedule generator: a mixed stream of
/// mutations (vertices joining and leaving, channels appearing, volume and
/// demand drift) drawn against a MutationLog's live state.
struct ChurnOptions {
  /// Mutation draws.  A draw that cannot apply (e.g. kAddEdge on a clique,
  /// kRemoveVertex at the min_live floor) is skipped, so the log may end
  /// up shorter than `ops`.
  int ops = 32;
  /// Relative odds of each kind (need not sum to 1; kinds whose
  /// precondition fails are excluded from that draw).
  double w_add_vertex = 1.0;
  double w_remove_vertex = 1.0;
  double w_add_edge = 2.0;
  double w_remove_edge = 2.0;
  double w_reweight_edge = 3.0;
  double w_set_demand = 3.0;
  /// Weights of added/reweighted edges.
  WeightRange weight = {1.0, 8.0};
  /// Demands of added vertices and kSetDemand targets.
  double demand_lo = 0.05, demand_hi = 0.35;
  /// Edges wired from each added vertex to random live vertices (each is
  /// its own kAddEdge op; 0 leaves the vertex isolated).
  int attach_lo = 1, attach_hi = 3;
  /// kRemoveVertex never drops the live count below this.
  Vertex min_live = 2;
};

/// Appends a churn schedule to `log`.  Deterministic in (log state, opt,
/// rng state): identical seeds replay identical op sequences, which the
/// differential churn suite (tests/test_churn_differential.cpp) relies on
/// to reproduce failures from a single printed seed.
void churn(MutationLog& log, const ChurnOptions& opt, Rng& rng);

}  // namespace hgp::gen
