// Global minimum cut (Stoer–Wagner).
//
// Used to sanity-check decomposition-tree edge weights (Proposition 1) and
// as a verification oracle in tests.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace hgp {

struct MinCutResult {
  Weight weight = 0;
  /// side[v] != 0 for vertices on one shore of the cut.
  std::vector<char> side;
};

/// Stoer–Wagner global min cut, O(n³) with adjacency-matrix phases.
/// Requires a connected graph with ≥ 2 vertices.
MinCutResult global_min_cut(const Graph& g);

}  // namespace hgp
