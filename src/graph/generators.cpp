#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>

namespace hgp::gen {

namespace {

Weight draw_weight(const WeightRange& w, Rng* rng) {
  if (w.lo == w.hi || rng == nullptr) return w.lo;
  return rng->next_double(w.lo, w.hi);
}

}  // namespace

Graph erdos_renyi(Vertex n, double p, Rng& rng, WeightRange w) {
  HGP_CHECK(n >= 0);
  HGP_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p >= 1.0) {
    for (Vertex u = 0; u < n; ++u)
      for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v, draw_weight(w, &rng));
    return b.build();
  }
  if (p > 0.0) {
    // Geometric skipping (Batagelj–Brandes): expected O(n + m) time.
    const double log1mp = std::log1p(-p);
    std::int64_t v = 1, u = -1;
    while (v < n) {
      const double r = rng.next_double();
      u += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-r) / log1mp));
      while (u >= v && v < n) {
        u -= v;
        ++v;
      }
      if (v < n) {
        b.add_edge(narrow<Vertex>(v), narrow<Vertex>(u), draw_weight(w, &rng));
      }
    }
  }
  return b.build();
}

Graph planted_partition(Vertex n, int clusters, double p_in, double p_out,
                        Rng& rng, WeightRange w_in, WeightRange w_out) {
  HGP_CHECK(n >= 0 && clusters >= 1);
  GraphBuilder b(n);
  auto cluster_of = [&](Vertex v) {
    return static_cast<int>(static_cast<std::int64_t>(v) * clusters / n);
  };
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const bool same = cluster_of(u) == cluster_of(v);
      const double p = same ? p_in : p_out;
      if (rng.next_bool(p)) {
        b.add_edge(u, v, draw_weight(same ? w_in : w_out, &rng));
      }
    }
  }
  return b.build();
}

Graph grid2d(int rows, int cols, WeightRange w, Rng* rng) {
  HGP_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(narrow<Vertex>(static_cast<std::int64_t>(rows) * cols));
  auto id = [cols](int r, int c) { return narrow<Vertex>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1), draw_weight(w, rng));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c), draw_weight(w, rng));
    }
  }
  return b.build();
}

Graph grid3d(int nx, int ny, int nz, WeightRange w, Rng* rng) {
  HGP_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  GraphBuilder b(
      narrow<Vertex>(static_cast<std::int64_t>(nx) * ny * nz));
  auto id = [ny, nz](int x, int y, int z) {
    return narrow<Vertex>((x * ny + y) * nz + z);
  };
  for (int x = 0; x < nx; ++x)
    for (int y = 0; y < ny; ++y)
      for (int z = 0; z < nz; ++z) {
        if (x + 1 < nx)
          b.add_edge(id(x, y, z), id(x + 1, y, z), draw_weight(w, rng));
        if (y + 1 < ny)
          b.add_edge(id(x, y, z), id(x, y + 1, z), draw_weight(w, rng));
        if (z + 1 < nz)
          b.add_edge(id(x, y, z), id(x, y, z + 1), draw_weight(w, rng));
      }
  return b.build();
}

Graph barabasi_albert(Vertex n, int attach, Rng& rng, WeightRange w) {
  HGP_CHECK(n >= 1 && attach >= 1);
  GraphBuilder b(n);
  // Repeated-endpoint list: picking a uniform entry is preferential
  // attachment by degree.
  std::vector<Vertex> endpoints;
  const Vertex seed_size = narrow<Vertex>(std::min<std::int64_t>(attach + 1, n));
  for (Vertex u = 0; u < seed_size; ++u) {
    for (Vertex v = u + 1; v < seed_size; ++v) {
      b.add_edge(u, v, draw_weight(w, &rng));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (Vertex v = seed_size; v < n; ++v) {
    std::vector<Vertex> targets;
    int guard = 0;
    while (narrow<int>(targets.size()) < attach && guard++ < 64 * attach) {
      const Vertex t = endpoints[rng.next_below(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (Vertex t : targets) {
      b.add_edge(v, t, draw_weight(w, &rng));
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return b.build();
}

Graph random_tree(Vertex n, Rng& rng, WeightRange w) {
  HGP_CHECK(n >= 1);
  GraphBuilder b(n);
  if (n >= 2) {
    // Decode a uniform random Prüfer sequence (min-heap of current leaves).
    std::vector<Vertex> pruefer(static_cast<std::size_t>(n - 2));
    for (auto& x : pruefer) x = narrow<Vertex>(rng.next_below(n));
    std::vector<int> deg(static_cast<std::size_t>(n), 1);
    for (Vertex x : pruefer) ++deg[static_cast<std::size_t>(x)];
    std::priority_queue<Vertex, std::vector<Vertex>, std::greater<>> leaves;
    for (Vertex v = 0; v < n; ++v) {
      if (deg[static_cast<std::size_t>(v)] == 1) leaves.push(v);
    }
    for (Vertex x : pruefer) {
      const Vertex leaf = leaves.top();
      leaves.pop();
      b.add_edge(leaf, x, draw_weight(w, &rng));
      if (--deg[static_cast<std::size_t>(x)] == 1) leaves.push(x);
    }
    const Vertex a = leaves.top();
    leaves.pop();
    const Vertex c = leaves.top();
    b.add_edge(a, c, draw_weight(w, &rng));
  }
  return b.build();
}

Graph ring(Vertex n, WeightRange w, Rng* rng) {
  HGP_CHECK(n >= 0);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1, draw_weight(w, rng));
  if (n >= 3) b.add_edge(n - 1, 0, draw_weight(w, rng));
  return b.build();
}

Graph complete(Vertex n, WeightRange w, Rng* rng) {
  HGP_CHECK(n >= 0);
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v, draw_weight(w, rng));
  return b.build();
}

Graph stream_dag(const StreamDagOptions& opt, Rng& rng) {
  HGP_CHECK(opt.sources >= 1 && opt.sinks >= 1);
  HGP_CHECK(opt.stages >= 0 && opt.stage_width >= 1 && opt.max_fanout >= 1);
  // Layer layout: [sources][stage 0]…[stage k-1][sinks].
  std::vector<int> layer_size;
  layer_size.push_back(opt.sources);
  for (int s = 0; s < opt.stages; ++s) layer_size.push_back(opt.stage_width);
  layer_size.push_back(opt.sinks);

  std::vector<Vertex> layer_start;
  Vertex n = 0;
  for (int sz : layer_size) {
    layer_start.push_back(n);
    n = narrow<Vertex>(n + sz);
  }
  GraphBuilder b(n);
  auto channel_weight = [&] {
    return rng.next_bool(opt.heavy_fraction)
               ? rng.next_double(opt.heavy_lo, opt.heavy_hi)
               : rng.next_double(opt.light_lo, opt.light_hi);
  };
  for (std::size_t layer = 0; layer + 1 < layer_size.size(); ++layer) {
    const Vertex from0 = layer_start[layer];
    const Vertex to0 = layer_start[layer + 1];
    const int to_n = layer_size[layer + 1];
    for (int i = 0; i < layer_size[layer]; ++i) {
      const Vertex u = narrow<Vertex>(from0 + i);
      const int fanout =
          1 + narrow<int>(rng.next_below(static_cast<std::uint64_t>(
                  std::min(opt.max_fanout, to_n))));
      for (int f = 0; f < fanout; ++f) {
        const Vertex v = narrow<Vertex>(
            to0 + narrow<Vertex>(rng.next_below(
                      static_cast<std::uint64_t>(to_n))));
        b.add_edge(u, v, channel_weight());
      }
    }
    // Ensure every downstream task has at least one producer.
    for (int j = 0; j < to_n; ++j) {
      const Vertex v = narrow<Vertex>(to0 + j);
      const Vertex u = narrow<Vertex>(
          from0 + narrow<Vertex>(rng.next_below(
                      static_cast<std::uint64_t>(layer_size[layer]))));
      b.add_edge(u, v, channel_weight());
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    b.set_demand(v, rng.next_double(opt.demand_lo, opt.demand_hi));
  }
  return b.build();
}

void set_uniform_demands(Graph& g, double d) {
  HGP_CHECK(d > 0.0 && d <= 1.0);
  g.set_demands(
      std::vector<double>(static_cast<std::size_t>(g.vertex_count()), d));
}

void set_random_demands(Graph& g, Rng& rng, double lo, double hi) {
  HGP_CHECK(lo > 0.0 && hi <= 1.0 && lo <= hi);
  std::vector<double> d(static_cast<std::size_t>(g.vertex_count()));
  for (auto& x : d) x = rng.next_double(lo, hi);
  g.set_demands(std::move(d));
}

void set_kbgp_demands(Graph& g, int vertices_per_leaf) {
  HGP_CHECK(vertices_per_leaf >= 1);
  set_uniform_demands(g, 1.0 / vertices_per_leaf);
}

namespace {

std::vector<Vertex> live_vertices(const MutationLog& log) {
  std::vector<Vertex> out;
  out.reserve(static_cast<std::size_t>(log.live_vertex_count()));
  for (Vertex s = 0; s < log.stable_id_count(); ++s) {
    if (log.alive(s)) out.push_back(s);
  }
  return out;
}

/// Every live edge (stable ids): base edges still present, then overlay
/// additions.  Deterministic order (CSR edge order, then sorted deltas).
std::vector<std::pair<Vertex, Vertex>> live_edges(const MutationLog& log) {
  std::vector<std::pair<Vertex, Vertex>> out;
  for (const Edge& e : log.base().edges()) {
    if (log.alive(e.u) && log.alive(e.v) && log.has_edge(e.u, e.v)) {
      out.emplace_back(e.u, e.v);
    }
  }
  for (const MutationLog::EdgeDelta& d : log.edge_deltas()) {
    if (!d.old_present && d.new_present) out.emplace_back(d.u, d.v);
  }
  return out;
}

}  // namespace

void churn(MutationLog& log, const ChurnOptions& opt, Rng& rng) {
  HGP_CHECK(opt.ops >= 0);
  HGP_CHECK(opt.demand_lo > 0.0 && opt.demand_hi <= 1.0 &&
            opt.demand_lo <= opt.demand_hi);
  HGP_CHECK(opt.attach_lo >= 0 && opt.attach_lo <= opt.attach_hi);
  const auto demand = [&] {
    return rng.next_double(opt.demand_lo, opt.demand_hi);
  };
  const auto weight = [&] {
    return opt.weight.lo == opt.weight.hi
               ? opt.weight.lo
               : rng.next_double(opt.weight.lo, opt.weight.hi);
  };
  for (int i = 0; i < opt.ops; ++i) {
    const std::vector<Vertex> live = live_vertices(log);
    const std::vector<std::pair<Vertex, Vertex>> edges = live_edges(log);

    // Weighted draw over the kinds whose precondition currently holds.
    struct Choice {
      MutationKind kind;
      double w;
    };
    Choice choices[6];
    int nc = 0;
    choices[nc++] = {MutationKind::kAddVertex, opt.w_add_vertex};
    if (log.live_vertex_count() > opt.min_live) {
      choices[nc++] = {MutationKind::kRemoveVertex, opt.w_remove_vertex};
    }
    if (live.size() >= 2) {
      choices[nc++] = {MutationKind::kAddEdge, opt.w_add_edge};
    }
    if (!edges.empty()) {
      choices[nc++] = {MutationKind::kRemoveEdge, opt.w_remove_edge};
      choices[nc++] = {MutationKind::kReweightEdge, opt.w_reweight_edge};
    }
    if (!live.empty()) {
      choices[nc++] = {MutationKind::kSetDemand, opt.w_set_demand};
    }
    double total = 0;
    for (int c = 0; c < nc; ++c) total += choices[c].w;
    if (total <= 0) break;
    double r = rng.next_double(0.0, total);
    MutationKind kind = choices[nc - 1].kind;
    for (int c = 0; c < nc; ++c) {
      if (r < choices[c].w) {
        kind = choices[c].kind;
        break;
      }
      r -= choices[c].w;
    }

    switch (kind) {
      case MutationKind::kAddVertex: {
        const Vertex nv = log.add_vertex(demand());
        const int attach = static_cast<int>(
            rng.next_int(opt.attach_lo, opt.attach_hi));
        // Wire to distinct pre-existing live vertices (bounded retries keep
        // the draw deterministic without risking a spin on dense graphs).
        for (int a = 0; a < attach && !live.empty(); ++a) {
          for (int tries = 0; tries < 8; ++tries) {
            const Vertex t = live[rng.next_below(live.size())];
            if (!log.has_edge(nv, t)) {
              log.add_edge(nv, t, weight());
              break;
            }
          }
        }
        break;
      }
      case MutationKind::kRemoveVertex:
        log.remove_vertex(live[rng.next_below(live.size())]);
        break;
      case MutationKind::kAddEdge: {
        for (int tries = 0; tries < 16; ++tries) {
          const Vertex u = live[rng.next_below(live.size())];
          const Vertex v = live[rng.next_below(live.size())];
          if (u != v && !log.has_edge(u, v)) {
            log.add_edge(u, v, weight());
            break;
          }
        }
        break;
      }
      case MutationKind::kRemoveEdge: {
        const auto [u, v] = edges[rng.next_below(edges.size())];
        log.remove_edge(u, v);
        break;
      }
      case MutationKind::kReweightEdge: {
        const auto [u, v] = edges[rng.next_below(edges.size())];
        log.reweight_edge(u, v, weight());
        break;
      }
      case MutationKind::kSetDemand:
        log.set_demand(live[rng.next_below(live.size())], demand());
        break;
    }
  }
}

}  // namespace hgp::gen
