#include "graph/mincut.hpp"

#include <algorithm>
#include <limits>

namespace hgp {

MinCutResult global_min_cut(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  HGP_CHECK_MSG(n >= 2, "global_min_cut needs at least 2 vertices");
  HGP_CHECK_MSG(g.is_connected(), "global_min_cut needs a connected graph");

  // Dense weight matrix; merged "super vertices" track original members.
  std::vector<std::vector<Weight>> w(n, std::vector<Weight>(n, 0));
  for (const Edge& e : g.edges()) {
    w[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)] += e.weight;
    w[static_cast<std::size_t>(e.v)][static_cast<std::size_t>(e.u)] += e.weight;
  }
  std::vector<std::vector<Vertex>> members(n);
  for (std::size_t v = 0; v < n; ++v) members[v] = {narrow<Vertex>(v)};
  std::vector<std::size_t> active(n);
  for (std::size_t v = 0; v < n; ++v) active[v] = v;

  MinCutResult best;
  best.weight = std::numeric_limits<Weight>::infinity();
  best.side.assign(n, 0);

  while (active.size() > 1) {
    // Maximum-adjacency (minimum-cut-phase) ordering.
    std::vector<Weight> conn(n, 0);
    std::vector<char> added(n, 0);
    std::size_t prev = active[0], last = active[0];
    added[last] = 1;
    for (std::size_t u : active) conn[u] = w[last][u];
    for (std::size_t step = 1; step < active.size(); ++step) {
      std::size_t pick = n;
      Weight pick_conn = -1;
      for (std::size_t u : active) {
        if (!added[u] && conn[u] > pick_conn) {
          pick_conn = conn[u];
          pick = u;
        }
      }
      prev = last;
      last = pick;
      added[last] = 1;
      for (std::size_t u : active) {
        if (!added[u]) conn[u] += w[last][u];
      }
    }
    // Cut-of-the-phase: `last` alone vs the rest.
    if (conn[last] < best.weight) {
      best.weight = conn[last];
      std::fill(best.side.begin(), best.side.end(), 0);
      for (Vertex v : members[last]) best.side[static_cast<std::size_t>(v)] = 1;
    }
    // Merge `last` into `prev`.
    for (std::size_t u : active) {
      if (u == last || u == prev) continue;
      w[prev][u] += w[last][u];
      w[u][prev] = w[prev][u];
    }
    members[prev].insert(members[prev].end(), members[last].begin(),
                         members[last].end());
    active.erase(std::find(active.begin(), active.end(), last));
  }
  return best;
}

}  // namespace hgp
