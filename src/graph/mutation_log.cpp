#include "graph/mutation_log.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace hgp {

MutationLog::MutationLog(const Graph& base)
    : base_(&base), base_n_(base.vertex_count()) {
  HGP_CHECK_MSG(base.has_demands(),
                "MutationLog requires a base graph with vertex demands");
  alive_.assign(static_cast<std::size_t>(base_n_), 1);
  demand_ = base.demands();
  live_count_ = base_n_;
}

std::uint64_t MutationLog::edge_key(Vertex u, Vertex v) {
  const auto a = static_cast<std::uint64_t>(std::min(u, v));
  const auto b = static_cast<std::uint64_t>(std::max(u, v));
  return (a << 32) | b;
}

void MutationLog::check_live(Vertex v, const char* who) const {
  HGP_CHECK_MSG(v >= 0 && v < stable_id_count(), who);
  HGP_CHECK_MSG(alive(v), who);
}

bool MutationLog::base_edge(Vertex u, Vertex v, Weight* w) const {
  if (u >= base_n_ || v >= base_n_) return false;
  for (const HalfEdge& h : base_->neighbors(u)) {
    if (h.to == v) {
      if (w != nullptr) *w = h.weight;
      return true;
    }
  }
  return false;
}

double MutationLog::demand_of(Vertex stable_id) const {
  check_live(stable_id, "demand_of requires a live vertex");
  return demand_[static_cast<std::size_t>(stable_id)];
}

bool MutationLog::has_edge(Vertex u, Vertex v) const {
  if (u == v) return false;
  const auto it = edges_.find(edge_key(u, v));
  if (it != edges_.end()) return it->second.present;
  return base_edge(u, v, nullptr);
}

Weight MutationLog::edge_weight(Vertex u, Vertex v) const {
  const auto it = edges_.find(edge_key(u, v));
  if (it != edges_.end()) {
    HGP_CHECK_MSG(it->second.present, "edge_weight on a removed edge");
    return it->second.weight;
  }
  Weight w = 0;
  HGP_CHECK_MSG(base_edge(u, v, &w), "edge_weight on a missing edge");
  return w;
}

Vertex MutationLog::add_vertex(double demand) {
  HGP_CHECK_MSG(demand > 0 && demand <= 1.0,
                "vertex demand must be in (0, 1]");
  const Vertex id = stable_id_count();
  alive_.push_back(1);
  demand_.push_back(demand);
  ++live_count_;
  ops_.push_back(Mutation{MutationKind::kAddVertex, id, kInvalidVertex,
                          demand, 0});
  return id;
}

void MutationLog::revive_vertex(Vertex v, double demand) {
  HGP_CHECK_MSG(v >= 0 && v < stable_id_count() && !alive(v),
                "revive_vertex requires a retired stable id");
  alive_[static_cast<std::size_t>(v)] = 1;
  demand_[static_cast<std::size_t>(v)] = demand;
  ++live_count_;
  ops_.push_back(Mutation{MutationKind::kAddVertex, v, kInvalidVertex,
                          demand, 0});
}

void MutationLog::remove_vertex(Vertex v) {
  check_live(v, "remove_vertex requires a live vertex");
  HGP_CHECK_MSG(live_count_ > 1, "cannot remove the last live vertex");
  // Remove incident edges first: overlay edges touching v, then base edges
  // not already shadowed by an overlay entry.  Each removal is its own op,
  // so the undo path restores them edge by edge.
  std::vector<std::pair<Vertex, Vertex>> incident;
  for (const auto& [key, state] : edges_) {
    if (!state.present) continue;
    const auto a = static_cast<Vertex>(key >> 32);
    const auto b = static_cast<Vertex>(key & 0xffffffffu);
    if (a == v || b == v) incident.emplace_back(a, b);
  }
  if (v < base_n_) {
    for (const HalfEdge& h : base_->neighbors(v)) {
      if (edges_.find(edge_key(v, h.to)) == edges_.end()) {
        incident.emplace_back(std::min(v, h.to), std::max(v, h.to));
      }
    }
  }
  std::sort(incident.begin(), incident.end());
  for (const auto& [a, b] : incident) remove_edge(a, b);

  alive_[static_cast<std::size_t>(v)] = 0;
  --live_count_;
  ops_.push_back(Mutation{MutationKind::kRemoveVertex, v, kInvalidVertex, 0,
                          demand_[static_cast<std::size_t>(v)]});
}

void MutationLog::add_edge(Vertex u, Vertex v, Weight weight) {
  check_live(u, "add_edge requires live endpoints");
  check_live(v, "add_edge requires live endpoints");
  HGP_CHECK_MSG(u != v, "self-loops are not allowed");
  HGP_CHECK_MSG(weight > 0, "edge weight must be positive");
  HGP_CHECK_MSG(!has_edge(u, v), "add_edge on an existing edge");
  edges_[edge_key(u, v)] = EdgeState{true, weight};
  ops_.push_back(Mutation{MutationKind::kAddEdge, std::min(u, v),
                          std::max(u, v), weight, 0});
}

void MutationLog::remove_edge(Vertex u, Vertex v) {
  check_live(u, "remove_edge requires live endpoints");
  check_live(v, "remove_edge requires live endpoints");
  HGP_CHECK_MSG(has_edge(u, v), "remove_edge on a missing edge");
  const Weight prev = edge_weight(u, v);
  edges_[edge_key(u, v)] = EdgeState{false, 0};
  ops_.push_back(Mutation{MutationKind::kRemoveEdge, std::min(u, v),
                          std::max(u, v), 0, prev});
}

void MutationLog::reweight_edge(Vertex u, Vertex v, Weight weight) {
  check_live(u, "reweight_edge requires live endpoints");
  check_live(v, "reweight_edge requires live endpoints");
  HGP_CHECK_MSG(weight > 0, "edge weight must be positive");
  HGP_CHECK_MSG(has_edge(u, v), "reweight_edge on a missing edge");
  const Weight prev = edge_weight(u, v);
  edges_[edge_key(u, v)] = EdgeState{true, weight};
  ops_.push_back(Mutation{MutationKind::kReweightEdge, std::min(u, v),
                          std::max(u, v), weight, prev});
}

void MutationLog::set_demand(Vertex v, double demand) {
  check_live(v, "set_demand requires a live vertex");
  HGP_CHECK_MSG(demand > 0 && demand <= 1.0,
                "vertex demand must be in (0, 1]");
  const double prev = demand_[static_cast<std::size_t>(v)];
  demand_[static_cast<std::size_t>(v)] = demand;
  ops_.push_back(Mutation{MutationKind::kSetDemand, v, kInvalidVertex,
                          demand, prev});
}

MutationLog::Materialized MutationLog::materialize() const {
  HGP_CHECK_MSG(live_count_ >= 1, "cannot materialize an empty graph");
  Materialized out;
  out.compact_of.assign(static_cast<std::size_t>(stable_id_count()),
                        kInvalidVertex);
  out.stable_of.reserve(static_cast<std::size_t>(live_count_));
  for (Vertex s = 0; s < stable_id_count(); ++s) {
    if (!alive(s)) continue;
    out.compact_of[static_cast<std::size_t>(s)] =
        narrow<Vertex>(out.stable_of.size());
    out.stable_of.push_back(s);
  }

  GraphBuilder builder(live_count_);
  // Base edges not shadowed by the overlay; a base edge incident to a dead
  // vertex always has a present=false overlay entry (remove_vertex emits
  // it), so the alive() check is belt-and-braces.
  for (const Edge& e : base_->edges()) {
    if (!alive(e.u) || !alive(e.v)) continue;
    if (edges_.find(edge_key(e.u, e.v)) != edges_.end()) continue;
    builder.add_edge(out.compact_of[static_cast<std::size_t>(e.u)],
                     out.compact_of[static_cast<std::size_t>(e.v)], e.weight);
  }
  for (const auto& [key, state] : edges_) {
    if (!state.present) continue;
    const auto a = static_cast<Vertex>(key >> 32);
    const auto b = static_cast<Vertex>(key & 0xffffffffu);
    builder.add_edge(out.compact_of[static_cast<std::size_t>(a)],
                     out.compact_of[static_cast<std::size_t>(b)],
                     state.weight);
  }
  for (Vertex s = 0; s < stable_id_count(); ++s) {
    if (alive(s)) {
      builder.set_demand(out.compact_of[static_cast<std::size_t>(s)],
                         demand_[static_cast<std::size_t>(s)]);
    }
  }
  out.graph = builder.build();
  return out;
}

std::vector<MutationLog::EdgeDelta> MutationLog::edge_deltas() const {
  std::vector<EdgeDelta> deltas;
  deltas.reserve(edges_.size());
  for (const auto& [key, state] : edges_) {
    EdgeDelta d;
    d.u = static_cast<Vertex>(key >> 32);
    d.v = static_cast<Vertex>(key & 0xffffffffu);
    d.old_present = base_edge(d.u, d.v, &d.old_weight);
    d.new_present = state.present;
    d.new_weight = state.weight;
    if (d.old_present == d.new_present &&
        (!d.old_present || d.old_weight == d.new_weight)) {
      continue;  // the overlay entry cancelled back to the base state
    }
    deltas.push_back(d);
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const EdgeDelta& a, const EdgeDelta& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  return deltas;
}

std::vector<Vertex> MutationLog::touched() const {
  std::vector<Vertex> out;
  for (const EdgeDelta& d : edge_deltas()) {
    if (alive(d.u)) out.push_back(d.u);
    if (alive(d.v)) out.push_back(d.v);
  }
  for (Vertex s = 0; s < base_n_; ++s) {
    if (alive(s) &&
        demand_[static_cast<std::size_t>(s)] !=
            base_->demand(s)) {
      out.push_back(s);
    }
  }
  for (Vertex s = base_n_; s < stable_id_count(); ++s) {
    if (alive(s)) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void MutationLog::append_undo_all() {
  const std::vector<Mutation> forward = ops_;
  for (auto it = forward.rbegin(); it != forward.rend(); ++it) {
    switch (it->kind) {
      case MutationKind::kAddVertex:
        // By reverse order the vertex is already isolated again.
        remove_vertex(it->u);
        break;
      case MutationKind::kRemoveVertex:
        revive_vertex(it->u, it->prev);
        break;
      case MutationKind::kAddEdge:
        remove_edge(it->u, it->v);
        break;
      case MutationKind::kRemoveEdge:
        add_edge(it->u, it->v, it->prev);
        break;
      case MutationKind::kReweightEdge:
        reweight_edge(it->u, it->v, it->prev);
        break;
      case MutationKind::kSetDemand:
        set_demand(it->u, it->prev);
        break;
    }
  }
}

MutationLog MutationLog::compacted() const {
  MutationLog out(*base_);
  // Demand drift on surviving base vertices.
  for (Vertex s = 0; s < base_n_; ++s) {
    if (alive(s) &&
        demand_[static_cast<std::size_t>(s)] != base_->demand(s)) {
      out.set_demand(s, demand_[static_cast<std::size_t>(s)]);
    }
  }
  // Removals first: remove_vertex re-emits the incident base-edge
  // removals, so the per-edge deltas below only need live endpoints.
  for (Vertex s = 0; s < base_n_; ++s) {
    if (!alive(s)) out.remove_vertex(s);
  }
  // Surviving added vertices, densely renumbered in stable-id order.
  std::vector<Vertex> renumber(static_cast<std::size_t>(stable_id_count()),
                               kInvalidVertex);
  for (Vertex s = 0; s < base_n_; ++s) renumber[static_cast<std::size_t>(s)] = s;
  for (Vertex s = base_n_; s < stable_id_count(); ++s) {
    if (alive(s)) {
      renumber[static_cast<std::size_t>(s)] =
          out.add_vertex(demand_[static_cast<std::size_t>(s)]);
    }
  }
  for (const EdgeDelta& d : edge_deltas()) {
    if (!alive(d.u) || !alive(d.v)) continue;  // handled by remove_vertex
    const Vertex u = renumber[static_cast<std::size_t>(d.u)];
    const Vertex v = renumber[static_cast<std::size_t>(d.v)];
    if (d.old_present && !d.new_present) {
      out.remove_edge(u, v);
    } else if (!d.old_present && d.new_present) {
      out.add_edge(u, v, d.new_weight);
    } else if (d.old_weight != d.new_weight) {
      out.reweight_edge(u, v, d.new_weight);
    }
  }
  return out;
}

}  // namespace hgp
