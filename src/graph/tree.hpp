// Rooted weighted trees.
//
// This is the input type of the HGPT tree solver (§3 of the paper): leaves
// carry job demands, edges carry communication weights, and some edges may
// be *uncuttable* (weight = ∞), which binarization and the dummy-leaf
// reduction rely on.  The infinity is an explicit flag, never a sentinel
// value, so costs cannot overflow.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace hgp {

class Tree {
 public:
  Tree() = default;

  /// Builds from a parent array: parent[root] == -1 exactly once; edge
  /// weights index by child.  `infinite[c]` marks the (parent(c), c) edge
  /// uncuttable.
  static Tree from_parents(std::vector<Vertex> parent,
                           std::vector<Weight> parent_weight,
                           std::vector<char> infinite = {});

  /// Builds from an undirected graph that must be a tree (m = n-1,
  /// connected), rooted at `root`.
  static Tree from_graph(const Graph& g, Vertex root);

  Vertex node_count() const { return narrow<Vertex>(parent_.size()); }
  Vertex root() const { return root_; }
  Vertex parent(Vertex v) const {
    return parent_[static_cast<std::size_t>(v)];
  }
  /// Weight of the edge (parent(v), v); undefined for the root.
  Weight parent_weight(Vertex v) const {
    return parent_weight_[static_cast<std::size_t>(v)];
  }
  bool parent_edge_infinite(Vertex v) const {
    return infinite_[static_cast<std::size_t>(v)] != 0;
  }
  std::span<const Vertex> children(Vertex v) const {
    return {children_.data() + child_offset_[static_cast<std::size_t>(v)],
            children_.data() + child_offset_[static_cast<std::size_t>(v) + 1]};
  }
  bool is_leaf(Vertex v) const { return children(v).empty(); }
  int depth(Vertex v) const { return depth_[static_cast<std::size_t>(v)]; }

  /// All leaves, in increasing vertex order.
  const std::vector<Vertex>& leaves() const { return leaves_; }
  Vertex leaf_count() const { return narrow<Vertex>(leaves_.size()); }

  /// Nodes in a topological order (parents before children).
  const std::vector<Vertex>& preorder() const { return preorder_; }

  /// Leaf demand accessors (used by HGPT instances).  Internal nodes have
  /// demand 0 by convention.
  bool has_demands() const { return !demand_.empty(); }
  double demand(Vertex v) const {
    HGP_ASSERT(has_demands());
    return demand_[static_cast<std::size_t>(v)];
  }
  /// Sets demands for all nodes; internal entries must be 0.
  void set_demands(std::vector<double> demand);
  /// Sets demands for leaves only, in leaves() order.
  void set_leaf_demands(std::span<const double> leaf_demand);
  double total_demand() const;

  /// Lowest common ancestor (binary lifting, O(log n) per query).
  Vertex lca(Vertex u, Vertex v) const;

  /// Minimum-weight leaf separator: the paper's CUT_T(S).
  /// `in_set[v] != 0` marks leaves of S (entries for internal nodes are
  /// ignored).  Returns the cut weight and a node labelling `s_side` where
  /// label 1 = component on S's side; ties are broken toward fewer 1-labelled
  /// nodes, matching the paper's "minimum number of nodes connected to S"
  /// rule.  Returns infinity() weight if S and its complement cannot be
  /// separated (an uncuttable edge joins them).
  struct LeafSeparator {
    Weight weight = 0;
    bool feasible = true;
    std::vector<char> s_side;
  };
  LeafSeparator leaf_separator(const std::vector<char>& in_set) const;

  /// Total weight of finite edges (useful upper bound in tests).
  Weight total_finite_edge_weight() const;

 private:
  void finalize();

  Vertex root_ = kInvalidVertex;
  std::vector<Vertex> parent_;
  std::vector<Weight> parent_weight_;
  std::vector<char> infinite_;
  std::vector<std::size_t> child_offset_;
  std::vector<Vertex> children_;
  std::vector<int> depth_;
  std::vector<Vertex> leaves_;
  std::vector<Vertex> preorder_;
  std::vector<double> demand_;
  std::vector<std::vector<Vertex>> up_;  // binary lifting table
};

}  // namespace hgp
