#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

namespace hgp {

Weight Graph::cut_weight(const std::vector<char>& side) const {
  HGP_CHECK_MSG(side.size() == static_cast<std::size_t>(vertex_count()),
                "side vector size must equal vertex count");
  Weight total = 0;
  for (const Edge& e : edges_) {
    if (side[static_cast<std::size_t>(e.u)] !=
        side[static_cast<std::size_t>(e.v)]) {
      total += e.weight;
    }
  }
  return total;
}

std::vector<Vertex> Graph::components(Vertex* component_count) const {
  const Vertex n = vertex_count();
  std::vector<Vertex> comp(static_cast<std::size_t>(n), kInvalidVertex);
  Vertex next = 0;
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] != kInvalidVertex) continue;
    comp[static_cast<std::size_t>(s)] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const HalfEdge& h : neighbors(v)) {
        if (comp[static_cast<std::size_t>(h.to)] == kInvalidVertex) {
          comp[static_cast<std::size_t>(h.to)] = next;
          stack.push_back(h.to);
        }
      }
    }
    ++next;
  }
  if (component_count != nullptr) *component_count = next;
  return comp;
}

bool Graph::is_connected() const {
  if (vertex_count() == 0) return true;
  Vertex k = 0;
  (void)components(&k);
  return k == 1;
}

Graph Graph::induced_subgraph(std::span<const Vertex> vertices) const {
  std::vector<Vertex> remap(static_cast<std::size_t>(vertex_count()),
                            kInvalidVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const Vertex v = vertices[i];
    HGP_CHECK(v >= 0 && v < vertex_count());
    HGP_CHECK_MSG(remap[static_cast<std::size_t>(v)] == kInvalidVertex,
                  "duplicate vertex in induced_subgraph");
    remap[static_cast<std::size_t>(v)] = narrow<Vertex>(i);
  }
  GraphBuilder builder(narrow<Vertex>(vertices.size()));
  for (const Edge& e : edges_) {
    const Vertex nu = remap[static_cast<std::size_t>(e.u)];
    const Vertex nv = remap[static_cast<std::size_t>(e.v)];
    if (nu != kInvalidVertex && nv != kInvalidVertex) {
      builder.add_edge(nu, nv, e.weight);
    }
  }
  if (has_demands()) {
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      builder.set_demand(narrow<Vertex>(i), demand(vertices[i]));
    }
  }
  return builder.build();
}

GraphBuilder::GraphBuilder(Vertex vertex_count) : vertex_count_(vertex_count) {
  HGP_CHECK(vertex_count >= 0);
}

void GraphBuilder::add_edge(Vertex u, Vertex v, Weight weight) {
  HGP_CHECK(u >= 0 && u < vertex_count_);
  HGP_CHECK(v >= 0 && v < vertex_count_);
  HGP_CHECK_MSG(weight >= 0, "edge weights must be non-negative");
  if (u == v) return;  // self-loops never cross a cut
  if (u > v) std::swap(u, v);
  pending_.push_back(Edge{u, v, weight});
}

void GraphBuilder::set_demand(Vertex v, double demand) {
  HGP_CHECK(v >= 0 && v < vertex_count_);
  HGP_CHECK_MSG(demand > 0.0 && demand <= 1.0,
                "HGP demands must lie in (0, 1], got " << demand);
  if (!has_demand_) {
    demand_.assign(static_cast<std::size_t>(vertex_count_), 0.0);
    has_demand_ = true;
  }
  demand_[static_cast<std::size_t>(v)] = demand;
}

Graph GraphBuilder::build() {
  // Merge parallel edges.
  std::sort(pending_.begin(), pending_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  Graph g;
  g.edges_.reserve(pending_.size());
  for (const Edge& e : pending_) {
    if (!g.edges_.empty() && g.edges_.back().u == e.u &&
        g.edges_.back().v == e.v) {
      g.edges_.back().weight += e.weight;
    } else {
      g.edges_.push_back(e);
    }
  }
  pending_.clear();

  const auto n = static_cast<std::size_t>(vertex_count_);
  std::vector<std::size_t> deg(n, 0);
  for (const Edge& e : g.edges_) {
    ++deg[static_cast<std::size_t>(e.u)];
    ++deg[static_cast<std::size_t>(e.v)];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.adjacency_.resize(g.offsets_[n]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId id = 0; id < narrow<EdgeId>(g.edges_.size()); ++id) {
    const Edge& e = g.edges_[static_cast<std::size_t>(id)];
    g.adjacency_[cursor[static_cast<std::size_t>(e.u)]++] =
        HalfEdge{e.v, e.weight, id};
    g.adjacency_[cursor[static_cast<std::size_t>(e.v)]++] =
        HalfEdge{e.u, e.weight, id};
    g.total_edge_weight_ += e.weight;
  }
  if (has_demand_) {
    for (std::size_t v = 0; v < n; ++v) {
      HGP_CHECK_MSG(demand_[v] > 0.0,
                    "vertex " << v << " has no demand set; HGP requires "
                              << "d(v) ∈ (0,1] for every vertex");
    }
    g.demand_ = std::move(demand_);
  }
  has_demand_ = false;
  demand_.clear();
  return g;
}

}  // namespace hgp
