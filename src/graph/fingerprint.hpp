// Content fingerprint of a Graph.
//
// An FNV-1a hash over vertex count, the canonical edge list (endpoints +
// weight bits) and demands.  Because Graph is immutable after build and
// GraphBuilder canonicalizes (sorted u < v edges, merged parallels), two
// graphs with equal content always fingerprint equally — across processes
// too, which is what lets snapshot files (src/io/snapshot.hpp), the forest
// cache and checkpoint keys all recognize "the same instance" by value.
// Not a cryptographic commitment: it detects drift and corruption, not an
// adversary.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace hgp {

/// Stable across processes for equal graph content.
std::uint64_t graph_fingerprint(const Graph& g);

}  // namespace hgp
