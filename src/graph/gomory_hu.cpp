#include "graph/gomory_hu.hpp"

#include <algorithm>
#include <limits>

#include "graph/maxflow.hpp"

namespace hgp {

Weight GomoryHuTree::min_cut(Vertex u, Vertex v) const {
  HGP_CHECK(u >= 0 && static_cast<std::size_t>(u) < parent.size());
  HGP_CHECK(v >= 0 && static_cast<std::size_t>(v) < parent.size());
  HGP_CHECK(u != v);
  // Depths via parent walking (the tree is shallow in practice; this keeps
  // the structure plain).
  auto depth = [&](Vertex x) {
    int d = 0;
    while (parent[static_cast<std::size_t>(x)] != kInvalidVertex) {
      x = parent[static_cast<std::size_t>(x)];
      ++d;
    }
    return d;
  };
  int du = depth(u), dv = depth(v);
  Weight best = std::numeric_limits<Weight>::infinity();
  while (du > dv) {
    best = std::min(best, weight[static_cast<std::size_t>(u)]);
    u = parent[static_cast<std::size_t>(u)];
    --du;
  }
  while (dv > du) {
    best = std::min(best, weight[static_cast<std::size_t>(v)]);
    v = parent[static_cast<std::size_t>(v)];
    --dv;
  }
  while (u != v) {
    best = std::min(best, weight[static_cast<std::size_t>(u)]);
    best = std::min(best, weight[static_cast<std::size_t>(v)]);
    u = parent[static_cast<std::size_t>(u)];
    v = parent[static_cast<std::size_t>(v)];
  }
  return best;
}

GomoryHuTree gomory_hu_tree(const Graph& g) {
  const Vertex n = g.vertex_count();
  HGP_CHECK_MSG(n >= 2, "gomory_hu_tree needs at least 2 vertices");
  HGP_CHECK_MSG(g.is_connected(), "gomory_hu_tree needs a connected graph");

  GomoryHuTree tree;
  tree.parent.assign(static_cast<std::size_t>(n), 0);
  tree.parent[0] = kInvalidVertex;
  tree.weight.assign(static_cast<std::size_t>(n), 0);

  // Gusfield's algorithm: for each vertex i, max-flow to its current
  // parent; vertices on i's side with the same parent are re-parented
  // under i.
  for (Vertex i = 1; i < n; ++i) {
    const Vertex p = tree.parent[static_cast<std::size_t>(i)];
    const MaxFlowResult flow = Dinic::min_st_cut(g, i, p);
    tree.weight[static_cast<std::size_t>(i)] = flow.value;
    for (Vertex j = narrow<Vertex>(i + 1); j < n; ++j) {
      if (flow.source_side[static_cast<std::size_t>(j)] &&
          tree.parent[static_cast<std::size_t>(j)] == p) {
        tree.parent[static_cast<std::size_t>(j)] = i;
      }
    }
    // Gusfield's parent fix-up: if i's grandparent is on i's side, swap the
    // roles of i and its parent.
    const Vertex gp = tree.parent[static_cast<std::size_t>(p)];
    if (gp != kInvalidVertex &&
        flow.source_side[static_cast<std::size_t>(gp)]) {
      tree.parent[static_cast<std::size_t>(i)] = gp;
      tree.parent[static_cast<std::size_t>(p)] = i;
      tree.weight[static_cast<std::size_t>(i)] =
          tree.weight[static_cast<std::size_t>(p)];
      tree.weight[static_cast<std::size_t>(p)] = flow.value;
    }
  }
  return tree;
}

}  // namespace hgp
