// Gomory–Hu cut trees (Gusfield's algorithm).
//
// A Gomory–Hu tree encodes every pairwise minimum cut of an undirected
// weighted graph in n-1 max-flow computations: the min u-v cut equals the
// lightest edge on the tree path between u and v.  The library uses it as
// a verification oracle for cut structure and as the basis of the min-cut
// decomposition cutter (experiment E9's ablation grid).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace hgp {

struct GomoryHuTree {
  /// parent[v] for v ≥ 1 (vertex 0 is the root, parent[0] = -1).
  std::vector<Vertex> parent;
  /// weight[v] = min-cut value between v and parent[v].
  std::vector<Weight> weight;

  /// Minimum u-v cut value: the lightest edge on the tree path.
  Weight min_cut(Vertex u, Vertex v) const;
};

/// Builds the tree with n-1 Dinic max-flows; requires a connected graph
/// with ≥ 2 vertices (disconnected pairs would have cut 0; split by
/// components first).
GomoryHuTree gomory_hu_tree(const Graph& g);

}  // namespace hgp
