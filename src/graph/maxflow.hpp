// Dinic maximum flow / minimum s-t cut on weighted undirected graphs.
//
// Used as a verification oracle for tree leaf-separators and decomposition
// cuts (max-flow min-cut duality) in tests and experiments.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace hgp {

struct MaxFlowResult {
  Weight value = 0;
  /// Vertices reachable from the source in the residual network — a minimum
  /// s-t cut is the boundary of this set.
  std::vector<char> source_side;
};

class Dinic {
 public:
  explicit Dinic(Vertex n);

  /// Adds an undirected capacity-w edge (both directions capacity w).
  void add_undirected_edge(Vertex u, Vertex v, Weight capacity);
  /// Adds a directed capacity-w arc.
  void add_arc(Vertex from, Vertex to, Weight capacity);

  /// Computes max flow from s to t.  May be called once per instance.
  MaxFlowResult solve(Vertex s, Vertex t);

  /// Convenience: min s-t cut of an undirected graph.
  static MaxFlowResult min_st_cut(const Graph& g, Vertex s, Vertex t);

 private:
  struct Arc {
    Vertex to;
    Weight capacity;
    std::size_t rev;  ///< index of the reverse arc in adj_[to]
  };

  bool bfs(Vertex s, Vertex t);
  Weight dfs(Vertex v, Vertex t, Weight limit);

  Vertex n_;
  std::vector<std::vector<Arc>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace hgp
