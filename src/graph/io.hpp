// Graph serialization: METIS graph format and whitespace edge lists.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace hgp::io {

/// Writes the METIS graph format.  Weights are emitted when any edge weight
/// differs from 1 (fmt code 001) and demands when present (fmt 011 / 010);
/// vertex weights are scaled to integers with `demand_scale`.
void write_metis(const Graph& g, std::ostream& out, int demand_scale = 1000);
void write_metis_file(const Graph& g, const std::string& path,
                      int demand_scale = 1000);

/// Reads the METIS graph format (1-indexed; fmt ∈ {000,001,010,011}, one
/// vertex-weight constraint).  Vertex weights become demands after dividing
/// by `demand_scale`.
Graph read_metis(std::istream& in, int demand_scale = 1000);
Graph read_metis_file(const std::string& path, int demand_scale = 1000);

/// Writes "u v w" lines (0-indexed).
void write_edge_list(const Graph& g, std::ostream& out);

/// Reads "u v [w]" lines; vertex count is 1 + max id unless `n` is given.
Graph read_edge_list(std::istream& in, Vertex n = -1);

}  // namespace hgp::io
