// Disjoint-set union with path halving and union by size.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace hgp {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), sets_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    HGP_ASSERT(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --sets_;
    return true;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t set_size(std::size_t x) { return size_[find(x)]; }
  std::size_t set_count() const { return sets_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
};

}  // namespace hgp
