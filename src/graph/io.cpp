#include "graph/io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace hgp::io {

namespace {

bool all_unit_weights(const Graph& g) {
  for (const Edge& e : g.edges()) {
    if (e.weight != 1.0) return false;
  }
  return true;
}

/// Reads the next non-comment line ('%' comments per METIS spec),
/// tracking the 1-based physical line number for error messages.
bool next_line(std::istream& in, std::string& line, long long& lineno) {
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_metis(const Graph& g, std::ostream& out, int demand_scale) {
  HGP_CHECK(demand_scale >= 1);
  const bool edge_weights = !all_unit_weights(g);
  const bool vertex_weights = g.has_demands();
  out << g.vertex_count() << ' ' << g.edge_count();
  if (edge_weights || vertex_weights) {
    out << " 0" << (vertex_weights ? '1' : '0') << (edge_weights ? '1' : '0');
  }
  out << '\n';
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    bool first = true;
    if (vertex_weights) {
      out << static_cast<long long>(
          std::llround(g.demand(v) * demand_scale));
      first = false;
    }
    for (const HalfEdge& h : g.neighbors(v)) {
      if (!first) out << ' ';
      first = false;
      out << (h.to + 1);
      if (edge_weights) {
        out << ' ' << static_cast<long long>(std::llround(h.weight));
      }
    }
    out << '\n';
  }
}

void write_metis_file(const Graph& g, const std::string& path,
                      int demand_scale) {
  std::ofstream out(path);
  HGP_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  write_metis(g, out, demand_scale);
  HGP_CHECK_MSG(out.good(), "write failed: " << path);
}

Graph read_metis(std::istream& in, int demand_scale) {
  HGP_CHECK(demand_scale >= 1);
  std::string line;
  long long lineno = 0;
  HGP_CHECK_MSG(next_line(in, line, lineno), "METIS input: missing header");
  std::istringstream header(line);
  long long n = 0, m = 0;
  std::string fmt = "000";
  HGP_CHECK_MSG(static_cast<bool>(header >> n >> m),
                "METIS input: malformed header '" << line << "' on line "
                                                  << lineno);
  HGP_CHECK_MSG(n >= 0 && m >= 0,
                "METIS input: negative counts in header on line " << lineno);
  if (!(header >> fmt)) fmt = "000";
  while (fmt.size() < 3) fmt.insert(fmt.begin(), '0');
  const bool vertex_weights = fmt[1] == '1';
  const bool edge_weights = fmt[2] == '1';
  HGP_CHECK_MSG(fmt[0] == '0', "METIS vertex sizes are not supported");

  GraphBuilder b(narrow<Vertex>(n));
  for (long long v = 0; v < n; ++v) {
    HGP_CHECK_MSG(next_line(in, line, lineno),
                  "METIS input: header declares " << n
                                                  << " vertices but the body "
                                                     "ends after "
                                                  << v << " vertex lines");
    std::istringstream row(line);
    if (vertex_weights) {
      long long wv = 0;
      HGP_CHECK_MSG(static_cast<bool>(row >> wv),
                    "METIS input: missing or malformed vertex weight on line "
                        << lineno);
      HGP_CHECK_MSG(wv >= 0, "METIS input: negative vertex weight "
                                 << wv << " on line " << lineno);
      b.set_demand(narrow<Vertex>(v),
                   static_cast<double>(wv) / demand_scale);
    }
    long long to = 0;
    while (row >> to) {
      HGP_CHECK_MSG(to >= 1 && to <= n,
                    "METIS input: neighbour " << to << " out of range [1, "
                                              << n << "] on line " << lineno);
      double wgt = 1.0;
      if (edge_weights) {
        HGP_CHECK_MSG(static_cast<bool>(row >> wgt),
                      "METIS input: missing edge weight on line " << lineno);
        HGP_CHECK_MSG(std::isfinite(wgt) && wgt >= 0,
                      "METIS input: edge weight "
                          << wgt << " on line " << lineno
                          << " must be finite and non-negative");
      }
      if (to - 1 > v) {  // each edge appears twice; keep one copy
        b.add_edge(narrow<Vertex>(v), narrow<Vertex>(to - 1), wgt);
      }
    }
    // `row >> to` stops at either end-of-line (fine) or a non-numeric
    // token; the latter used to silently drop the rest of the line.
    if (!row.eof()) {
      row.clear();
      std::string junk;
      row >> junk;
      HGP_CHECK_MSG(junk.empty(), "METIS input: unexpected token '"
                                      << junk << "' on line " << lineno);
    }
  }
  while (next_line(in, line, lineno)) {
    HGP_CHECK_MSG(line.find_first_not_of(" \t\r") == std::string::npos,
                  "METIS input: header declares "
                      << n << " vertices but line " << lineno
                      << " holds extra data");
  }
  Graph g = b.build();
  HGP_CHECK_MSG(g.edge_count() == m,
                "METIS input: header declares " << m << " edges, parsed "
                                                << g.edge_count());
  return g;
}

Graph read_metis_file(const std::string& path, int demand_scale) {
  std::ifstream in(path);
  HGP_CHECK_MSG(in.good(), "cannot open: " << path);
  return read_metis(in, demand_scale);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  // max_digits10 keeps the round trip lossless.
  out << std::setprecision(17);
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
}

Graph read_edge_list(std::istream& in, Vertex n) {
  std::vector<Edge> edges;
  Vertex max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream row(line);
    long long u = 0, v = 0;
    double w = 1.0;
    HGP_CHECK_MSG(static_cast<bool>(row >> u >> v),
                  "edge list: malformed line: " << line);
    row >> w;
    edges.push_back(Edge{narrow<Vertex>(u), narrow<Vertex>(v), w});
    max_id = std::max({max_id, narrow<Vertex>(u), narrow<Vertex>(v)});
  }
  const Vertex count = n >= 0 ? n : max_id + 1;
  GraphBuilder b(count);
  for (const Edge& e : edges) b.add_edge(e.u, e.v, e.weight);
  return b.build();
}

}  // namespace hgp::io
