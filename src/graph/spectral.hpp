// Spectral graph tools: Fiedler vector by deflated power iteration.
//
// The decomposition-tree builder uses the Fiedler vector of the weighted
// Laplacian as its default cut heuristic (spectral bisection), the classical
// practical stand-in for the sparse-cut subroutines of Räcke-style
// decompositions.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/prng.hpp"

namespace hgp {

struct FiedlerOptions {
  int max_iterations = 300;
  double tolerance = 1e-7;
};

/// Approximates the Fiedler vector (eigenvector of the second-smallest
/// Laplacian eigenvalue) by power iteration on (cI - L) with deflation of
/// the constant vector.  Deterministic in `rng`.  Requires n ≥ 2.
std::vector<double> fiedler_vector(const Graph& g, Rng& rng,
                                   const FiedlerOptions& opt = {});

/// Spectral bisection balanced by demand: orders vertices by Fiedler value
/// and splits at the demand-weighted median.  Falls back to random balanced
/// split for edgeless graphs.  Returns side flags (0/1), both sides
/// non-empty for n ≥ 2.
std::vector<char> spectral_bisect(const Graph& g, Rng& rng,
                                  const FiedlerOptions& opt = {});

}  // namespace hgp
