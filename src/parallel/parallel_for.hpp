// Data-parallel loop helpers built on ThreadPool.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace hgp {

/// Runs body(i) for i in [begin, end) across the pool, blocking until done.
/// The range is split into contiguous chunks (one per worker by default).
/// The first exception thrown by any chunk is rethrown on the caller.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const Body& body, std::size_t min_chunk = 1) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = std::max<std::size_t>(pool.thread_count(), 1);
  const std::size_t chunk =
      std::max(min_chunk, (n + workers - 1) / workers);
  if (pool.thread_count() == 0 || n <= chunk) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// parallel_for over the shared pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t min_chunk = 1) {
  parallel_for(ThreadPool::shared(), begin, end, body, min_chunk);
}

/// Maps fn over [0, n) into a vector of results (fn(i) -> R).
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, const Fn& fn) {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace hgp
