// Data-parallel loop helpers built on ThreadPool.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/deadline.hpp"

namespace hgp {

/// Runs body(i) for i in [begin, end) across the pool, blocking until done.
/// The range is split into contiguous chunks (one per worker by default).
/// The first exception thrown by any chunk is rethrown on the caller.
///
/// A non-null `exec` makes the loop cooperative: every chunk checks
/// cancellation before each item (an atomic load) and the deadline on a
/// stride, so a cancel or expiry raised mid-loop stops the remaining work
/// promptly and surfaces as SolveError{kCancelled|kDeadlineExceeded}.
/// Items already dispatched to body() always run to completion.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const Body& body, std::size_t min_chunk = 1,
                  const ExecContext* exec = nullptr) {
  if (begin >= end) return;
  auto run_range = [&body, exec](std::size_t lo, std::size_t hi) {
    PeriodicCheck guard(exec, "parallel_for", 256);
    for (std::size_t i = lo; i < hi; ++i) {
      guard.tick();
      body(i);
    }
  };
  const std::size_t n = end - begin;
  const std::size_t workers = std::max<std::size_t>(pool.thread_count(), 1);
  const std::size_t chunk =
      std::max(min_chunk, (n + workers - 1) / workers);
  if (pool.thread_count() == 0 || n <= chunk) {
    run_range(begin, end);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    futures.push_back(
        pool.submit([lo, hi, &run_range] { run_range(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// parallel_for over the shared pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t min_chunk = 1,
                  const ExecContext* exec = nullptr) {
  parallel_for(ThreadPool::shared(), begin, end, body, min_chunk, exec);
}

/// Maps fn over [0, n) into a vector of results (fn(i) -> R).
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, const Fn& fn,
                  const ExecContext* exec = nullptr) {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(
      pool, 0, n, [&](std::size_t i) { out[i] = fn(i); }, 1, exec);
  return out;
}

}  // namespace hgp
