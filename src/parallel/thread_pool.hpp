// Fixed-size thread pool with futures.
//
// Design notes (following C++ Core Guidelines CP.*):
//  * tasks are type-erased into packaged jobs; exceptions propagate through
//    the returned std::future;
//  * the pool joins all workers in the destructor (RAII — no detached
//    threads);
//  * a pool of size 0 is valid and runs tasks inline on submit(), which keeps
//    single-core and debugging configurations simple.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hgp {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means "run tasks inline".
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Submits a callable; the result (or exception) arrives via the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return fut;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Hardware concurrency, never zero.
  static std::size_t default_thread_count();

  /// Process-wide shared pool (created on first use with
  /// default_thread_count() workers).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hgp
