// Fixed-size thread pool with futures.
//
// Design notes (following C++ Core Guidelines CP.*):
//  * tasks are type-erased into packaged jobs; exceptions propagate through
//    the returned std::future;
//  * the pool joins all workers in the destructor (RAII — no detached
//    threads);
//  * a pool of size 0 is valid and runs tasks inline on submit(), which keeps
//    single-core and debugging configurations simple.
//
// Observability (compiled out under HGP_OBS=OFF): every pool feeds the
// shared metrics registry — `pool.tasks_submitted`, the `pool.queue_depth`
// gauge (with high-water mark), and the `pool.task_wait_ms` /
// `pool.task_run_ms` histograms measuring queue latency and execution
// time.  All pools share these series; per-pool attribution is not worth a
// registry namespace while the library runs one shared pool.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/obs.hpp"
#include "util/sync.hpp"

namespace hgp {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means "run tasks inline".
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// True when called from one of THIS pool's worker threads.  Nested
  /// fan-out stages use this to fall back to inline execution instead of
  /// submitting to — and then blocking on — the pool they are running
  /// inside, which could deadlock once every worker waits.
  bool is_worker_thread() const;

  /// Tasks currently queued (excludes tasks being executed).  A scheduling
  /// hint only — the value is stale the moment it is read.
  std::size_t pending() const;

  /// Submits a callable; the result (or exception) arrives via the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      note_submit(/*queued=*/false);
      run_job([task] { (*task)(); });
      return fut;
    }
    note_submit(/*queued=*/true);
    {
      const MutexLock lock(mutex_);
      queue_.emplace_back(make_job([task] { (*task)(); }));
    }
    // Notify outside the lock: the job was enqueued (the predicate the
    // workers wait on) while it was held, so the wakeup cannot be lost.
    cv_.notify_one();
    return fut;
  }

  /// Hardware concurrency, never zero.
  static std::size_t default_thread_count();

  /// Process-wide shared pool (created on first use with
  /// default_thread_count() workers).
  static ThreadPool& shared();

 private:
#if HGP_OBS_ENABLED
  struct Job {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued_at;
  };
#else
  struct Job {
    std::function<void()> fn;
  };
#endif

  static Job make_job(std::function<void()> fn);

  void worker_loop() HGP_EXCLUDES(mutex_);
  /// Metrics bookkeeping around one submit (counter + queue-depth gauge).
  void note_submit(bool queued);
  /// Runs `fn`, timing it into the task-latency histograms.
  void run_job(const std::function<void()>& fn);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<Job> queue_ HGP_GUARDED_BY(mutex_);
  bool stop_ HGP_GUARDED_BY(mutex_) = false;
};

}  // namespace hgp
