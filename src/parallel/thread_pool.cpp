#include "parallel/thread_pool.hpp"

namespace hgp {

namespace {

/// The pool whose worker_loop is running on this thread (nullptr on
/// non-worker threads).  Written once per worker at startup.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

#if HGP_OBS_ENABLED
namespace {

/// Millisecond bucket tops shared by the wait and run histograms: spans
/// from "dequeued immediately" to "stuck behind a multi-second DP".
std::vector<double> latency_buckets_ms() {
  return {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
}

obs::Histogram& wait_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "pool.task_wait_ms", latency_buckets_ms());
  return h;
}

obs::Histogram& run_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "pool.task_run_ms", latency_buckets_ms());
  return h;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace
#endif  // HGP_OBS_ENABLED

ThreadPool::ThreadPool(std::size_t threads) {
#if HGP_OBS_ENABLED
  // Touch the shared instruments up front: the registry is constructed
  // before the first worker can record into it, and destroyed after the
  // pool (static destruction runs in reverse construction order).
  wait_histogram();
  run_histogram();
#endif
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool::Job ThreadPool::make_job(std::function<void()> fn) {
#if HGP_OBS_ENABLED
  return Job{std::move(fn), std::chrono::steady_clock::now()};
#else
  return Job{std::move(fn)};
#endif
}

void ThreadPool::note_submit(bool queued) {
  HGP_COUNTER_ADD("pool.tasks_submitted", 1);
  if (queued) HGP_GAUGE_ADD("pool.queue_depth", +1);
#if !HGP_OBS_ENABLED
  (void)queued;
#endif
}

void ThreadPool::run_job(const std::function<void()>& fn) {
#if HGP_OBS_ENABLED
  const auto start = std::chrono::steady_clock::now();
  fn();
  run_histogram().observe(ms_since(start));
#else
  fn();
#endif
}

bool ThreadPool::is_worker_thread() const { return t_worker_pool == this; }

std::size_t ThreadPool::pending() const {
  const MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    Job job;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stop_ must be true
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    HGP_GAUGE_ADD("pool.queue_depth", -1);
#if HGP_OBS_ENABLED
    wait_histogram().observe(ms_since(job.enqueued_at));
#endif
    run_job(job.fn);
  }
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace hgp
