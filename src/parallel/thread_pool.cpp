#include "parallel/thread_pool.hpp"

namespace hgp {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ must be true
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace hgp
