// Steady-state throughput model for placed streaming pipelines.
//
// The paper's motivation (§1) is *throughput*: pinning communicating
// operators onto nearby cores raises the maximum sustainable input rate of
// a stream-processing system.  This module closes that loop with a
// bottleneck analysis: given a placement, each hierarchy domain's uplink
// carries the communication volume crossing its boundary and each core
// executes its assigned CPU demand; the sustainable rate is set by the
// most-utilized resource.  Experiment E11 uses it to verify that the
// abstract Eq.-1 objective actually tracks the practical metric.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "hierarchy/placement.hpp"

namespace hgp::sim {

/// Machine resource model.  All rates are per unit of workload rate λ = 1:
/// an edge of weight w moves w·λ volume per second; a task of demand d
/// needs d·λ core-seconds per second.
struct MachineModel {
  /// uplink_bandwidth[j] = volume/second one level-j node can exchange
  /// with the rest of the machine (j in [1, h]; level 0 has no uplink).
  /// Deeper levels are faster on real machines (L3 vs QPI vs network).
  std::vector<double> uplink_bandwidth;
  /// demand/second one core executes (1.0 = a fully-loaded feasible core
  /// saturates at λ = 1).
  double core_rate = 1.0;

  /// A conventional model for a hierarchy of height h: leaf-adjacent
  /// links are fast and each level up divides the bandwidth by `taper`.
  static MachineModel tapered(int height, double leaf_bandwidth,
                              double taper = 4.0);
};

struct ThroughputReport {
  /// Maximum sustainable workload rate λ*.
  double throughput = 0;
  /// Level of the limiting uplink, or -1 when CPU-bound.
  int bottleneck_level = -1;
  /// Index of the limiting node within its level (or the limiting core).
  std::int64_t bottleneck_node = -1;
  /// utilization[j][i] = uplink load of node i at level j for λ = 1.
  std::vector<std::vector<double>> utilization;
  /// Core utilizations at λ = 1.
  std::vector<double> core_utilization;
};

/// Analyzes a placement.  Requires demands on g and a model with one
/// bandwidth per level 1..h.
ThroughputReport analyze_throughput(const Graph& g, const Hierarchy& h,
                                    const Placement& p,
                                    const MachineModel& model);

}  // namespace hgp::sim
