#include "sim/throughput.hpp"

#include <cmath>

#include "hierarchy/cost.hpp"

namespace hgp::sim {

MachineModel MachineModel::tapered(int height, double leaf_bandwidth,
                                   double taper) {
  HGP_CHECK(height >= 1 && leaf_bandwidth > 0 && taper >= 1.0);
  MachineModel m;
  m.uplink_bandwidth.assign(static_cast<std::size_t>(height) + 1, 0.0);
  double bw = leaf_bandwidth;
  for (int j = height; j >= 1; --j) {
    m.uplink_bandwidth[static_cast<std::size_t>(j)] = bw;
    bw /= taper;
  }
  return m;
}

ThroughputReport analyze_throughput(const Graph& g, const Hierarchy& h,
                                    const Placement& p,
                                    const MachineModel& model) {
  validate_placement(g, h, p);
  HGP_CHECK_MSG(model.uplink_bandwidth.size() ==
                    static_cast<std::size_t>(h.height()) + 1,
                "model needs one uplink bandwidth per level 1..h");
  HGP_CHECK(model.core_rate > 0);

  ThroughputReport r;
  r.utilization.resize(static_cast<std::size_t>(h.height()) + 1);

  // Crossing volume per level-j node: edges with exactly one endpoint in
  // its subtree — an edge whose endpoints' LCA is at level l crosses the
  // uplinks of both endpoints' ancestors at every level > l.
  for (int j = 1; j <= h.height(); ++j) {
    r.utilization[static_cast<std::size_t>(j)].assign(
        static_cast<std::size_t>(h.nodes_at(j)), 0.0);
  }
  for (const Edge& e : g.edges()) {
    const LeafId lu = p[e.u];
    const LeafId lv = p[e.v];
    const int lca = h.lca_level(lu, lv);
    for (int j = lca + 1; j <= h.height(); ++j) {
      r.utilization[static_cast<std::size_t>(j)]
                   [static_cast<std::size_t>(h.leaf_ancestor(lu, j))] +=
          e.weight;
      r.utilization[static_cast<std::size_t>(j)]
                   [static_cast<std::size_t>(h.leaf_ancestor(lv, j))] +=
          e.weight;
    }
  }
  // Convert volumes to utilizations and find the worst link.
  double worst = 0;
  for (int j = 1; j <= h.height(); ++j) {
    const double bw = model.uplink_bandwidth[static_cast<std::size_t>(j)];
    HGP_CHECK_MSG(bw > 0, "uplink bandwidth must be positive at level " << j);
    auto& level = r.utilization[static_cast<std::size_t>(j)];
    for (std::size_t i = 0; i < level.size(); ++i) {
      level[i] /= bw;
      if (level[i] > worst) {
        worst = level[i];
        r.bottleneck_level = j;
        r.bottleneck_node = narrow<std::int64_t>(i);
      }
    }
  }
  // Cores.
  r.core_utilization.assign(static_cast<std::size_t>(h.leaf_count()), 0.0);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    r.core_utilization[static_cast<std::size_t>(p[v])] +=
        g.demand(v) / model.core_rate;
  }
  for (std::size_t i = 0; i < r.core_utilization.size(); ++i) {
    if (r.core_utilization[i] > worst) {
      worst = r.core_utilization[i];
      r.bottleneck_level = -1;
      r.bottleneck_node = narrow<std::int64_t>(i);
    }
  }
  r.throughput = worst > 0 ? 1.0 / worst
                           : std::numeric_limits<double>::infinity();
  return r;
}

}  // namespace hgp::sim
