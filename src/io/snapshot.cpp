#include "io/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "util/fault_injector.hpp"

namespace hgp::io {

namespace {

constexpr std::size_t kFileHeaderSize = 16;     // magic + version + count
constexpr std::size_t kSectionHeaderSize = 16;  // type + crc + length
constexpr std::size_t kFooterSize = 4;          // file crc
constexpr char kMagic[8] = {'H', 'G', 'P', 'S', 'N', 'A', 'P', '\0'};

/// Reject files claiming implausible sizes before buffering them: a
/// corrupt/hostile st_size must produce kDataLoss, not a bad_alloc crash.
constexpr std::size_t kMaxSnapshotBytes = std::size_t{1} << 32;  // 4 GiB

[[noreturn]] void data_loss(const std::string& what) {
  throw SolveError(StatusCode::kDataLoss, "snapshot: " + what);
}

// Explicit little-endian encoding: the container's integer fields never
// depend on host layout even if the POD-span payload path someday grows a
// byte-swapping variant.
void store_le32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
  }
}

void store_le64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
  }
}

std::uint32_t load_le32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t load_le64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

Status io_error(const std::string& what, int err) {
  // Disk-full is transient pressure like any other resource limit; every
  // other errno is an unclassified environment failure.
  const StatusCode code = (err == ENOSPC || err == EDQUOT)
                              ? StatusCode::kResourceExhausted
                              : StatusCode::kInternal;
  return Status(code, "snapshot: " + what + ": " + std::strerror(err));
}

bool write_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Best-effort fsync of the directory holding `path`, so the rename that
/// published a snapshot is itself durable.  Failure is ignored: the data
/// file is already synced and the worst case is re-doing one spill.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* section_type_name(SectionType type) {
  switch (type) {
    case SectionType::kGraphHeader:
      return "graph_header";
    case SectionType::kGraphEdges:
      return "graph_edges";
    case SectionType::kGraphDemands:
      return "graph_demands";
    case SectionType::kHierarchy:
      return "hierarchy";
    case SectionType::kForestHeader:
      return "forest_header";
    case SectionType::kForestTree:
      return "forest_tree";
    case SectionType::kCheckpointHeader:
      return "checkpoint_header";
    case SectionType::kCheckpointTree:
      return "checkpoint_tree";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// PayloadBuilder / SectionView

void PayloadBuilder::append_bytes(const void* data, std::size_t size) {
  if (size == 0) return;
  const auto* p = static_cast<const std::byte*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

void SectionView::read_bytes(void* out, std::size_t size) {
  if (size > payload_.size() - cursor_) {
    data_loss(std::string("section ") + section_type_name(type_) +
              " payload over-read (" + std::to_string(size) +
              " bytes wanted, " + std::to_string(payload_.size() - cursor_) +
              " left)");
  }
  std::memcpy(out, payload_.data() + cursor_, size);
  cursor_ += size;
}

void SectionView::check_count(std::size_t count, std::size_t elem_size) const {
  // Divide before multiplying: a hostile length field cannot overflow the
  // bound or drive an allocation larger than the payload itself.
  if (count > (payload_.size() - cursor_) / elem_size) {
    data_loss(std::string("section ") + section_type_name(type_) +
              " claims " + std::to_string(count) +
              " elements but the payload cannot hold them");
  }
}

void SectionView::expect_exhausted() const {
  if (cursor_ != payload_.size()) {
    data_loss(std::string("section ") + section_type_name(type_) + " has " +
              std::to_string(payload_.size() - cursor_) + " trailing bytes");
  }
}

// ---------------------------------------------------------------------------
// SnapshotWriter

void SnapshotWriter::add_section(SectionType type,
                                 std::span<const std::byte> payload) {
  sections_.push_back(
      Section{type, std::vector<std::byte>(payload.begin(), payload.end())});
}

std::vector<std::byte> SnapshotWriter::serialize() const {
  std::size_t total = kFileHeaderSize + kFooterSize;
  for (const Section& s : sections_) {
    total += kSectionHeaderSize + s.payload.size();
  }
  std::vector<std::byte> out;
  out.reserve(total);
  for (char c : kMagic) out.push_back(static_cast<std::byte>(c));
  store_le32(out, kSnapshotVersion);
  store_le32(out, narrow<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    store_le32(out, static_cast<std::uint32_t>(s.type));
    store_le32(out, crc32(s.payload.data(), s.payload.size()));
    store_le64(out, static_cast<std::uint64_t>(s.payload.size()));
    out.insert(out.end(), s.payload.begin(), s.payload.end());
  }
  store_le32(out, crc32(out.data(), out.size()));
  return out;
}

Status SnapshotWriter::write_file(const std::string& path) const {
  const std::vector<std::byte> blob = serialize();
  const std::string tmp = path + ".tmp";
  FaultInjector& injector = FaultInjector::instance();

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return io_error("cannot create " + tmp, errno);

  const FaultInjector::Action write_fault = injector.poll_io("snapshot.write", 0);
  if (write_fault == FaultInjector::Action::kIoEnospc) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status(StatusCode::kResourceExhausted,
                  "snapshot: injected ENOSPC writing " + tmp);
  }
  std::size_t to_write = blob.size();
  if (write_fault == FaultInjector::Action::kIoShortWrite) to_write /= 2;
  if (!write_all(fd, blob.data(), to_write)) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return io_error("write to " + tmp + " failed", err);
  }
  if (write_fault == FaultInjector::Action::kIoShortWrite) {
    // The kernel accepted fewer bytes than the image holds.  The write
    // reports failure and removes the torn temp file — the final path is
    // untouched, which is the whole point of the temp/rename protocol.
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status(StatusCode::kInternal,
                  "snapshot: injected short write to " + tmp);
  }

  if (injector.poll_io("snapshot.fsync", 0) ==
      FaultInjector::Action::kIoFsyncFail) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status(StatusCode::kInternal,
                  "snapshot: injected fsync failure on " + tmp);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return io_error("fsync of " + tmp + " failed", err);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return io_error("close of " + tmp + " failed", err);
  }

  if (injector.poll_io("snapshot.rename", 0) ==
      FaultInjector::Action::kIoTornRename) {
    // Model a crash mid-publish: the final path ends up holding a
    // truncated image.  This is the one failure mode that leaves a
    // corrupt file at `path` — readers must reject it (file CRC +
    // exact-size check) and recovery must treat it as no durable state.
    const int torn =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (torn >= 0) {
      write_all(torn, blob.data(), blob.size() / 2);
      ::close(torn);
    }
    ::unlink(tmp.c_str());
    return Status(StatusCode::kInternal,
                  "snapshot: injected torn rename onto " + path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return io_error("rename " + tmp + " -> " + path + " failed", err);
  }
  sync_parent_dir(path);
  return Status();
}

// ---------------------------------------------------------------------------
// SnapshotReader

SnapshotReader::SnapshotReader(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw SolveError(StatusCode::kDataLoss, "snapshot: cannot open " + path +
                                                ": " + std::strerror(errno));
  }
  struct ::stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    throw SolveError(StatusCode::kDataLoss,
                     "snapshot: not a regular file: " + path);
  }
  if (static_cast<std::uint64_t>(st.st_size) > kMaxSnapshotBytes) {
    ::close(fd);
    throw SolveError(StatusCode::kDataLoss,
                     "snapshot: implausibly large file: " + path);
  }
  blob_.resize(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < blob_.size()) {
    const ssize_t n = ::read(fd, blob_.data() + done, blob_.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw SolveError(StatusCode::kDataLoss, "snapshot: read of " + path +
                                                  " failed: " +
                                                  std::strerror(err));
    }
    if (n == 0) break;  // file shrank underneath us; parse() rejects it
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  blob_.resize(done);
  try {
    parse();
  } catch (const SolveError& e) {
    throw SolveError(StatusCode::kDataLoss, path + ": " + e.status().message);
  }
}

SnapshotReader::SnapshotReader(std::vector<std::byte> blob)
    : blob_(std::move(blob)) {
  parse();
}

void SnapshotReader::parse() {
  if (blob_.size() < kFileHeaderSize + kFooterSize) {
    data_loss("file truncated (" + std::to_string(blob_.size()) + " bytes)");
  }
  if (std::memcmp(blob_.data(), kMagic, sizeof(kMagic)) != 0) {
    data_loss("bad magic — not a snapshot file");
  }
  const std::uint32_t version = load_le32(blob_.data() + 8);
  if (version != kSnapshotVersion) {
    data_loss("unsupported format version " + std::to_string(version) +
              " (this build reads version " + std::to_string(kSnapshotVersion) +
              ")");
  }
  // The file CRC covers every byte before the footer, and the footer must
  // land exactly at end-of-file — so truncation, extension, and any flip
  // in the header or section table all die here, before the section walk
  // trusts a single field.
  const std::size_t body = blob_.size() - kFooterSize;
  if (crc32(blob_.data(), body) != load_le32(blob_.data() + body)) {
    data_loss("file CRC mismatch");
  }
  const std::uint32_t count = load_le32(blob_.data() + 12);
  sections_.reserve(std::min<std::size_t>(count, body / kSectionHeaderSize));
  std::size_t off = kFileHeaderSize;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (kSectionHeaderSize > body - off) {
      data_loss("section table truncated at section " + std::to_string(i));
    }
    const std::uint32_t type = load_le32(blob_.data() + off);
    const std::uint32_t crc = load_le32(blob_.data() + off + 4);
    const std::uint64_t size = load_le64(blob_.data() + off + 8);
    off += kSectionHeaderSize;
    if (type < static_cast<std::uint32_t>(SectionType::kGraphHeader) ||
        type > static_cast<std::uint32_t>(SectionType::kCheckpointTree)) {
      data_loss("unknown section type " + std::to_string(type));
    }
    if (size > body - off) {
      data_loss("section " + std::to_string(i) + " length out of bounds");
    }
    if (crc32(blob_.data() + off, static_cast<std::size_t>(size)) != crc) {
      data_loss(std::string("section CRC mismatch in ") +
                section_type_name(static_cast<SectionType>(type)));
    }
    sections_.push_back(SectionIndex{static_cast<SectionType>(type), off,
                                     static_cast<std::size_t>(size)});
    off += static_cast<std::size_t>(size);
  }
  if (off != body) {
    data_loss("trailing bytes after last section");
  }
}

SectionView SnapshotReader::section(std::size_t i) const {
  if (i >= sections_.size()) {
    data_loss("section index " + std::to_string(i) +
              " out of range (file has " + std::to_string(sections_.size()) +
              ")");
  }
  const SectionIndex& s = sections_[i];
  return SectionView(
      s.type, std::span<const std::byte>(blob_.data() + s.offset, s.size));
}

SectionView SnapshotReader::expect(std::size_t i, SectionType type) const {
  SectionView v = section(i);
  if (v.type() != type) {
    data_loss(std::string("expected section ") + section_type_name(type) +
              " at index " + std::to_string(i) + ", found " +
              section_type_name(v.type()));
  }
  return v;
}

// ---------------------------------------------------------------------------
// Graph codec

void append_graph_sections(SnapshotWriter& w, const Graph& g) {
  GraphHeaderRecord header;
  header.fingerprint = graph_fingerprint(g);
  header.vertex_count = static_cast<std::uint32_t>(g.vertex_count());
  header.has_demands = g.has_demands() ? 1 : 0;
  header.edge_count = g.edges().size();
  PayloadBuilder hb;
  hb.append_pod(header);
  w.add_section(SectionType::kGraphHeader, hb);

  std::vector<EdgeRecord> edges;
  edges.reserve(g.edges().size());
  for (const Edge& e : g.edges()) {
    edges.push_back(EdgeRecord{e.u, e.v, e.weight});
  }
  PayloadBuilder eb;
  eb.append_span(std::span<const EdgeRecord>(edges));
  w.add_section(SectionType::kGraphEdges, eb);

  if (g.has_demands()) {
    PayloadBuilder db;
    db.append_span(std::span<const double>(g.demands()));
    w.add_section(SectionType::kGraphDemands, db);
  }
}

Graph read_graph_sections(const SnapshotReader& r, SectionCursor& c) {
  SectionView hv = r.expect(c.index++, SectionType::kGraphHeader);
  const GraphHeaderRecord header = hv.read_pod<GraphHeaderRecord>();
  hv.expect_exhausted();
  if (header.vertex_count >
      static_cast<std::uint32_t>(std::numeric_limits<Vertex>::max())) {
    data_loss("graph vertex count out of range");
  }
  if (header.has_demands > 1) data_loss("graph has_demands flag corrupt");
  if (header.edge_count >
      static_cast<std::uint64_t>(std::numeric_limits<EdgeId>::max())) {
    data_loss("graph edge count out of range");
  }
  const Vertex n = static_cast<Vertex>(header.vertex_count);

  SectionView ev = r.expect(c.index++, SectionType::kGraphEdges);
  const std::vector<EdgeRecord> edges =
      ev.read_span<EdgeRecord>(static_cast<std::size_t>(header.edge_count));
  ev.expect_exhausted();
  for (const EdgeRecord& e : edges) {
    if (e.u < 0 || e.v <= e.u || e.v >= n) {
      data_loss("graph edge endpoints corrupt");
    }
    if (!std::isfinite(e.weight) || e.weight < 0) {
      data_loss("graph edge weight corrupt");
    }
  }

  std::vector<double> demands;
  if (header.has_demands == 1) {
    SectionView dv = r.expect(c.index++, SectionType::kGraphDemands);
    demands = dv.read_span<double>(static_cast<std::size_t>(n));
    dv.expect_exhausted();
    for (double d : demands) {
      if (!std::isfinite(d) || d < 0) data_loss("graph demand corrupt");
    }
  }

  GraphBuilder builder(n);
  for (const EdgeRecord& e : edges) builder.add_edge(e.u, e.v, e.weight);
  Graph g = builder.build();
  if (!demands.empty()) g.set_demands(std::move(demands));

  // The fingerprint hashes the rebuilt content, so corruption that a
  // CRC fix-up hid (or any writer/reader drift) still surfaces here.
  if (graph_fingerprint(g) != header.fingerprint) {
    data_loss("graph fingerprint mismatch — content does not match what "
              "was written");
  }
  return g;
}

// ---------------------------------------------------------------------------
// Hierarchy codec

void append_hierarchy_sections(SnapshotWriter& w, const Hierarchy& h) {
  HierarchyRecord rec;
  rec.height = static_cast<std::uint32_t>(h.height());
  std::vector<std::int32_t> deg(static_cast<std::size_t>(h.height()));
  for (int j = 0; j < h.height(); ++j) {
    deg[static_cast<std::size_t>(j)] = h.deg(j);
  }
  std::vector<double> cm(static_cast<std::size_t>(h.height()) + 1);
  for (int j = 0; j <= h.height(); ++j) {
    cm[static_cast<std::size_t>(j)] = h.cm(j);
  }
  PayloadBuilder b;
  b.append_pod(rec);
  b.append_span(std::span<const std::int32_t>(deg));
  b.append_span(std::span<const double>(cm));
  w.add_section(SectionType::kHierarchy, b);
}

Hierarchy read_hierarchy_sections(const SnapshotReader& r, SectionCursor& c) {
  SectionView v = r.expect(c.index++, SectionType::kHierarchy);
  const HierarchyRecord rec = v.read_pod<HierarchyRecord>();
  if (rec.reserved != 0) data_loss("hierarchy reserved field corrupt");
  if (rec.height == 0 ||
      rec.height > static_cast<std::uint32_t>(std::numeric_limits<int>::max())) {
    data_loss("hierarchy height corrupt");
  }
  const std::vector<std::int32_t> deg =
      v.read_span<std::int32_t>(rec.height);
  const std::vector<double> cm =
      v.read_span<double>(static_cast<std::size_t>(rec.height) + 1);
  v.expect_exhausted();

  // Pre-check the capacity product with an overflow guard: the Hierarchy
  // constructor multiplies first and checks after, which is UB territory
  // on hostile fan-outs; it must never see them.
  std::int64_t cp = 1;
  for (std::int32_t d : deg) {
    if (d < 1) data_loss("hierarchy fan-out corrupt");
    if (cp > (std::int64_t{1} << 40) / d) data_loss("hierarchy too large");
    cp *= d;
  }
  try {
    return Hierarchy(std::vector<int>(deg.begin(), deg.end()),
                     std::vector<double>(cm));
  } catch (const CheckError& e) {
    data_loss(std::string("hierarchy invariants violated: ") + e.what());
  }
}

// ---------------------------------------------------------------------------
// Forest codec

void append_forest_sections(SnapshotWriter& w, const ForestSnapshotMeta& meta,
                            const std::vector<DecompTree>& forest) {
  ForestHeaderRecord rec;
  rec.graph_fingerprint = meta.graph_fingerprint;
  rec.seed = meta.seed;
  rec.num_trees = meta.num_trees;
  rec.cutter_name_size = narrow<std::uint32_t>(meta.cutter.size());
  PayloadBuilder hb;
  hb.append_pod(rec);
  hb.append_span(std::span<const char>(meta.cutter.data(), meta.cutter.size()));
  w.add_section(SectionType::kForestHeader, hb);

  for (const DecompTree& dt : forest) {
    const Tree& tree = dt.tree();
    const Vertex n = tree.node_count();
    const std::size_t un = static_cast<std::size_t>(n);
    ForestTreeRecord tr;
    tr.node_count = static_cast<std::uint32_t>(n);
    std::vector<std::int32_t> parent(un);
    std::vector<double> weight(un);
    std::vector<std::uint8_t> infinite(un);
    std::vector<std::int32_t> leaf_vertex(un);
    for (Vertex t = 0; t < n; ++t) {
      const std::size_t ut = static_cast<std::size_t>(t);
      parent[ut] = tree.parent(t);
      // Root entries are normalized to zero: parent_weight is undefined
      // for the root, and deterministic bytes keep CRCs reproducible.
      weight[ut] = t == tree.root() ? 0.0 : tree.parent_weight(t);
      infinite[ut] =
          t != tree.root() && tree.parent_edge_infinite(t) ? 1 : 0;
      leaf_vertex[ut] =
          tree.is_leaf(t) ? dt.vertex_of_leaf(t) : kInvalidVertex;
    }
    PayloadBuilder tb;
    tb.append_pod(tr);
    tb.append_span(std::span<const std::int32_t>(parent));
    tb.append_span(std::span<const double>(weight));
    tb.append_span(std::span<const std::uint8_t>(infinite));
    tb.append_span(std::span<const std::int32_t>(leaf_vertex));
    w.add_section(SectionType::kForestTree, tb);
  }
}

std::vector<DecompTree> read_forest_sections(const SnapshotReader& r,
                                             SectionCursor& c, const Graph& g,
                                             ForestSnapshotMeta* meta) {
  SectionView hv = r.expect(c.index++, SectionType::kForestHeader);
  const ForestHeaderRecord rec = hv.read_pod<ForestHeaderRecord>();
  const std::vector<char> name = hv.read_span<char>(rec.cutter_name_size);
  hv.expect_exhausted();
  // The claimed tree count is bounded by the sections actually present
  // BEFORE the reserve below: a hostile count must fail typed, not
  // bad_alloc (found by hgp_snapfuzz's CRC-fixed regime).
  if (rec.num_trees < 0 ||
      static_cast<std::size_t>(rec.num_trees) > r.section_count() - c.index) {
    data_loss("forest tree count corrupt");
  }
  if (rec.graph_fingerprint != graph_fingerprint(g)) {
    data_loss("forest snapshot does not match this graph (fingerprint "
              "mismatch)");
  }

  std::vector<DecompTree> forest;
  forest.reserve(static_cast<std::size_t>(rec.num_trees));
  for (std::int32_t i = 0; i < rec.num_trees; ++i) {
    SectionView tv = r.expect(c.index++, SectionType::kForestTree);
    const ForestTreeRecord tr = tv.read_pod<ForestTreeRecord>();
    if (tr.reserved != 0) data_loss("forest tree reserved field corrupt");
    if (tr.node_count == 0 ||
        tr.node_count >
            static_cast<std::uint32_t>(std::numeric_limits<Vertex>::max())) {
      data_loss("forest tree node count corrupt");
    }
    const std::size_t un = tr.node_count;
    const Vertex n = static_cast<Vertex>(tr.node_count);
    std::vector<std::int32_t> parent = tv.read_span<std::int32_t>(un);
    std::vector<double> weight = tv.read_span<double>(un);
    const std::vector<std::uint8_t> infinite = tv.read_span<std::uint8_t>(un);
    std::vector<std::int32_t> leaf_vertex = tv.read_span<std::int32_t>(un);
    tv.expect_exhausted();
    std::vector<char> inf_flags(un);
    for (std::size_t t = 0; t < un; ++t) {
      if (parent[t] < kInvalidVertex || parent[t] >= n) {
        data_loss("forest tree parent pointer corrupt");
      }
      if (!std::isfinite(weight[t]) || weight[t] < 0) {
        data_loss("forest tree edge weight corrupt");
      }
      if (infinite[t] > 1) data_loss("forest tree infinity flag corrupt");
      inf_flags[t] = static_cast<char>(infinite[t]);
      if (leaf_vertex[t] < kInvalidVertex ||
          leaf_vertex[t] >= g.vertex_count()) {
        data_loss("forest tree leaf mapping corrupt");
      }
    }
    try {
      // Cycles, multiple roots, or a broken leaf↔vertex bijection are
      // caught by Tree::from_parents / the DecompTree constructor; their
      // CheckErrors become kDataLoss like every other corruption.
      Tree tree = Tree::from_parents(
          std::vector<Vertex>(parent.begin(), parent.end()),
          std::vector<Weight>(weight.begin(), weight.end()),
          std::move(inf_flags));
      if (g.has_demands()) {
        // Demands are not stored: rebuild them from the graph exactly as
        // the decomposition builder does.
        std::vector<double> demand(un, 0.0);
        for (Vertex t : tree.leaves()) {
          const std::int32_t v = leaf_vertex[static_cast<std::size_t>(t)];
          if (v == kInvalidVertex) data_loss("forest tree leaf unmapped");
          demand[static_cast<std::size_t>(t)] = g.demand(v);
        }
        tree.set_demands(std::move(demand));
      }
      forest.emplace_back(
          std::move(tree),
          std::vector<Vertex>(leaf_vertex.begin(), leaf_vertex.end()), g);
    } catch (const SolveError&) {
      throw;
    } catch (const CheckError& e) {
      data_loss(std::string("forest tree structure rejected: ") + e.what());
    }
  }
  if (meta != nullptr) {
    meta->graph_fingerprint = rec.graph_fingerprint;
    meta->seed = rec.seed;
    meta->num_trees = rec.num_trees;
    meta->cutter.assign(name.begin(), name.end());
  }
  return forest;
}

// ---------------------------------------------------------------------------
// Whole-file wrappers

namespace {

void expect_no_trailing_sections(const SnapshotReader& r,
                                 const SectionCursor& c) {
  if (c.index != r.section_count()) {
    data_loss("unexpected trailing sections");
  }
}

}  // namespace

Status save_graph_snapshot(const Graph& g, const std::string& path) {
  SnapshotWriter w;
  append_graph_sections(w, g);
  return w.write_file(path);
}

Graph load_graph_snapshot(const std::string& path) {
  const SnapshotReader r(path);
  SectionCursor c;
  Graph g = read_graph_sections(r, c);
  expect_no_trailing_sections(r, c);
  return g;
}

Status save_hierarchy_snapshot(const Hierarchy& h, const std::string& path) {
  SnapshotWriter w;
  append_hierarchy_sections(w, h);
  return w.write_file(path);
}

Hierarchy load_hierarchy_snapshot(const std::string& path) {
  const SnapshotReader r(path);
  SectionCursor c;
  Hierarchy h = read_hierarchy_sections(r, c);
  expect_no_trailing_sections(r, c);
  return h;
}

Status save_forest_snapshot(const ForestSnapshotMeta& meta, const Graph& g,
                            const std::vector<DecompTree>& forest,
                            const std::string& path) {
  if (meta.graph_fingerprint != graph_fingerprint(g)) {
    return Status(StatusCode::kInvalidInput,
                  "snapshot: forest meta fingerprint does not match the "
                  "graph being embedded");
  }
  if (meta.num_trees != narrow<int>(forest.size())) {
    return Status(StatusCode::kInvalidInput,
                  "snapshot: forest meta tree count does not match the "
                  "forest being embedded");
  }
  SnapshotWriter w;
  append_graph_sections(w, g);
  append_forest_sections(w, meta, forest);
  return w.write_file(path);
}

ForestSnapshot load_forest_snapshot(const std::string& path) {
  const SnapshotReader r(path);
  SectionCursor c;
  ForestSnapshot snap;
  snap.graph = read_graph_sections(r, c);
  snap.forest = read_forest_sections(r, c, snap.graph, &snap.meta);
  expect_no_trailing_sections(r, c);
  return snap;
}

}  // namespace hgp::io
