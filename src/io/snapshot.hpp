// Durable binary snapshots: the versioned, integrity-checked container
// behind graph / hierarchy / forest / checkpoint persistence.
//
// Container layout (all integers little-endian; see docs/FORMATS.md):
//
//   FileHeader   { char magic[8] = "HGPSNAP\0"; u32 version; u32 sections }
//   per section: { u32 type; u32 payload_crc32; u64 payload_size } payload…
//   FileFooter   { u32 file_crc32 }   // over every byte before the footer
//
// Integrity is layered: the per-section CRC32 catches payload rot, the
// file CRC32 catches header/section-table rot and truncation (the footer
// must land exactly at end-of-file), and typed codecs re-validate every
// semantic invariant (index ranges, finite weights, tree shape, a graph
// content fingerprint) after the CRCs pass.  Every malformed input — bit
// flip, truncation, type confusion, hostile lengths — yields a typed
// SolveError{kDataLoss}; never UB, never a crash (tools/hgp_snapfuzz
// hammers exactly this contract under ASan).
//
// Persistence is crash-safe: SnapshotWriter::write_file serializes to
// `path + ".tmp"`, fsyncs, then atomically renames over `path`, so a
// reader never observes a half-written final file (a torn write dies with
// the temp file).  Write failures are reported as a Status — spilling is
// best-effort by design and callers degrade to in-memory operation.
// FaultInjector sites snapshot.write / snapshot.fsync / snapshot.rename
// make the failure paths testable (short write, ENOSPC, fsync loss, torn
// rename).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "decomp/decomp_tree.hpp"
#include "graph/fingerprint.hpp"
#include "graph/graph.hpp"
#include "hierarchy/hierarchy.hpp"
#include "util/status.hpp"

namespace hgp::io {

// The on-disk byte order is little-endian.  Bulk payloads are written as
// POD spans (the snippet-3 idiom), which is only correct when the host
// matches; every currently supported target does, and a big-endian port
// must add byte-swapping codecs rather than silently emitting a different
// format.
static_assert(std::endian::native == std::endian::little,
              "snapshot container requires a little-endian host");

/// Every on-disk record must be memcpy-safe and free of hidden padding
/// (padding bytes would leak uninitialized memory into files and break
/// CRC reproducibility).  Enforced per record via static_assert on sizeof.
template <typename T>
inline constexpr bool is_snapshot_pod_v =
    std::is_trivially_copyable_v<T> && std::is_standard_layout_v<T>;

/// CRC-32 (IEEE 802.3, reflected).  `seed` chains incremental computation:
/// crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

constexpr std::uint32_t kSnapshotVersion = 1;

enum class SectionType : std::uint32_t {
  kGraphHeader = 1,
  kGraphEdges = 2,
  kGraphDemands = 3,
  kHierarchy = 4,
  kForestHeader = 5,
  kForestTree = 6,
  kCheckpointHeader = 7,
  kCheckpointTree = 8,
};

/// Stable lower-snake name for diagnostics ("graph_edges"); never nullptr.
const char* section_type_name(SectionType type);

// ---------------------------------------------------------------------------
// On-disk records.  Fixed-width members only; layout locked by the
// static_asserts below (a failed assert means the format changed — bump
// kSnapshotVersion and update docs/FORMATS.md).

struct GraphHeaderRecord {
  std::uint64_t fingerprint = 0;  ///< graph_fingerprint(), verified on load
  std::uint32_t vertex_count = 0;
  std::uint32_t has_demands = 0;  ///< 0 or 1
  std::uint64_t edge_count = 0;
};
static_assert(sizeof(GraphHeaderRecord) == 24 &&
              alignof(GraphHeaderRecord) == 8 &&
              is_snapshot_pod_v<GraphHeaderRecord>);

struct EdgeRecord {
  std::int32_t u = 0;
  std::int32_t v = 0;
  double weight = 0;
};
static_assert(sizeof(EdgeRecord) == 16 && alignof(EdgeRecord) == 8 &&
              is_snapshot_pod_v<EdgeRecord>);

struct HierarchyRecord {
  std::uint32_t height = 0;
  std::uint32_t reserved = 0;
};  // payload continues: i32 deg[height], f64 cm[height + 1]
static_assert(sizeof(HierarchyRecord) == 8 &&
              is_snapshot_pod_v<HierarchyRecord>);

struct ForestHeaderRecord {
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t seed = 0;
  std::int32_t num_trees = 0;
  std::uint32_t cutter_name_size = 0;
};  // payload continues: char cutter_name[cutter_name_size]
static_assert(sizeof(ForestHeaderRecord) == 24 &&
              is_snapshot_pod_v<ForestHeaderRecord>);

struct ForestTreeRecord {
  std::uint32_t node_count = 0;
  std::uint32_t reserved = 0;
};  // payload continues: i32 parent[n], f64 weight[n], u8 infinite[n],
    // i32 leaf_vertex[n]
static_assert(sizeof(ForestTreeRecord) == 8 &&
              is_snapshot_pod_v<ForestTreeRecord>);

struct CheckpointHeaderRecord {
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t seed = 0;
  std::int32_t num_trees = 0;
  std::uint32_t bound = 0;  ///< 0 or 1: was the checkpoint key bound?
  double epsilon = 0;
  std::int64_t units_override = 0;
  std::uint32_t tree_count = 0;  ///< number of kCheckpointTree sections
  std::uint32_t reserved = 0;
};
static_assert(sizeof(CheckpointHeaderRecord) == 48 &&
              is_snapshot_pod_v<CheckpointHeaderRecord>);

struct CheckpointTreeRecord {
  std::int32_t index = 0;
  std::uint32_t reserved = 0;
  double cost = 0;
  std::uint64_t leaf_count = 0;
};  // payload continues: i64 leaf_of[leaf_count]
static_assert(sizeof(CheckpointTreeRecord) == 24 &&
              is_snapshot_pod_v<CheckpointTreeRecord>);

// ---------------------------------------------------------------------------
// Payload assembly / extraction.

/// Accumulates one section's payload from PODs and POD spans.
class PayloadBuilder {
 public:
  template <typename T>
  void append_pod(const T& pod) {
    static_assert(is_snapshot_pod_v<T>);
    append_bytes(&pod, sizeof(T));
  }

  template <typename T>
  void append_span(std::span<const T> values) {
    static_assert(is_snapshot_pod_v<T>);
    append_bytes(values.data(), values.size_bytes());
  }

  std::span<const std::byte> bytes() const { return bytes_; }

 private:
  void append_bytes(const void* data, std::size_t size);

  std::vector<std::byte> bytes_;
};

/// Read-only cursor over one section's payload.  Every extraction is
/// bounds-checked; over-reads and trailing garbage throw
/// SolveError{kDataLoss} naming the section.
class SectionView {
 public:
  SectionView(SectionType type, std::span<const std::byte> payload)
      : type_(type), payload_(payload) {}

  SectionType type() const { return type_; }
  std::span<const std::byte> payload() const { return payload_; }
  std::size_t remaining() const { return payload_.size() - cursor_; }

  template <typename T>
  T read_pod() {
    static_assert(is_snapshot_pod_v<T>);
    T out;
    read_bytes(&out, sizeof(T));
    return out;
  }

  /// Reads `count` contiguous PODs.  The count is validated against the
  /// remaining payload BEFORE any allocation, so hostile length fields
  /// cannot drive an over-read or an allocation bomb.
  template <typename T>
  std::vector<T> read_span(std::size_t count) {
    static_assert(is_snapshot_pod_v<T>);
    check_count(count, sizeof(T));
    std::vector<T> out(count);
    if (count > 0) read_bytes(out.data(), count * sizeof(T));
    return out;
  }

  /// A codec that consumed its section must land exactly at the end;
  /// trailing bytes mean the payload is not what the type claims.
  void expect_exhausted() const;

 private:
  void read_bytes(void* out, std::size_t size);
  void check_count(std::size_t count, std::size_t elem_size) const;

  SectionType type_;
  std::span<const std::byte> payload_;
  std::size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Container writer / reader.

class SnapshotWriter {
 public:
  /// Appends a section (payload copied).
  void add_section(SectionType type, std::span<const std::byte> payload);
  void add_section(SectionType type, const PayloadBuilder& payload) {
    add_section(type, payload.bytes());
  }

  std::size_t section_count() const { return sections_.size(); }

  /// The complete container image: header, sections, file CRC footer.
  std::vector<std::byte> serialize() const;

  /// Crash-safe persistence: serialize → `path + ".tmp"` → fsync → rename.
  /// Returns non-OK on any I/O failure; on failure no bytes of `path` were
  /// replaced (except under the injected torn-rename fault, which models a
  /// crash mid-rename and deliberately leaves a corrupt final file for the
  /// loader to reject).  Never throws.
  Status write_file(const std::string& path) const;

 private:
  struct Section {
    SectionType type;
    std::vector<std::byte> payload;
  };
  std::vector<Section> sections_;
};

/// Parses and integrity-checks a container image.  Construction validates
/// magic, version, section bounds, per-section CRCs, the file CRC, and the
/// exact end-of-file position; any mismatch throws SolveError{kDataLoss}.
class SnapshotReader {
 public:
  /// Reads `path` fully, then validates.  A missing/unreadable file is
  /// also kDataLoss: callers treat it as "no durable state".
  explicit SnapshotReader(const std::string& path);
  /// Validates an in-memory image (the fuzz harness mutates blobs here).
  explicit SnapshotReader(std::vector<std::byte> blob);

  std::size_t section_count() const { return sections_.size(); }
  SectionView section(std::size_t i) const;
  /// section(i) + type check: a mismatch throws kDataLoss naming both
  /// types (the type-confusion guard).
  SectionView expect(std::size_t i, SectionType type) const;

 private:
  void parse();

  struct SectionIndex {
    SectionType type;
    std::size_t offset;
    std::size_t size;
  };
  std::vector<std::byte> blob_;
  std::vector<SectionIndex> sections_;
};

/// Sequential section position shared by codecs composing one file.
struct SectionCursor {
  std::size_t index = 0;
};

// ---------------------------------------------------------------------------
// Typed codecs.  Writers append a deterministic section sequence; readers
// consume the same sequence from a cursor, re-validating every invariant.
// All read_* functions throw SolveError{kDataLoss} on malformed input.

void append_graph_sections(SnapshotWriter& w, const Graph& g);
Graph read_graph_sections(const SnapshotReader& r, SectionCursor& c);

void append_hierarchy_sections(SnapshotWriter& w, const Hierarchy& h);
Hierarchy read_hierarchy_sections(const SnapshotReader& r, SectionCursor& c);

/// Identifies which solve parameters a snapshotted forest belongs to
/// (mirrors the runtime's ForestCacheKey, which lives above this layer).
struct ForestSnapshotMeta {
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t seed = 0;
  int num_trees = 0;
  std::string cutter;
};

void append_forest_sections(SnapshotWriter& w, const ForestSnapshotMeta& meta,
                            const std::vector<DecompTree>& forest);
/// Rebuilds the forest against `g` (leaf demands are reconstructed from
/// the graph, exactly as the decomposition builder sets them).  `meta`'s
/// stored fingerprint must match graph_fingerprint(g).
std::vector<DecompTree> read_forest_sections(const SnapshotReader& r,
                                             SectionCursor& c, const Graph& g,
                                             ForestSnapshotMeta* meta);

// ---------------------------------------------------------------------------
// Whole-file convenience wrappers.

Status save_graph_snapshot(const Graph& g, const std::string& path);
Graph load_graph_snapshot(const std::string& path);

Status save_hierarchy_snapshot(const Hierarchy& h, const std::string& path);
Hierarchy load_hierarchy_snapshot(const std::string& path);

/// A self-contained forest snapshot embeds its graph, so warm-loading
/// needs nothing but the file.
struct ForestSnapshot {
  ForestSnapshotMeta meta;
  Graph graph;
  std::vector<DecompTree> forest;
};

Status save_forest_snapshot(const ForestSnapshotMeta& meta, const Graph& g,
                            const std::vector<DecompTree>& forest,
                            const std::string& path);
ForestSnapshot load_forest_snapshot(const std::string& path);

}  // namespace hgp::io
