// Metrics registry: named counters, gauges and fixed-bucket histograms
// with atomic hot paths and JSON export.
//
// Instruments register-once, update-many: MetricsRegistry::global() hands
// out stable references (get-or-create under a mutex), after which every
// update is lock-free — counters and gauges are single relaxed atomics,
// histograms one atomic per bucket plus a CAS-loop sum.  The instrumented
// call sites cache the reference (see the HGP_COUNTER_ADD macro in
// obs/obs.hpp, or hold a Counter*/Histogram* member), so the registry
// mutex is never on a hot path.
//
// Unlike tracing there is no runtime on/off switch: collection is a few
// relaxed atomic ops at cold-to-warm call sites, cheap enough to leave on
// whenever the layer is compiled in (HGP_OBS=ON).  reset_values() re-zeroes
// every instrument without invalidating references, so tests and CLI runs
// can scope their measurements.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace hgp::obs {

/// Monotonic event count.  add() is a relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, live workers) with a high-water mark.
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    raise_max(value);
  }
  void add(std::int64_t delta) {
    raise_max(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max_value() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t candidate) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive bucket tops in
/// strictly increasing order, plus an implicit +inf overflow bucket.
/// observe() is one atomic bucket increment, one count increment and a
/// CAS-loop on the running sum — safe under arbitrary concurrency.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Point-in-time copies of one instrument, for exporters and percentile
/// math that must not hold registry references across their own I/O.
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max_value = 0;
};
struct HistogramSnapshot {
  std::string name;
  /// Inclusive bucket upper bounds; `buckets` has one extra trailing
  /// overflow (+inf) entry.
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0;
};

/// Quantile estimate (q in [0, 1]) from a histogram snapshot: finds the
/// bucket holding the q-th observation and interpolates linearly inside it
/// (the overflow bucket reports its lower bound — the largest finite
/// boundary — since its width is unknown).  Returns NaN for an empty
/// histogram.
double histogram_quantile(const HistogramSnapshot& h, double q);

/// Name → instrument map.  Names are dot-separated lowercase paths
/// ("dp.merge_operations", "pool.queue_depth" — scheme in
/// docs/OBSERVABILITY.md); counters, gauges and histograms live in
/// separate namespaces.  References returned by the accessors stay valid
/// for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry the instrumentation macros record into.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create; `upper_bounds` only applies on first registration
  /// (later callers receive the existing histogram unchanged).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Current counter value, 0 when the counter was never registered.
  std::uint64_t counter_value(const std::string& name) const;

  /// Zeroes every instrument; references stay valid.
  void reset_values();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(std::ostream& os) const;

  /// Name-sorted point-in-time copies (values are relaxed atomic reads;
  /// concurrent updates may straddle the copy).
  std::vector<CounterSnapshot> counter_snapshots() const;
  std::vector<GaugeSnapshot> gauge_snapshots() const;
  std::vector<HistogramSnapshot> histogram_snapshots() const;

  /// Prometheus text exposition (version 0.0.4): counters as `counter`,
  /// gauges as two `gauge` series (value and `_max` high-water), histograms
  /// as cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.  Names
  /// are sanitized to the Prometheus charset with an `hgp_` prefix; the
  /// `# HELP` line carries the exact registered name.
  void write_prometheus(std::ostream& os) const;

 private:
  /// Reader/writer split: get-or-create takes the writer side; lookups and
  /// exports take the reader side (instrument values are atomics, so a
  /// shared hold is enough to read them).  A leaf lock.
  mutable SharedMutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      HGP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      HGP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      HGP_GUARDED_BY(mutex_);
};

}  // namespace hgp::obs
