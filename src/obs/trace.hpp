// Trace spans: nested, thread-aware begin/end events for the solver
// pipeline, recorded into a lock-sharded in-memory buffer.
//
// A TraceSpan is an RAII region: construction stamps the start, the
// destructor stamps the duration and appends one TraceEvent to a
// TraceBuffer.  Spans nest naturally with C++ scopes; each event records
// the dense id of its thread and its nesting depth on that thread, so
// concurrent per-tree solves land in separate lanes of the exported trace.
//
// Tracing is opt-in at runtime: a disabled buffer (the default) makes
// span construction a single relaxed atomic load, and the buffer only
// grows while enabled.  The whole layer compiles out under HGP_OBS=OFF —
// see obs/obs.hpp for the macro knob.
//
// Export targets:
//   * write_chrome_json() — Chrome trace-event JSON ("ph":"X" complete
//     events), loadable in chrome://tracing and https://ui.perfetto.dev;
//   * summary() — a per-span-name table (count, total/mean/max ms) for
//     humans, printable to any std::ostream via Table.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <vector>

#include "util/sync.hpp"
#include "util/table.hpp"

namespace hgp::obs {

/// Sentinel for "span has no numeric argument".
inline constexpr std::int64_t kNoArg = std::numeric_limits<std::int64_t>::min();

/// One closed span.  `name` must point at static-storage text (the macros
/// pass string literals); events are POD so shards copy them cheaply.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t start_us = 0;  ///< µs since the owning buffer's epoch
  std::int64_t dur_us = 0;
  std::int64_t arg = kNoArg;  ///< e.g. the tree index of a per-tree solve
  std::uint32_t tid = 0;      ///< dense thread id (util/thread_id.hpp)
  std::uint32_t depth = 0;    ///< nesting depth on `tid` at span begin
};

/// Lock-sharded event sink.  record() takes one shard mutex keyed by the
/// calling thread, so concurrent workers do not serialize on a single
/// lock; snapshot/export merge and sort the shards.
class TraceBuffer {
 public:
  TraceBuffer() : epoch_(Clock::now()) {}

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Process-wide buffer the instrumentation macros record into.
  static TraceBuffer& global();

  /// Tracing is off by default; span construction is inert while disabled.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events (the epoch is unchanged).
  void clear();

  void record(const TraceEvent& event);

  std::size_t size() const;

  /// All events merged across shards, ordered by start time (outer spans
  /// before the spans they contain).
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON (chrome://tracing / Perfetto).
  void write_chrome_json(std::ostream& os) const;

  /// Per-name aggregate: span, count, total ms, mean ms, max ms.
  Table summary() const;

  /// µs since this buffer's construction (the timebase of every event).
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - epoch_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kShards = 16;

  struct Shard {
    /// Leaf locks; snapshot() takes them one at a time, never two at once.
    mutable Mutex mutex;
    std::vector<TraceEvent> events HGP_GUARDED_BY(mutex);
  };

  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_;
  Shard shards_[kShards];
};

/// RAII span.  `name` must outlive the buffer (pass a string literal).
/// Construction on a disabled buffer costs one atomic load and records
/// nothing.  Spans must be destroyed on the thread that created them (the
/// natural consequence of being scope-bound locals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg = kNoArg,
                     TraceBuffer* buffer = &TraceBuffer::global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buffer_;  // nullptr when tracing was disabled at entry
  const char* name_;
  std::int64_t arg_;
  std::int64_t start_us_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace hgp::obs
