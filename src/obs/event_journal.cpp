#include "obs/event_journal.hpp"

#include <algorithm>

#include "util/thread_id.hpp"

namespace hgp::obs {

namespace {

thread_local std::uint64_t t_request_id = 0;
thread_local std::uint32_t t_attempt = 0;

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSubmit: return "submit";
    case EventKind::kAdmit: return "admit";
    case EventKind::kReject: return "reject";
    case EventKind::kAttemptStart: return "attempt_start";
    case EventKind::kAttemptEnd: return "attempt_end";
    case EventKind::kRetry: return "retry";
    case EventKind::kBackoff: return "backoff";
    case EventKind::kDegrade: return "degrade";
    case EventKind::kCheckpointSpill: return "checkpoint_spill";
    case EventKind::kCheckpointRecover: return "checkpoint_recover";
    case EventKind::kCheckpointRecord: return "checkpoint_record";
    case EventKind::kWatchdogCancel: return "watchdog_cancel";
    case EventKind::kCallerCancel: return "caller_cancel";
    case EventKind::kFallbackStage: return "fallback_stage";
    case EventKind::kResolveStart: return "resolve_start";
    case EventKind::kResolveEnd: return "resolve_end";
    case EventKind::kShardUp: return "shard_up";
    case EventKind::kShardLost: return "shard_lost";
    case EventKind::kLeaseExpire: return "lease_expire";
    case EventKind::kBatchReassign: return "batch_reassign";
    case EventKind::kZombieFenced: return "zombie_fenced";
    case EventKind::kCount: break;
  }
  return "unknown";
}

EventJournal::EventJournal() : epoch_(std::chrono::steady_clock::now()) {
  for (std::atomic<Ring*>& slot : rings_) {
    slot.store(nullptr, std::memory_order_relaxed);
  }
}

EventJournal::~EventJournal() {
  for (std::atomic<Ring*>& slot : rings_) {
    delete slot.load(std::memory_order_acquire);
  }
}

EventJournal& EventJournal::global() {
  static EventJournal* journal = new EventJournal();  // never destroyed:
  // the signal-safe dump path may run during exit, after static
  // destructors would have torn a by-value singleton down.
  return *journal;
}

std::int64_t EventJournal::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

EventJournal::Ring* EventJournal::ring_for_thread() {
  const std::size_t idx = this_thread_id() % kRings;
  Ring* ring = rings_[idx].load(std::memory_order_acquire);
  if (ring != nullptr) return ring;
  auto* fresh = new Ring();
  Ring* expected = nullptr;
  if (rings_[idx].compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;  // another thread with the same hash won the install
  return expected;
}

void EventJournal::record(EventKind kind, std::uint64_t request_id,
                          std::uint32_t attempt, std::int64_t arg,
                          std::uint8_t status) {
  Ring* ring = ring_for_thread();
  // Claim-then-publish: the fetch_add reserves a slot (unique per writer
  // even when threads share a ring); the stamp release-store afterwards is
  // what makes the event visible to readers.  A reader that catches the
  // window between them simply skips the slot.
  const std::uint64_t seq =
      ring->head.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = ring->slots[seq % kRingCapacity];
  slot.w0.store(static_cast<std::uint64_t>(now_us()),
                std::memory_order_relaxed);
  slot.w1.store(request_id, std::memory_order_relaxed);
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(attempt) << 32) |
      (static_cast<std::uint64_t>(this_thread_id() & 0xffffu) << 16) |
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) << 8) |
      static_cast<std::uint64_t>(status);
  slot.w2.store(packed, std::memory_order_relaxed);
  slot.w3.store(static_cast<std::uint64_t>(arg), std::memory_order_relaxed);
  slot.stamp.store(seq + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t EventJournal::read_ring(const Ring& ring, JournalEvent* out,
                                    std::size_t max) {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(head, kRingCapacity);
  std::size_t written = 0;
  for (std::uint64_t seq = head - n; seq < head && written < max; ++seq) {
    const Slot& slot = ring.slots[seq % kRingCapacity];
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    JournalEvent e;
    e.ts_us =
        static_cast<std::int64_t>(slot.w0.load(std::memory_order_relaxed));
    e.request_id = slot.w1.load(std::memory_order_relaxed);
    const std::uint64_t packed = slot.w2.load(std::memory_order_relaxed);
    e.attempt = static_cast<std::uint32_t>(packed >> 32);
    e.tid = static_cast<std::uint32_t>((packed >> 16) & 0xffffu);
    e.kind = static_cast<EventKind>((packed >> 8) & 0xff);
    e.status = static_cast<std::uint8_t>(packed & 0xff);
    e.arg =
        static_cast<std::int64_t>(slot.w3.load(std::memory_order_relaxed));
    // Two overwrite guards.  Stamp re-check: a lapping writer republishes
    // the slot only after rewriting the fields, so a changed stamp proves
    // the copy raced.  Head re-check: a lapping writer *claims* seq +
    // kRingCapacity before its first field store, so a head that has moved
    // past seq + kRingCapacity says the fields were possibly mid-rewrite
    // even though the new stamp is not yet visible.
    if (slot.stamp.load(std::memory_order_acquire) != seq + 1) continue;
    if (ring.head.load(std::memory_order_acquire) > seq + kRingCapacity) {
      continue;
    }
    if (static_cast<std::uint8_t>(e.kind) >=
        static_cast<std::uint8_t>(EventKind::kCount)) {
      continue;  // torn beyond recognition; drop rather than mislabel
    }
    out[written] = e;
    ++written;
  }
  return written;
}

std::vector<JournalEvent> EventJournal::snapshot() const {
  std::vector<JournalEvent> events;
  std::vector<JournalEvent> scratch(kRingCapacity);
  for (std::size_t i = 0; i < kRings; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::size_t n = read_ring(*ring, scratch.data(), scratch.size());
    events.insert(events.end(), scratch.begin(),
                  scratch.begin() + static_cast<std::ptrdiff_t>(n));
  }
  std::sort(events.begin(), events.end(),
            [](const JournalEvent& a, const JournalEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.request_id != b.request_id) {
                return a.request_id < b.request_id;
              }
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return events;
}

std::size_t EventJournal::copy_events_signal_safe(JournalEvent* out,
                                                  std::size_t max) const {
  std::size_t written = 0;
  for (std::size_t i = 0; i < kRings && written < max; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    written += read_ring(*ring, out + written, max - written);
  }
  return written;
}

void EventJournal::clear() {
  for (std::size_t i = 0; i < kRings; ++i) {
    Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    // Stamps first: a zero stamp can never equal any seq+1, so residual
    // slot contents are unreachable even before head resets.
    for (Slot& slot : ring->slots) {
      slot.stamp.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

RequestScope::RequestScope(std::uint64_t request_id, std::uint32_t attempt)
    : saved_request_id_(t_request_id), saved_attempt_(t_attempt) {
  t_request_id = request_id;
  t_attempt = attempt;
}

RequestScope::~RequestScope() {
  t_request_id = saved_request_id_;
  t_attempt = saved_attempt_;
}

std::uint64_t RequestScope::current_request_id() { return t_request_id; }
std::uint32_t RequestScope::current_attempt() { return t_attempt; }

std::uint64_t next_library_request_id() {
  // Service request ids are dense from 0; the library range starts far
  // above so journals mixing both stay unambiguous.
  static std::atomic<std::uint64_t> next{1ull << 32};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hgp::obs
