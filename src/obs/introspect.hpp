// Introspection endpoint: live scrapes of a running solver process over a
// unix-domain socket.
//
// A minimal poll-based HTTP/1.0 server on one dedicated thread, serving
// GET requests:
//
//   /metrics         Prometheus text exposition of MetricsRegistry
//   /flightrecorder  on-demand flight-recorder JSON dump
//   /requests        JSON view of in-flight service requests (registered
//                    by SolverService when ServiceOptions::obs_socket or
//                    HGP_OBS_SOCKET enables the endpoint)
//
// Scrape with `curl --unix-socket /path/to.sock http://hgp/metrics`, any
// HTTP client that speaks AF_UNIX, or tools/hgp_top (a live table client
// over the same two endpoints).  One client is served at a time — scrapes
// are rare, tiny and read-only, so a connection backlog beats connection
// concurrency — and every handler runs on the server thread against
// thread-safe state (registry snapshots, journal snapshots, a service
// callback that takes its own lock).
//
// The server is plumbing, not instrumentation: it builds in both HGP_OBS
// modes, but the service layer only starts it when HGP_OBS_ENABLED is 1,
// keeping the OFF build's no-op contract.
#pragma once

#include <atomic>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <thread>

#include "util/status.hpp"
#include "util/sync.hpp"

namespace hgp::obs {

struct IntrospectOptions {
  /// Filesystem path of the unix-domain socket.  A stale socket file at
  /// the path is unlinked before binding (the previous owner is dead; a
  /// *live* previous owner loses its listener, so give each service its
  /// own path).
  std::string socket_path;
  /// Accept-loop poll period; also bounds shutdown latency.
  double poll_interval_ms = 50;
};

/// Handler for one endpoint path: writes the response body.  Runs on the
/// server thread; must be thread-safe against the process it observes.
using IntrospectHandler = std::function<void(std::ostream&)>;

class IntrospectionServer {
 public:
  /// Binds and starts serving.  Throws SolveError(kInternal) when the
  /// socket cannot be created/bound/listened (path too long for sockaddr_un
  /// included); callers that treat the endpoint as optional catch and log.
  explicit IntrospectionServer(IntrospectOptions opt);
  /// Stops the server thread, closes and unlinks the socket.
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Adds (or replaces) the handler for `path` (e.g. "/requests").
  /// Callable any time; scrapes racing the registration see either state.
  void register_handler(const std::string& path, IntrospectHandler handler)
      HGP_EXCLUDES(mutex_);

  const std::string& socket_path() const { return opt_.socket_path; }

 private:
  void serve_loop();
  void handle_client(int client_fd) HGP_EXCLUDES(mutex_);

  IntrospectOptions opt_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  /// Guards the handler table only; a leaf lock.
  mutable Mutex mutex_;
  std::map<std::string, IntrospectHandler> handlers_ HGP_GUARDED_BY(mutex_);

  // A dedicated thread, not a pool task: it blocks in poll() for the
  // server's lifetime and must keep serving while every pool worker is
  // busy — the endpoint exists to observe exactly those moments.
  // hgp-lint: allow(naked-thread)
  std::thread thread_;
};

/// Minimal scrape client for tools and tests: GETs `target` (e.g.
/// "/metrics") from the server at `socket_path`, stores the response body
/// in `*body`.  Non-ok when the socket is unreachable, the response is
/// malformed, or the server answered with a non-200 status.
Status introspect_fetch(const std::string& socket_path,
                        const std::string& target, std::string* body);

}  // namespace hgp::obs
