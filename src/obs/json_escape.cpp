#include "obs/json_escape.hpp"

#include <ostream>
#include <sstream>

namespace hgp::obs {

void write_json_escaped(std::ostream& os, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default: {
        const unsigned u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          os << "\\u00" << kHex[u >> 4] << kHex[u & 0xf];
        } else {
          os << c;
        }
      }
    }
  }
}

std::string json_escaped(std::string_view s) {
  std::ostringstream os;
  write_json_escaped(os, s);
  return os.str();
}

}  // namespace hgp::obs
