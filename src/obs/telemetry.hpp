// Per-solve telemetry summary surfaced on HgpResult.
//
// Phase wall-times and aggregate DP work for one solve_hgp call, filled by
// the runtime regardless of whether tracing is enabled (the measurements
// are a handful of Timer reads at phase boundaries, not per-event
// recording).  The trace buffer answers "what happened when, on which
// thread"; SolveTelemetry answers "where did this solve's time go" without
// any export step.
#pragma once

#include <cstdint>

namespace hgp {

struct SolveTelemetry {
  /// Wall time of the whole solve_hgp call.
  double total_ms = 0;
  /// Stage 1: decomposition-forest sampling.
  double forest_build_ms = 0;
  /// Stage 1 was served from the forest LRU cache (forest_build_ms then
  /// measures only the fingerprint + lookup).
  bool forest_cache_hit = false;
  /// Stage 2: the per-tree attempt stage (wall time, not summed attempts —
  /// attempts overlap under a thread pool; per-attempt times live in
  /// HgpResult::attempts).
  double tree_solve_ms = 0;
  /// Stage 4: the fallback chain (0 when the primary pipeline won).
  double fallback_ms = 0;

  int trees_attempted = 0;
  int trees_succeeded = 0;
  /// Trees served from a SolveCheckpoint (a previous attempt of the same
  /// request completed them; this attempt skipped their DP entirely).
  int checkpoint_trees = 0;

  /// DP work summed over the attempts that completed (failed attempts
  /// lose their stats to the fault isolation boundary).
  std::uint64_t dp_signatures = 0;
  std::uint64_t dp_feasible_states = 0;
  std::uint64_t dp_merge_operations = 0;
  std::uint64_t dp_merges_rejected = 0;
  std::uint64_t dp_states_pruned = 0;
  /// DP node tables computed by merging vs rehydrated from a clean-subtree
  /// reuse store (runtime/incremental.hpp).  reused ≫ built is the
  /// incremental-resolve win; a from-scratch solve has dp_nodes_reused == 0.
  std::uint64_t dp_nodes_built = 0;
  std::uint64_t dp_nodes_reused = 0;
};

}  // namespace hgp
