#include "obs/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>

#include "obs/json_escape.hpp"
#include "util/thread_id.hpp"

namespace hgp::obs {

namespace {

/// Per-thread span nesting depth.  One counter per thread (not per buffer):
/// spans on distinct buffers almost never interleave on one thread, and
/// depth is a rendering hint, not a correctness invariant.
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

void TraceBuffer::clear() {
  for (Shard& shard : shards_) {
    const MutexLock lock(shard.mutex);
    shard.events.clear();
  }
}

void TraceBuffer::record(const TraceEvent& event) {
  Shard& shard = shards_[event.tid % kShards];
  const MutexLock lock(shard.mutex);
  shard.events.push_back(event);
}

std::size_t TraceBuffer::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const MutexLock lock(shard.mutex);
    total += shard.events.size();
  }
  return total;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> events;
  for (const Shard& shard : shards_) {
    const MutexLock lock(shard.mutex);
    events.insert(events.end(), shard.events.begin(), shard.events.end());
  }
  // Start-time order with longer (enclosing) spans first on ties, so a
  // reader sees parents before children.  Depth settles the sub-µs case
  // where nested spans collapse to identical timestamps and durations.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.depth < b.depth;
            });
  return events;
}

void TraceBuffer::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    write_json_escaped(os, e.name);
    os << "\",\"cat\":\"hgp\",\"ph\":\"X\",\"ts\":" << e.start_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << e.tid
       << ",\"args\":{\"depth\":" << e.depth;
    if (e.arg != kNoArg) os << ",\"arg\":" << e.arg;
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Table TraceBuffer::summary() const {
  struct Agg {
    std::size_t count = 0;
    double total_us = 0;
    double max_us = 0;
  };
  // Keyed by name text (identical literals may have distinct addresses
  // across translation units).
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : snapshot()) {
    Agg& agg = by_name[e.name];
    agg.count += 1;
    agg.total_us += static_cast<double>(e.dur_us);
    agg.max_us = std::max(agg.max_us, static_cast<double>(e.dur_us));
  }
  Table table({"span", "count", "total ms", "mean ms", "max ms"});
  for (const auto& [name, agg] : by_name) {
    table.row()
        .add(name)
        .add(static_cast<std::int64_t>(agg.count))
        .add(agg.total_us / 1e3)
        .add(agg.total_us / 1e3 / static_cast<double>(agg.count))
        .add(agg.max_us / 1e3);
  }
  return table;
}

TraceSpan::TraceSpan(const char* name, std::int64_t arg, TraceBuffer* buffer)
    : buffer_(buffer != nullptr && buffer->enabled() ? buffer : nullptr),
      name_(name),
      arg_(arg) {
  if (buffer_ == nullptr) return;
  start_us_ = buffer_->now_us();
  depth_ = t_span_depth++;
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr) return;
  --t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = buffer_->now_us() - start_us_;
  event.arg = arg_;
  event.tid = this_thread_id();
  event.depth = depth_;
  buffer_->record(event);
}

}  // namespace hgp::obs
