// Observability umbrella: instrumentation macros and the HGP_OBS knob.
//
// Library code instruments itself through these macros only, so one
// compile-time switch strips every call site:
//
//   HGP_TRACE_SPAN("solve.forest");          // RAII span, global buffer
//   HGP_TRACE_SPAN_ARG("tree.attempt", i);   // span with a numeric arg
//   HGP_COUNTER_ADD("dp.merge_operations", n);
//   HGP_GAUGE_ADD("pool.queue_depth", +1);
//   HGP_GAUGE_SET("pool.workers", n);
//   HGP_JOURNAL(kRetry, request_id, attempt, arg, status);  // event journal
//   HGP_JOURNAL_SCOPED(kFallbackStage, arg, status);  // ids from the
//                                                     // ambient RequestScope
//   HGP_REQUEST_SCOPE(request_id, attempt);  // RAII thread-local id scope
//
// The CMake option HGP_OBS (default ON) defines HGP_OBS_ENABLED=1|0 for
// every target.  With HGP_OBS=OFF the macros collapse to no-ops — no
// atomic loads, no registry lookups, nothing for the optimizer to keep —
// so release hot paths pay zero for the layer.  The hgp_obs library itself
// still builds either way (exporters and classes stay available to tools).
//
// Names passed to the macros must be string literals: span names are
// stored by pointer, and the counter/gauge macros resolve the registry
// entry once per call site through a function-local static reference.
// Tracing additionally has a runtime switch (TraceBuffer::set_enabled);
// metrics are always collected while compiled in — see metrics.hpp.
#pragma once

#ifndef HGP_OBS_ENABLED
#define HGP_OBS_ENABLED 1
#endif

#if HGP_OBS_ENABLED

#include <cstdint>

#include "obs/event_journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#define HGP_OBS_CONCAT_(a, b) a##b
#define HGP_OBS_CONCAT(a, b) HGP_OBS_CONCAT_(a, b)

#define HGP_TRACE_SPAN(name) \
  ::hgp::obs::TraceSpan HGP_OBS_CONCAT(hgp_obs_span_, __LINE__)(name)

#define HGP_TRACE_SPAN_ARG(name, arg)                           \
  ::hgp::obs::TraceSpan HGP_OBS_CONCAT(hgp_obs_span_, __LINE__)( \
      name, static_cast<std::int64_t>(arg))

#define HGP_COUNTER_ADD(name, delta)                                    \
  do {                                                                  \
    static ::hgp::obs::Counter& HGP_OBS_CONCAT(hgp_obs_ctr_, __LINE__) = \
        ::hgp::obs::MetricsRegistry::global().counter(name);            \
    HGP_OBS_CONCAT(hgp_obs_ctr_, __LINE__)                              \
        .add(static_cast<std::uint64_t>(delta));                        \
  } while (0)

#define HGP_GAUGE_ADD(name, delta)                                      \
  do {                                                                  \
    static ::hgp::obs::Gauge& HGP_OBS_CONCAT(hgp_obs_gge_, __LINE__) =  \
        ::hgp::obs::MetricsRegistry::global().gauge(name);              \
    HGP_OBS_CONCAT(hgp_obs_gge_, __LINE__)                              \
        .add(static_cast<std::int64_t>(delta));                         \
  } while (0)

#define HGP_GAUGE_SET(name, value)                                      \
  do {                                                                  \
    static ::hgp::obs::Gauge& HGP_OBS_CONCAT(hgp_obs_gge_, __LINE__) =  \
        ::hgp::obs::MetricsRegistry::global().gauge(name);              \
    HGP_OBS_CONCAT(hgp_obs_gge_, __LINE__)                              \
        .set(static_cast<std::int64_t>(value));                         \
  } while (0)

/// Journals one typed event into the global EventJournal.  `kind` is a
/// bare EventKind enumerator name (kRetry, kBackoff, ...).
#define HGP_JOURNAL(kind, request_id, attempt, arg, status)             \
  ::hgp::obs::EventJournal::global().record(                            \
      ::hgp::obs::EventKind::kind,                                      \
      static_cast<std::uint64_t>(request_id),                           \
      static_cast<std::uint32_t>(attempt),                              \
      static_cast<std::int64_t>(arg), static_cast<std::uint8_t>(status))

/// Journals under the calling thread's ambient RequestScope ids — for
/// emit sites deep in the solver that are not handed ids explicitly.
#define HGP_JOURNAL_SCOPED(kind, arg, status)                           \
  HGP_JOURNAL(kind, ::hgp::obs::RequestScope::current_request_id(),     \
              ::hgp::obs::RequestScope::current_attempt(), arg, status)

/// Installs the RAII thread-local request/attempt scope for the rest of
/// the enclosing block.
#define HGP_REQUEST_SCOPE(request_id, attempt)                          \
  ::hgp::obs::RequestScope HGP_OBS_CONCAT(hgp_obs_scope_, __LINE__)(    \
      static_cast<std::uint64_t>(request_id),                           \
      static_cast<std::uint32_t>(attempt))

#else  // !HGP_OBS_ENABLED — every site collapses to a no-op statement.
// The (void)sizeof keeps macro arguments "used" without evaluating them.

#define HGP_TRACE_SPAN(name) \
  do { (void)sizeof(name); } while (0)
#define HGP_TRACE_SPAN_ARG(name, arg) \
  do { (void)sizeof(name); (void)sizeof(arg); } while (0)
#define HGP_COUNTER_ADD(name, delta) \
  do { (void)sizeof(name); (void)sizeof(delta); } while (0)
#define HGP_GAUGE_ADD(name, delta) \
  do { (void)sizeof(name); (void)sizeof(delta); } while (0)
#define HGP_GAUGE_SET(name, value) \
  do { (void)sizeof(name); (void)sizeof(value); } while (0)
#define HGP_JOURNAL(kind, request_id, attempt, arg, status)            \
  do {                                                                 \
    (void)sizeof(request_id); (void)sizeof(attempt);                   \
    (void)sizeof(arg); (void)sizeof(status);                           \
  } while (0)
#define HGP_JOURNAL_SCOPED(kind, arg, status) \
  do { (void)sizeof(arg); (void)sizeof(status); } while (0)
#define HGP_REQUEST_SCOPE(request_id, attempt) \
  do { (void)sizeof(request_id); (void)sizeof(attempt); } while (0)

#endif  // HGP_OBS_ENABLED
