// Request-scoped structured event journal: the causal history behind the
// metrics.
//
// Counters say *how many* retries happened; the journal says *which
// request* retried, after what failure, and what the service did next.
// Every lifecycle transition of a request (submit, admit/reject, attempt
// start/end, retry + backoff, degrade step, checkpoint spill/recover/
// record, watchdog cancel, fallback stage) is recorded as a fixed-size
// typed event stamped with the request id, the attempt number and the
// recording thread.  The flight recorder (obs/flight_recorder.hpp) dumps
// the journal tail when something goes wrong; the chaos harness attaches
// it to assertion failures.
//
// Concurrency: lock-free by construction, TSan- and signal-safe to read.
// Events land in per-thread ring buffers (dense thread id → ring; with
// more threads than rings, a ring is shared and the write index is
// claimed with fetch_add).  Every slot field is a relaxed atomic — plain
// stores on real hardware — and the ring's write index is published with
// release order, so a snapshot that acquire-loads the index sees fully
// written events.  A reader discards any event the index says may have
// been overwritten while it was copying (lap detection), trading a few
// lost tail events under extreme load for a hot path with no locks, no
// allocation and no fences beyond one release store.
//
// Instrument through the HGP_JOURNAL* macros in obs/obs.hpp — they
// compile to no-ops under HGP_OBS=OFF like the rest of the layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace hgp::obs {

/// Event taxonomy (docs/OBSERVABILITY.md has the annotated table).  The
/// numeric values are stable once released: flight-recorder dumps and the
/// journal's consumers identify kinds by name, but mixed-version tooling
/// reads raw dumps too.
enum class EventKind : std::uint8_t {
  kSubmit = 0,            ///< request entered SolverService::submit
  kAdmit = 1,             ///< admission passed; request queued
  kReject = 2,            ///< admission rejected (arg: reject reason index)
  kAttemptStart = 3,      ///< retry-loop attempt began (arg: num_trees)
  kAttemptEnd = 4,        ///< attempt finished (status: outcome code)
  kRetry = 5,             ///< retry granted (arg: retries used so far)
  kBackoff = 6,           ///< backoff sleep began (arg: sleep ms)
  kDegrade = 7,           ///< degradation-ladder step (arg: new num_trees)
  kCheckpointSpill = 8,   ///< checkpoint spilled to disk (arg: tree count)
  kCheckpointRecover = 9, ///< spilled checkpoint recovered (arg: tree count)
  kCheckpointRecord = 10, ///< one tree recorded into the checkpoint (arg: i)
  kWatchdogCancel = 11,   ///< watchdog cancelled a stuck attempt
  kCallerCancel = 12,     ///< caller cancelled the request
  kFallbackStage = 13,    ///< fallback-chain stage entered (arg: stage)
  kResolveStart = 14,     ///< incremental re-solve began (arg: mutation count)
  kResolveEnd = 15,       ///< incremental re-solve finished (arg: DP nodes
                          ///< reused; status: outcome code)
  kShardUp = 16,          ///< shard handshake + job load done (arg: shard id)
  kShardLost = 17,        ///< shard declared dead — socket error or missed
                          ///< heartbeats past its lease (arg: shard id)
  kLeaseExpire = 18,      ///< a leased batch's shard missed heartbeats past
                          ///< the lease (arg: batch id)
  kBatchReassign = 19,    ///< batch re-queued under a bumped epoch (arg:
                          ///< batch id)
  kZombieFenced = 20,     ///< stale-epoch result discarded (arg: batch id)
  kCount                  // number of kinds; keep last
};

/// Stable lowercase name of a kind ("attempt_start", ...).
const char* event_kind_name(EventKind kind);

/// Fallback-chain stage indices carried in kFallbackStage's arg.
inline constexpr std::int64_t kFallbackStageMultilevel = 1;
inline constexpr std::int64_t kFallbackStageGreedy = 2;

/// One decoded journal event (the copy a snapshot hands out; the in-ring
/// representation is atomic words).
struct JournalEvent {
  std::int64_t ts_us = 0;        ///< microseconds since journal epoch
  std::uint64_t request_id = 0;
  std::uint32_t attempt = 0;     ///< 0 = outside any attempt / first
  std::uint32_t tid = 0;         ///< dense thread id (util/thread_id.hpp)
  EventKind kind = EventKind::kSubmit;
  std::uint8_t status = 0;       ///< StatusCode of the outcome, 0 = none
  std::int64_t arg = 0;          ///< kind-specific payload
};

/// The journal.  One global instance backs the macros; tests may build
/// private ones.
class EventJournal {
 public:
  /// Events retained per ring (power of two; ~64 threads' worth of rings
  /// exist, so the journal tail covers kRingCapacity recent events per
  /// active thread).
  static constexpr std::size_t kRingCapacity = 1024;
  static constexpr std::size_t kRings = 64;

  EventJournal();
  ~EventJournal();
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Process-wide journal the HGP_JOURNAL macros record into.
  static EventJournal& global();

  /// Records one event.  Lock-free; safe from any thread, including
  /// concurrently with snapshot() and signal-safe readers.
  void record(EventKind kind, std::uint64_t request_id, std::uint32_t attempt,
              std::int64_t arg = 0, std::uint8_t status = 0);

  /// Copies every retained event, oldest first (global ts_us order).
  /// Events that may have been overwritten mid-copy are discarded.
  std::vector<JournalEvent> snapshot() const;

  /// Total events ever recorded (relaxed; approximate under concurrency).
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Resets every ring to empty.  Test scoping only: concurrent writers
  /// may interleave with the reset (benignly — slots are atomics).
  void clear();

  /// Microseconds since the journal's construction (the ts_us clock).
  std::int64_t now_us() const;

  // --- async-signal-safe surface (flight recorder's fatal-signal dump) --

  /// Maximum events visit_signal_safe can report.
  static constexpr std::size_t kMaxSignalEvents = kRings * kRingCapacity;

  /// Copies up to `max` retained events into `out` without allocating,
  /// locking or calling the C++ runtime: relaxed/acquire atomic loads
  /// only.  Returns the number written.  Events arrive ring-by-ring (NOT
  /// globally time-ordered — the consumer sorts, or tooling does).
  std::size_t copy_events_signal_safe(JournalEvent* out,
                                      std::size_t max) const;

 private:
  struct Slot {
    // One event, packed into four relaxed atomic words: w0 = ts_us,
    // w1 = request_id, w2 = attempt(32) | tid(16) | kind(8) | status(8),
    // w3 = arg.  `stamp` publishes: it release-stores seq+1 after the
    // field writes, so a reader that acquire-loads the expected stamp sees
    // complete fields (0 = slot never written).
    std::atomic<std::uint64_t> w0{0};
    std::atomic<std::uint64_t> w1{0};
    std::atomic<std::uint64_t> w2{0};
    std::atomic<std::uint64_t> w3{0};
    std::atomic<std::uint64_t> stamp{0};
  };
  struct Ring {
    Slot slots[kRingCapacity];
    /// Next sequence number; slot = seq % kRingCapacity.  Writers claim
    /// with fetch_add(acq_rel) — release publishes the slot stores,
    /// acquire orders a shared ring's claims.
    std::atomic<std::uint64_t> head{0};
  };

  Ring* ring_for_thread();
  static std::size_t read_ring(const Ring& ring, JournalEvent* out,
                               std::size_t max);

  /// Rings are allocated on first use by a thread hashing to the index
  /// and installed with a CAS; never freed before destruction.
  std::atomic<Ring*> rings_[kRings];
  std::atomic<std::uint64_t> recorded_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII thread-local request/attempt scope: emit sites deep in the solver
/// (fallback stages, checkpoint records — possibly far from any place the
/// id is passed explicitly) read the ambient scope instead of threading
/// ids through every signature.  Scopes nest; each restores its
/// predecessor.  The scope is per-thread: work handed to a thread pool
/// does not inherit it (those events carry request id 0).
class RequestScope {
 public:
  RequestScope(std::uint64_t request_id, std::uint32_t attempt);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  /// Ambient ids of the calling thread (0 outside any scope).
  static std::uint64_t current_request_id();
  static std::uint32_t current_attempt();

 private:
  std::uint64_t saved_request_id_;
  std::uint32_t saved_attempt_;
};

/// Allocates a process-unique request id for callers outside the service
/// (solve_with_retry journals under these so concurrent library users
/// stay distinguishable from service requests, which use their own dense
/// ids offset into a different range).
std::uint64_t next_library_request_id();

}  // namespace hgp::obs
