// Shared JSON string escaping for every obs exporter.
//
// Metric, span and event names are dotted C identifiers in practice, but
// the exporters (Chrome trace JSON, metrics JSON, Prometheus HELP lines,
// flight-recorder dumps, the introspection endpoint) must emit valid JSON
// for *any* name a caller registers — quotes, backslashes and control
// characters included.  One helper, one escaping policy, instead of a
// per-exporter copy that drifts.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace hgp::obs {

/// Writes `s` with JSON string escaping (no surrounding quotes): `"` and
/// `\` are backslash-escaped, \n \r \t \b \f use their short forms, and
/// the remaining control characters below 0x20 become \u00XX.  Bytes
/// >= 0x20 pass through untouched (UTF-8 sequences survive verbatim).
void write_json_escaped(std::ostream& os, std::string_view s);

/// The same escaping as a returned string, for callers composing small
/// documents without a stream.
std::string json_escaped(std::string_view s);

}  // namespace hgp::obs
