// Flight recorder: snapshots the event journal tail plus the metrics
// registry to a JSON document when something goes wrong.
//
// The journal answers "what was request 17 doing"; the flight recorder is
// the delivery mechanism — one self-contained dump captured at the moment
// of interest:
//
//   * on demand (the introspection endpoint's /flightrecorder, tests),
//   * on watchdog cancel / terminal kInternal (the service layer dumps to
//     ServiceOptions::flight_dump_path),
//   * on chaos-harness assertion failures,
//   * on fatal signals, via the async-signal-safe journal-only writer
//     registered through util/crash_dump.hpp.
//
// Dump shape (docs/OBSERVABILITY.md documents the schema):
//   {"reason": "...", "captured_ts_us": N, "events": [...],
//    "metrics": {...}}
// The fatal-signal path omits "metrics" — the registry lock is not
// async-signal-safe — and writes events in ring order; every other path
// emits time-ordered events and the full registry.
#pragma once

#include <iosfwd>
#include <string>

#include "util/status.hpp"

namespace hgp::obs {

class FlightRecorder {
 public:
  /// Recorder over the global journal + registry (the only state a
  /// recorder has; the class exists to give the dump paths a home).
  static FlightRecorder& global();

  /// Writes the full JSON dump (journal tail, time-ordered, plus the
  /// metrics registry).  `reason` lands in the document verbatim
  /// (escaped).
  void write_json(std::ostream& os, const std::string& reason) const;

  /// write_json to `path` (truncating).  Returns a non-ok status when the
  /// file cannot be written; dumping is best-effort everywhere it is
  /// wired, so callers log-and-continue.
  Status dump_to_file(const std::string& path,
                      const std::string& reason) const;

  /// Registers the async-signal-safe journal dump (events only) for
  /// fatal signals, writing to `path`.  See util/crash_dump.hpp for the
  /// signal-context contract.
  static void install_signal_dump(const std::string& path);

  /// The writer install_signal_dump registers; exposed so tests can run
  /// it against an ordinary fd without raising a signal.
  static void write_signal_safe(int fd);
};

}  // namespace hgp::obs
