#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "util/check.hpp"

namespace hgp::obs {

namespace {

/// Same minimal escaping as the trace exporter; metric names are plain
/// dotted identifiers, but emitted JSON must be valid regardless.
void write_json_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default: {
        const unsigned u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          os << "\\u00" << "0123456789abcdef"[u >> 4]
             << "0123456789abcdef"[u & 0xf];
        } else {
          os << c;
        }
      }
    }
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  HGP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double x) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + x,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const WriterLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const WriterLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const WriterLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const ReaderLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void MetricsRegistry::reset_values() {
  // Shared hold: only the map structure is guarded — the instrument
  // values being zeroed are atomics.
  const ReaderLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const ReaderLock lock(mutex_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"";
    write_json_escaped(os, name);
    os << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"";
    write_json_escaped(os, name);
    os << "\": {\"value\": " << g->value() << ", \"max\": " << g->max_value()
       << "}";
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"";
    write_json_escaped(os, name);
    os << "\": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"buckets\": [";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < bounds.size()) {
        os << bounds[i];
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
}

}  // namespace hgp::obs
