#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/json_escape.hpp"
#include "util/check.hpp"

namespace hgp::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; the project's
/// dotted names map onto that by replacing every other byte with '_'.
/// Distinct hostile names may collide after sanitization — the HELP line
/// carries the exact original (JSON-escaped) so scrapes stay attributable.
std::string prometheus_name(const std::string& name) {
  std::string out = "hgp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus sample values: plain decimal, `+Inf`/`-Inf`/`NaN` specials.
void write_prometheus_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    os << v;
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  HGP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double x) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + x,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const WriterLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const WriterLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const WriterLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const ReaderLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void MetricsRegistry::reset_values() {
  // Shared hold: only the map structure is guarded — the instrument
  // values being zeroed are atomics.
  const ReaderLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const ReaderLock lock(mutex_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"";
    write_json_escaped(os, name);
    os << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"";
    write_json_escaped(os, name);
    os << "\": {\"value\": " << g->value() << ", \"max\": " << g->max_value()
       << "}";
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"";
    write_json_escaped(os, name);
    os << "\": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"buckets\": [";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < bounds.size()) {
        os << bounds[i];
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
}

std::vector<CounterSnapshot> MetricsRegistry::counter_snapshots() const {
  const ReaderLock lock(mutex_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, c->value()});
  }
  return out;
}

std::vector<GaugeSnapshot> MetricsRegistry::gauge_snapshots() const {
  const ReaderLock lock(mutex_);
  std::vector<GaugeSnapshot> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, g->value(), g->max_value()});
  }
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::histogram_snapshots() const {
  const ReaderLock lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.upper_bounds = h->upper_bounds();
    snap.buckets = h->bucket_counts();
    snap.count = h->count();
    snap.sum = h->sum();
    out.push_back(std::move(snap));
  }
  return out;
}

double histogram_quantile(const HistogramSnapshot& h, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : h.buckets) total += b;
  if (total == 0) return std::nan("");
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation, 1-based; q=0 maps to the first.
  const double rank = std::max(q * static_cast<double>(total), 1.0);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const std::uint64_t in_bucket = h.buckets[i];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= h.upper_bounds.size()) {
      // Overflow bucket: unbounded above, so report its lower edge (the
      // largest finite boundary) rather than inventing a width.
      return h.upper_bounds.empty() ? std::nan("") : h.upper_bounds.back();
    }
    const double hi = h.upper_bounds[i];
    const double lo = i == 0 ? 0.0 : h.upper_bounds[i - 1];
    const double frac = (rank - before) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::min(std::max(frac, 0.0), 1.0);
  }
  return h.upper_bounds.empty() ? std::nan("") : h.upper_bounds.back();
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  // Snapshots, not a registry hold, so the exposition's own formatting
  // cost never extends the reader lock.
  for (const CounterSnapshot& c : counter_snapshots()) {
    const std::string pn = prometheus_name(c.name);
    os << "# HELP " << pn << " counter \"" << json_escaped(c.name) << "\"\n";
    os << "# TYPE " << pn << " counter\n";
    os << pn << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : gauge_snapshots()) {
    const std::string pn = prometheus_name(g.name);
    os << "# HELP " << pn << " gauge \"" << json_escaped(g.name) << "\"\n";
    os << "# TYPE " << pn << " gauge\n";
    os << pn << " " << g.value << "\n";
    os << "# HELP " << pn << "_max high-water mark of \""
       << json_escaped(g.name) << "\"\n";
    os << "# TYPE " << pn << "_max gauge\n";
    os << pn << "_max " << g.max_value << "\n";
  }
  for (const HistogramSnapshot& h : histogram_snapshots()) {
    const std::string pn = prometheus_name(h.name);
    os << "# HELP " << pn << " histogram \"" << json_escaped(h.name) << "\"\n";
    os << "# TYPE " << pn << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      os << pn << "_bucket{le=\"";
      if (i < h.upper_bounds.size()) {
        write_prometheus_value(os, h.upper_bounds[i]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << "\n";
    }
    os << pn << "_sum ";
    write_prometheus_value(os, h.sum);
    os << "\n" << pn << "_count " << h.count << "\n";
  }
}

}  // namespace hgp::obs
