#include "obs/flight_recorder.hpp"

#include <unistd.h>

#include <fstream>
#include <ostream>
#include <vector>

#include "obs/event_journal.hpp"
#include "obs/json_escape.hpp"
#include "obs/metrics.hpp"
#include "util/crash_dump.hpp"

namespace hgp::obs {

namespace {

void write_event_json(std::ostream& os, const JournalEvent& e) {
  os << "{\"ts_us\": " << e.ts_us << ", \"request\": " << e.request_id
     << ", \"attempt\": " << e.attempt << ", \"tid\": " << e.tid
     << ", \"kind\": \"" << event_kind_name(e.kind) << "\", \"status\": \""
     << status_code_name(static_cast<StatusCode>(e.status))
     << "\", \"arg\": " << e.arg << "}";
}

// --- async-signal-safe formatting helpers (no streams, no allocation) ---

// hgp-lint: allow(raw-binary-io) — a signal handler has no snapshot
// container; the raw fd write is the entire point of this path.
void ss_write(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    // hgp-lint: allow(raw-binary-io)
    const ::ssize_t w = ::write(fd, data + off, n - off);
    if (w <= 0) return;  // nothing useful to do about a failing dump fd
    off += static_cast<std::size_t>(w);
  }
}

void ss_write_str(int fd, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') ++n;
  ss_write(fd, s, n);
}

void ss_write_int(int fd, std::int64_t v) {
  char buf[24];
  std::size_t i = sizeof buf;
  const bool neg = v < 0;
  std::uint64_t u =
      neg ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  do {
    buf[--i] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0 && i > 1);
  if (neg) buf[--i] = '-';
  ss_write(fd, buf + i, sizeof buf - i);
}

void ss_write_uint(int fd, std::uint64_t u) {
  char buf[24];
  std::size_t i = sizeof buf;
  do {
    buf[--i] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0 && i > 0);
  ss_write(fd, buf + i, sizeof buf - i);
}

/// Events the signal dump can carry; a static buffer because the signal
/// stack cannot hold the journal tail.  Ring-order, first-N — a fatal
/// dump favors completeness-of-format over completeness-of-content.
constexpr std::size_t kSignalDumpEvents = 16384;
JournalEvent g_signal_events[kSignalDumpEvents];

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::write_json(std::ostream& os,
                                const std::string& reason) const {
  const EventJournal& journal = EventJournal::global();
  os << "{\n  \"reason\": \"";
  write_json_escaped(os, reason);
  os << "\",\n  \"captured_ts_us\": " << journal.now_us()
     << ",\n  \"events_recorded\": " << journal.recorded()
     << ",\n  \"events\": [";
  bool first = true;
  for (const JournalEvent& e : journal.snapshot()) {
    os << (first ? "\n    " : ",\n    ");
    write_event_json(os, e);
    first = false;
  }
  os << "\n  ],\n  \"metrics\": ";
  MetricsRegistry::global().write_json(os);
  os << "}\n";
}

Status FlightRecorder::dump_to_file(const std::string& path,
                                    const std::string& reason) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    return Status(StatusCode::kDataLoss,
                  "flight recorder: cannot open dump file " + path);
  }
  write_json(os, reason);
  os.flush();
  if (!os) {
    return Status(StatusCode::kDataLoss,
                  "flight recorder: short write to dump file " + path);
  }
  return Status();
}

void FlightRecorder::write_signal_safe(int fd) {
  const EventJournal& journal = EventJournal::global();
  const std::size_t n =
      journal.copy_events_signal_safe(g_signal_events, kSignalDumpEvents);
  ss_write_str(fd, "{\"reason\": \"fatal_signal\",\n\"events\": [");
  for (std::size_t i = 0; i < n; ++i) {
    const JournalEvent& e = g_signal_events[i];
    ss_write_str(fd, i == 0 ? "\n" : ",\n");
    ss_write_str(fd, "{\"ts_us\": ");
    ss_write_int(fd, e.ts_us);
    ss_write_str(fd, ", \"request\": ");
    ss_write_uint(fd, e.request_id);
    ss_write_str(fd, ", \"attempt\": ");
    ss_write_uint(fd, e.attempt);
    ss_write_str(fd, ", \"tid\": ");
    ss_write_uint(fd, e.tid);
    ss_write_str(fd, ", \"kind\": \"");
    ss_write_str(fd, event_kind_name(e.kind));
    ss_write_str(fd, "\", \"status\": ");
    ss_write_uint(fd, e.status);
    ss_write_str(fd, ", \"arg\": ");
    ss_write_int(fd, e.arg);
    ss_write_str(fd, "}");
  }
  ss_write_str(fd, "\n]}\n");
}

void FlightRecorder::install_signal_dump(const std::string& path) {
  install_crash_dump(path.c_str(), &FlightRecorder::write_signal_safe);
}

}  // namespace hgp::obs
