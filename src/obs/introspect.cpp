#include "obs/introspect.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace hgp::obs {

namespace {

/// Blocking send loop (the socket has a send timeout so a dead client
/// cannot wedge the server thread forever).  MSG_NOSIGNAL: a client that
/// hung up turns into EPIPE, not SIGPIPE.
bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

void set_io_timeouts(int fd) {
  struct timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

[[noreturn]] void fail(const std::string& what) {
  throw SolveError(StatusCode::kInternal,
                   "introspection endpoint: " + what + ": " +
                       std::strerror(errno));
}

}  // namespace

IntrospectionServer::IntrospectionServer(IntrospectOptions opt)
    : opt_(std::move(opt)) {
  if (opt_.poll_interval_ms <= 0) opt_.poll_interval_ms = 50;
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.empty() ||
      opt_.socket_path.size() >= sizeof addr.sun_path) {
    throw SolveError(StatusCode::kInternal,
                     "introspection endpoint: socket path empty or too long "
                     "for sockaddr_un: " +
                         opt_.socket_path);
  }
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
              opt_.socket_path.size() + 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) fail("socket()");
  // A leftover socket file from a dead process would make bind fail with
  // EADDRINUSE forever; unlinking first is the standard AF_UNIX idiom.
  ::unlink(opt_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    fail("bind(" + opt_.socket_path + ")");
  }
  if (::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opt_.socket_path.c_str());
    fail("listen()");
  }
  register_handler("/metrics", [](std::ostream& os) {
    MetricsRegistry::global().write_prometheus(os);
  });
  register_handler("/flightrecorder", [](std::ostream& os) {
    FlightRecorder::global().write_json(os, "on-demand scrape");
  });
  // hgp-lint: allow(naked-thread) — see the member declaration.
  thread_ = std::thread([this] { serve_loop(); });
}

IntrospectionServer::~IntrospectionServer() {
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();  // hgp-lint: allow(naked-thread)
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(opt_.socket_path.c_str());
}

void IntrospectionServer::register_handler(const std::string& path,
                                           IntrospectHandler handler) {
  const MutexLock lock(mutex_);
  handlers_[path] = std::move(handler);
}

void IntrospectionServer::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(opt_.poll_interval_ms));
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    set_io_timeouts(client);
    handle_client(client);
    ::close(client);
  }
}

void IntrospectionServer::handle_client(int client_fd) {
  // One recv is enough: requests are a single short GET line and AF_UNIX
  // delivers it in one chunk from any sane client; a split request is
  // answered 400 and the client retries.
  char buf[1024];
  const ssize_t got = ::recv(client_fd, buf, sizeof buf - 1, 0);
  if (got <= 0) return;
  buf[got] = '\0';
  std::string target;
  const char* space = std::strchr(buf, ' ');
  const bool is_get = std::strncmp(buf, "GET ", 4) == 0;
  if (is_get && space != nullptr) {
    const char* end = std::strchr(space + 1, ' ');
    if (end == nullptr) end = std::strchr(space + 1, '\r');
    if (end == nullptr) end = buf + got;
    target.assign(space + 1, end);
  }

  IntrospectHandler handler;
  {
    const MutexLock lock(mutex_);
    const auto it = handlers_.find(target);
    if (it != handlers_.end()) handler = it->second;
  }

  std::ostringstream body;
  const char* status_line;
  const char* content_type;
  if (!is_get) {
    status_line = "HTTP/1.0 400 Bad Request\r\n";
    content_type = "text/plain; charset=utf-8";
    body << "only GET is supported\n";
  } else if (handler == nullptr) {
    status_line = "HTTP/1.0 404 Not Found\r\n";
    content_type = "text/plain; charset=utf-8";
    body << "no such endpoint: " << target
         << "\nknown: /metrics /requests /flightrecorder\n";
  } else {
    status_line = "HTTP/1.0 200 OK\r\n";
    content_type = target == "/metrics"
                       ? "text/plain; version=0.0.4; charset=utf-8"
                       : "application/json; charset=utf-8";
    handler(body);
  }
  const std::string payload = body.str();
  std::ostringstream head;
  head << status_line << "Content-Type: " << content_type
       << "\r\nContent-Length: " << payload.size()
       << "\r\nConnection: close\r\n\r\n";
  const std::string header = head.str();
  if (send_all(client_fd, header.data(), header.size())) {
    send_all(client_fd, payload.data(), payload.size());
  }
}

Status introspect_fetch(const std::string& socket_path,
                        const std::string& target, std::string* body) {
  body->clear();
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path) {
    return Status(StatusCode::kInvalidInput,
                  "introspect_fetch: bad socket path: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status(StatusCode::kInternal, "introspect_fetch: socket() failed");
  }
  set_io_timeouts(fd);
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return Status(StatusCode::kResourceExhausted,
                  "introspect_fetch: cannot connect to " + socket_path + ": " +
                      std::strerror(errno));
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    return Status(StatusCode::kInternal,
                  "introspect_fetch: request send failed");
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) {
    return Status(StatusCode::kInternal,
                  "introspect_fetch: malformed response (no header "
                  "terminator)");
  }
  *body = response.substr(split + 4);
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0) {
    const std::size_t eol = response.find("\r\n");
    return Status(StatusCode::kInvalidInput,
                  "introspect_fetch: server answered: " +
                      response.substr(0, eol));
  }
  return Status();
}

}  // namespace hgp::obs
