// Exact HGP solvers (branch and bound) — the reference oracles for
// approximation-ratio and violation measurements (experiments E1, E5, E8).
//
// Feasible up to n ≈ 12-14 tasks thanks to hierarchy-symmetry pruning:
// sibling subtrees of H are interchangeable, so the search only opens a
// fresh subtree when all its elder siblings are already in use.
#pragma once

#include <cstdint>

#include "core/convert.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "hierarchy/hierarchy.hpp"
#include "hierarchy/placement.hpp"

namespace hgp {

struct ExactOptions {
  /// Leaves may be filled to capacity_factor × 1 (use > 1 to compare
  /// against bicriteria solutions on equal footing).
  double capacity_factor = 1.0;
  /// Search-node budget; the solver throws CheckError when exceeded.
  std::uint64_t max_nodes = 200'000'000;
};

struct ExactResult {
  bool feasible = false;
  double cost = 0;
  Placement placement;
  std::uint64_t nodes_explored = 0;
};

/// Exact minimum of Eq. (1) over all placements respecting leaf capacities.
ExactResult solve_exact_hgp(const Graph& g, const Hierarchy& h,
                            const ExactOptions& opt = {});

struct ExactTreeResult {
  bool feasible = false;
  double cost = 0;
  TreeAssignment assignment;
  std::uint64_t nodes_explored = 0;
};

/// Exact minimum of the HGPT objective (Definition 2/3, with true minimum
/// leaf separators) over all leaf assignments respecting capacities.
ExactTreeResult solve_exact_hgpt(const Tree& t, const Hierarchy& h,
                                 const ExactOptions& opt = {});

}  // namespace hgp
