// Random feasible placement — the hierarchy-oblivious floor every other
// algorithm is compared against.
#pragma once

#include "graph/graph.hpp"
#include "hierarchy/placement.hpp"
#include "util/prng.hpp"

namespace hgp {

/// Shuffles the tasks and first-fits each onto a random-order leaf scan,
/// falling back to the least-loaded leaf when nothing fits within
/// capacity_factor.  Always returns a complete placement.
Placement random_placement(const Graph& g, const Hierarchy& h, Rng& rng,
                           double capacity_factor = 1.0);

}  // namespace hgp
