// Hierarchy-aware local search (Moulitsas–Karypis-style refinement [20]).
//
// Improves an existing placement by single-task moves (and optional task
// swaps) that reduce the Eq.-1 cost while respecting leaf capacities up to
// a factor.  Used standalone on heuristic seeds and as the refinement
// stage of the multilevel baseline.
#pragma once

#include "graph/graph.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/placement.hpp"

namespace hgp {

struct LocalSearchOptions {
  int max_passes = 8;
  bool enable_swaps = true;
  double capacity_factor = 1.0;
};

struct LocalSearchStats {
  int passes = 0;
  std::int64_t moves = 0;
  std::int64_t swaps = 0;
  double initial_cost = 0;
  double final_cost = 0;
};

/// Refines `p` in place; returns statistics.  Never worsens the cost and
/// never raises a leaf's load above capacity_factor unless the input
/// already violated it (then it may not repair it, only avoid making the
/// *violating* leaf worse).
LocalSearchStats local_search(const Graph& g, const Hierarchy& h,
                              Placement& p,
                              const LocalSearchOptions& opt = {});

}  // namespace hgp
