#include "baseline/exact.hpp"

#include <algorithm>
#include <limits>

namespace hgp {

namespace {

/// Shared search state for both exact solvers: tracks per-H-node occupancy
/// so the sibling-symmetry rule can be evaluated in O(h) per candidate
/// leaf.
class SymmetryTracker {
 public:
  SymmetryTracker(const Hierarchy& h) : h_(&h) {
    occupancy_.resize(static_cast<std::size_t>(h.height()) + 1);
    for (int j = 0; j <= h.height(); ++j) {
      occupancy_[static_cast<std::size_t>(j)].assign(
          static_cast<std::size_t>(h.nodes_at(j)), 0);
    }
  }

  /// Canonical-form rule: a leaf may be used only if, at every level, its
  /// ancestor is either already occupied or is the first unoccupied child
  /// of its parent (elder siblings occupied).  Every placement has a
  /// representative satisfying this (permute sibling subtrees into
  /// first-use order), so pruning the rest is safe.
  bool allowed(LeafId leaf) const {
    for (int j = 1; j <= h_->height(); ++j) {
      const std::int64_t node = h_->leaf_ancestor(leaf, j);
      if (occupancy_[static_cast<std::size_t>(j)]
                    [static_cast<std::size_t>(node)] > 0) {
        continue;  // already opened
      }
      const int sibling = static_cast<int>(node % h_->deg(j - 1));
      if (sibling > 0 &&
          occupancy_[static_cast<std::size_t>(j)]
                    [static_cast<std::size_t>(node - 1)] == 0) {
        return false;  // an elder sibling subtree is still untouched
      }
    }
    return true;
  }

  void place(LeafId leaf) { bump(leaf, +1); }
  void remove(LeafId leaf) { bump(leaf, -1); }

 private:
  void bump(LeafId leaf, int delta) {
    for (int j = 0; j <= h_->height(); ++j) {
      occupancy_[static_cast<std::size_t>(j)]
                [static_cast<std::size_t>(h_->leaf_ancestor(leaf, j))] +=
          delta;
    }
  }

  const Hierarchy* h_;
  std::vector<std::vector<int>> occupancy_;
};

}  // namespace

ExactResult solve_exact_hgp(const Graph& g, const Hierarchy& h,
                            const ExactOptions& opt) {
  HGP_CHECK_MSG(g.has_demands(), "exact solver needs vertex demands");
  const Vertex n = g.vertex_count();
  const auto k = static_cast<std::size_t>(h.leaf_count());
  const double cap = opt.capacity_factor;

  // Assign heavy communicators first: descending weighted degree.
  std::vector<Vertex> order(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return g.weighted_degree(a) > g.weighted_degree(b);
  });

  ExactResult best;
  best.cost = std::numeric_limits<double>::infinity();
  std::vector<LeafId> assign(static_cast<std::size_t>(n), -1);
  std::vector<double> load(k, 0.0);
  SymmetryTracker sym(h);
  std::uint64_t nodes = 0;
  const double floor_cm = h.cm(h.height());

  auto rec = [&](auto&& self, std::size_t idx, double cost) -> void {
    HGP_CHECK_MSG(++nodes <= opt.max_nodes,
                  "exact HGP search exceeded its node budget");
    if (cost >= best.cost) return;
    if (idx == order.size()) {
      best.feasible = true;
      best.cost = cost;
      best.placement.leaf_of = assign;
      return;
    }
    const Vertex v = order[idx];
    for (LeafId leaf = 0; leaf < h.leaf_count(); ++leaf) {
      if (load[static_cast<std::size_t>(leaf)] + g.demand(v) > cap + 1e-9) {
        continue;
      }
      if (!sym.allowed(leaf)) continue;
      double delta = 0;
      for (const HalfEdge& e : g.neighbors(v)) {
        const LeafId other = assign[static_cast<std::size_t>(e.to)];
        if (other >= 0) {
          delta += h.cm(h.lca_level(leaf, other)) * e.weight;
        } else {
          // Admissible bound: the unassigned endpoint pays at least the
          // leaf-level multiplier later; charge it once at assignment time
          // of the second endpoint, so add nothing here.
          (void)floor_cm;
        }
      }
      assign[static_cast<std::size_t>(v)] = leaf;
      load[static_cast<std::size_t>(leaf)] += g.demand(v);
      sym.place(leaf);
      self(self, idx + 1, cost + delta);
      sym.remove(leaf);
      load[static_cast<std::size_t>(leaf)] -= g.demand(v);
      assign[static_cast<std::size_t>(v)] = -1;
    }
  };
  rec(rec, 0, 0.0);
  best.nodes_explored = nodes;
  return best;
}

ExactTreeResult solve_exact_hgpt(const Tree& t, const Hierarchy& h,
                                 const ExactOptions& opt) {
  HGP_CHECK_MSG(t.has_demands(), "exact solver needs leaf demands");
  const auto& leaves = t.leaves();
  const auto k = static_cast<std::size_t>(h.leaf_count());
  const double cap = opt.capacity_factor;

  ExactTreeResult best;
  best.cost = std::numeric_limits<double>::infinity();
  TreeAssignment current;
  current.leaf_of.assign(static_cast<std::size_t>(t.node_count()), -1);
  std::vector<double> load(k, 0.0);
  SymmetryTracker sym(h);
  std::uint64_t nodes = 0;

  auto rec = [&](auto&& self, std::size_t idx) -> void {
    HGP_CHECK_MSG(++nodes <= opt.max_nodes,
                  "exact HGPT search exceeded its node budget");
    if (idx == leaves.size()) {
      const double cost = assignment_cost(t, h, current);
      if (cost < best.cost) {
        best.feasible = true;
        best.cost = cost;
        best.assignment = current;
      }
      return;
    }
    const Vertex leaf_node = leaves[idx];
    const double d = t.demand(leaf_node);
    for (LeafId leaf = 0; leaf < h.leaf_count(); ++leaf) {
      if (load[static_cast<std::size_t>(leaf)] + d > cap + 1e-9) continue;
      if (!sym.allowed(leaf)) continue;
      current.leaf_of[static_cast<std::size_t>(leaf_node)] = leaf;
      load[static_cast<std::size_t>(leaf)] += d;
      sym.place(leaf);
      self(self, idx + 1);
      sym.remove(leaf);
      load[static_cast<std::size_t>(leaf)] -= d;
      current.leaf_of[static_cast<std::size_t>(leaf_node)] = -1;
    }
  };
  rec(rec, 0);
  best.nodes_explored = nodes;
  return best;
}

}  // namespace hgp
