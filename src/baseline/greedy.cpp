#include "baseline/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/union_find.hpp"
#include "obs/obs.hpp"

namespace hgp {

Placement greedy_placement(const Graph& g, const Hierarchy& h,
                           double capacity_factor) {
  HGP_CHECK_MSG(g.has_demands(), "greedy_placement needs vertex demands");
  HGP_TRACE_SPAN_ARG("baseline.greedy", g.vertex_count());
  const auto n = static_cast<std::size_t>(g.vertex_count());

  // Phase 1: agglomerate along heavy edges while a leaf can still host the
  // merged cluster.
  std::vector<EdgeId> edge_order(static_cast<std::size_t>(g.edge_count()));
  std::iota(edge_order.begin(), edge_order.end(), EdgeId{0});
  std::sort(edge_order.begin(), edge_order.end(), [&](EdgeId a, EdgeId b) {
    return g.edge(a).weight > g.edge(b).weight;
  });
  UnionFind uf(n);
  std::vector<double> cluster_demand(n);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    cluster_demand[static_cast<std::size_t>(v)] = g.demand(v);
  }
  for (const EdgeId e : edge_order) {
    const std::size_t a = uf.find(static_cast<std::size_t>(g.edge(e).u));
    const std::size_t b = uf.find(static_cast<std::size_t>(g.edge(e).v));
    if (a == b) continue;
    if (cluster_demand[a] + cluster_demand[b] <= capacity_factor + 1e-9) {
      uf.unite(a, b);
      const std::size_t root = uf.find(a);
      cluster_demand[root] = cluster_demand[a] + cluster_demand[b];
    }
  }

  // Phase 2: collect clusters and their pairwise communication volumes.
  std::vector<int> cluster_of(n, -1);
  std::vector<double> demand;
  std::vector<std::vector<Vertex>> members;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const std::size_t root = uf.find(static_cast<std::size_t>(v));
    if (cluster_of[root] == -1) {
      cluster_of[root] = narrow<int>(members.size());
      members.emplace_back();
      demand.push_back(cluster_demand[root]);
    }
    cluster_of[static_cast<std::size_t>(v)] = cluster_of[root];
    members[static_cast<std::size_t>(cluster_of[root])].push_back(v);
  }
  const std::size_t c = members.size();
  std::vector<std::vector<Weight>> volume(c, std::vector<Weight>(c, 0));
  std::vector<Weight> connectivity(c, 0);
  for (const Edge& e : g.edges()) {
    const auto a = static_cast<std::size_t>(
        cluster_of[static_cast<std::size_t>(e.u)]);
    const auto b = static_cast<std::size_t>(
        cluster_of[static_cast<std::size_t>(e.v)]);
    if (a == b) continue;
    volume[a][b] += e.weight;
    volume[b][a] += e.weight;
    connectivity[a] += e.weight;
    connectivity[b] += e.weight;
  }

  // Phase 3: place clusters one by one, heaviest communicators first, each
  // onto the leaf minimizing the incremental Eq.-1 cost against the
  // already-placed clusters (capacity permitting; least-loaded fallback).
  std::vector<std::size_t> order(c);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (connectivity[a] != connectivity[b]) {
      return connectivity[a] > connectivity[b];
    }
    return demand[a] > demand[b];
  });
  const auto k = static_cast<std::size_t>(h.leaf_count());
  std::vector<double> load(k, 0.0);
  std::vector<LeafId> cluster_leaf(c, -1);
  for (const std::size_t ci : order) {
    LeafId best_leaf = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    double best_load = std::numeric_limits<double>::infinity();
    for (LeafId leaf = 0; leaf < h.leaf_count(); ++leaf) {
      if (load[static_cast<std::size_t>(leaf)] + demand[ci] >
          capacity_factor + 1e-9) {
        continue;
      }
      double inc = 0;
      for (std::size_t cj = 0; cj < c; ++cj) {
        if (cluster_leaf[cj] >= 0 && volume[ci][cj] > 0) {
          inc += h.cm(h.lca_level(leaf, cluster_leaf[cj])) * volume[ci][cj];
        }
      }
      if (inc < best_cost - 1e-12 ||
          (inc < best_cost + 1e-12 &&
           load[static_cast<std::size_t>(leaf)] < best_load)) {
        best_cost = inc;
        best_leaf = leaf;
        best_load = load[static_cast<std::size_t>(leaf)];
      }
    }
    if (best_leaf < 0) {
      best_leaf = narrow<LeafId>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    cluster_leaf[ci] = best_leaf;
    load[static_cast<std::size_t>(best_leaf)] += demand[ci];
  }

  Placement p;
  p.leaf_of.assign(n, 0);
  for (std::size_t ci = 0; ci < c; ++ci) {
    for (Vertex v : members[ci]) {
      p.leaf_of[static_cast<std::size_t>(v)] = cluster_leaf[ci];
    }
  }
  return p;
}

}  // namespace hgp
