// Dual recursive bipartitioning (Pellegrini [22] / SCOTCH [23] style).
//
// Recursively splits the hierarchy and the task graph in lockstep: at a
// level-j H-node with DEG[j] children, the current task set is divided into
// DEG[j] demand-proportional parts by repeated spectral+FM bisection, each
// part descending into one child subtree.  This is the heuristic lineage
// the paper cites as prior practice — the natural comparison point for the
// approximation algorithm.
#pragma once

#include "graph/graph.hpp"
#include "hierarchy/placement.hpp"
#include "util/prng.hpp"

namespace hgp {

struct RecursiveBisectionOptions {
  int fm_passes = 4;
  /// Parts may exceed their proportional demand share by this factor
  /// before the splitter rebalances greedily.
  double imbalance = 0.1;
};

Placement recursive_bisection_placement(
    const Graph& g, const Hierarchy& h, Rng& rng,
    const RecursiveBisectionOptions& opt = {});

}  // namespace hgp
