#include "baseline/recursive_bisection.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/spectral.hpp"

namespace hgp {

namespace {

double demand_of(const Graph& g, Vertex v) {
  return g.has_demands() ? g.demand(v) : 1.0;
}

/// FM refinement toward a target demand fraction on side 1, with a slack
/// window.  Same move/lock/best-prefix scheme as fm_refine but with an
/// asymmetric balance constraint.
void fm_refine_target(const Graph& g, std::vector<char>& side, double target,
                      double slack, int passes) {
  const auto n = static_cast<std::size_t>(g.vertex_count());
  double total = 0, load1 = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    total += demand_of(g, v);
    if (side[static_cast<std::size_t>(v)]) load1 += demand_of(g, v);
  }
  const double lo = std::max(0.0, target - slack) * total;
  const double hi = std::min(1.0, target + slack) * total;

  auto gain_of = [&](Vertex v) {
    Weight same = 0, other = 0;
    for (const HalfEdge& e : g.neighbors(v)) {
      (side[static_cast<std::size_t>(e.to)] ==
               side[static_cast<std::size_t>(v)]
           ? same
           : other) += e.weight;
    }
    return other - same;
  };

  Weight cut = g.cut_weight(side);
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<char> locked(n, 0);
    std::vector<char> best_side = side;
    Weight best_cut = cut;
    Weight running = cut;
    double running_load1 = load1;
    bool improved = false;
    for (std::size_t step = 0; step < n; ++step) {
      Vertex pick = kInvalidVertex;
      Weight pick_gain = -std::numeric_limits<Weight>::infinity();
      for (Vertex v = 0; v < g.vertex_count(); ++v) {
        if (locked[static_cast<std::size_t>(v)]) continue;
        const double d = demand_of(g, v);
        const double nl =
            side[static_cast<std::size_t>(v)] ? running_load1 - d
                                              : running_load1 + d;
        if (nl < lo - 1e-12 || nl > hi + 1e-12) continue;
        const Weight gain = gain_of(v);
        if (gain > pick_gain) {
          pick_gain = gain;
          pick = v;
        }
      }
      if (pick == kInvalidVertex) break;
      running_load1 +=
          side[static_cast<std::size_t>(pick)] ? -demand_of(g, pick)
                                               : demand_of(g, pick);
      side[static_cast<std::size_t>(pick)] ^= 1;
      locked[static_cast<std::size_t>(pick)] = 1;
      running -= pick_gain;
      if (running < best_cut - 1e-12) {
        best_cut = running;
        best_side = side;
        improved = true;
      }
    }
    side = best_side;
    cut = best_cut;
    load1 = 0;
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (side[static_cast<std::size_t>(v)]) load1 += demand_of(g, v);
    }
    if (!improved) break;
  }
}

/// Splits `vertices` (global ids) into side1 holding ≈ `fraction` of the
/// demand, seeded by Fiedler order and FM-refined.
std::pair<std::vector<Vertex>, std::vector<Vertex>> bisect_fraction(
    const Graph& g, const std::vector<Vertex>& vertices, double fraction,
    Rng& rng, const RecursiveBisectionOptions& opt) {
  const Graph sub = g.induced_subgraph(vertices);
  const auto n = static_cast<std::size_t>(sub.vertex_count());
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (sub.edge_count() > 0 && n >= 2) {
    const auto f = fiedler_vector(sub, rng);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return f[a] < f[b]; });
  } else {
    rng.shuffle(order);
  }
  double total = 0;
  for (Vertex v = 0; v < sub.vertex_count(); ++v) total += demand_of(sub, v);
  std::vector<char> side(n, 0);
  double acc = 0;
  for (const std::size_t i : order) {
    if (acc >= fraction * total) break;
    side[i] = 1;
    acc += demand_of(sub, narrow<Vertex>(i));
  }
  if (n >= 2) {
    fm_refine_target(sub, side, fraction, opt.imbalance, opt.fm_passes);
  }
  std::pair<std::vector<Vertex>, std::vector<Vertex>> out;
  for (std::size_t i = 0; i < n; ++i) {
    (side[i] ? out.first : out.second).push_back(vertices[i]);
  }
  return out;
}

/// Splits `vertices` into `parts` demand-balanced pieces by recursive
/// halving of the part count.
void split_into(const Graph& g, std::vector<Vertex> vertices, int parts,
                Rng& rng, const RecursiveBisectionOptions& opt,
                std::vector<std::vector<Vertex>>& out) {
  if (parts == 1 || vertices.empty()) {
    out.push_back(std::move(vertices));
    for (int i = 1; i < parts; ++i) out.emplace_back();
    return;
  }
  const int p1 = parts / 2;
  const int p2 = parts - p1;
  auto [a, b] = bisect_fraction(g, vertices,
                                static_cast<double>(p1) / parts, rng, opt);
  split_into(g, std::move(a), p1, rng, opt, out);
  split_into(g, std::move(b), p2, rng, opt, out);
}

}  // namespace

Placement recursive_bisection_placement(const Graph& g, const Hierarchy& h,
                                        Rng& rng,
                                        const RecursiveBisectionOptions& opt) {
  HGP_CHECK_MSG(g.has_demands(),
                "recursive_bisection_placement needs vertex demands");
  Placement p;
  p.leaf_of.assign(static_cast<std::size_t>(g.vertex_count()), 0);

  auto rec = [&](auto&& self, std::vector<Vertex> vertices, int level,
                 std::int64_t h_node) -> void {
    if (level == h.height()) {
      for (Vertex v : vertices) {
        p.leaf_of[static_cast<std::size_t>(v)] = h_node;
      }
      return;
    }
    const int fanout = h.deg(level);
    std::vector<std::vector<Vertex>> parts;
    split_into(g, std::move(vertices), fanout, rng, opt, parts);
    HGP_ASSERT(narrow<int>(parts.size()) == fanout);
    for (int i = 0; i < fanout; ++i) {
      self(self, std::move(parts[static_cast<std::size_t>(i)]), level + 1,
           h_node * fanout + i);
    }
  };

  std::vector<Vertex> all(static_cast<std::size_t>(g.vertex_count()));
  std::iota(all.begin(), all.end(), Vertex{0});
  rec(rec, std::move(all), 0, 0);
  return p;
}

}  // namespace hgp
