// Multilevel architecture-aware placement (METIS-lineage [20, 29]).
//
// Coarsens the task graph by heavy-edge matching (capacity-capped so a
// coarse task always fits one leaf), places the coarse graph with dual
// recursive bipartitioning, then projects back and refines with the
// hierarchy-aware local search at every uncoarsening step.
#pragma once

#include "graph/graph.hpp"
#include "hierarchy/placement.hpp"
#include "util/deadline.hpp"
#include "util/prng.hpp"

namespace hgp {

struct MultilevelOptions {
  /// Stop coarsening when the graph has at most this many vertices (at
  /// least 2 × hierarchy leaves is sensible).
  Vertex coarsen_target = 64;
  int refine_passes = 4;
  double capacity_factor = 1.0;
  /// Cooperative deadline/cancellation, polled once per coarsening round
  /// and per uncoarsening level.  nullptr = unconstrained.  (The solver's
  /// fallback chain deliberately passes nullptr: by the time multilevel
  /// runs as a fallback the deadline is already gone, and the caller wants
  /// a feasible placement more than punctuality.)
  const ExecContext* exec = nullptr;
};

Placement multilevel_placement(const Graph& g, const Hierarchy& h, Rng& rng,
                               const MultilevelOptions& opt = {});

}  // namespace hgp
