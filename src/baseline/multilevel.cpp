#include "baseline/multilevel.hpp"

#include <algorithm>
#include <numeric>

#include "baseline/local_search.hpp"
#include "baseline/recursive_bisection.hpp"
#include "obs/obs.hpp"

namespace hgp {

namespace {

struct CoarseLevel {
  Graph graph;
  /// fine vertex → coarse vertex of the NEXT (coarser) level.
  std::vector<Vertex> map;
};

/// One round of heavy-edge matching; returns false when no pair matched
/// (coarsening has converged).
bool coarsen_once(const Graph& g, double capacity, Rng& rng,
                  CoarseLevel& out) {
  const Vertex n = g.vertex_count();
  std::vector<Vertex> match(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<Vertex> visit(static_cast<std::size_t>(n));
  std::iota(visit.begin(), visit.end(), Vertex{0});
  rng.shuffle(visit);
  std::size_t matched = 0;
  for (const Vertex v : visit) {
    if (match[static_cast<std::size_t>(v)] != kInvalidVertex) continue;
    Vertex best = kInvalidVertex;
    Weight best_w = 0;
    for (const HalfEdge& e : g.neighbors(v)) {
      if (match[static_cast<std::size_t>(e.to)] != kInvalidVertex) continue;
      if (g.demand(v) + g.demand(e.to) > capacity + 1e-9) continue;
      if (e.weight > best_w) {
        best_w = e.weight;
        best = e.to;
      }
    }
    if (best != kInvalidVertex) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
      ++matched;
    }
  }
  if (matched == 0) return false;

  out.map.assign(static_cast<std::size_t>(n), kInvalidVertex);
  Vertex next = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (out.map[static_cast<std::size_t>(v)] != kInvalidVertex) continue;
    out.map[static_cast<std::size_t>(v)] = next;
    const Vertex m = match[static_cast<std::size_t>(v)];
    if (m != kInvalidVertex) out.map[static_cast<std::size_t>(m)] = next;
    ++next;
  }
  GraphBuilder b(next);
  std::vector<double> demand(static_cast<std::size_t>(next), 0.0);
  for (Vertex v = 0; v < n; ++v) {
    demand[static_cast<std::size_t>(out.map[static_cast<std::size_t>(v)])] +=
        g.demand(v);
  }
  for (Vertex c = 0; c < next; ++c) {
    b.set_demand(c, std::min(1.0, demand[static_cast<std::size_t>(c)]));
  }
  for (const Edge& e : g.edges()) {
    const Vertex cu = out.map[static_cast<std::size_t>(e.u)];
    const Vertex cv = out.map[static_cast<std::size_t>(e.v)];
    if (cu != cv) b.add_edge(cu, cv, e.weight);
  }
  out.graph = b.build();
  return true;
}

}  // namespace

Placement multilevel_placement(const Graph& g, const Hierarchy& h, Rng& rng,
                               const MultilevelOptions& opt) {
  HGP_CHECK_MSG(g.has_demands(), "multilevel_placement needs vertex demands");
  HGP_TRACE_SPAN_ARG("baseline.multilevel", g.vertex_count());

  // Coarsening phase.
  std::vector<CoarseLevel> levels;
  const Graph* current = &g;
  while (current->vertex_count() > opt.coarsen_target) {
    if (opt.exec != nullptr) opt.exec->check("multilevel coarsening");
    CoarseLevel next;
    if (!coarsen_once(*current, opt.capacity_factor, rng, next)) break;
    levels.push_back(std::move(next));
    current = &levels.back().graph;
  }

  // Initial placement on the coarsest graph.
  RecursiveBisectionOptions rb;
  rb.fm_passes = opt.refine_passes;
  Placement p = recursive_bisection_placement(*current, h, rng, rb);

  LocalSearchOptions ls;
  ls.max_passes = opt.refine_passes;
  ls.capacity_factor = opt.capacity_factor;
  // Swaps are quadratic; keep them for small graphs only.
  ls.enable_swaps = current->vertex_count() <= 256;
  local_search(*current, h, p, ls);

  // Uncoarsening: project and refine at every level.
  for (std::size_t li = levels.size(); li-- > 0;) {
    if (opt.exec != nullptr) opt.exec->check("multilevel uncoarsening");
    const Graph& fine = li == 0 ? g : levels[li - 1].graph;
    Placement projected;
    projected.leaf_of.assign(
        static_cast<std::size_t>(fine.vertex_count()), 0);
    for (Vertex v = 0; v < fine.vertex_count(); ++v) {
      projected.leaf_of[static_cast<std::size_t>(v)] =
          p.leaf_of[static_cast<std::size_t>(
              levels[li].map[static_cast<std::size_t>(v)])];
    }
    p = std::move(projected);
    ls.enable_swaps = fine.vertex_count() <= 256;
    local_search(fine, h, p, ls);
  }
  return p;
}

}  // namespace hgp
