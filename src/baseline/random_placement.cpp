#include "baseline/random_placement.hpp"

#include <algorithm>
#include <numeric>

namespace hgp {

Placement random_placement(const Graph& g, const Hierarchy& h, Rng& rng,
                           double capacity_factor) {
  HGP_CHECK_MSG(g.has_demands(), "random_placement needs vertex demands");
  const auto n = static_cast<std::size_t>(g.vertex_count());
  const auto k = static_cast<std::size_t>(h.leaf_count());

  std::vector<std::size_t> task_order(n);
  std::iota(task_order.begin(), task_order.end(), std::size_t{0});
  rng.shuffle(task_order);

  std::vector<double> load(k, 0.0);
  Placement p;
  p.leaf_of.assign(n, 0);
  std::vector<std::size_t> leaf_order(k);
  std::iota(leaf_order.begin(), leaf_order.end(), std::size_t{0});

  for (const std::size_t vi : task_order) {
    const Vertex v = narrow<Vertex>(vi);
    rng.shuffle(leaf_order);
    bool placed = false;
    for (const std::size_t leaf : leaf_order) {
      if (load[leaf] + g.demand(v) <= capacity_factor + 1e-9) {
        p.leaf_of[vi] = narrow<LeafId>(leaf);
        load[leaf] += g.demand(v);
        placed = true;
        break;
      }
    }
    if (!placed) {
      const std::size_t leaf = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      p.leaf_of[vi] = narrow<LeafId>(leaf);
      load[leaf] += g.demand(v);
    }
  }
  return p;
}

}  // namespace hgp
