#include "baseline/local_search.hpp"

#include <algorithm>

namespace hgp {

namespace {

/// Cost of v's incident edges when v sits on `leaf` and everyone else stays.
double incident_cost(const Graph& g, const Hierarchy& h, const Placement& p,
                     Vertex v, LeafId leaf) {
  double c = 0;
  for (const HalfEdge& e : g.neighbors(v)) {
    c += h.cm(h.lca_level(leaf, p[e.to])) * e.weight;
  }
  return c;
}

}  // namespace

LocalSearchStats local_search(const Graph& g, const Hierarchy& h,
                              Placement& p, const LocalSearchOptions& opt) {
  validate_placement(g, h, p);
  LocalSearchStats stats;
  stats.initial_cost = placement_cost(g, h, p);

  std::vector<double> load(static_cast<std::size_t>(h.leaf_count()), 0.0);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    load[static_cast<std::size_t>(p[v])] += g.demand(v);
  }
  const double cap = opt.capacity_factor;

  for (int pass = 0; pass < opt.max_passes; ++pass) {
    bool improved = false;
    // Single-task moves.
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      const LeafId from = p[v];
      const double here = incident_cost(g, h, p, v, from);
      LeafId best = from;
      double best_cost = here;
      for (LeafId to = 0; to < h.leaf_count(); ++to) {
        if (to == from) continue;
        if (load[static_cast<std::size_t>(to)] + g.demand(v) > cap + 1e-9) {
          continue;
        }
        const double there = incident_cost(g, h, p, v, to);
        if (there < best_cost - 1e-12) {
          best_cost = there;
          best = to;
        }
      }
      if (best != from) {
        load[static_cast<std::size_t>(from)] -= g.demand(v);
        load[static_cast<std::size_t>(best)] += g.demand(v);
        p.leaf_of[static_cast<std::size_t>(v)] = best;
        ++stats.moves;
        improved = true;
      }
    }
    // Pairwise swaps (catch moves blocked by capacity in both directions).
    if (opt.enable_swaps) {
      for (Vertex a = 0; a < g.vertex_count(); ++a) {
        for (Vertex b = a + 1; b < g.vertex_count(); ++b) {
          const LeafId la = p[a], lb = p[b];
          if (la == lb) continue;
          if (load[static_cast<std::size_t>(la)] - g.demand(a) + g.demand(b) >
                  cap + 1e-9 ||
              load[static_cast<std::size_t>(lb)] - g.demand(b) + g.demand(a) >
                  cap + 1e-9) {
            continue;
          }
          const double before = incident_cost(g, h, p, a, la) +
                                incident_cost(g, h, p, b, lb);
          // Evaluate after-swap costs with the placement temporarily
          // updated so the (a,b) edge, if any, is priced consistently.
          p.leaf_of[static_cast<std::size_t>(a)] = lb;
          p.leaf_of[static_cast<std::size_t>(b)] = la;
          const double after = incident_cost(g, h, p, a, lb) +
                               incident_cost(g, h, p, b, la);
          if (after < before - 1e-12) {
            load[static_cast<std::size_t>(la)] += g.demand(b) - g.demand(a);
            load[static_cast<std::size_t>(lb)] += g.demand(a) - g.demand(b);
            ++stats.swaps;
            improved = true;
          } else {
            p.leaf_of[static_cast<std::size_t>(a)] = la;
            p.leaf_of[static_cast<std::size_t>(b)] = lb;
          }
        }
      }
    }
    ++stats.passes;
    if (!improved) break;
  }
  stats.final_cost = placement_cost(g, h, p);
  return stats;
}

}  // namespace hgp
