// Greedy communication-first clustering (Kernighan-style agglomeration).
//
// Processes edges by decreasing weight, merging the endpoints' task
// clusters whenever the merged demand still fits one leaf; the resulting
// clusters are then packed onto leaves best-fit-decreasing in an order that
// keeps heavily-communicating clusters on nearby leaves.  A strong, cheap,
// hierarchy-*aware-at-packing-only* baseline.
#pragma once

#include "graph/graph.hpp"
#include "hierarchy/placement.hpp"
#include "util/prng.hpp"

namespace hgp {

Placement greedy_placement(const Graph& g, const Hierarchy& h,
                           double capacity_factor = 1.0);

}  // namespace hgp
