#include "runtime/shard_server.hpp"

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "io/snapshot.hpp"
#include "net/protocol.hpp"
#include "obs/obs.hpp"
#include "runtime/solver.hpp"
#include "util/fault_injector.hpp"
#include "util/sync.hpp"

namespace hgp {

namespace {

/// Shared coordinates of the in-flight batch, read by the heartbeat
/// thread while the main loop solves.
struct HeartbeatState {
  Mutex mu;
  CondVar cv;
  bool stop HGP_GUARDED_BY(mu) = false;
  std::uint64_t epoch HGP_GUARDED_BY(mu) = 0;
  std::uint32_t batch_id HGP_GUARDED_BY(mu) = 0;
  std::uint64_t trees_done HGP_GUARDED_BY(mu) = 0;
  bool idle HGP_GUARDED_BY(mu) = true;
};

Deadline idle_deadline(const ShardServerOptions& opt) {
  return opt.idle_timeout_ms > 0 ? Deadline::after_ms(opt.idle_timeout_ms)
                                 : Deadline::never();
}

}  // namespace

ShardServerReport run_shard_server(net::FrameChannel& ch,
                                   const ShardServerOptions& opt) {
  ShardServerReport report;
  HeartbeatState hb_state;
  /// Serializes channel sends: the heartbeat thread and the batch-result
  /// path share one stream and frames must never interleave.
  Mutex send_mu;
  std::atomic<std::uint64_t> heartbeats{0};
  // Long-lived beat thread, not a pool task: it must keep beating while
  // every worker thread is busy inside a tree solve.
  // hgp-lint: allow(naked-thread)
  std::thread beater;

  try {
    net::handshake_server(ch, idle_deadline(opt));

    std::optional<net::Frame> job_frame = ch.recv(idle_deadline(opt));
    if (!job_frame.has_value()) {
      report.exit_status = Status(StatusCode::kUnavailable,
                                  "coordinator closed before sending a job");
      return report;
    }
    if (job_frame->type != net::kMsgJob) {
      report.exit_status =
          Status(StatusCode::kDataLoss,
                 "expected Job, got frame type " +
                     std::to_string(job_frame->type));
      return report;
    }
    net::JobMsg job = net::decode_job(job_frame->payload);

    // The instance rides in as a PR-6 snapshot container; the full
    // validation stack (CRCs, fingerprint, semantic invariants) runs
    // before any of it is trusted.
    io::SnapshotReader reader(std::move(job.snapshot_blob));
    io::SectionCursor cursor;
    const Graph g = io::read_graph_sections(reader, cursor);
    const Hierarchy h = io::read_hierarchy_sections(reader, cursor);
    io::ForestSnapshotMeta meta;
    const std::vector<DecompTree> forest =
        io::read_forest_sections(reader, cursor, g, &meta);

    net::JobAckMsg ack;
    ack.graph_fingerprint = meta.graph_fingerprint;
    ack.num_trees = static_cast<std::int32_t>(forest.size());
    {
      const MutexLock lock(send_mu);
      ch.send(net::kMsgJobAck, net::encode_job_ack(ack),
              Deadline::after_ms(10000));
    }
    HGP_COUNTER_ADD("shard.jobs_loaded", 1);

    TreeSolverOptions tree_opt;
    tree_opt.epsilon = job.epsilon;
    tree_opt.units_override = job.units_override;
    tree_opt.force_prune = job.force_prune != 0;

    const double beat_ms = opt.heartbeat_ms > 0  ? opt.heartbeat_ms
                           : job.heartbeat_ms > 0 ? job.heartbeat_ms
                                                  : 50;
    // The beater must keep beating while a tree solve hogs the pool — a
    // dedicated thread is the point (liveness independent of solve work).
    // hgp-lint: allow(naked-thread)
    beater = std::thread([&ch, &hb_state, &send_mu, &heartbeats, beat_ms] {
      for (;;) {
        net::HeartbeatMsg msg;
        bool stop = false;
        {
          const MutexLock lock(hb_state.mu);
          hb_state.cv.wait_for_ms(hb_state.mu, beat_ms);
          stop = hb_state.stop;
          msg.epoch = hb_state.epoch;
          msg.batch_id = hb_state.batch_id;
          msg.trees_done = hb_state.trees_done;
          msg.idle = hb_state.idle ? 1 : 0;
        }
        if (stop) break;
        // The distributed chaos storm stalls THIS site to fake a hung
        // shard: the solve continues, the beats stop, the lease expires.
        FaultInjector::instance().poll_io("shardd.heartbeat", 0);
        try {
          const MutexLock lock(send_mu);
          ch.send(net::kMsgHeartbeat, net::encode_heartbeat(msg),
                  Deadline::after_ms(10000));
          heartbeats.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          break;  // coordinator gone; the main loop will see it too
        }
      }
    });

    for (;;) {
      std::optional<net::Frame> frame = ch.recv(idle_deadline(opt));
      if (!frame.has_value()) {
        report.exit_status =
            Status(StatusCode::kUnavailable, "coordinator closed");
        break;
      }
      if (frame->type == net::kMsgShutdown) {
        report.exit_status = Status();
        break;
      }
      if (frame->type != net::kMsgAssign) {
        report.exit_status =
            Status(StatusCode::kDataLoss,
                   "expected Assign/Shutdown, got frame type " +
                       std::to_string(frame->type));
        break;
      }
      const net::AssignMsg assign = net::decode_assign(frame->payload);
      {
        const MutexLock lock(hb_state.mu);
        hb_state.epoch = assign.epoch;
        hb_state.batch_id = assign.batch_id;
        hb_state.trees_done = 0;
        hb_state.idle = false;
      }

      net::BatchResultMsg result;
      result.epoch = assign.epoch;
      result.batch_id = assign.batch_id;
      result.trees.reserve(assign.tree_indices.size());
      for (const std::int32_t ti : assign.tree_indices) {
        net::TreeResultWire tree;
        tree.tree_index = ti;
        try {
          if (ti < 0 || static_cast<std::size_t>(ti) >= forest.size()) {
            throw SolveError(StatusCode::kInvalidInput,
                             "assigned tree index " + std::to_string(ti) +
                                 " outside the forest");
          }
          if (opt.on_tree_start) opt.on_tree_start(ti);
          FaultInjector::instance().on_site("shardd.tree", ti);
          ForestTreeResult r =
              solve_forest_tree(g, h, forest[static_cast<std::size_t>(ti)],
                                tree_opt);
          tree.status = static_cast<std::uint8_t>(StatusCode::kOk);
          tree.cost = r.cost;
          tree.stats = r.stats;
          tree.leaf_of = std::move(r.placement.leaf_of);
          ++report.trees_solved;
          HGP_COUNTER_ADD("shard.trees_solved", 1);
        } catch (...) {
          // Same per-tree isolation as solve_hgp: one tree's failure is a
          // typed record in the result, never the worker's death.
          const Status s = status_from_current_exception();
          tree.status = static_cast<std::uint8_t>(s.code);
          tree.error = s.message;
          ++report.trees_failed;
          HGP_COUNTER_ADD("shard.tree_failures", 1);
        }
        result.trees.push_back(std::move(tree));
        const MutexLock lock(hb_state.mu);
        ++hb_state.trees_done;
      }
      {
        const MutexLock lock(send_mu);
        ch.send(net::kMsgBatchResult, net::encode_batch_result(result),
                Deadline::after_ms(30000));
      }
      ++report.batches_assigned;
      const MutexLock lock(hb_state.mu);
      hb_state.idle = true;
    }
  } catch (...) {
    report.exit_status = status_from_current_exception();
  }

  if (beater.joinable()) {
    {
      const MutexLock lock(hb_state.mu);
      hb_state.stop = true;
    }
    hb_state.cv.notify_all();
    beater.join();
  }
  report.heartbeats_sent = heartbeats.load(std::memory_order_relaxed);
  return report;
}

}  // namespace hgp
