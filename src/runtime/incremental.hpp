// Incremental re-solve under churn: warm-started solves on a patched
// decomposition forest.
//
// A production stream of mutations (vertices joining and leaving, demand
// drift, channels appearing or changing volume) is recorded against the
// current graph as a MutationLog (graph/mutation_log.hpp).  resolve()
// turns the log into a new placement without redoing work the mutation
// did not invalidate:
//
//   1. the existing decomposition forest is *patched* deterministically
//      (decomp/patch.hpp): boundary weights are adjusted along the
//      affected leaf→LCA paths, dead leaves are removed, added vertices
//      are grafted next to their heaviest surviving neighbor — subtrees
//      the mutation never touches keep their exact shape, weights and
//      node order;
//   2. the DP re-solves every tree with the previous solve's clean-subtree
//      tables (DpReuseStore, core/tree_dp.hpp): untouched subtrees are
//      rehydrated instead of re-merged, so DP work scales with the dirty
//      region, not the graph;
//   3. the result is committed atomically — graph snapshot, forest, reuse
//      stores and last placement advance together, and only on success.
//
// Correctness invariant (pinned by tests/test_churn_differential.cpp):
// the incremental path is bit-identical — same cost, same placement, same
// per-signature DP tables — to a from-scratch solve of the SAME patched
// forest on the mutated graph.  Reuse changes how tables are obtained,
// never their content; patching (not resampling) is what makes the
// incremental arm and the scratch arm comparable at all.
//
// The service front end (SolverService::open_incremental / submit_resolve,
// runtime/service.hpp) wraps an IncrementalSolver in a session with its
// own lock and runs resolves through the normal admission/retry/watchdog
// machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "decomp/patch.hpp"
#include "graph/mutation_log.hpp"
#include "runtime/solver.hpp"

namespace hgp {

/// Options for solve_on_forest(): SolverOptions minus the forest-sampling
/// knobs (the caller supplies the forest), plus the per-tree reuse hooks.
struct ForestSolveOptions {
  double epsilon = 0.25;
  /// Demand-unit override (0 = derive ⌈n/ε⌉ from the solved graph).  The
  /// incremental path always pins this (see IncrementalOptions) so demand
  /// rounding does not drift as vertices churn.
  DemandUnits units_override = 0;
  /// Checkpoint-identity seed.  The forest is supplied rather than
  /// sampled, so the seed only distinguishes checkpoint bindings of
  /// otherwise-identical solves.
  std::uint64_t seed = 1;
  /// Pool for solving trees concurrently; nullptr = sequential.
  ThreadPool* pool = nullptr;
  /// Wall-clock budget in ms (0 = unbounded) and cooperative cancel.
  double timeout_ms = 0;
  const CancelToken* cancel = nullptr;
  /// Completed-tree store shared across retries of one logical request
  /// (same validation + bind semantics as solve_hgp).  Must outlive the
  /// call.
  SolveCheckpoint* checkpoint = nullptr;
  /// Forces DP dominance pruning ON (memory-pressure degrade).  NOTE: the
  /// pruning flag is part of DpReuseStore compatibility, so toggling it
  /// between solves turns reuse off for that solve.
  bool force_prune = false;
  /// Clean-subtree stores, parallel to the forest (reuse_in->size() ==
  /// forest.size() when non-null).  reuse_out is resized to the forest and
  /// receives the tables of every tree whose DP actually ran; trees served
  /// from the checkpoint leave their slot empty (they carry no tables, so
  /// the next resolve rebuilds them in full).  Must outlive the call.
  const std::vector<DpReuseStore>* reuse_in = nullptr;
  std::vector<DpReuseStore>* reuse_out = nullptr;
};

/// Solves HGP on a FIXED forest: per-tree isolated solves (same fault
/// isolation, checkpoint lookup/record and map-back as solve_hgp's stage
/// 2) and the Theorem-7 arg-min.  No fallback chain and no resampling —
/// this is the primitive both arms of the churn differential share, so a
/// total failure throws the classified SolveError instead of degrading.
/// Requires vertex demands on `g` and a non-empty forest over `g`.
HgpResult solve_on_forest(const Graph& g, const Hierarchy& h,
                          const std::vector<DecompTree>& forest,
                          const ForestSolveOptions& opt = {});

/// Construction-time knobs of an IncrementalSolver.  All of them are
/// pinned for the solver's lifetime: resolves must keep the checkpoint /
/// reuse identity of the instance stable under churn.
struct IncrementalOptions {
  int num_trees = 4;
  double epsilon = 0.25;
  /// Demand units.  0 derives U = ⌈n_base/ε⌉ ONCE from the base graph and
  /// pins it for every later resolve — deriving per-solve would re-round
  /// every demand whenever the vertex count drifts, invalidating every
  /// clean subtree for no accuracy gain.
  DemandUnits units_override = 0;
  std::uint64_t seed = 1;
  /// Cut heuristic for the base forest; nullptr = spectral + FM.
  const Cutter* cutter = nullptr;
  /// Pool for tree/DP parallelism (base solve and every resolve).
  ThreadPool* pool = nullptr;
  /// Forces DP dominance pruning for the base solve AND every resolve
  /// (per-resolve toggling would defeat reuse; see ForestSolveOptions).
  bool force_prune = false;
  /// Budget/cancel for the base solve only.
  double timeout_ms = 0;
  const CancelToken* cancel = nullptr;
};

/// Per-resolve execution knobs (everything structural is fixed by
/// IncrementalOptions).
struct ResolveOptions {
  double timeout_ms = 0;
  const CancelToken* cancel = nullptr;
  /// Carries completed trees across retries of one resolve request.
  SolveCheckpoint* checkpoint = nullptr;
  /// Degrade hook; see the force_prune caveat on ForestSolveOptions.
  bool force_prune = false;
};

/// Diagnostics of one resolve.
struct ResolveStats {
  /// Forest-patch summary (dirty vertices, leaf edits, weight edits).
  PatchStats patch;
  /// DP node tables re-merged vs rehydrated, summed over succeeded trees.
  std::uint64_t nodes_built = 0;
  std::uint64_t nodes_reused = 0;
  /// Placement stability: surviving vertices (alive before and after the
  /// log) and how many of them changed hierarchy leaf.
  Vertex surviving_vertices = 0;
  Vertex moved_vertices = 0;
};

/// Stateful incremental solver for one logical instance under churn.
///
/// Holds the current committed state — graph snapshot, decomposition
/// forest, per-tree clean-subtree stores, last result — and advances it
/// through resolve(log) calls.  Constructing performs the base solve
/// (throws its SolveError on failure).  NOT thread-safe: callers serialize
/// resolves (the service session wraps this class in a mutex).
class IncrementalSolver {
 public:
  /// `base` is shared into the solver (mutation logs alias it); `h` must
  /// outlive the solver.  Runs the base forest build + solve.
  IncrementalSolver(std::shared_ptr<const Graph> base, const Hierarchy& h,
                    IncrementalOptions opt = {});

  /// The current committed graph snapshot.  Mutation logs for the next
  /// resolve must be recorded against exactly this object.
  const std::shared_ptr<const Graph>& graph() const { return graph_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  const std::vector<DecompTree>& forest() const { return forest_; }
  /// Last committed result (base solve, then each successful resolve).
  const HgpResult& last() const { return last_; }
  /// The pinned demand-unit count every solve of this instance uses.
  DemandUnits units() const { return units_; }

  /// A fresh MutationLog over graph() that CO-OWNS the snapshot: the log
  /// keeps its base graph alive even after a later resolve swaps the
  /// solver's snapshot, so a stale log fails the rebase check instead of
  /// dangling.
  std::shared_ptr<MutationLog> begin_batch() const;

  /// Applies `log` (recorded against graph()) and re-solves.  On success
  /// the state is committed atomically and the new result returned; on
  /// failure the committed state is untouched (the same log may be retried
  /// or rebased).  Throws SolveError:
  ///   kInvalidInput      — log's base is not the current snapshot (stale;
  ///                        the caller must rebase via begin_batch()),
  ///   anything solve_on_forest throws otherwise.
  HgpResult resolve(const MutationLog& log, const ResolveOptions& ro = {},
                    ResolveStats* stats = nullptr);

 private:
  const Hierarchy* hierarchy_;
  IncrementalOptions opt_;
  DemandUnits units_ = 0;
  std::shared_ptr<const Graph> graph_;
  std::uint64_t fingerprint_ = 0;
  std::vector<DecompTree> forest_;
  /// Clean-subtree tables of the last committed solve, per tree.
  std::vector<DpReuseStore> stores_;
  HgpResult last_;
};

}  // namespace hgp
