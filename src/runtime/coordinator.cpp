#include "runtime/coordinator.hpp"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "decomp/builder.hpp"
#include "decomp/cutter.hpp"
#include "graph/fingerprint.hpp"
#include "io/snapshot.hpp"
#include "net/channel.hpp"
#include "net/protocol.hpp"
#include "obs/obs.hpp"
#include "runtime/forest_cache.hpp"
#include "util/prng.hpp"
#include "util/sync.hpp"

extern char** environ;

namespace hgp {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

std::string default_socket_dir() {
  const char* tmp = std::getenv("TMPDIR");
  return (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
}

}  // namespace

struct ShardCoordinator::Impl {
  // ------------------------------------------------------------------ types

  struct Batch {
    std::uint32_t id = 0;
    std::vector<std::int32_t> trees;
    /// Fencing token.  Starts at 1 (Assign decode rejects epoch 0) and is
    /// bumped on every reassignment; a result echoing an older epoch came
    /// from a shard that was declared dead after this batch moved on.
    std::uint64_t epoch = 1;
    enum class State { kPending, kLeased, kDone } state = State::kPending;
    int owner = -1;  ///< shard id while leased
  };

  struct Shard {
    int id = 0;
    net::FrameChannel channel;
    /// Serializes coordinator→shard sends (supervisor Assigns vs the
    /// teardown Shutdown).  Leaf lock: never held together with mu_.
    Mutex send_mu;
    // One dedicated blocking reader per shard: the channel recv must block
    // on the socket, which the pool's cooperative tasks must never do.
    // hgp-lint: allow(naked-thread)
    std::thread reader;
    // The fields below are guarded by the coordinator's mu_ (they span
    // shards, so a per-shard capability annotation cannot express it).
    enum class State { kConnecting, kIdle, kBusy, kDead } state =
        State::kConnecting;
    Clock::time_point last_beat = Clock::now();
    int outstanding = -1;  ///< leased batch id, -1 when idle
  };

  // ----------------------------------------------------------------- fields

  const Graph& g;
  const Hierarchy& h;
  const SolverOptions opt;
  const CoordinatorOptions copt;

  Mutex mu;
  CondVar cv;
  std::vector<std::unique_ptr<Shard>> shards HGP_GUARDED_BY(mu);
  std::vector<Batch> batches HGP_GUARDED_BY(mu);
  std::size_t batches_done HGP_GUARDED_BY(mu) = 0;
  /// Set at teardown: reader exits stop being "shard lost" events.
  bool stopping HGP_GUARDED_BY(mu) = false;
  CoordinatorReport report;  // counters mutated under mu until solve() ends

  SolveCheckpoint local_checkpoint;
  SolveCheckpoint* checkpoint = nullptr;
  std::vector<net::Socket> adopted;
  std::vector<std::byte> job_payload;
  CachedForest forest;  ///< held so the final solve_hgp re-finds it cached
  std::uint64_t fingerprint = 0;
  std::uint64_t rid = 0;
  Deadline deadline;
  Rng jitter;
  net::Listener listener;
  std::vector<pid_t> children;
  bool solved = false;

  Impl(const Graph& g_in, const Hierarchy& h_in, SolverOptions opt_in,
       CoordinatorOptions copt_in)
      : g(g_in),
        h(h_in),
        opt(std::move(opt_in)),
        copt(std::move(copt_in)),
        jitter(opt.seed ^ 0x5ea5'c0de'5ea5'c0deull) {}

  // ------------------------------------------------------- stage 1: the job

  /// Builds the decomposition forest exactly as solve_hgp's stage 1 does
  /// (same cache, same key) and serializes the instance into the Job
  /// payload every shard receives.  Throws on forest failure — the caller
  /// skips distribution and lets the final solve_hgp reproduce the failure
  /// (or its fallback chain) so sharded and single-process behaviour stay
  /// aligned.
  void build_job() {
    const FmCutter default_cutter;
    const Cutter& cutter = opt.cutter != nullptr ? *opt.cutter : default_cutter;

    ForestCache& cache = ForestCache::global();
    const ForestCacheKey key{fingerprint, opt.seed, opt.num_trees,
                             cutter.name()};
    if (cache.enabled()) forest = cache.find(key);
    if (forest == nullptr) {
      ExecContext exec;
      exec.deadline = deadline;
      exec.cancel = opt.cancel;
      forest = std::make_shared<const std::vector<DecompTree>>(
          build_decomposition_forest(g, opt.num_trees, opt.seed, cutter,
                                     opt.pool, &exec));
      if (cache.enabled()) cache.insert(key, forest);
    }
    if (forest->empty()) {
      throw SolveError(StatusCode::kInternal, "forest sampling yielded no trees");
    }

    io::SnapshotWriter w;
    io::append_graph_sections(w, g);
    io::append_hierarchy_sections(w, h);
    io::ForestSnapshotMeta meta;
    meta.graph_fingerprint = fingerprint;
    meta.seed = opt.seed;
    meta.num_trees = opt.num_trees;
    meta.cutter = cutter.name();
    io::append_forest_sections(w, meta, *forest);

    net::JobMsg job;
    job.epsilon = opt.epsilon;
    job.units_override = opt.units_override;
    job.seed = opt.seed;
    job.num_trees = opt.num_trees;
    job.force_prune = opt.force_prune ? 1 : 0;
    job.heartbeat_ms = copt.heartbeat_ms;
    job.snapshot_blob = w.serialize();
    job_payload = net::encode_job(job);

    const int batch_size = std::max(1, copt.batch_size);
    const MutexLock lock(mu);
    for (std::size_t lo = 0; lo < forest->size();
         lo += static_cast<std::size_t>(batch_size)) {
      Batch b;
      b.id = static_cast<std::uint32_t>(batches.size());
      const std::size_t hi =
          std::min(forest->size(), lo + static_cast<std::size_t>(batch_size));
      for (std::size_t i = lo; i < hi; ++i) {
        b.trees.push_back(static_cast<std::int32_t>(i));
      }
      batches.push_back(std::move(b));
    }
  }

  // --------------------------------------------------------- shard plumbing

  void add_shard(net::Socket sock) {
    const MutexLock lock(mu);
    auto shard = std::make_unique<Shard>();
    shard->id = static_cast<int>(shards.size());
    shard->channel = net::FrameChannel(std::move(sock));
    Shard* raw = shard.get();
    shards.push_back(std::move(shard));
    // One reader per shard: it owns the inbound half of the conversation
    // (handshake, job ack, heartbeats, results) and outlives the shard's
    // death on purpose — a zombie's late frames must be observed to be
    // fenced, not silently dropped with a closed socket.
    // hgp-lint: allow(naked-thread)
    raw->reader = std::thread([this, raw] { reader_main(raw); });
  }

  void reader_main(Shard* s) {
    try {
      const Deadline hs = Deadline::after_ms(copt.handshake_timeout_ms);
      net::handshake_client(s->channel, net::kRoleCoordinator, hs);
      {
        const MutexLock lock(s->send_mu);
        s->channel.send(net::kMsgJob, job_payload, hs);
      }
      std::optional<net::Frame> ack_frame = s->channel.recv(hs);
      if (!ack_frame.has_value()) {
        throw SolveError(StatusCode::kUnavailable,
                         "shard closed before acking the job");
      }
      if (ack_frame->type != net::kMsgJobAck) {
        throw SolveError(StatusCode::kDataLoss,
                         "expected JobAck, got frame type " +
                             std::to_string(ack_frame->type));
      }
      const net::JobAckMsg ack = net::decode_job_ack(ack_frame->payload);
      if (ack.graph_fingerprint != fingerprint ||
          ack.num_trees != opt.num_trees) {
        throw SolveError(StatusCode::kDataLoss,
                         "shard acked a different instance");
      }
      {
        const MutexLock lock(mu);
        if (s->state == Shard::State::kConnecting) {
          s->state = Shard::State::kIdle;
          s->last_beat = Clock::now();
          ++report.shards_up;
          HGP_COUNTER_ADD("shard.up", 1);
          HGP_JOURNAL(kShardUp, rid, 0, s->id, 0);
          cv.notify_all();
        }
      }
      for (;;) {
        // No read deadline: supervision is lease-based (a silent shard is
        // handled by the lease scan, not by this thread) and teardown wakes
        // the read with shutdown().
        std::optional<net::Frame> frame = s->channel.recv(Deadline::never());
        if (!frame.has_value()) break;  // peer departed
        if (frame->type == net::kMsgHeartbeat) {
          (void)net::decode_heartbeat(frame->payload);
          const MutexLock lock(mu);
          s->last_beat = Clock::now();
          HGP_COUNTER_ADD("shard.heartbeats", 1);
        } else if (frame->type == net::kMsgBatchResult) {
          accept_result(s, net::decode_batch_result(frame->payload));
        } else {
          throw SolveError(StatusCode::kDataLoss,
                           "unexpected frame type " +
                               std::to_string(frame->type) +
                               " from shard");
        }
      }
    } catch (...) {
      // Connection-level death (reset, torn frame, version skew, stall past
      // a handshake deadline) — the classification already happened in the
      // net layer; all the reader does with it is declare the shard dead.
    }
    const MutexLock lock(mu);
    if (!stopping && s->state != Shard::State::kDead) {
      declare_dead_locked(*s);
    }
    s->state = Shard::State::kDead;
    cv.notify_all();
  }

  /// Exactly-once admission of a shard's batch result.  Anything that is
  /// not the *currently leased* (batch, epoch, owner) triple is a zombie:
  /// the shard was declared dead and the batch reassigned (stale epoch), or
  /// the batch already completed (double delivery).  Fenced results are
  /// counted and dropped — never recorded.
  void accept_result(Shard* s, net::BatchResultMsg res) {
    const MutexLock lock(mu);
    const bool in_range = res.batch_id < batches.size();
    Batch* b = in_range ? &batches[res.batch_id] : nullptr;
    const bool current = b != nullptr && b->state == Batch::State::kLeased &&
                         b->owner == s->id && b->epoch == res.epoch &&
                         s->state == Shard::State::kBusy;
    if (!current) {
      ++report.zombies_fenced;
      HGP_COUNTER_ADD("shard.zombies_fenced", 1);
      HGP_JOURNAL(kZombieFenced, rid, 0, res.batch_id, 0);
      return;
    }
    for (net::TreeResultWire& tree : res.trees) {
      if (tree.status != static_cast<std::uint8_t>(StatusCode::kOk)) {
        // The tree failed remotely; leaving it out of the checkpoint makes
        // the final solve_hgp re-attempt it in-process, which is exactly
        // what per-tree fault isolation does locally.
        HGP_COUNTER_ADD("shard.remote_tree_failures", 1);
        continue;
      }
      // Wire results are untrusted until proven shaped like this instance —
      // the same discipline solve_hgp applies to disk-recovered checkpoints.
      const bool shaped =
          tree.tree_index >= 0 &&
          static_cast<std::size_t>(tree.tree_index) < forest->size() &&
          tree.leaf_of.size() == static_cast<std::size_t>(g.vertex_count()) &&
          std::isfinite(tree.cost) &&
          std::all_of(tree.leaf_of.begin(), tree.leaf_of.end(),
                      [this](LeafId leaf) {
                        return leaf >= 0 && leaf < h.leaf_count();
                      });
      if (!shaped) {
        HGP_COUNTER_ADD("shard.malformed_tree_results", 1);
        continue;
      }
      CheckpointedTree ck;
      ck.placement.leaf_of = std::move(tree.leaf_of);
      ck.cost = tree.cost;
      ck.stats = tree.stats;
      checkpoint->record(tree.tree_index, std::move(ck));
      ++report.trees_from_shards;
      HGP_COUNTER_ADD("shard.trees_from_shards", 1);
    }
    b->state = Batch::State::kDone;
    b->owner = -1;
    ++batches_done;
    ++report.batches_completed;
    HGP_COUNTER_ADD("shard.batches_completed", 1);
    s->outstanding = -1;
    s->state = Shard::State::kIdle;
    s->last_beat = Clock::now();
    cv.notify_all();
  }

  /// mu held.  Marks the shard dead and re-queues its lease under a bumped
  /// epoch.  The socket stays OPEN and the reader keeps draining: a zombie
  /// (declared dead but actually alive) will deliver its stale result into
  /// accept_result's fence rather than into a closed pipe, which is what
  /// makes the exactly-once accounting observable.
  void declare_dead_locked(Shard& s) HGP_REQUIRES(mu) {
    s.state = Shard::State::kDead;
    ++report.shards_lost;
    HGP_COUNTER_ADD("shard.lost", 1);
    HGP_JOURNAL(kShardLost, rid, 0, s.id, 0);
    if (s.outstanding >= 0) {
      Batch& b = batches[static_cast<std::size_t>(s.outstanding)];
      if (b.state == Batch::State::kLeased && b.owner == s.id) {
        ++b.epoch;
        b.state = Batch::State::kPending;
        b.owner = -1;
        ++report.batches_reassigned;
        HGP_COUNTER_ADD("shard.batches_reassigned", 1);
        HGP_JOURNAL(kBatchReassign, rid, 0, b.id, 0);
      }
      s.outstanding = -1;
    }
  }

  // ---------------------------------------------------------- spawn-local

  pid_t spawn_worker() {
    std::vector<std::string> args;
    args.push_back(copt.shardd_path);
    args.push_back("--connect");
    args.push_back(listener.path());
    args.insert(args.end(), copt.shard_args.begin(), copt.shard_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, copt.shardd_path.c_str(), nullptr,
                                 nullptr, argv.data(), environ);
    if (rc != 0) {
      throw SolveError(StatusCode::kUnavailable,
                       "failed to spawn shard worker " + copt.shardd_path +
                           ": " + std::string(std::strerror(rc)));
    }
    children.push_back(pid);
    return pid;
  }

  void spawn_and_adopt() {
    spawn_worker();
    add_shard(listener.accept_connection(
        Deadline::after_ms(copt.handshake_timeout_ms)));
  }

  void start_shards() {
    for (net::Socket& sock : adopted) add_shard(std::move(sock));
    adopted.clear();
    if (!copt.shardd_path.empty() && copt.num_shards > 0) {
      const std::string dir =
          copt.socket_dir.empty() ? default_socket_dir() : copt.socket_dir;
      const std::string path = dir + "/hgp-coord-" +
                               std::to_string(static_cast<long>(::getpid())) +
                               "-" + std::to_string(rid & 0xffffffu) + ".sock";
      listener = net::Listener::listen_unix(path);
      for (int i = 0; i < copt.num_shards; ++i) spawn_and_adopt();
    }
  }

  // ------------------------------------------------------------ supervision

  bool cancelled() const {
    return opt.cancel != nullptr && opt.cancel->cancelled();
  }

  /// The coordinator's main loop: assign pending batches to idle shards,
  /// expire leases, respawn within budget, stop when the work is done, the
  /// deadline passed, or no shard can make progress (the final in-process
  /// aggregation covers whatever is left).
  void supervise() {
    int respawn_attempt = 0;
    for (;;) {
      if (cancelled()) {
        throw SolveError(StatusCode::kCancelled,
                         "cancelled during sharded solve");
      }
      if (deadline.expired()) return;

      struct PendingSend {
        Shard* shard;
        net::AssignMsg msg;
      };
      std::vector<PendingSend> sends;
      bool need_respawn = false;
      {
        const MutexLock lock(mu);
        if (batches_done == batches.size()) return;

        // Lease scan: a busy shard silent past the lease is dead and its
        // batch goes back in the queue under a fresh epoch.
        for (const std::unique_ptr<Shard>& sp : shards) {
          Shard& s = *sp;
          if (s.state != Shard::State::kBusy) continue;
          if (ms_since(s.last_beat) <= copt.lease_ms) continue;
          ++report.lease_expiries;
          HGP_COUNTER_ADD("shard.lease_expiries", 1);
          HGP_JOURNAL(kLeaseExpire, rid, 0, s.outstanding, 0);
          declare_dead_locked(s);
        }

        // Assignment: one outstanding batch per shard keeps reassignment
        // loss bounded to a single lease per failure.
        for (const std::unique_ptr<Shard>& sp : shards) {
          Shard& s = *sp;
          if (s.state != Shard::State::kIdle) continue;
          Batch* next = nullptr;
          for (Batch& b : batches) {
            if (b.state == Batch::State::kPending) {
              next = &b;
              break;
            }
          }
          if (next == nullptr) break;
          next->state = Batch::State::kLeased;
          next->owner = s.id;
          s.state = Shard::State::kBusy;
          s.outstanding = static_cast<int>(next->id);
          s.last_beat = Clock::now();  // a fresh lease starts a fresh clock
          ++report.batches_assigned;
          HGP_COUNTER_ADD("shard.batches_assigned", 1);
          net::AssignMsg msg;
          msg.epoch = next->epoch;
          msg.batch_id = next->id;
          msg.tree_indices = next->trees;
          sends.push_back(PendingSend{&s, std::move(msg)});
        }

        const bool any_alive =
            std::any_of(shards.begin(), shards.end(),
                        [](const std::unique_ptr<Shard>& sp) {
                          return sp->state != Shard::State::kDead;
                        });
        const bool work_left = batches_done < batches.size();
        if (!any_alive && work_left && sends.empty()) {
          const bool can_respawn = listener.valid() &&
                                   report.respawns < copt.respawn_limit;
          if (!can_respawn) return;  // degrade: finish in-process
          need_respawn = true;
        }
        if (!need_respawn && sends.empty()) {
          // Nothing actionable: sleep until a heartbeat/result/death pokes
          // the cv, capped so lease scans stay timely.
          const double wait_ms =
              std::max(5.0, std::min(50.0, copt.lease_ms / 4));
          cv.wait_for_ms(mu, wait_ms);
        }
      }

      for (PendingSend& ps : sends) {
        std::vector<std::byte> wire = net::encode_assign(ps.msg);
        try {
          const MutexLock lock(ps.shard->send_mu);
          ps.shard->channel.send(net::kMsgAssign, wire,
                                 Deadline::after_ms(10000));
        } catch (...) {
          const MutexLock lock(mu);
          if (ps.shard->state != Shard::State::kDead) {
            declare_dead_locked(*ps.shard);
          }
        }
      }

      if (need_respawn) {
        // Replacement workers reuse the retry loop's backoff-with-jitter
        // schedule so a crash-looping binary cannot hot-spin the spawner.
        const double sleep_ms =
            backoff_for_retry(copt.reconnect, respawn_attempt++, jitter);
        const Deadline until = Deadline::after_ms(sleep_ms);
        while (!until.expired() && !cancelled() && !deadline.expired()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              static_cast<int>(std::max(1.0, std::min(20.0, until.remaining_ms())))));
        }
        if (cancelled() || deadline.expired()) continue;
        {
          const MutexLock lock(mu);
          ++report.respawns;
        }
        HGP_COUNTER_ADD("shard.respawns", 1);
        try {
          spawn_and_adopt();
        } catch (...) {
          // Spawn or accept failed; budget was consumed, loop decides again.
        }
      }
    }
  }

  // --------------------------------------------------------------- teardown

  /// Idempotent: shuts channels down (waking every reader), joins readers,
  /// closes the listener and reaps spawned children.  Runs on every exit
  /// path of solve(), including throws.
  void cleanup() noexcept {
    std::vector<Shard*> live;
    {
      const MutexLock lock(mu);
      stopping = true;
      for (const std::unique_ptr<Shard>& sp : shards) live.push_back(sp.get());
    }
    for (Shard* s : live) {
      try {
        const MutexLock lock(s->send_mu);
        s->channel.send(net::kMsgShutdown, {}, Deadline::after_ms(500));
      } catch (...) {
        // Best-effort courtesy; the shutdown() below is what ends things.
      }
    }
    for (Shard* s : live) s->channel.shutdown();
    for (Shard* s : live) {
      if (s->reader.joinable()) s->reader.join();
    }
    for (Shard* s : live) s->channel.close();
    listener.close();
    for (const pid_t pid : children) {
      int status = 0;
      // Workers exit on Shutdown/EOF; give them a grace window, then make
      // sure nothing outlives the solve.
      const Deadline grace = Deadline::after_ms(2000);
      for (;;) {
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid || (r < 0 && errno == ECHILD)) break;
        if (grace.expired()) {
          ::kill(pid, SIGKILL);
          ::waitpid(pid, &status, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    children.clear();
  }

  // ------------------------------------------------------------------ solve

  HgpResult solve() {
    if (solved) {
      throw SolveError(StatusCode::kInvalidInput,
                       "ShardCoordinator::solve() may run only once");
    }
    solved = true;
    // Mirror solve_hgp's argument contract up front so a bad request fails
    // before any process is spawned.
    if (!g.has_demands()) {
      throw SolveError(StatusCode::kInvalidInput,
                       "HGP instances require vertex demands");
    }
    if (opt.num_trees < 1) {
      throw SolveError(StatusCode::kInvalidInput, "num_trees must be >= 1");
    }
    if (opt.timeout_ms < 0) {
      throw SolveError(StatusCode::kInvalidInput, "timeout_ms must be >= 0");
    }
    if (opt.epsilon <= 0) {
      throw SolveError(StatusCode::kInvalidInput, "epsilon must be > 0");
    }
    if (copt.lease_ms <= 0) {
      throw SolveError(StatusCode::kInvalidInput, "lease_ms must be > 0");
    }

    rid = obs::next_library_request_id();
    deadline = opt.timeout_ms > 0 ? Deadline::after_ms(opt.timeout_ms)
                                  : Deadline::never();
    checkpoint = opt.checkpoint != nullptr ? opt.checkpoint : &local_checkpoint;
    fingerprint = graph_fingerprint(g);
    checkpoint->bind(CheckpointKey{fingerprint, opt.seed, opt.num_trees,
                                   opt.epsilon, opt.units_override});
    checkpoint->set_request_context(rid, 0);

    bool distributed = true;
    try {
      build_job();
    } catch (const SolveError& e) {
      if (e.status().code == StatusCode::kCancelled ||
          e.status().code == StatusCode::kInvalidInput) {
        throw;
      }
      // Forest construction failed: there is nothing to distribute, and the
      // final solve_hgp below will hit the identical failure and classify /
      // degrade it exactly as a single-process solve would.
      distributed = false;
    }

    if (distributed) {
      try {
        start_shards();
        supervise();
      } catch (...) {
        cleanup();
        throw;
      }
    }
    cleanup();

    {
      const MutexLock lock(mu);
      report.degraded_inprocess =
          checkpoint->size() <
          (forest != nullptr ? forest->size()
                             : static_cast<std::size_t>(opt.num_trees));
    }

    // Final aggregation IS solve_hgp: every shard-delivered tree is served
    // from the checkpoint without re-running its DP, every missing tree is
    // solved in-process, and stage 3's arg-min + fallback classification
    // run unmodified — which is the whole bit-identity argument.
    SolverOptions final_opt = opt;
    final_opt.checkpoint = checkpoint;
    if (opt.timeout_ms > 0) {
      final_opt.timeout_ms = std::max(deadline.remaining_ms(), 0.001);
    }
    return solve_hgp(g, h, final_opt);
  }
};

ShardCoordinator::ShardCoordinator(const Graph& g, const Hierarchy& h,
                                   SolverOptions opt, CoordinatorOptions copt)
    : impl_(std::make_unique<Impl>(g, h, std::move(opt), std::move(copt))) {}

ShardCoordinator::~ShardCoordinator() { impl_->cleanup(); }

void ShardCoordinator::adopt_shard(net::Socket socket) {
  impl_->adopted.push_back(std::move(socket));
}

HgpResult ShardCoordinator::solve() { return impl_->solve(); }

const CoordinatorReport& ShardCoordinator::report() const {
  return impl_->report;
}

HgpResult solve_hgp_sharded(const Graph& g, const Hierarchy& h,
                            const SolverOptions& opt,
                            const CoordinatorOptions& copt,
                            CoordinatorReport* report) {
  ShardCoordinator coordinator(g, h, opt, copt);
  try {
    HgpResult result = coordinator.solve();
    if (report != nullptr) *report = coordinator.report();
    return result;
  } catch (...) {
    if (report != nullptr) *report = coordinator.report();
    throw;
  }
}

}  // namespace hgp
