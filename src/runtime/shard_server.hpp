// The shard worker's serve loop: one coordinator, one connection, solve
// what you're told, heartbeat while you do it.
//
// Library code (not the process shell — tools/hgp_shardd.cpp is the thin
// main() around this) so tests and the chaos harness can run *real* shard
// logic on in-process threads over a socketpair: the differential suite
// proves bit-identity against solve_hgp with the exact code a remote
// worker runs, and TSan sees the whole conversation.
//
// Protocol (src/net/protocol.hpp): after the version handshake the server
// expects a Job (instance snapshot blob + solve params), acks it, then
// loops on Assign → solve each tree with solve_forest_tree (the SAME
// per-tree path solve_hgp uses — bit-identity is by shared code, not by
// re-implementation) → BatchResult.  A heartbeat thread streams progress
// counters at the coordinator's requested cadence the whole time.
//
// FaultInjector sites (the distributed chaos storm arms these in the
// worker process; tools/hgp_shardd --fault):
//   shardd.tree      [i] on_site before tree i's solve (throw/stall), and
//                    polled for kKillProcess (SIGKILL mid-solve) in
//                    hgp_shardd's wrapper.
//   shardd.heartbeat [0] polled each beat; kStall delays the beat past
//                    the lease — a hung-but-alive shard.
#pragma once

#include <cstdint>
#include <functional>

#include "net/channel.hpp"
#include "util/status.hpp"

namespace hgp {

struct ShardServerOptions {
  /// Overrides the coordinator-requested heartbeat cadence when > 0.
  double heartbeat_ms = 0;
  /// Deadline for each blocking protocol read (0 = no limit); the worker
  /// exits kUnavailable when the coordinator goes silent past this.
  double idle_timeout_ms = 0;
  /// Called before each tree solve with the tree index (hgp_shardd polls
  /// the kill-process fault here; tests count solved trees).
  std::function<void(int)> on_tree_start;
};

struct ShardServerReport {
  std::uint64_t batches_assigned = 0;
  std::uint64_t trees_solved = 0;
  std::uint64_t trees_failed = 0;
  std::uint64_t heartbeats_sent = 0;
  /// Why the loop ended (kOk = clean Shutdown from the coordinator).
  Status exit_status;
};

/// Serves one coordinator on `ch` until Shutdown, peer close, or a fatal
/// channel error.  Performs the server half of the handshake first.
/// Never throws: every exit path is summarized in the report.
ShardServerReport run_shard_server(net::FrameChannel& ch,
                                   const ShardServerOptions& opt = {});

}  // namespace hgp
