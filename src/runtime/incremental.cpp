#include "runtime/incremental.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "graph/fingerprint.hpp"
#include "obs/event_journal.hpp"  // journal kinds under HGP_OBS=OFF
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"
#include "util/fault_injector.hpp"
#include "util/timer.hpp"

namespace hgp {

namespace {

struct TreeOutcome {
  Placement placement;
  double cost = std::numeric_limits<double>::infinity();
  TreeDpStats stats;
};

// Mirrors solver.cpp's solve_one_tree (the reuse hooks arrive through
// tree_opt): solve HGPT on the tree, map the leaf assignment back through
// the leaf↔vertex bijection, judge by the true Eq.-1 objective on G.
TreeOutcome solve_one_tree(const Graph& g, const Hierarchy& h,
                           const DecompTree& dt,
                           const TreeSolverOptions& tree_opt) {
  const TreeHgpSolution sol = solve_hgpt(dt.tree(), h, tree_opt);
  TreeOutcome out;
  HGP_TRACE_SPAN("tree.map_back");
  out.placement.leaf_of.assign(static_cast<std::size_t>(g.vertex_count()), 0);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    out.placement.leaf_of[static_cast<std::size_t>(v)] =
        sol.assignment.of(dt.leaf_of_vertex(v));
  }
  out.cost = placement_cost(g, h, out.placement);
  out.stats = sol.stats;
  HGP_COUNTER_ADD("solver.trees_solved", 1);
  if (contracts_enabled()) validate_placement(g, h, out.placement);
  return out;
}

/// Failure classification for a fixed forest (no sampling stage, so no
/// forest status): deadline dominates, then all-infeasible, then the
/// memory budget, then the first internal error.
Status classify_forest_failure(const ExecContext& exec,
                               const std::vector<TreeAttempt>& attempts) {
  if (exec.deadline.expired()) {
    return Status(StatusCode::kDeadlineExceeded,
                  "deadline expired before any tree solve completed");
  }
  bool all_infeasible = !attempts.empty();
  for (const TreeAttempt& a : attempts) {
    all_infeasible = all_infeasible && a.status == StatusCode::kInfeasible;
  }
  if (all_infeasible) {
    return Status(StatusCode::kInfeasible,
                  "every decomposition tree reported an infeasible "
                  "instance: " +
                      attempts.front().error);
  }
  for (const TreeAttempt& a : attempts) {
    if (a.status == StatusCode::kResourceExhausted) {
      return Status(StatusCode::kResourceExhausted,
                    "tree solves hit the memory budget: " + a.error);
    }
  }
  for (const TreeAttempt& a : attempts) {
    if (!a.ok()) {
      return Status(StatusCode::kInternal,
                    "all tree solves failed; first error: " + a.error);
    }
  }
  return Status(StatusCode::kInternal, "no decomposition trees were solved");
}

}  // namespace

HgpResult solve_on_forest(const Graph& g, const Hierarchy& h,
                          const std::vector<DecompTree>& forest,
                          const ForestSolveOptions& opt) {
  if (!g.has_demands()) {
    throw SolveError(StatusCode::kInvalidInput,
                     "HGP instances require vertex demands");
  }
  if (forest.empty()) {
    throw SolveError(StatusCode::kInvalidInput,
                     "solve_on_forest requires a non-empty forest");
  }
  if (opt.timeout_ms < 0) {
    throw SolveError(StatusCode::kInvalidInput, "timeout_ms must be >= 0");
  }
  if (opt.epsilon <= 0) {
    throw SolveError(StatusCode::kInvalidInput, "epsilon must be > 0");
  }
  for (const DecompTree& dt : forest) {
    if (dt.graph_vertex_count() != g.vertex_count()) {
      throw SolveError(StatusCode::kInvalidInput,
                       "forest tree does not decompose the solved graph");
    }
  }
  if (opt.reuse_in != nullptr && opt.reuse_in->size() != forest.size()) {
    throw SolveError(StatusCode::kInvalidInput,
                     "reuse_in must carry one store per forest tree");
  }
  if (opt.reuse_out != nullptr && opt.reuse_out == opt.reuse_in) {
    throw SolveError(StatusCode::kInvalidInput,
                     "reuse_in and reuse_out must not alias");
  }

  if (contracts_enabled()) validate_hierarchy(h);

  HGP_TRACE_SPAN_ARG("solve.on_forest", g.vertex_count());
  Timer total_timer;

  ExecContext exec;
  exec.deadline = opt.timeout_ms > 0 ? Deadline::after_ms(opt.timeout_ms)
                                     : Deadline::never();
  exec.cancel = opt.cancel;
  exec.check("solve_on_forest entry");

  HgpResult result;

  // Same binding rule as solve_hgp: retries with identical parameters
  // resume recorded trees; any parameter drift invalidates the store.
  if (opt.checkpoint != nullptr) {
    opt.checkpoint->bind(CheckpointKey{graph_fingerprint(g), opt.seed,
                                       narrow<int>(forest.size()), opt.epsilon,
                                       opt.units_override});
  }
  if (opt.reuse_out != nullptr) {
    opt.reuse_out->assign(forest.size(), DpReuseStore{});
  }

  TreeSolverOptions base_opt;
  base_opt.epsilon = opt.epsilon;
  base_opt.units_override = opt.units_override;
  base_opt.pool = opt.pool;
  base_opt.exec = &exec;
  base_opt.force_prune = opt.force_prune;

  // Isolated per-tree solves: the arg-min is over whatever survives, so
  // nothing one tree does may escape its attempt record (same contract as
  // solve_hgp stage 2; the chaos harness reuses the same fault sites).
  std::vector<TreeOutcome> outcomes(forest.size());
  result.attempts.assign(forest.size(), TreeAttempt{});
  auto run = [&](std::size_t i) {
    TreeAttempt& attempt = result.attempts[i];
    HGP_TRACE_SPAN_ARG("tree.attempt", i);
    Timer timer;
    try {
      CheckpointedTree ck;
      bool from_checkpoint = opt.checkpoint != nullptr &&
                             opt.checkpoint->lookup(static_cast<int>(i), &ck);
      if (from_checkpoint) {
        // Recovered entries are re-validated against THIS instance before
        // being trusted (spills may have matched a different run).
        from_checkpoint =
            ck.placement.leaf_of.size() ==
                static_cast<std::size_t>(g.vertex_count()) &&
            std::isfinite(ck.cost);
        for (std::size_t v = 0;
             from_checkpoint && v < ck.placement.leaf_of.size(); ++v) {
          from_checkpoint = ck.placement.leaf_of[v] >= 0 &&
                            ck.placement.leaf_of[v] < h.leaf_count();
        }
      }
      if (from_checkpoint) {
        // A previous attempt of this request already solved tree i.  No DP
        // runs, so the tree's reuse_out slot stays empty — checkpoints
        // carry placements, not DP tables.
        outcomes[i].placement = std::move(ck.placement);
        outcomes[i].cost = ck.cost;
        outcomes[i].stats = ck.stats;
        attempt.status = StatusCode::kOk;
        attempt.cost = outcomes[i].cost;
        attempt.from_checkpoint = true;
        HGP_COUNTER_ADD("solver.checkpoint_trees", 1);
      } else {
        FaultInjector::instance().on_site("solve_one_tree",
                                          static_cast<int>(i));
        exec.check("tree solve start");
        TreeSolverOptions tree_opt = base_opt;
        if (opt.reuse_in != nullptr) tree_opt.reuse_in = &(*opt.reuse_in)[i];
        if (opt.reuse_out != nullptr) {
          tree_opt.reuse_out = &(*opt.reuse_out)[i];
        }
        outcomes[i] = solve_one_tree(g, h, forest[i], tree_opt);
        attempt.status = StatusCode::kOk;
        attempt.cost = outcomes[i].cost;
        if (opt.checkpoint != nullptr) {
          opt.checkpoint->record(
              static_cast<int>(i),
              CheckpointedTree{outcomes[i].placement, outcomes[i].cost,
                               outcomes[i].stats});
        }
      }
    } catch (...) {
      const Status s = status_from_current_exception();
      attempt.status = s.code;
      attempt.error = s.message;
    }
    attempt.elapsed_ms = timer.millis();
  };
  {
    HGP_TRACE_SPAN_ARG("solve.trees", forest.size());
    Timer trees_timer;
    if (opt.pool != nullptr) {
      parallel_for(*opt.pool, 0, forest.size(), run);
    } else {
      for (std::size_t i = 0; i < forest.size(); ++i) run(i);
    }
    result.telemetry.tree_solve_ms = trees_timer.millis();
  }

  if (exec.cancelled()) {
    throw SolveError(StatusCode::kCancelled, "solve_on_forest cancelled");
  }

  try {
    FaultInjector::instance().on_site("solve_finalize", 0);
  } catch (const SolveError&) {
    throw;
  } catch (...) {
    throw SolveError(status_from_current_exception());
  }

  // Arg-min over the survivors (Theorem 7).
  result.telemetry.trees_attempted = narrow<int>(result.attempts.size());
  result.tree_costs.reserve(result.attempts.size());
  for (std::size_t i = 0; i < result.attempts.size(); ++i) {
    if (result.attempts[i].from_checkpoint) {
      ++result.telemetry.checkpoint_trees;
    }
    if (result.attempts[i].ok()) {
      ++result.telemetry.trees_succeeded;
      const TreeDpStats& s = outcomes[i].stats;
      result.telemetry.dp_signatures += s.signature_count;
      result.telemetry.dp_feasible_states += s.feasible_states;
      result.telemetry.dp_merge_operations += s.merge_operations;
      result.telemetry.dp_merges_rejected += s.merges_rejected;
      result.telemetry.dp_states_pruned += s.states_pruned;
      result.telemetry.dp_nodes_built += s.nodes_built;
      result.telemetry.dp_nodes_reused += s.nodes_reused;
    } else {
      HGP_COUNTER_ADD("solver.tree_failures", 1);
    }
    result.tree_costs.push_back(result.attempts[i].cost);
    if (result.attempts[i].ok() &&
        (result.best_tree < 0 ||
         result.attempts[i].cost <
             result.attempts[static_cast<std::size_t>(result.best_tree)]
                 .cost)) {
      result.best_tree = narrow<int>(i);
    }
  }
  if (result.best_tree < 0) {
    throw SolveError(classify_forest_failure(exec, result.attempts));
  }

  TreeOutcome& best = outcomes[static_cast<std::size_t>(result.best_tree)];
  result.placement = std::move(best.placement);
  result.cost = best.cost;
  result.stats = best.stats;
  result.loads = load_report(g, h, result.placement);
  result.method = SolveMethod::kHgp;
  result.status = Status();
  result.telemetry.total_ms = total_timer.millis();
  return result;
}

IncrementalSolver::IncrementalSolver(std::shared_ptr<const Graph> base,
                                     const Hierarchy& h,
                                     IncrementalOptions opt)
    : hierarchy_(&h), opt_(opt), graph_(std::move(base)) {
  if (graph_ == nullptr) {
    throw SolveError(StatusCode::kInvalidInput,
                     "incremental solver requires a base graph");
  }
  if (!graph_->has_demands()) {
    throw SolveError(StatusCode::kInvalidInput,
                     "HGP instances require vertex demands");
  }
  if (opt_.num_trees < 1) {
    throw SolveError(StatusCode::kInvalidInput, "num_trees must be >= 1");
  }
  if (opt_.epsilon <= 0) {
    throw SolveError(StatusCode::kInvalidInput, "epsilon must be > 0");
  }
  // Pin the demand-unit count to the base instance (same formula as
  // scale_demands for n = base vertex count), so later resolves keep the
  // rounding — and with it every clean subtree's signatures — stable as
  // the vertex count drifts.
  units_ = opt_.units_override > 0
               ? opt_.units_override
               : static_cast<DemandUnits>(std::ceil(
                     std::max(1.0,
                              static_cast<double>(graph_->vertex_count())) /
                     opt_.epsilon));
  fingerprint_ = graph_fingerprint(*graph_);

  ExecContext exec;
  exec.deadline = opt_.timeout_ms > 0 ? Deadline::after_ms(opt_.timeout_ms)
                                      : Deadline::never();
  exec.cancel = opt_.cancel;
  exec.check("incremental base solve");

  const FmCutter default_cutter;
  const Cutter& cutter =
      opt_.cutter != nullptr ? *opt_.cutter : default_cutter;
  forest_ = build_decomposition_forest(*graph_, opt_.num_trees, opt_.seed,
                                       cutter, opt_.pool, &exec);

  ForestSolveOptions fo;
  fo.epsilon = opt_.epsilon;
  fo.units_override = units_;
  fo.seed = opt_.seed;
  fo.pool = opt_.pool;
  fo.timeout_ms = opt_.timeout_ms;
  fo.cancel = opt_.cancel;
  fo.force_prune = opt_.force_prune;
  fo.reuse_out = &stores_;
  last_ = solve_on_forest(*graph_, h, forest_, fo);
  HGP_COUNTER_ADD("incremental.sessions", 1);
}

std::shared_ptr<MutationLog> IncrementalSolver::begin_batch() const {
  // The deleter captures the snapshot, so the log co-owns its base graph:
  // a log recorded before a concurrent commit stays valid (and fails the
  // rebase check) instead of dangling.
  std::shared_ptr<const Graph> snap = graph_;
  return std::shared_ptr<MutationLog>(new MutationLog(*snap),
                                      [snap](MutationLog* log) mutable {
                                        delete log;
                                        snap.reset();
                                      });
}

HgpResult IncrementalSolver::resolve(const MutationLog& log,
                                     const ResolveOptions& ro,
                                     ResolveStats* stats) {
  if (&log.base() != graph_.get()) {
    HGP_COUNTER_ADD("incremental.stale_logs", 1);
    throw SolveError(StatusCode::kInvalidInput,
                     "stale mutation log: the instance advanced past the "
                     "log's base graph; rebase onto graph()");
  }
  HGP_JOURNAL_SCOPED(kResolveStart, log.size(), 0);
  HGP_COUNTER_ADD("incremental.resolves", 1);
  HGP_COUNTER_ADD("incremental.mutations", log.size());

  // Patch, don't resample: clean subtrees must keep their exact shape for
  // the DP reuse stores to hit (and for the churn differential to compare
  // like against like).
  MutationLog::Materialized mat = log.materialize();
  ForestPatch patch = patch_forest(forest_, log, mat);
  const std::shared_ptr<const Graph> next =
      std::make_shared<const Graph>(std::move(mat.graph));

  std::vector<DpReuseStore> fresh;
  ForestSolveOptions fo;
  fo.epsilon = opt_.epsilon;
  fo.units_override = units_;
  fo.seed = opt_.seed;
  fo.pool = opt_.pool;
  fo.timeout_ms = ro.timeout_ms;
  fo.cancel = ro.cancel;
  fo.checkpoint = ro.checkpoint;
  fo.force_prune = opt_.force_prune || ro.force_prune;
  fo.reuse_in = &stores_;
  fo.reuse_out = &fresh;

  HgpResult r;
  try {
    r = solve_on_forest(*next, *hierarchy_, patch.forest, fo);
  } catch (...) {
    // Committed state untouched: the caller may retry the same log.
    HGP_JOURNAL_SCOPED(kResolveEnd, 0, status_from_current_exception().code);
    throw;
  }

  HGP_COUNTER_ADD("incremental.dirty_vertices", patch.stats.dirty_vertices);
  HGP_COUNTER_ADD("incremental.nodes_built", r.telemetry.dp_nodes_built);
  HGP_COUNTER_ADD("incremental.nodes_reused", r.telemetry.dp_nodes_reused);

  if (stats != nullptr) {
    stats->patch = patch.stats;
    stats->nodes_built = r.telemetry.dp_nodes_built;
    stats->nodes_reused = r.telemetry.dp_nodes_reused;
    stats->surviving_vertices = 0;
    stats->moved_vertices = 0;
    // Survivors are the compact ids whose stable id predates the log's
    // adds; their stable id IS their compact id in the old graph.
    const Vertex old_n = graph_->vertex_count();
    for (Vertex c = 0; c < next->vertex_count(); ++c) {
      const Vertex s = mat.stable_of[static_cast<std::size_t>(c)];
      if (s >= old_n) continue;
      ++stats->surviving_vertices;
      if (last_.placement.leaf_of[static_cast<std::size_t>(s)] !=
          r.placement.leaf_of[static_cast<std::size_t>(c)]) {
        ++stats->moved_vertices;
      }
    }
  }

  // Atomic commit: snapshot, forest, reuse stores and last result advance
  // together, only on success.
  graph_ = next;
  fingerprint_ = graph_fingerprint(*graph_);
  forest_ = std::move(patch.forest);
  stores_ = std::move(fresh);
  last_ = r;
  HGP_JOURNAL_SCOPED(kResolveEnd,
                     static_cast<std::int64_t>(r.telemetry.dp_nodes_reused),
                     r.status.code);
  return r;
}

}  // namespace hgp
