#include "runtime/solver.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "baseline/greedy.hpp"
#include "baseline/multilevel.hpp"
#include "obs/event_journal.hpp"  // stage constants under HGP_OBS=OFF
#include "obs/obs.hpp"
#include "runtime/forest_cache.hpp"
#include "parallel/parallel_for.hpp"
#include "util/contracts.hpp"
#include "util/fault_injector.hpp"
#include "util/timer.hpp"

namespace hgp {

ForestTreeResult solve_forest_tree(const Graph& g, const Hierarchy& h,
                                   const DecompTree& dt,
                                   const TreeSolverOptions& tree_opt) {
  const TreeHgpSolution sol = solve_hgpt(dt.tree(), h, tree_opt);
  ForestTreeResult out;
  HGP_TRACE_SPAN("tree.map_back");
  out.placement.leaf_of.assign(static_cast<std::size_t>(g.vertex_count()), 0);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    out.placement.leaf_of[static_cast<std::size_t>(v)] =
        sol.assignment.of(dt.leaf_of_vertex(v));
  }
  // Judge every candidate by the true objective on G, not the tree cost
  // (the tree cost over-estimates by the embedding stretch).
  out.cost = placement_cost(g, h, out.placement);
  out.stats = sol.stats;
  HGP_COUNTER_ADD("solver.trees_solved", 1);
  // The leaf↔vertex bijection must yield a structurally valid placement
  // whose leaf loads match the tree solution's (leaves carry the same
  // demand on both sides of the mapping).
  if (contracts_enabled()) validate_placement(g, h, out.placement);
  return out;
}

namespace {

using TreeOutcome = ForestTreeResult;

/// Aggregates a full primary-pipeline failure into the one status the
/// caller should see: a gone deadline dominates (the trees were killed, not
/// broken), then a forest-build failure, then "every tree infeasible",
/// then memory-budget exhaustion (the degradation ladder keys off it),
/// then the first internal error.
Status classify_total_failure(const ExecContext& exec,
                              const Status& forest_status,
                              const std::vector<TreeAttempt>& attempts) {
  if (exec.deadline.expired()) {
    return Status(StatusCode::kDeadlineExceeded,
                  "deadline expired before any tree solve completed");
  }
  if (!forest_status.ok()) return forest_status;
  bool all_infeasible = !attempts.empty();
  for (const TreeAttempt& a : attempts) {
    all_infeasible = all_infeasible && a.status == StatusCode::kInfeasible;
  }
  if (all_infeasible) {
    return Status(StatusCode::kInfeasible,
                  "every decomposition tree reported an infeasible "
                  "instance: " +
                      attempts.front().error);
  }
  for (const TreeAttempt& a : attempts) {
    if (a.status == StatusCode::kResourceExhausted) {
      return Status(StatusCode::kResourceExhausted,
                    "tree solves hit the memory budget: " + a.error);
    }
  }
  for (const TreeAttempt& a : attempts) {
    if (!a.ok()) {
      return Status(StatusCode::kInternal,
                    "all tree solves failed; first error: " + a.error);
    }
  }
  return Status(StatusCode::kInternal, "no decomposition trees were solved");
}

/// Runs the degradation chain (multilevel, then greedy) without a deadline:
/// the caller already blew its budget and wants *some* feasible placement;
/// both heuristics are orders of magnitude cheaper than the DP pipeline.
HgpResult run_fallback_chain(const Graph& g, const Hierarchy& h,
                             const SolverOptions& opt, HgpResult result,
                             Status reason) {
  result.best_tree = -1;
  result.stats = TreeDpStats{};
  result.status = std::move(reason);
  HGP_TRACE_SPAN("solve.fallback");
  Timer fallback_timer;
  try {
    HGP_COUNTER_ADD("solver.fallback.multilevel", 1);
    HGP_JOURNAL_SCOPED(kFallbackStage, obs::kFallbackStageMultilevel,
                       result.status.code);
    HGP_TRACE_SPAN("fallback.multilevel");
    // Stage-boundary fault hook: tests kill the multilevel stage here to
    // drive the chain down to greedy (and beyond, to exhaustion).
    FaultInjector::instance().on_site("fallback_multilevel", 0);
    Rng rng(opt.seed);
    result.placement = multilevel_placement(g, h, rng);
    result.method = SolveMethod::kMultilevel;
  } catch (...) {
    const Status ml = status_from_current_exception();
    try {
      HGP_COUNTER_ADD("solver.fallback.greedy", 1);
      HGP_JOURNAL_SCOPED(kFallbackStage, obs::kFallbackStageGreedy,
                         ml.code);
      HGP_TRACE_SPAN("fallback.greedy");
      FaultInjector::instance().on_site("fallback_greedy", 0);
      result.placement = greedy_placement(g, h);
      result.method = SolveMethod::kGreedy;
    } catch (...) {
      const Status gr = status_from_current_exception();
      throw SolveError(StatusCode::kInfeasible,
                       "fallback chain exhausted (primary: " +
                           result.status.to_string() +
                           "; multilevel: " + ml.to_string() +
                           "; greedy: " + gr.to_string() + ")");
    }
  }
  result.cost = placement_cost(g, h, result.placement);
  result.loads = load_report(g, h, result.placement);
  result.telemetry.fallback_ms = fallback_timer.millis();
  HGP_POSTCONDITION_MSG(result.placement.task_count() == g.vertex_count(),
                        "fallback placement must cover every task");
  return result;
}

}  // namespace

const char* solve_method_name(SolveMethod method) {
  switch (method) {
    case SolveMethod::kHgp:
      return "hgp";
    case SolveMethod::kMultilevel:
      return "multilevel";
    case SolveMethod::kGreedy:
      return "greedy";
  }
  return "unknown";
}

HgpResult solve_hgp(const Graph& g, const Hierarchy& h,
                    const SolverOptions& opt) {
  if (!g.has_demands()) {
    throw SolveError(StatusCode::kInvalidInput,
                     "HGP instances require vertex demands");
  }
  if (opt.num_trees < 1) {
    throw SolveError(StatusCode::kInvalidInput, "num_trees must be >= 1");
  }
  if (opt.timeout_ms < 0) {
    throw SolveError(StatusCode::kInvalidInput, "timeout_ms must be >= 0");
  }
  if (opt.epsilon <= 0) {
    throw SolveError(StatusCode::kInvalidInput, "epsilon must be > 0");
  }

  if (contracts_enabled()) validate_hierarchy(h);

  HGP_TRACE_SPAN_ARG("solve", g.vertex_count());
  HGP_COUNTER_ADD("solver.solves", 1);
  Timer total_timer;

  ExecContext exec;
  exec.deadline =
      opt.timeout_ms > 0 ? Deadline::after_ms(opt.timeout_ms) : Deadline::never();
  exec.cancel = opt.cancel;
  exec.check("solve_hgp entry");

  const FmCutter default_cutter;
  const Cutter& cutter =
      opt.cutter != nullptr ? *opt.cutter : default_cutter;

  HgpResult result;

  // Stage 1: decomposition forest.  A failure here leaves zero trees, which
  // the degradation logic below treats like "all trees failed".  Sampling
  // is deterministic in (graph content, seed, count, cutter), so the
  // global LRU cache can serve repeated solves of the same instance; the
  // forest is held as a shared immutable snapshot either way.
  CachedForest forest_ptr;
  Status forest_status;
  {
    HGP_TRACE_SPAN_ARG("solve.forest", opt.num_trees);
    Timer forest_timer;
    ForestCache& cache = ForestCache::global();
    ForestCacheKey key;
    std::uint64_t fingerprint = 0;
    if (cache.enabled() || opt.checkpoint != nullptr) {
      fingerprint = graph_fingerprint(g);
    }
    // (Re)bind the checkpoint to this solve's parameters: retries with
    // identical parameters resume recorded trees, a degraded retry (e.g.
    // fewer trees) invalidates them — the forest it samples differs.
    if (opt.checkpoint != nullptr) {
      opt.checkpoint->bind(CheckpointKey{fingerprint, opt.seed, opt.num_trees,
                                         opt.epsilon, opt.units_override});
    }
    if (cache.enabled()) {
      key = ForestCacheKey{fingerprint, opt.seed, opt.num_trees,
                           cutter.name()};
      forest_ptr = cache.find(key);
    }
    if (forest_ptr != nullptr) {
      result.telemetry.forest_cache_hit = true;
    } else {
      try {
        forest_ptr = std::make_shared<const std::vector<DecompTree>>(
            build_decomposition_forest(g, opt.num_trees, opt.seed, cutter,
                                       opt.pool, &exec));
        cache.insert(key, forest_ptr);
      } catch (...) {
        forest_status = status_from_current_exception();
        if (forest_status.code == StatusCode::kCancelled) throw;
        forest_ptr = std::make_shared<const std::vector<DecompTree>>();
      }
    }
    result.telemetry.forest_build_ms = forest_timer.millis();
  }
  const std::vector<DecompTree>& forest = *forest_ptr;
  HGP_COUNTER_ADD("solver.trees_sampled",
                  static_cast<std::int64_t>(forest.size()));

  TreeSolverOptions tree_opt;
  tree_opt.epsilon = opt.epsilon;
  tree_opt.units_override = opt.units_override;
  // The DP itself may also fan subtrees across the pool; when the attempts
  // below already occupy the workers, its is_worker_thread() guard keeps
  // each tree's DP sequential, so sharing the pool cannot deadlock.
  tree_opt.pool = opt.pool;
  tree_opt.exec = &exec;
  tree_opt.force_prune = opt.force_prune;

  // Stage 2: isolated per-tree solves.  Theorem 7's arg-min is over
  // whatever survives, so nothing a single tree does — throw, stall past
  // the deadline, report infeasibility — may escape its attempt record.
  std::vector<TreeOutcome> outcomes(forest.size());
  result.attempts.assign(forest.size(), TreeAttempt{});
  auto run = [&](std::size_t i) {
    TreeAttempt& attempt = result.attempts[i];
    HGP_TRACE_SPAN_ARG("tree.attempt", i);
    Timer timer;
    try {
      CheckpointedTree ck;
      bool from_checkpoint = opt.checkpoint != nullptr &&
                             opt.checkpoint->lookup(static_cast<int>(i), &ck);
      if (from_checkpoint) {
        // Checkpoints may have been recovered from disk, so the entry is
        // re-validated against THIS instance before it is trusted: a
        // placement of the wrong size or with out-of-range leaves (a spill
        // that survived its CRCs but matched a different run, or hostile
        // bytes) is treated as a miss and the tree is simply re-solved.
        from_checkpoint =
            ck.placement.leaf_of.size() ==
                static_cast<std::size_t>(g.vertex_count()) &&
            std::isfinite(ck.cost);
        for (std::size_t v = 0; from_checkpoint && v < ck.placement.leaf_of.size();
             ++v) {
          from_checkpoint =
              ck.placement.leaf_of[v] >= 0 &&
              ck.placement.leaf_of[v] < h.leaf_count();
        }
      }
      if (from_checkpoint) {
        // A previous attempt of this request already solved tree i — the
        // subproblem is deterministic in the checkpoint key, so reuse the
        // recorded placement instead of re-running the DP.
        outcomes[i].placement = std::move(ck.placement);
        outcomes[i].cost = ck.cost;
        outcomes[i].stats = ck.stats;
        attempt.status = StatusCode::kOk;
        attempt.cost = outcomes[i].cost;
        attempt.from_checkpoint = true;
        HGP_COUNTER_ADD("solver.checkpoint_trees", 1);
      } else {
        FaultInjector::instance().on_site("solve_one_tree",
                                          static_cast<int>(i));
        exec.check("tree solve start");
        outcomes[i] = solve_forest_tree(g, h, forest[i], tree_opt);
        attempt.status = StatusCode::kOk;
        attempt.cost = outcomes[i].cost;
        if (opt.checkpoint != nullptr) {
          opt.checkpoint->record(
              static_cast<int>(i),
              CheckpointedTree{outcomes[i].placement, outcomes[i].cost,
                               outcomes[i].stats});
        }
      }
    } catch (...) {
      const Status s = status_from_current_exception();
      attempt.status = s.code;
      attempt.error = s.message;
    }
    attempt.elapsed_ms = timer.millis();
  };
  // No exec on this loop: isolation happens inside `run`, and the loop
  // itself must visit every index so every attempt is recorded.
  {
    HGP_TRACE_SPAN_ARG("solve.trees", forest.size());
    Timer trees_timer;
    if (opt.pool != nullptr) {
      parallel_for(*opt.pool, 0, forest.size(), run);
    } else {
      for (std::size_t i = 0; i < forest.size(); ++i) run(i);
    }
    result.telemetry.tree_solve_ms = trees_timer.millis();
  }

  if (exec.cancelled()) {
    throw SolveError(StatusCode::kCancelled, "solve_hgp cancelled");
  }

  // Post-tree fault hook: by now every completed tree is checkpointed, so
  // a fault injected here models the worst checkpoint-resume case — the
  // attempt dies with all its tree work banked (tests and the chaos
  // harness use it to force a resume that skips completed trees).  The
  // injected CheckError is classified here so solve_hgp keeps its
  // only-typed-errors contract.
  try {
    FaultInjector::instance().on_site("solve_finalize", 0);
  } catch (const SolveError&) {
    throw;
  } catch (...) {
    throw SolveError(status_from_current_exception());
  }

  // Stage 3: arg-min over the survivors.
  result.telemetry.trees_attempted = narrow<int>(result.attempts.size());
  result.tree_costs.reserve(result.attempts.size());
  for (std::size_t i = 0; i < result.attempts.size(); ++i) {
    if (result.attempts[i].from_checkpoint) {
      ++result.telemetry.checkpoint_trees;
    }
    if (result.attempts[i].ok()) {
      ++result.telemetry.trees_succeeded;
      const TreeDpStats& s = outcomes[i].stats;
      result.telemetry.dp_signatures += s.signature_count;
      result.telemetry.dp_feasible_states += s.feasible_states;
      result.telemetry.dp_merge_operations += s.merge_operations;
      result.telemetry.dp_merges_rejected += s.merges_rejected;
      result.telemetry.dp_states_pruned += s.states_pruned;
      result.telemetry.dp_nodes_built += s.nodes_built;
      result.telemetry.dp_nodes_reused += s.nodes_reused;
    } else {
      HGP_COUNTER_ADD("solver.tree_failures", 1);
    }
    result.tree_costs.push_back(result.attempts[i].cost);
    if (result.attempts[i].ok() &&
        (result.best_tree < 0 ||
         result.attempts[i].cost <
             result.attempts[static_cast<std::size_t>(result.best_tree)]
                 .cost)) {
      result.best_tree = narrow<int>(i);
    }
  }
  if (result.best_tree >= 0) {
    TreeOutcome& best = outcomes[static_cast<std::size_t>(result.best_tree)];
    result.placement = std::move(best.placement);
    result.cost = best.cost;
    result.stats = best.stats;
    result.loads = load_report(g, h, result.placement);
    result.method = SolveMethod::kHgp;
    result.status = Status();
    result.telemetry.total_ms = total_timer.millis();
    return result;
  }

  // Stage 4: graceful degradation.
  Status reason = classify_total_failure(exec, forest_status, result.attempts);
  if (opt.fallback == FallbackPolicy::kNone) {
    throw SolveError(std::move(reason));
  }
  HgpResult degraded =
      run_fallback_chain(g, h, opt, std::move(result), std::move(reason));
  degraded.telemetry.total_ms = total_timer.millis();
  return degraded;
}

}  // namespace hgp
