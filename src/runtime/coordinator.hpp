// ShardCoordinator: fans the decomposition forest out to shard worker
// processes under time-bounded leases, and survives their crashes, hangs
// and partitions without losing a request.
//
// The forest arg-min is embarrassingly shardable (trees are independent
// until the final comparison), so the coordinator's only hard job is
// failure handling:
//
//   * every Assign carries a lease — a shard that misses heartbeats past
//     CoordinatorOptions::lease_ms is declared dead and its leased batches
//     are reassigned to survivors;
//   * every batch carries an epoch, bumped on reassignment — a zombie
//     shard (declared dead but still running) delivers results under a
//     stale epoch and they are fenced and discarded, so each tree is
//     accounted exactly once;
//   * a shard whose socket resets is dead immediately (crash detection is
//     faster than lease expiry); spawn-local shards are respawned within
//     a budget, spaced by the retry loop's backoff-with-jitter policy;
//   * when every shard is lost and the respawn budget is spent, the
//     remaining trees are solved in-process — the PR-1 fallback-chain
//     idiom one rung higher, so shard loss degrades throughput, never
//     correctness.
//
// Correctness bar (enforced by tests/test_shard_differential.cpp): the
// coordinated result is bit-identical to single-process solve_hgp on the
// same instance under ANY seeded kill/partition schedule.  The mechanism
// is shared code, not matched re-implementation: accepted shard results
// are recorded into a SolveCheckpoint (each computed remotely by
// solve_forest_tree, the exact per-tree path solve_hgp runs), and the
// final aggregation IS solve_hgp consuming that checkpoint — arg-min
// tie-breaking, degradation classification and fallback chain included.
// Trees the shards never delivered are simply absent from the checkpoint
// and solve_hgp solves them in-process.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "runtime/service.hpp"
#include "runtime/solver.hpp"

namespace hgp {

struct CoordinatorOptions {
  /// Shard worker processes to spawn (requires shardd_path; 0 with
  /// adopted channels runs a purely in-process shard pool).
  int num_shards = 0;
  /// The tools/hgp_shardd binary for spawn-local mode.
  std::string shardd_path;
  /// Extra argv for spawned workers (the chaos storm passes seeded
  /// --fault schedules through here).
  std::vector<std::string> shard_args;
  /// Directory for the coordinator's unix listening socket (spawn-local);
  /// empty uses TMPDIR (or /tmp).
  std::string socket_dir;
  /// A leased batch whose shard sends no heartbeat for this long is
  /// reassigned and the shard declared dead.
  double lease_ms = 2000;
  /// Heartbeat cadence requested from shards (carried in the Job).
  double heartbeat_ms = 25;
  /// Trees per assigned batch.
  int batch_size = 1;
  /// Budget for one shard's handshake + job load.
  double handshake_timeout_ms = 10000;
  /// Total replacement spawns allowed across the solve (spawn-local).
  int respawn_limit = 1;
  /// Backoff-with-jitter schedule between respawns (the service layer's
  /// policy, see backoff_for_retry).
  RetryOptions reconnect;
};

/// Shard-level accounting for one coordinated solve (the chaos storm's
/// assertions read these).
struct CoordinatorReport {
  int shards_up = 0;          ///< handshake + job load completed
  int shards_lost = 0;        ///< socket death or lease expiry
  int lease_expiries = 0;     ///< batches whose lease ran out
  int batches_assigned = 0;   ///< Assign frames sent (reassigns included)
  int batches_completed = 0;  ///< accepted exactly-once results
  int batches_reassigned = 0; ///< re-queued under a bumped epoch
  int zombies_fenced = 0;     ///< stale-epoch results discarded
  int respawns = 0;           ///< replacement workers spawned
  int trees_from_shards = 0;  ///< tree results accepted off the wire
  /// Some trees missed their shard window and were solved in-process by
  /// the final aggregation (true whenever every shard was lost).
  bool degraded_inprocess = false;
};

/// One coordinated solve.  Construct, optionally adopt pre-connected
/// shard channels (tests, in-process harnesses), then solve() once.
class ShardCoordinator {
 public:
  ShardCoordinator(const Graph& g, const Hierarchy& h, SolverOptions opt,
                   CoordinatorOptions copt);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Adopts a connected socket whose peer runs run_shard_server (the
  /// coordinator performs its half of the handshake inside solve()).
  /// Must be called before solve().
  void adopt_shard(net::Socket socket);

  /// Distributes the forest, supervises leases, aggregates.  Returns
  /// exactly what solve_hgp would (throws SolveError the same way:
  /// kInvalidInput, kCancelled, or a fully exhausted fallback chain).
  HgpResult solve();

  /// Valid after solve() returns or throws.
  const CoordinatorReport& report() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper: spawn-local coordinated solve (hgp_solve
/// --shards N).  `report`, when non-null, receives the shard accounting.
HgpResult solve_hgp_sharded(const Graph& g, const Hierarchy& h,
                            const SolverOptions& opt,
                            const CoordinatorOptions& copt,
                            CoordinatorReport* report = nullptr);

}  // namespace hgp
