// SolverService: the long-running-process front end over solve_hgp.
//
// PR 1 made a single solve resilient; this layer protects the *process*
// serving many solves:
//
//   * admission control — a bounded request queue plus a memory-budget
//     utilization gate (util/memory_budget.hpp).  Arrivals beyond either
//     limit are rejected with kResourceExhausted instead of queueing
//     without bound or OOMing the arena/pool machinery.
//   * retry with exponential backoff + deterministic jitter — transiently
//     classified failures (status_is_transient) are re-attempted within a
//     per-request retry budget; the spend is surfaced on
//     HgpResult::retries_used.
//   * degradation ladder — kResourceExhausted degrades the request before
//     burning retries: dominance pruning is forced on, then the tree count
//     is halved toward RetryOptions::min_trees; the fallback chain inside
//     solve_hgp (multilevel → greedy) is the final rung.  Ladder steps are
//     free (not counted against the retry budget) because each strictly
//     shrinks the footprint.
//   * checkpoint/resume — every retry of a request shares one
//     SolveCheckpoint (runtime/checkpoint.hpp), so an attempt killed after
//     some trees completed resumes from the survivors.
//   * watchdog — a service thread cancels any attempt running past a
//     stuck-threshold; a watchdog cancel is treated as transient (the
//     retry path re-attempts), a caller cancel is terminal.
//   * drain/shutdown — drain() finishes queued and in-flight work while
//     rejecting new arrivals; the destructor drains then joins all
//     threads.
//
// Validation lives in tests/test_service.cpp and the chaos harness
// tools/hgp_chaos (seeded probabilistic fault schedules, concurrent
// requests, budget pressure).  See docs/RESILIENCE.md for the
// architecture diagram and knob table.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/incremental.hpp"
#include "runtime/solver.hpp"
#include "util/memory_budget.hpp"
#include "util/prng.hpp"
#include "util/sync.hpp"

namespace hgp {

namespace obs {
class IntrospectionServer;
}  // namespace obs

struct RetryOptions {
  /// Re-attempts allowed beyond the first try (0 = fail fast).
  int max_retries = 2;
  /// First backoff; doubles per retry up to backoff_max_ms.
  double backoff_base_ms = 5;
  double backoff_max_ms = 250;
  /// Uniform jitter applied to each backoff: sleep *= 1 + U(-f, +f).
  /// Jitter decorrelates retry storms across concurrent requests.
  double jitter_fraction = 0.5;
  /// Seed of the jitter stream (deterministic per request).
  std::uint64_t jitter_seed = 1;
  /// Enables the resource-pressure degradation ladder.
  bool degrade_on_resource_exhausted = true;
  /// The ladder never reduces num_trees below this.
  int min_trees = 1;
};

/// Terminal outcome of one request after admission, retries and
/// degradation.  `status` is always one of the documented terminal codes;
/// `has_result` says whether `result` carries a placement (true for kOk
/// and for degraded-but-placed outcomes).
struct RetrySolveReport {
  Status status;
  bool has_result = false;
  HgpResult result;
  int retries_used = 0;
  /// Degradation-ladder steps applied (fewer trees / forced pruning).
  int degrades = 0;
  /// The final failure was transient but the retry budget was spent.
  bool retry_budget_exhausted = false;

  bool ok() const { return status.ok(); }
};

/// The backoff-with-jitter schedule of the retry loop, exposed so other
/// retrying layers (the shard coordinator's reconnect/respawn path) share
/// the one policy: backoff_base_ms doubling per retry up to
/// backoff_max_ms, then ±jitter_fraction uniform jitter drawn from
/// `jitter` (one draw per call — deterministic in the seed and call
/// ordinal).
double backoff_for_retry(const RetryOptions& ro, int retry_number,
                         Rng& jitter);

/// solve_hgp wrapped in the retry/backoff/degradation policy, for callers
/// that want the service semantics without the queue (hgp_solve --retries
/// uses this; SolverService workers run the same loop).  `opt.checkpoint`
/// carries completed trees across attempts; when null an internal
/// checkpoint is used.  Never throws: every outcome, including
/// kInvalidInput, is reported through the returned status.
RetrySolveReport solve_with_retry(const Graph& g, const Hierarchy& h,
                                  SolverOptions opt,
                                  const RetryOptions& retry = {});

struct ServiceOptions {
  /// Worker threads executing requests (≥ 1).
  std::size_t workers = 2;
  /// Bounded admission queue (excludes in-flight work); arrivals beyond it
  /// are rejected with kResourceExhausted.
  std::size_t max_queue = 64;
  RetryOptions retry;
  /// Reject admission when MemoryBudget::global() utilization exceeds this
  /// (only applies when a budget limit is set).
  double admission_max_utilization = 0.95;
  /// Watchdog stuck-threshold: cancel any attempt running longer than this
  /// many milliseconds (0 disables the watchdog).
  double stuck_after_ms = 0;
  double watchdog_poll_ms = 20;
  /// Inner pool for each solve's tree/DP parallelism (shared across
  /// workers; solve_hgp's worker-thread guard keeps sharing safe).
  ThreadPool* solve_pool = nullptr;
  /// Directory for durable checkpoint spills (empty = disabled).  With a
  /// spill dir set, every failed attempt persists its checkpoint (binary
  /// snapshot container, crash-safe rename; src/io/snapshot.hpp), the
  /// constructor scans the directory and indexes surviving spills by key,
  /// and a submitted request whose key matches a recovered spill resumes
  /// from the completed trees instead of re-solving them — including
  /// across a kill + restart of the whole process.  Spilling is strictly
  /// best-effort: any I/O or integrity failure is counted, logged, and
  /// the solve continues in memory.
  std::string spill_dir;
  /// Unix-domain socket path for the live introspection endpoint
  /// (obs/introspect.hpp): /metrics, /requests, /flightrecorder.  Empty
  /// consults the HGP_OBS_SOCKET environment variable; empty both ways
  /// (or a build with HGP_OBS=OFF) disables the endpoint.  Endpoint
  /// start-up failure is logged and ignored — observability must never
  /// take the service down.
  std::string obs_socket;
  /// File the service dumps the flight recorder to when a watchdog cancel
  /// fires or a request terminates with kInternal (overwritten per event;
  /// empty disables the automatic dumps).  The same path is registered as
  /// the fatal-signal crash dump (journal-only, see
  /// obs/flight_recorder.hpp), with ".signal" appended.
  std::string flight_dump_path;
};

/// Reject reason indices carried in the journal's kReject arg (and shown
/// by hgp_top / docs/OBSERVABILITY.md).
inline constexpr int kRejectDraining = 0;
inline constexpr int kRejectQueueFull = 1;
inline constexpr int kRejectBudget = 2;

class IncrementalSession;

/// Caller's handle to a submitted request.  Thread-safe.
class ServiceRequest {
 public:
  /// Blocks until the request reaches a terminal state.
  const RetrySolveReport& wait() HGP_EXCLUDES(mutex_);

  /// Requests cancellation: the current attempt is cancelled cooperatively
  /// and no further attempts start.  Terminal status becomes kCancelled
  /// unless the request already finished.
  void cancel() HGP_EXCLUDES(mutex_);

  bool done() const HGP_EXCLUDES(mutex_);

  /// Identifier assigned at submit (dense, starting at 0).
  std::uint64_t id() const { return id_; }

 private:
  friend class SolverService;

  ServiceRequest(std::uint64_t id, const Graph& g, const Hierarchy& h,
                 SolverOptions opt)
      : id_(id), graph_(&g), hierarchy_(&h), opt_(std::move(opt)) {}

  /// Incremental re-solve request: applies `log` to `session` (defined in
  /// service.cpp, where IncrementalSession is complete).
  ServiceRequest(std::uint64_t id, std::shared_ptr<IncrementalSession> session,
                 std::shared_ptr<const MutationLog> log, SolverOptions opt);

  void finish(RetrySolveReport report) HGP_EXCLUDES(mutex_);

  const std::uint64_t id_;
  const Graph* graph_;
  const Hierarchy* hierarchy_;
  SolverOptions opt_;
  /// Non-null for resolve requests (submit_resolve): the session whose
  /// state the request advances, and the mutation log it applies.  The log
  /// handle co-owns its base graph snapshot (IncrementalSolver::
  /// begin_batch), so graph_ stays valid even after the session commits
  /// past it.
  std::shared_ptr<IncrementalSession> session_;
  std::shared_ptr<const MutationLog> log_;
  SolveCheckpoint checkpoint_;

  /// Acquired after SolverService::mutex_ (submit-reject and watchdog-scan
  /// paths nest it inside the service lock); never the other way around.
  mutable Mutex mutex_;
  CondVar cv_;
  bool done_ HGP_GUARDED_BY(mutex_) = false;
  bool running_ HGP_GUARDED_BY(mutex_) = false;
  RetrySolveReport report_ HGP_GUARDED_BY(mutex_);

  /// Attempts started by the retry loop (monotone; the introspection
  /// /requests view and journal events read it lock-free).
  std::atomic<std::uint32_t> attempts_started_{0};
  /// Caller-initiated cancellation (sticky across attempts).  Atomic so
  /// the retry loop can poll it lock-free, but the cancel() store happens
  /// under mutex_ — it is the predicate of wait()'s cv loop, and the
  /// lost-wakeup rule (util/sync.hpp) applies to atomics too.
  std::atomic<bool> caller_cancelled_{false};
  /// The watchdog cancelled the *current* attempt (reset per attempt).
  std::atomic<bool> watchdog_cancelled_{false};
  /// Token observed by the current attempt, swapped fresh per attempt so a
  /// stale watchdog cancel cannot kill the retry.
  std::shared_ptr<CancelToken> attempt_token_ HGP_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point attempt_start_
      HGP_GUARDED_BY(mutex_){};
};

/// A live incremental instance inside the service: the committed
/// (graph, forest, reuse-store, placement) state that submit_resolve
/// requests advance.  Thread-safe; an internal mutex serializes resolves,
/// so concurrent batches against one session execute one at a time and
/// each re-checks staleness against whatever its predecessor committed.
class IncrementalSession {
 public:
  /// Current committed graph snapshot (advances after every successful
  /// resolve).
  std::shared_ptr<const Graph> graph() const HGP_EXCLUDES(mutex_);
  /// A fresh MutationLog over graph() that co-owns the snapshot — the only
  /// supported way to author a resolve batch.
  std::shared_ptr<MutationLog> begin_batch() const HGP_EXCLUDES(mutex_);
  /// Last committed result (the base solve, then each successful resolve).
  HgpResult last() const HGP_EXCLUDES(mutex_);
  const Hierarchy& hierarchy() const { return *hierarchy_; }

 private:
  friend class SolverService;
  friend class ServiceRequest;

  explicit IncrementalSession(std::unique_ptr<IncrementalSolver> solver);

  /// One retry-loop attempt of one resolve request; called by the worker
  /// through the solve callable.  Throws like IncrementalSolver::resolve
  /// (a stale log is terminal kInvalidInput).
  HgpResult run_attempt(const MutationLog& log, const SolverOptions& opt)
      HGP_EXCLUDES(mutex_);

  const Hierarchy* hierarchy_;
  /// Serializes resolves and guards the solver state.  Leaf with respect
  /// to the service locks (workers hold no service mutex while solving);
  /// the checkpoint's internal mutex nests inside it.
  mutable Mutex mutex_;
  std::unique_ptr<IncrementalSolver> solver_ HGP_GUARDED_BY(mutex_);
};

class SolverService {
 public:
  explicit SolverService(ServiceOptions opt = {});
  /// Drains (finishing queued + in-flight work), then joins all threads.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Submits a request.  `g` and `h` must outlive the request.  Never
  /// blocks and never throws SolveError: a rejected arrival (queue full,
  /// budget pressure, draining) returns a handle that is already terminal
  /// with status kResourceExhausted.
  std::shared_ptr<ServiceRequest> submit(const Graph& g, const Hierarchy& h,
                                         SolverOptions opt = {})
      HGP_EXCLUDES(mutex_);

  /// Opens an incremental session: builds the forest and runs the base
  /// solve synchronously on the calling thread (resolves, not the base
  /// solve, go through the queue).  `h` must outlive the session; `base`
  /// is shared into it.  Throws the base solve's SolveError on failure.
  std::shared_ptr<IncrementalSession> open_incremental(
      std::shared_ptr<const Graph> base, const Hierarchy& h,
      IncrementalOptions opt = {});

  /// Submits an incremental re-solve applying `log` (authored via
  /// session->begin_batch()) to the session.  Admission-controlled like
  /// submit() and run by the same retry/watchdog machinery; `opt` supplies
  /// the per-request knobs (timeout, retries via ServiceOptions, cancel,
  /// force_prune) — its structural fields (num_trees, epsilon, seed) are
  /// ignored, the session pins them.  A log whose base graph is no longer
  /// the session's current snapshot fails terminally with kInvalidInput
  /// when it runs (optimistic concurrency: losers of a commit race rebase
  /// and resubmit).  Throws SolveError(kInvalidInput) only for null
  /// session/log.
  std::shared_ptr<ServiceRequest> submit_resolve(
      std::shared_ptr<IncrementalSession> session,
      std::shared_ptr<const MutationLog> log, SolverOptions opt = {})
      HGP_EXCLUDES(mutex_);

  /// Stops admitting, waits until every queued and in-flight request is
  /// terminal.  Idempotent; the service stays drained afterwards.
  void drain() HGP_EXCLUDES(mutex_);

  /// Queued requests right now (in-flight excluded).
  std::size_t queue_depth() const HGP_EXCLUDES(mutex_);

  /// JSON view of the service's live state for the introspection
  /// endpoint: queue depth, in-flight requests (id, state, attempt,
  /// queue position), drain flag and global memory-budget utilization.
  /// One request object per line, so line-oriented clients (hgp_top) can
  /// parse without a JSON library.
  void write_requests_json(std::ostream& os) const HGP_EXCLUDES(mutex_);

  /// Plain-atomic counters mirrored into the obs metrics registry (the
  /// struct works under HGP_OBS=OFF; the registry copy feeds --metrics
  /// exports).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_budget = 0;
    std::uint64_t rejected_draining = 0;
    std::uint64_t completed = 0;
    std::uint64_t retries = 0;
    std::uint64_t degrades = 0;
    std::uint64_t watchdog_cancels = 0;
    std::uint64_t checkpoint_trees = 0;
    /// Checkpoints durably spilled at retry boundaries.
    std::uint64_t checkpoint_spills = 0;
    /// Spill writes that failed, plus recovered files that failed
    /// integrity checking (both degrade to in-memory operation).
    std::uint64_t checkpoint_spill_failures = 0;
    /// Requests that resumed from a spill recovered at construction.
    std::uint64_t checkpoint_recovered = 0;
    /// Incremental re-solve requests admitted (subset of admitted).
    std::uint64_t resolves = 0;

    std::uint64_t rejected() const {
      return rejected_queue_full + rejected_budget + rejected_draining;
    }
  };
  Stats stats() const;

 private:
  void worker_loop() HGP_EXCLUDES(mutex_);
  void watchdog_loop() HGP_EXCLUDES(mutex_);
  void run_request(const std::shared_ptr<ServiceRequest>& req)
      HGP_EXCLUDES(mutex_);
  std::shared_ptr<ServiceRequest> reject(std::shared_ptr<ServiceRequest> req,
                                         const char* why, int reason_index);
  /// Best-effort flight-recorder dump to opt_.flight_dump_path (no-op when
  /// the path is empty or HGP_OBS is compiled out).
  void maybe_flight_dump(const char* reason) const;
  /// Construction-time scan of spill_dir: index readable spills by key,
  /// delete unreadable ones (their bytes are gone for good).
  void recover_spills() HGP_EXCLUDES(spill_mutex_);
  /// Deterministic spill file path for a checkpoint key.
  std::string spill_path(const CheckpointKey& key) const;
  /// Best-effort durable spill of the request's checkpoint.
  void spill_checkpoint(ServiceRequest& req);
  /// Loads a recovered spill matching the request's key, if any.
  void try_recover(ServiceRequest& req, const SolverOptions& opt)
      HGP_EXCLUDES(spill_mutex_);

  ServiceOptions opt_;

  /// The service-wide lock; ServiceRequest::mutex_ nests inside it.
  mutable Mutex mutex_;
  CondVar work_cv_;   // workers wait for queue/stop
  CondVar idle_cv_;   // drain waits for quiescence
  std::deque<std::shared_ptr<ServiceRequest>> queue_ HGP_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<ServiceRequest>> inflight_
      HGP_GUARDED_BY(mutex_);
  bool draining_ HGP_GUARDED_BY(mutex_) = false;
  bool stopping_ HGP_GUARDED_BY(mutex_) = false;
  std::uint64_t next_id_ HGP_GUARDED_BY(mutex_) = 0;

  CondVar watchdog_cv_;

  /// Spills found at construction, consumed (erased) as requests with
  /// matching keys arrive.  Own mutex, a leaf: touched from run_request,
  /// which never holds mutex_.
  Mutex spill_mutex_;
  std::vector<std::pair<CheckpointKey, std::string>> recovered_spills_
      HGP_GUARDED_BY(spill_mutex_);

  struct AtomicStats {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> rejected_queue_full{0};
    std::atomic<std::uint64_t> rejected_budget{0};
    std::atomic<std::uint64_t> rejected_draining{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> degrades{0};
    std::atomic<std::uint64_t> watchdog_cancels{0};
    std::atomic<std::uint64_t> checkpoint_trees{0};
    std::atomic<std::uint64_t> checkpoint_spills{0};
    std::atomic<std::uint64_t> checkpoint_spill_failures{0};
    std::atomic<std::uint64_t> checkpoint_recovered{0};
    std::atomic<std::uint64_t> resolves{0};
  };
  AtomicStats stats_;

  // Dedicated long-lived threads, not pool tasks: workers block on the
  // queue cv for the service's lifetime and the watchdog must keep running
  // while every pool worker is wedged — parking them in a ThreadPool would
  // deadlock the very condition the watchdog exists to break.
  // hgp-lint: allow(naked-thread)
  std::vector<std::thread> workers_;
  // hgp-lint: allow(naked-thread)
  std::thread watchdog_;

  /// Live introspection endpoint (null unless enabled and HGP_OBS=ON).
  /// Declared last: members destroy in reverse order, so the endpoint
  /// stops serving before any other member tears down and no scrape can
  /// observe a half-destroyed service.
  std::unique_ptr<obs::IntrospectionServer> introspect_;
};

}  // namespace hgp
