#include "runtime/service.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <ostream>
#include <sstream>
#include <utility>

#include "graph/fingerprint.hpp"
#include "obs/event_journal.hpp"  // next_library_request_id under HGP_OBS=OFF
#include "obs/flight_recorder.hpp"
#include "obs/introspect.hpp"
#include "obs/obs.hpp"
#include "util/log.hpp"
#include "util/prng.hpp"

namespace hgp {

namespace {

/// Hooks a SolverService worker installs around the shared retry loop so
/// the loop stays oblivious to queues, watchdogs and metrics.  The plain
/// solve_with_retry leaves every hook empty.
struct RetryHooks {
  /// Called before each attempt (install a fresh cancel token, stamp the
  /// attempt start for the watchdog).
  std::function<void(SolverOptions&)> before_attempt;
  /// Classifies a caught kCancelled: true = the watchdog did it (retry),
  /// false = the caller did it (terminal).
  std::function<bool()> cancel_is_transient;
  /// Interruptible backoff sleep; returns false when the request was
  /// cancelled while waiting (→ terminal kCancelled).
  std::function<bool(double)> backoff_wait;
  std::function<void()> on_retry;
  std::function<void()> on_degrade;
  /// Called at every retry boundary — an attempt failed with the given
  /// status and the loop is about to degrade, retry, or give up.  The
  /// service spills the checkpoint here so a killed process can resume
  /// completed trees after restart.
  std::function<void(const Status&)> on_attempt_failed;
  /// Called once when an attempt unwound because the watchdog cancelled
  /// it (the service attaches a flight-recorder dump).
  std::function<void()> on_watchdog_cancel;
  /// Called with the terminal status just before a non-ok return (the
  /// service dumps the flight recorder on kInternal — a contract failure
  /// worth a post-mortem even though the process survives).
  std::function<void(const Status&)> on_terminal_failure;
};

}  // namespace

double backoff_for_retry(const RetryOptions& ro, int retry_number,
                         Rng& jitter) {
  double backoff = ro.backoff_base_ms;
  for (int i = 1; i < retry_number; ++i) {
    backoff = std::min(backoff * 2, ro.backoff_max_ms);
  }
  backoff = std::min(backoff, ro.backoff_max_ms);
  if (ro.jitter_fraction > 0 && backoff > 0) {
    backoff *=
        1.0 + jitter.next_double(-ro.jitter_fraction, ro.jitter_fraction);
  }
  return backoff > 0 ? backoff : 0;
}

namespace {

/// The loop is generic over what an "attempt" does: a full solve_hgp for
/// plain requests, a session resolve for incremental ones.  Retry,
/// degradation, backoff and journaling behave identically for both.
RetrySolveReport run_retry_loop(
    const std::function<HgpResult(const SolverOptions&)>& solve,
    SolverOptions opt, const RetryOptions& ro, const RetryHooks& hooks,
    std::uint64_t request_id) {
  RetrySolveReport rep;
  // Attempts of one logical request share a checkpoint, so trees completed
  // by a killed attempt are served, not re-solved, on the retry.
  SolveCheckpoint local_checkpoint;
  if (opt.checkpoint == nullptr) opt.checkpoint = &local_checkpoint;
  Rng jitter(ro.jitter_seed);
  std::uint32_t attempt_no = 0;
  const auto fail_terminal = [&hooks](RetrySolveReport& r) {
    if (hooks.on_terminal_failure) hooks.on_terminal_failure(r.status);
  };

  while (true) {
    ++attempt_no;
    // Thread-local id scope: journal emit sites below this frame (fallback
    // stages, checkpoint records on this thread) inherit the ids without
    // every signature carrying them.
    HGP_REQUEST_SCOPE(request_id, attempt_no);
    opt.checkpoint->set_request_context(request_id, attempt_no);
    HGP_JOURNAL(kAttemptStart, request_id, attempt_no, opt.num_trees, 0);
    Status failure;
    try {
      if (hooks.before_attempt) hooks.before_attempt(opt);
      HgpResult r = solve(opt);
      r.retries_used = rep.retries_used;
      HGP_JOURNAL(kAttemptEnd, request_id, attempt_no, 0, r.status.code);
      if (!status_is_transient(r.status.code)) {
        rep.status = r.status;
        rep.result = std::move(r);
        rep.has_result = true;
        if (!rep.status.ok()) fail_terminal(rep);
        return rep;
      }
      // The fallback chain placed the request but for a transient reason
      // (all trees crashed, resource pressure).  Keep the degraded result
      // as the floor, then let the retry/degradation logic below decide
      // whether another attempt may do better.
      failure = r.status;
      rep.result = std::move(r);
      rep.has_result = true;
    } catch (const SolveError& e) {
      failure = e.status();
      HGP_JOURNAL(kAttemptEnd, request_id, attempt_no, 0, failure.code);
      if (failure.code == StatusCode::kCancelled) {
        const bool transient =
            hooks.cancel_is_transient && hooks.cancel_is_transient();
        if (!transient) {
          rep.status = failure;
          fail_terminal(rep);
          return rep;
        }
        // Watchdog-initiated: the attempt was stuck, not the request —
        // fall through to the retry path.
        if (hooks.on_watchdog_cancel) hooks.on_watchdog_cancel();
      } else if (!status_is_transient(failure.code)) {
        rep.status = failure;
        fail_terminal(rep);
        return rep;
      }
    } catch (...) {
      failure = status_from_current_exception();  // kInternal → transient
      HGP_JOURNAL(kAttemptEnd, request_id, attempt_no, 0, failure.code);
    }

    if (hooks.on_attempt_failed) hooks.on_attempt_failed(failure);

    // Resource pressure degrades before it burns retries: each ladder step
    // strictly shrinks the footprint (forced DP pruning, then half the
    // trees), so stepping is free.
    if (failure.code == StatusCode::kResourceExhausted &&
        ro.degrade_on_resource_exhausted &&
        (!opt.force_prune || opt.num_trees > ro.min_trees)) {
      if (!opt.force_prune) {
        opt.force_prune = true;
      } else {
        opt.num_trees = std::max(ro.min_trees, opt.num_trees / 2);
      }
      ++rep.degrades;
      HGP_JOURNAL(kDegrade, request_id, attempt_no, opt.num_trees,
                  failure.code);
      if (hooks.on_degrade) hooks.on_degrade();
      continue;
    }

    if (rep.retries_used >= ro.max_retries) {
      rep.retry_budget_exhausted = true;
      rep.status = failure;
      if (rep.has_result) rep.result.retries_used = rep.retries_used;
      fail_terminal(rep);
      return rep;
    }
    ++rep.retries_used;
    HGP_JOURNAL(kRetry, request_id, attempt_no, rep.retries_used,
                failure.code);
    if (hooks.on_retry) hooks.on_retry();
    const double backoff = backoff_for_retry(ro, rep.retries_used, jitter);
    if (backoff > 0) {
      HGP_JOURNAL(kBackoff, request_id, attempt_no,
                  static_cast<std::int64_t>(backoff), 0);
      if (hooks.backoff_wait) {
        if (!hooks.backoff_wait(backoff)) {
          rep.status = Status(StatusCode::kCancelled,
                              "cancelled while waiting to retry");
          fail_terminal(rep);
          return rep;
        }
      } else {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
      }
    }
  }
}

}  // namespace

RetrySolveReport solve_with_retry(const Graph& g, const Hierarchy& h,
                                  SolverOptions opt,
                                  const RetryOptions& retry) {
  // Library callers get a process-unique journal id from a range disjoint
  // from service request ids.
  return run_retry_loop(
      [&g, &h](const SolverOptions& o) { return solve_hgp(g, h, o); },
      std::move(opt), retry, RetryHooks{}, obs::next_library_request_id());
}

// ---------------------------------------------------------------------------
// IncrementalSession

IncrementalSession::IncrementalSession(
    std::unique_ptr<IncrementalSolver> solver)
    : hierarchy_(&solver->hierarchy()), solver_(std::move(solver)) {}

std::shared_ptr<const Graph> IncrementalSession::graph() const {
  const MutexLock lock(mutex_);
  return solver_->graph();
}

std::shared_ptr<MutationLog> IncrementalSession::begin_batch() const {
  const MutexLock lock(mutex_);
  return solver_->begin_batch();
}

HgpResult IncrementalSession::last() const {
  const MutexLock lock(mutex_);
  return solver_->last();
}

HgpResult IncrementalSession::run_attempt(const MutationLog& log,
                                          const SolverOptions& opt) {
  // Serializes resolves across workers: a concurrent batch blocks here and
  // then re-checks staleness against whatever its predecessor committed.
  const MutexLock lock(mutex_);
  ResolveOptions ro;
  ro.timeout_ms = opt.timeout_ms;
  ro.cancel = opt.cancel;
  ro.checkpoint = opt.checkpoint;
  // Of the degradation ladder only the force_prune rung applies to a
  // resolve — the forest is fixed, so the tree-halving rung (num_trees) is
  // deliberately ignored.
  ro.force_prune = opt.force_prune;
  return solver_->resolve(log, ro);
}

// ---------------------------------------------------------------------------
// ServiceRequest

ServiceRequest::ServiceRequest(std::uint64_t id,
                               std::shared_ptr<IncrementalSession> session,
                               std::shared_ptr<const MutationLog> log,
                               SolverOptions opt)
    : id_(id),
      graph_(&log->base()),
      hierarchy_(&session->hierarchy()),
      opt_(std::move(opt)),
      session_(std::move(session)),
      log_(std::move(log)) {}

const RetrySolveReport& ServiceRequest::wait() {
  MutexLock lock(mutex_);
  while (!done_) cv_.wait(mutex_);
  // Safe to hand out once done_: finish() was the last writer of report_.
  return report_;
}

void ServiceRequest::cancel() {
  HGP_JOURNAL(kCallerCancel, id_,
              attempts_started_.load(std::memory_order_relaxed), 0, 0);
  std::shared_ptr<CancelToken> token;
  {
    const MutexLock lock(mutex_);
    // The store stays under mutex_ even though the flag is atomic: it is
    // the predicate of wait()'s and backoff_wait's cv loops, and only the
    // mutex closes their check-then-block window (util/sync.hpp).
    caller_cancelled_.store(true, std::memory_order_release);
    token = attempt_token_;
  }
  // Cancel the attempt and wake any backoff sleep outside the lock.
  if (token) token->request_cancel();
  cv_.notify_all();
}

bool ServiceRequest::done() const {
  const MutexLock lock(mutex_);
  return done_;
}

void ServiceRequest::finish(RetrySolveReport report) {
  {
    const MutexLock lock(mutex_);
    report_ = std::move(report);
    done_ = true;
    running_ = false;
    attempt_token_.reset();
  }
  // done_ (the waiters' predicate) was set under the lock above, so this
  // notify cannot be lost.
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// SolverService

SolverService::SolverService(ServiceOptions opt) : opt_(std::move(opt)) {
  if (opt_.workers == 0) opt_.workers = 1;
  if (opt_.watchdog_poll_ms <= 0) opt_.watchdog_poll_ms = 20;
  // Recover before any worker starts, so the index is complete by the
  // time the first request could look for its spill.
  if (!opt_.spill_dir.empty()) recover_spills();
  workers_.reserve(opt_.workers);
  for (std::size_t i = 0; i < opt_.workers; ++i) {
    // hgp-lint: allow(naked-thread) — see the member declaration.
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (opt_.stuck_after_ms > 0) {
    // hgp-lint: allow(naked-thread) — see the member declaration.
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
#if HGP_OBS_ENABLED
  if (!opt_.flight_dump_path.empty()) {
    obs::FlightRecorder::install_signal_dump(opt_.flight_dump_path +
                                             ".signal");
  }
  std::string socket_path = opt_.obs_socket;
  if (socket_path.empty()) {
    const char* env = std::getenv("HGP_OBS_SOCKET");
    if (env != nullptr) socket_path = env;
  }
  if (!socket_path.empty()) {
    try {
      obs::IntrospectOptions iopt;
      iopt.socket_path = socket_path;
      introspect_ = std::make_unique<obs::IntrospectionServer>(iopt);
      introspect_->register_handler(
          "/requests", [this](std::ostream& os) { write_requests_json(os); });
    } catch (const SolveError& e) {
      // Observability must never take the service down: a stillborn
      // endpoint (bad path, permissions) is logged and the service runs
      // without it.
      HGP_WARN("introspection endpoint disabled: " << e.status().to_string());
    }
  }
#endif  // HGP_OBS_ENABLED
}

SolverService::~SolverService() {
  drain();
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (std::thread& w : workers_) w.join();  // hgp-lint: allow(naked-thread)
  if (watchdog_.joinable()) watchdog_.join();
}

std::shared_ptr<ServiceRequest> SolverService::reject(
    std::shared_ptr<ServiceRequest> req, const char* why, int reason_index) {
  HGP_JOURNAL(kReject, req->id(), 0, reason_index, 0);
  RetrySolveReport rep;
  rep.status = Status(StatusCode::kResourceExhausted, why);
  req->finish(std::move(rep));
  HGP_COUNTER_ADD("service.admission_rejects", 1);
  return req;
}

std::shared_ptr<ServiceRequest> SolverService::submit(const Graph& g,
                                                      const Hierarchy& h,
                                                      SolverOptions opt) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  HGP_COUNTER_ADD("service.submitted", 1);
  std::shared_ptr<ServiceRequest> req;
  {
    const MutexLock lock(mutex_);
    req.reset(new ServiceRequest(next_id_++, g, h, std::move(opt)));
    HGP_JOURNAL(kSubmit, req->id(), 0, 0, 0);
    if (draining_ || stopping_) {
      stats_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
      return reject(std::move(req), "service is draining; request rejected",
                    kRejectDraining);
    }
    if (queue_.size() >= opt_.max_queue) {
      stats_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      return reject(std::move(req), "admission queue is full",
                    kRejectQueueFull);
    }
    const MemoryBudget& budget = MemoryBudget::global();
    if (budget.limit() > 0 &&
        budget.utilization() > opt_.admission_max_utilization) {
      stats_.rejected_budget.fetch_add(1, std::memory_order_relaxed);
      return reject(std::move(req),
                    "memory budget utilization above the admission threshold",
                    kRejectBudget);
    }
    queue_.push_back(req);
    stats_.admitted.fetch_add(1, std::memory_order_relaxed);
    HGP_JOURNAL(kAdmit, req->id(), 0,
                static_cast<std::int64_t>(queue_.size()), 0);
    HGP_GAUGE_SET("service.queue_depth", queue_.size());
  }
  work_cv_.notify_one();
  HGP_COUNTER_ADD("service.admitted", 1);
  return req;
}

std::shared_ptr<IncrementalSession> SolverService::open_incremental(
    std::shared_ptr<const Graph> base, const Hierarchy& h,
    IncrementalOptions opt) {
  if (opt.pool == nullptr) opt.pool = opt_.solve_pool;
  auto solver =
      std::make_unique<IncrementalSolver>(std::move(base), h, std::move(opt));
  // Private constructor — no make_shared.
  return std::shared_ptr<IncrementalSession>(
      new IncrementalSession(std::move(solver)));
}

std::shared_ptr<ServiceRequest> SolverService::submit_resolve(
    std::shared_ptr<IncrementalSession> session,
    std::shared_ptr<const MutationLog> log, SolverOptions opt) {
  if (session == nullptr || log == nullptr) {
    throw SolveError(StatusCode::kInvalidInput,
                     "submit_resolve requires a session and a mutation log");
  }
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  HGP_COUNTER_ADD("service.submitted", 1);
  std::shared_ptr<ServiceRequest> req;
  {
    const MutexLock lock(mutex_);
    req.reset(new ServiceRequest(next_id_++, std::move(session),
                                 std::move(log), std::move(opt)));
    HGP_JOURNAL(kSubmit, req->id(), 0, 0, 0);
    if (draining_ || stopping_) {
      stats_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
      return reject(std::move(req), "service is draining; request rejected",
                    kRejectDraining);
    }
    if (queue_.size() >= opt_.max_queue) {
      stats_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      return reject(std::move(req), "admission queue is full",
                    kRejectQueueFull);
    }
    const MemoryBudget& budget = MemoryBudget::global();
    if (budget.limit() > 0 &&
        budget.utilization() > opt_.admission_max_utilization) {
      stats_.rejected_budget.fetch_add(1, std::memory_order_relaxed);
      return reject(std::move(req),
                    "memory budget utilization above the admission threshold",
                    kRejectBudget);
    }
    queue_.push_back(req);
    stats_.admitted.fetch_add(1, std::memory_order_relaxed);
    stats_.resolves.fetch_add(1, std::memory_order_relaxed);
    HGP_JOURNAL(kAdmit, req->id(), 0,
                static_cast<std::int64_t>(queue_.size()), 0);
    HGP_GAUGE_SET("service.queue_depth", queue_.size());
  }
  work_cv_.notify_one();
  HGP_COUNTER_ADD("service.admitted", 1);
  HGP_COUNTER_ADD("service.resolves", 1);
  return req;
}

void SolverService::drain() {
  MutexLock lock(mutex_);
  draining_ = true;
  while (!queue_.empty() || !inflight_.empty()) idle_cv_.wait(mutex_);
}

std::size_t SolverService::queue_depth() const {
  const MutexLock lock(mutex_);
  return queue_.size();
}

SolverService::Stats SolverService::stats() const {
  Stats s;
  s.submitted = stats_.submitted.load(std::memory_order_relaxed);
  s.admitted = stats_.admitted.load(std::memory_order_relaxed);
  s.rejected_queue_full =
      stats_.rejected_queue_full.load(std::memory_order_relaxed);
  s.rejected_budget = stats_.rejected_budget.load(std::memory_order_relaxed);
  s.rejected_draining =
      stats_.rejected_draining.load(std::memory_order_relaxed);
  s.completed = stats_.completed.load(std::memory_order_relaxed);
  s.retries = stats_.retries.load(std::memory_order_relaxed);
  s.degrades = stats_.degrades.load(std::memory_order_relaxed);
  s.watchdog_cancels = stats_.watchdog_cancels.load(std::memory_order_relaxed);
  s.checkpoint_trees = stats_.checkpoint_trees.load(std::memory_order_relaxed);
  s.checkpoint_spills =
      stats_.checkpoint_spills.load(std::memory_order_relaxed);
  s.checkpoint_spill_failures =
      stats_.checkpoint_spill_failures.load(std::memory_order_relaxed);
  s.checkpoint_recovered =
      stats_.checkpoint_recovered.load(std::memory_order_relaxed);
  s.resolves = stats_.resolves.load(std::memory_order_relaxed);
  return s;
}

void SolverService::write_requests_json(std::ostream& os) const {
  const MemoryBudget& budget = MemoryBudget::global();
  const MutexLock lock(mutex_);
  os << "{\"queue_depth\":" << queue_.size()
     << ",\"inflight\":" << inflight_.size()
     << ",\"draining\":" << (draining_ ? "true" : "false")
     << ",\"budget_limit_bytes\":" << budget.limit()
     << ",\"budget_used_bytes\":" << budget.used()
     << ",\"budget_utilization\":" << budget.utilization()
     << ",\"requests\":[";
  bool first = true;
  const auto emit = [&os, &first](const ServiceRequest& req, const char* state,
                                  std::int64_t queue_position,
                                  double elapsed_ms) {
    // One object per line so line-oriented clients (hgp_top) can parse
    // each entry with string splitting instead of a JSON library.
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"id\":" << req.id() << ",\"state\":\"" << state
       << "\",\"attempt\":"
       << req.attempts_started_.load(std::memory_order_relaxed)
       << ",\"queue_position\":" << queue_position
       << ",\"elapsed_ms\":" << elapsed_ms << "}";
  };
  const auto now = std::chrono::steady_clock::now();
  for (const std::shared_ptr<ServiceRequest>& req : inflight_) {
    double elapsed_ms = 0;
    const char* state = "inflight";
    {
      // Nests inside mutex_, same order as the watchdog scan.
      const MutexLock rlock(req->mutex_);
      if (req->running_ && req->attempt_token_ != nullptr) {
        state = "running";
        elapsed_ms = std::chrono::duration<double, std::milli>(
                         now - req->attempt_start_)
                         .count();
      }
    }
    emit(*req, state, -1, elapsed_ms);
  }
  std::int64_t position = 0;
  for (const std::shared_ptr<ServiceRequest>& req : queue_) {
    emit(*req, "queued", position++, 0);
  }
  os << (first ? "]}" : "\n]}") << "\n";
}

void SolverService::maybe_flight_dump(const char* reason) const {
#if HGP_OBS_ENABLED
  if (opt_.flight_dump_path.empty()) return;
  const Status s =
      obs::FlightRecorder::global().dump_to_file(opt_.flight_dump_path,
                                                 reason);
  if (!s.ok()) {
    HGP_WARN("flight-recorder dump (" << reason
                                      << ") failed: " << s.to_string());
  }
#else
  (void)reason;
#endif
}

// ---------------------------------------------------------------------------
// Durable checkpoint spills

std::string SolverService::spill_path(const CheckpointKey& key) const {
  // One file per key, named by a mix of every key field, so a re-spill of
  // the same request overwrites its predecessor and a restarted process
  // computes the identical name.
  std::uint64_t h = key.graph_fingerprint;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(key.seed);
  mix(static_cast<std::uint64_t>(key.num_trees));
  mix(std::bit_cast<std::uint64_t>(key.epsilon));
  mix(static_cast<std::uint64_t>(key.units_override));
  std::ostringstream name;
  name << std::hex << h;
  return opt_.spill_dir + "/ckpt-" + name.str() + ".ckpt";
}

void SolverService::recover_spills() {
  std::error_code ec;
  std::filesystem::create_directories(opt_.spill_dir, ec);
  for (const auto& entry :
       std::filesystem::directory_iterator(opt_.spill_dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".ckpt") {
      continue;
    }
    const std::string path = entry.path().string();
    SolveCheckpoint probe;
    const Status s = probe.load(path);
    if (!s.ok() || !probe.bound()) {
      // A spill that fails integrity checking carries no usable state;
      // delete it so it cannot shadow a future spill under the same name.
      HGP_WARN("discarding unreadable checkpoint spill " << path << ": "
                                                         << s.to_string());
      stats_.checkpoint_spill_failures.fetch_add(1, std::memory_order_relaxed);
      HGP_COUNTER_ADD("service.checkpoint_spill_failures", 1);
      std::error_code rm;
      std::filesystem::remove(entry.path(), rm);
      continue;
    }
    const MutexLock lock(spill_mutex_);
    recovered_spills_.emplace_back(probe.key(), path);
  }
}

void SolverService::spill_checkpoint(ServiceRequest& req) {
  if (!req.checkpoint_.bound() || req.checkpoint_.size() == 0) return;
  const Status s = req.checkpoint_.save(spill_path(req.checkpoint_.key()));
  if (s.ok()) {
    stats_.checkpoint_spills.fetch_add(1, std::memory_order_relaxed);
    HGP_JOURNAL(kCheckpointSpill, req.id(),
                req.attempts_started_.load(std::memory_order_relaxed),
                static_cast<std::int64_t>(req.checkpoint_.size()), 0);
    HGP_COUNTER_ADD("service.checkpoint_spills", 1);
  } else {
    // Spilling is strictly best-effort: losing durability must never fail
    // the solve, so the failure is counted and logged and the request
    // keeps running on its in-memory checkpoint.
    stats_.checkpoint_spill_failures.fetch_add(1, std::memory_order_relaxed);
    HGP_COUNTER_ADD("service.checkpoint_spill_failures", 1);
    HGP_WARN("checkpoint spill failed: " << s.to_string());
  }
}

void SolverService::try_recover(ServiceRequest& req,
                                const SolverOptions& opt) {
  {
    const MutexLock lock(spill_mutex_);
    if (recovered_spills_.empty()) return;
  }
  // The fingerprint costs O(m); it is only paid while unconsumed spills
  // remain, and solve_hgp recomputes its own copy regardless.
  CheckpointKey key;
  key.graph_fingerprint = graph_fingerprint(*req.graph_);
  key.seed = opt.seed;
  key.num_trees = opt.num_trees;
  key.epsilon = opt.epsilon;
  key.units_override = opt.units_override;
  std::string path;
  {
    const MutexLock lock(spill_mutex_);
    const auto it = std::find_if(
        recovered_spills_.begin(), recovered_spills_.end(),
        [&key](const auto& e) { return e.first == key; });
    if (it == recovered_spills_.end()) return;
    path = it->second;
    recovered_spills_.erase(it);
  }
  const Status s = req.checkpoint_.load(path);
  if (s.ok() && req.checkpoint_.bound() && req.checkpoint_.key() == key) {
    stats_.checkpoint_recovered.fetch_add(1, std::memory_order_relaxed);
    HGP_JOURNAL(kCheckpointRecover, req.id(), 0,
                static_cast<std::int64_t>(req.checkpoint_.size()), 0);
    HGP_COUNTER_ADD("service.checkpoint_recovered", 1);
    HGP_INFO("request " << req.id() << " resumed "
                        << req.checkpoint_.size()
                        << " checkpointed trees from " << path);
  } else {
    // The file rotted between the recovery scan and now (or a key
    // collision slipped through the name hash): drop it and solve from
    // scratch.
    HGP_WARN("recovered checkpoint spill unusable: " << path << ": "
                                                     << s.to_string());
    stats_.checkpoint_spill_failures.fetch_add(1, std::memory_order_relaxed);
    HGP_COUNTER_ADD("service.checkpoint_spill_failures", 1);
    req.checkpoint_.clear();
  }
}

void SolverService::worker_loop() {
  for (;;) {
    std::shared_ptr<ServiceRequest> req;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(mutex_);
      // Even when stopping, finish what was admitted: the destructor
      // drains before it sets stopping_, so this only matters for queued
      // work racing a shutdown.
      if (queue_.empty()) return;
      req = std::move(queue_.front());
      queue_.pop_front();
      inflight_.push_back(req);
      HGP_GAUGE_SET("service.queue_depth", queue_.size());
      HGP_GAUGE_SET("service.inflight", inflight_.size());
    }
    run_request(req);
    {
      const MutexLock lock(mutex_);
      inflight_.erase(std::remove(inflight_.begin(), inflight_.end(), req),
                      inflight_.end());
      stats_.completed.fetch_add(1, std::memory_order_relaxed);
      HGP_GAUGE_SET("service.inflight", inflight_.size());
    }
    HGP_COUNTER_ADD("service.completed", 1);
    // drain()'s predicate (queue_/inflight_ empty) changed under the lock
    // above; notifying after unlock avoids waking drain into a held mutex.
    idle_cv_.notify_all();
  }
}

void SolverService::run_request(const std::shared_ptr<ServiceRequest>& req) {
  {
    const MutexLock lock(req->mutex_);
    req->running_ = true;
  }
  const bool is_resolve = req->session_ != nullptr;
  SolverOptions opt = req->opt_;
  opt.checkpoint = &req->checkpoint_;
  if (opt.pool == nullptr) opt.pool = opt_.solve_pool;
  // Spill recovery keys on the submitted graph; a resolve's checkpoint is
  // bound to the *mutated* graph only once the attempt materializes it, so
  // resolves skip the recovery probe (their warm start is the session's
  // reuse stores; the checkpoint still carries completed trees across the
  // retries of this request, and still spills on failure).
  if (!opt_.spill_dir.empty() && !is_resolve) try_recover(*req, opt);

  RetryOptions retry = opt_.retry;
  // Decorrelate jitter across requests while staying deterministic in
  // (service seed, request id).
  retry.jitter_seed = SplitMix64(retry.jitter_seed ^ (req->id() + 1)).next();

  RetryHooks hooks;
  hooks.before_attempt = [this, &req](SolverOptions& o) {
    auto token = std::make_shared<CancelToken>();
    req->attempts_started_.fetch_add(1, std::memory_order_relaxed);
    {
      const MutexLock lock(req->mutex_);
      req->watchdog_cancelled_.store(false, std::memory_order_release);
      req->attempt_token_ = token;
      req->attempt_start_ = std::chrono::steady_clock::now();
    }
    // A caller cancel that landed between attempts must still stop the
    // request: pre-cancel the fresh token so the solve unwinds at its
    // first check.
    if (req->caller_cancelled_.load(std::memory_order_acquire)) {
      token->request_cancel();
    }
    o.cancel = token.get();
  };
  hooks.cancel_is_transient = [&req] {
    return req->watchdog_cancelled_.load(std::memory_order_acquire) &&
           !req->caller_cancelled_.load(std::memory_order_acquire);
  };
  hooks.backoff_wait = [&req](double ms) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(ms);
    MutexLock lock(req->mutex_);
    while (!req->caller_cancelled_.load(std::memory_order_acquire)) {
      const double left_ms = std::chrono::duration<double, std::milli>(
                                 deadline - std::chrono::steady_clock::now())
                                 .count();
      if (left_ms <= 0) break;
      req->cv_.wait_for_ms(req->mutex_, left_ms);
    }
    return !req->caller_cancelled_.load(std::memory_order_acquire);
  };
  hooks.on_retry = [this] {
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    HGP_COUNTER_ADD("service.retries", 1);
  };
  hooks.on_degrade = [this] {
    stats_.degrades.fetch_add(1, std::memory_order_relaxed);
    HGP_COUNTER_ADD("service.degrades", 1);
  };
  if (!opt_.spill_dir.empty()) {
    hooks.on_attempt_failed = [this, &req](const Status&) {
      spill_checkpoint(*req);
    };
  }
  hooks.on_watchdog_cancel = [this] {
    maybe_flight_dump("watchdog cancelled a stuck attempt");
  };
  hooks.on_terminal_failure = [this](const Status& s) {
    // kInternal is a broken contract, not an expected outcome — worth a
    // post-mortem dump even though the process survives.
    if (s.code == StatusCode::kInternal) {
      maybe_flight_dump("request terminated with kInternal");
    }
  };

  const auto solve = [&req, is_resolve](const SolverOptions& o) -> HgpResult {
    if (is_resolve) return req->session_->run_attempt(*req->log_, o);
    return solve_hgp(*req->graph_, *req->hierarchy_, o);
  };
  RetrySolveReport rep =
      run_retry_loop(solve, std::move(opt), retry, hooks, req->id());
  if (!opt_.spill_dir.empty() && rep.status.ok() && req->checkpoint_.bound()) {
    // Terminal success: the durable state served its purpose; remove the
    // spill so the directory only holds work worth resuming.
    std::error_code ec;
    std::filesystem::remove(spill_path(req->checkpoint_.key()), ec);
  }
  if (rep.has_result && rep.result.telemetry.checkpoint_trees > 0) {
    const auto n =
        static_cast<std::uint64_t>(rep.result.telemetry.checkpoint_trees);
    stats_.checkpoint_trees.fetch_add(n, std::memory_order_relaxed);
    HGP_COUNTER_ADD("service.checkpoint_trees", n);
  }
  req->finish(std::move(rep));
}

void SolverService::watchdog_loop() {
  MutexLock lock(mutex_);
  while (!stopping_) {
    watchdog_cv_.wait_for_ms(mutex_, opt_.watchdog_poll_ms);
    if (stopping_) return;
    const auto now = std::chrono::steady_clock::now();
    for (const std::shared_ptr<ServiceRequest>& req : inflight_) {
      std::shared_ptr<CancelToken> token;
      {
        // Nests inside mutex_ — the one place the service → request lock
        // order is exercised with both held.
        const MutexLock rlock(req->mutex_);
        if (!req->running_ || req->attempt_token_ == nullptr) continue;
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(now - req->attempt_start_)
                .count();
        if (elapsed_ms < opt_.stuck_after_ms) continue;
        if (req->attempt_token_->cancelled()) continue;  // already handled
        // Flag before cancelling: the worker that observes the cancelled
        // token (acquire) must also see this store so it classifies the
        // cancel as watchdog-transient, not caller-terminal.
        req->watchdog_cancelled_.store(true, std::memory_order_release);
        token = req->attempt_token_;
      }
      // Poke the token outside req->mutex_ — no lock held across the
      // cancel propagation.
      token->request_cancel();
      stats_.watchdog_cancels.fetch_add(1, std::memory_order_relaxed);
      HGP_JOURNAL(kWatchdogCancel, req->id(),
                  req->attempts_started_.load(std::memory_order_relaxed), 0,
                  StatusCode::kCancelled);
      HGP_COUNTER_ADD("service.watchdog_cancels", 1);
    }
  }
}

}  // namespace hgp
