#include "runtime/forest_cache.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/obs.hpp"
#include "util/env.hpp"
#include "util/memory_budget.hpp"

namespace hgp {

namespace {

/// Rough retained-bytes estimate for one cached forest: per tree node, the
/// Tree adjacency (parent/children/weights) plus the two leaf↔vertex maps
/// — ~64 bytes covers all of them with headroom.  The budget needs the
/// order of magnitude, not an exact census.
std::size_t estimate_forest_bytes(const std::vector<DecompTree>& forest) {
  std::size_t nodes = 0;
  for (const DecompTree& t : forest) {
    nodes += static_cast<std::size_t>(t.tree().node_count());
  }
  return nodes * 64;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t graph_fingerprint(const Graph& g) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(g.vertex_count()));
  mix(h, static_cast<std::uint64_t>(g.edge_count()));
  for (const Edge& e : g.edges()) {
    mix(h, static_cast<std::uint64_t>(e.u));
    mix(h, static_cast<std::uint64_t>(e.v));
    mix(h, std::bit_cast<std::uint64_t>(e.weight));
  }
  mix(h, g.has_demands() ? 1 : 0);
  for (const double d : g.demands()) {
    mix(h, std::bit_cast<std::uint64_t>(d));
  }
  return h;
}

ForestCache& ForestCache::global() {
  static ForestCache cache(
      static_cast<std::size_t>(std::max(0L, env_int("HGP_FOREST_CACHE", 8))));
  return cache;
}

CachedForest ForestCache::find(const ForestCacheKey& key) {
  if (!enabled()) return nullptr;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->key == key) {
      lru_.splice(lru_.begin(), lru_, it);
      HGP_COUNTER_ADD("solver.forest_cache.hits", 1);
      return lru_.front().forest;
    }
  }
  HGP_COUNTER_ADD("solver.forest_cache.misses", 1);
  return nullptr;
}

void ForestCache::insert(const ForestCacheKey& key, CachedForest forest) {
  if (!enabled() || forest == nullptr) return;
  const std::size_t bytes = estimate_forest_bytes(*forest);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->key == key) {
      MemoryBudget::global().release(it->charged_bytes);
      if (!MemoryBudget::global().try_reserve(bytes)) {
        HGP_COUNTER_ADD("solver.forest_cache.budget_skips", 1);
        lru_.erase(it);
        return;
      }
      it->forest = std::move(forest);
      it->charged_bytes = bytes;
      lru_.splice(lru_.begin(), lru_, it);
      return;
    }
  }
  // Caching is an optimization, never worth failing a solve over: when the
  // budget cannot cover the retained forest, drop it instead of throwing.
  if (!MemoryBudget::global().try_reserve(bytes)) {
    HGP_COUNTER_ADD("solver.forest_cache.budget_skips", 1);
    return;
  }
  lru_.push_front(Entry{key, std::move(forest), bytes});
  while (lru_.size() > capacity_) {
    HGP_COUNTER_ADD("solver.forest_cache.evictions", 1);
    MemoryBudget::global().release(lru_.back().charged_bytes);
    lru_.pop_back();
  }
}

std::size_t ForestCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ForestCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : lru_) MemoryBudget::global().release(e.charged_bytes);
  lru_.clear();
}

}  // namespace hgp
