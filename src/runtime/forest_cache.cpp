#include "runtime/forest_cache.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "io/snapshot.hpp"
#include "obs/obs.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/memory_budget.hpp"

namespace hgp {

namespace {

/// Rough retained-bytes estimate for one cached forest: per tree node, the
/// Tree adjacency (parent/children/weights) plus the two leaf↔vertex maps
/// — ~64 bytes covers all of them with headroom.  The budget needs the
/// order of magnitude, not an exact census.
std::size_t estimate_forest_bytes(const std::vector<DecompTree>& forest) {
  std::size_t nodes = 0;
  for (const DecompTree& t : forest) {
    nodes += static_cast<std::size_t>(t.tree().node_count());
  }
  return nodes * 64;
}

}  // namespace

ForestCache& ForestCache::global() {
  static ForestCache cache(
      static_cast<std::size_t>(std::max(0L, env_int("HGP_FOREST_CACHE", 8))));
  return cache;
}

CachedForest ForestCache::find(const ForestCacheKey& key) {
  if (!enabled()) return nullptr;
  const MutexLock lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->key == key) {
      lru_.splice(lru_.begin(), lru_, it);
      HGP_COUNTER_ADD("solver.forest_cache.hits", 1);
      return lru_.front().forest;
    }
  }
  HGP_COUNTER_ADD("solver.forest_cache.misses", 1);
  return nullptr;
}

void ForestCache::insert(const ForestCacheKey& key, CachedForest forest) {
  if (!enabled() || forest == nullptr) return;
  const std::size_t bytes = estimate_forest_bytes(*forest);
  const MutexLock lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->key == key) {
      MemoryBudget::global().release(it->charged_bytes);
      if (!MemoryBudget::global().try_reserve(bytes)) {
        HGP_COUNTER_ADD("solver.forest_cache.budget_skips", 1);
        lru_.erase(it);
        return;
      }
      it->forest = std::move(forest);
      it->charged_bytes = bytes;
      lru_.splice(lru_.begin(), lru_, it);
      return;
    }
  }
  // Caching is an optimization, never worth failing a solve over: when the
  // budget cannot cover the retained forest, drop it instead of throwing.
  if (!MemoryBudget::global().try_reserve(bytes)) {
    HGP_COUNTER_ADD("solver.forest_cache.budget_skips", 1);
    return;
  }
  lru_.push_front(Entry{key, std::move(forest), bytes});
  while (lru_.size() > capacity_) {
    HGP_COUNTER_ADD("solver.forest_cache.evictions", 1);
    MemoryBudget::global().release(lru_.back().charged_bytes);
    lru_.pop_back();
  }
}

std::size_t ForestCache::size() const {
  const MutexLock lock(mutex_);
  return lru_.size();
}

void ForestCache::clear() {
  const MutexLock lock(mutex_);
  for (const Entry& e : lru_) MemoryBudget::global().release(e.charged_bytes);
  lru_.clear();
}

Status ForestCache::warm_load_file(const std::string& path) {
  if (!enabled()) {
    return Status(StatusCode::kResourceExhausted,
                  "forest cache disabled (HGP_FOREST_CACHE=0)");
  }
  io::ForestSnapshot snap;
  try {
    snap = io::load_forest_snapshot(path);
  } catch (const SolveError& e) {
    HGP_COUNTER_ADD("solver.forest_cache.warm_load_failures", 1);
    return e.status();
  }
  const ForestCacheKey key{snap.meta.graph_fingerprint, snap.meta.seed,
                           snap.meta.num_trees, snap.meta.cutter};
  insert(key, std::make_shared<const std::vector<DecompTree>>(
                  std::move(snap.forest)));
  HGP_COUNTER_ADD("solver.forest_cache.warm_loads", 1);
  return Status();
}

std::size_t ForestCache::warm_load_dir(const std::string& dir) {
  std::size_t loaded = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".forest") {
      continue;
    }
    const Status s = warm_load_file(entry.path().string());
    if (s.ok()) {
      ++loaded;
    } else {
      HGP_WARN("forest warm-load skipped " << entry.path().string() << ": "
                                           << s.to_string());
    }
  }
  return loaded;
}

Status ForestCache::save_entry(const ForestCacheKey& key, const Graph& g,
                               const std::string& path) {
  const CachedForest forest = find(key);
  if (forest == nullptr) {
    return Status(StatusCode::kInvalidInput,
                  "forest cache has no entry for this key");
  }
  io::ForestSnapshotMeta meta;
  meta.graph_fingerprint = key.fingerprint;
  meta.seed = key.seed;
  meta.num_trees = key.num_trees;
  meta.cutter = key.cutter;
  return io::save_forest_snapshot(meta, g, *forest, path);
}

}  // namespace hgp
