#include "runtime/forest_cache.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/obs.hpp"
#include "util/env.hpp"

namespace hgp {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t graph_fingerprint(const Graph& g) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(g.vertex_count()));
  mix(h, static_cast<std::uint64_t>(g.edge_count()));
  for (const Edge& e : g.edges()) {
    mix(h, static_cast<std::uint64_t>(e.u));
    mix(h, static_cast<std::uint64_t>(e.v));
    mix(h, std::bit_cast<std::uint64_t>(e.weight));
  }
  mix(h, g.has_demands() ? 1 : 0);
  for (const double d : g.demands()) {
    mix(h, std::bit_cast<std::uint64_t>(d));
  }
  return h;
}

ForestCache& ForestCache::global() {
  static ForestCache cache(
      static_cast<std::size_t>(std::max(0L, env_int("HGP_FOREST_CACHE", 8))));
  return cache;
}

CachedForest ForestCache::find(const ForestCacheKey& key) {
  if (!enabled()) return nullptr;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->key == key) {
      lru_.splice(lru_.begin(), lru_, it);
      HGP_COUNTER_ADD("solver.forest_cache.hits", 1);
      return lru_.front().forest;
    }
  }
  HGP_COUNTER_ADD("solver.forest_cache.misses", 1);
  return nullptr;
}

void ForestCache::insert(const ForestCacheKey& key, CachedForest forest) {
  if (!enabled() || forest == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->key == key) {
      it->forest = std::move(forest);
      lru_.splice(lru_.begin(), lru_, it);
      return;
    }
  }
  lru_.push_front(Entry{key, std::move(forest)});
  while (lru_.size() > capacity_) {
    HGP_COUNTER_ADD("solver.forest_cache.evictions", 1);
    lru_.pop_back();
  }
}

std::size_t ForestCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ForestCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
}

}  // namespace hgp
