// Checkpoint/resume for forest solves: completed per-tree results survive
// a killed attempt.
//
// A forest solve is embarrassingly resumable — each tree's mapped-back
// placement depends only on (graph, seed, tree index, rounding), all of
// which are deterministic.  When an attempt dies after some trees finished
// (watchdog cancel, injected fault, deadline on a retry), redoing those
// trees is pure waste: the service layer hands the same SolveCheckpoint to
// every retry of a request, solve_hgp records each completed tree into it,
// and a later attempt serves those trees from the checkpoint instead of
// re-running the DP.
//
// The checkpoint is bound to a CheckpointKey (graph fingerprint, seed,
// tree count, rounding parameters).  Binding with a different key clears
// the stored trees — a degraded retry that changed num_trees samples a
// different forest, so stale entries must never leak across parameter
// changes.  Entries may also be spilled to / reloaded from a file (the
// versioned binary container of src/io/snapshot.hpp), so a restarted
// process can resume a long solve's surviving trees.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "core/tree_dp.hpp"
#include "hierarchy/placement.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace hgp {

/// Everything the sampled forest and the demand rounding depend on.  Two
/// solves with equal keys attempt identical per-tree subproblems.
struct CheckpointKey {
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t seed = 0;
  int num_trees = 0;
  double epsilon = 0;
  DemandUnits units_override = 0;

  bool operator==(const CheckpointKey&) const = default;
};

/// One completed tree attempt: the mapped-back placement on G, its true
/// Eq.-1 cost, and the DP work counters (kept so resumed solves report
/// honest telemetry).
struct CheckpointedTree {
  Placement placement;
  double cost = 0;
  TreeDpStats stats;
};

/// Thread-safe store of completed tree results for ONE logical request.
/// Concurrent per-tree solves record into it; retries look trees up before
/// solving.  Share by pointer via SolverOptions::checkpoint.
class SolveCheckpoint {
 public:
  SolveCheckpoint() = default;
  SolveCheckpoint(const SolveCheckpoint&) = delete;
  SolveCheckpoint& operator=(const SolveCheckpoint&) = delete;

  /// Binds the checkpoint to `key`.  A key change (first bind included
  /// when entries were loaded from a stale spill) clears stored trees.
  void bind(const CheckpointKey& key);

  /// Copies tree `index`'s result into `*out` when present.  Only valid
  /// between bind() and the next key change.
  bool lookup(int index, CheckpointedTree* out) const;

  /// Records a completed tree (overwrites a duplicate; identical by
  /// determinism).
  void record(int index, CheckpointedTree tree);

  /// Tags the checkpoint with the journal ids of the attempt feeding it.
  /// record() runs on pool threads that have no ambient RequestScope, so
  /// the retry loop parks the ids here and record() stamps its
  /// kCheckpointRecord events from them.  Plain atomics: an event stamped
  /// with the previous attempt during the handover is harmless.
  void set_request_context(std::uint64_t request_id, std::uint32_t attempt);

  std::size_t size() const;
  void clear();

  /// True once bind() or a successful load() fixed the key.
  bool bound() const;
  /// The bound key (meaningful only when bound()).
  CheckpointKey key() const;

  /// Spills key + entries as a snapshot container (crash-safe: temp →
  /// fsync → atomic rename; see src/io/snapshot.hpp).  Returns the write
  /// status — callers treat spilling as best-effort and degrade to
  /// in-memory operation on failure.
  Status save(const std::string& path) const;

  /// Replaces the current contents with the spill file's.  On a missing,
  /// truncated or corrupt file it returns the kDataLoss status and leaves
  /// the checkpoint empty — recovery treats that as "no durable state".
  /// The loaded key is still validated by the next bind().
  Status load(const std::string& path);

 private:
  /// A leaf lock: save() serializes under it but performs file I/O after
  /// releasing; nothing else is acquired while it is held.
  mutable Mutex mutex_;
  CheckpointKey key_ HGP_GUARDED_BY(mutex_);
  bool bound_ HGP_GUARDED_BY(mutex_) = false;
  std::map<int, CheckpointedTree> trees_ HGP_GUARDED_BY(mutex_);

  /// Journal ids of the attempt currently feeding the checkpoint (see
  /// set_request_context).
  std::atomic<std::uint64_t> journal_request_id_{0};
  std::atomic<std::uint32_t> journal_attempt_{0};
};

}  // namespace hgp
