// Process-wide LRU cache of decomposition forests.
//
// Forest sampling is deterministic in (graph content, seed, tree count,
// cutter), so repeated solves over the same instance — parameter sweeps,
// epsilon ablations, serving the same workload graph — can reuse the
// sampled forest instead of re-running the cutter recursion, which
// dominates stage-1 time.  Entries are shared immutable snapshots
// (shared_ptr<const vector>), so concurrent solves can hold the same
// forest while the cache evicts it.
//
// Keying by a content fingerprint (not object identity) keeps the cache
// semantically transparent: mutating or rebuilding a graph changes the
// fingerprint and misses.  The HGP_FOREST_CACHE environment knob sets the
// capacity of the global cache (default 8 forests; 0 disables caching).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "decomp/decomp_tree.hpp"
#include "graph/graph.hpp"

namespace hgp {

/// FNV-1a content hash over vertex count, edge list (endpoints + weight
/// bits) and demands.  Stable within a process run; not a cryptographic
/// commitment.
std::uint64_t graph_fingerprint(const Graph& g);

struct ForestCacheKey {
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  int num_trees = 0;
  std::string cutter;

  bool operator==(const ForestCacheKey&) const = default;
};

using CachedForest = std::shared_ptr<const std::vector<DecompTree>>;

class ForestCache {
 public:
  /// `capacity` = max cached forests; 0 disables (find misses, insert
  /// drops).
  explicit ForestCache(std::size_t capacity) : capacity_(capacity) {}

  /// The solver's shared instance; capacity from HGP_FOREST_CACHE.
  static ForestCache& global();

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }

  /// Returns the cached forest (promoting it to most-recently-used), or
  /// nullptr on miss.  Thread-safe.
  CachedForest find(const ForestCacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// forest beyond capacity.  Thread-safe.  Retained forests are charged
  /// to MemoryBudget::global(); when the budget cannot cover the estimate
  /// the forest is simply not cached (callers hold their own snapshot, so
  /// skipping the cache is always safe).
  void insert(const ForestCacheKey& key, CachedForest forest);

  std::size_t size() const;
  void clear();

 private:
  struct Entry {
    ForestCacheKey key;
    CachedForest forest;
    /// Bytes charged to the global MemoryBudget for this entry (released
    /// on eviction/clear).  An estimate — see forest_cache.cpp.
    std::size_t charged_bytes = 0;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
};

}  // namespace hgp
