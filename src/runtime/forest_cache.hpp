// Process-wide LRU cache of decomposition forests.
//
// Forest sampling is deterministic in (graph content, seed, tree count,
// cutter), so repeated solves over the same instance — parameter sweeps,
// epsilon ablations, serving the same workload graph — can reuse the
// sampled forest instead of re-running the cutter recursion, which
// dominates stage-1 time.  Entries are shared immutable snapshots
// (shared_ptr<const vector>), so concurrent solves can hold the same
// forest while the cache evicts it.
//
// Keying by a content fingerprint (not object identity) keeps the cache
// semantically transparent: mutating or rebuilding a graph changes the
// fingerprint and misses.  The HGP_FOREST_CACHE environment knob sets the
// capacity of the global cache (default 8 forests; 0 disables caching).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "decomp/decomp_tree.hpp"
#include "graph/fingerprint.hpp"
#include "graph/graph.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace hgp {

struct ForestCacheKey {
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 0;
  int num_trees = 0;
  std::string cutter;

  bool operator==(const ForestCacheKey&) const = default;
};

using CachedForest = std::shared_ptr<const std::vector<DecompTree>>;

class ForestCache {
 public:
  /// `capacity` = max cached forests; 0 disables (find misses, insert
  /// drops).
  explicit ForestCache(std::size_t capacity) : capacity_(capacity) {}

  /// The solver's shared instance; capacity from HGP_FOREST_CACHE.
  static ForestCache& global();

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }

  /// Returns the cached forest (promoting it to most-recently-used), or
  /// nullptr on miss.  Thread-safe.
  CachedForest find(const ForestCacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// forest beyond capacity.  Thread-safe.  Retained forests are charged
  /// to MemoryBudget::global(); when the budget cannot cover the estimate
  /// the forest is simply not cached (callers hold their own snapshot, so
  /// skipping the cache is always safe).
  void insert(const ForestCacheKey& key, CachedForest forest);

  std::size_t size() const;
  void clear();

  /// Warm-loads one forest snapshot (src/io/snapshot.hpp) and inserts it
  /// under its stored key, so a restarted process serves stage-1 from
  /// disk instead of re-sampling.  Returns the load status — a corrupt or
  /// version-mismatched file is reported as kDataLoss and simply not
  /// cached; it never throws and never fails the caller's solve.
  Status warm_load_file(const std::string& path);

  /// Warm-loads every `*.forest` file in `dir` (non-recursively); corrupt
  /// files are skipped with a warning.  Returns the number of forests
  /// actually inserted.
  std::size_t warm_load_dir(const std::string& dir);

  /// Snapshots the cached forest for `key` to `path` (the warm_load
  /// counterpart).  `g` must be the graph the key fingerprints — the
  /// snapshot embeds it so warm loading needs nothing but the file.
  /// Returns kInvalidInput on a cache miss or fingerprint mismatch.
  Status save_entry(const ForestCacheKey& key, const Graph& g,
                    const std::string& path);

 private:
  struct Entry {
    ForestCacheKey key;
    CachedForest forest;
    /// Bytes charged to the global MemoryBudget for this entry (released
    /// on eviction/clear).  An estimate — see forest_cache.cpp.
    std::size_t charged_bytes = 0;
  };

  std::size_t capacity_;
  /// A leaf lock: nothing else is acquired while it is held.
  mutable Mutex mutex_;
  std::list<Entry> lru_ HGP_GUARDED_BY(mutex_);  // front = most recently used
};

}  // namespace hgp
