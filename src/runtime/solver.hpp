// End-to-end HGP solver for general graphs (Theorem 1).
//
// Pipeline: sample a forest of decomposition trees (§4 stand-in for the
// Räcke distribution), solve HGPT on every tree with the signature DP +
// Theorem-5 conversion, map each tree solution back to G through the
// leaf↔vertex bijection, evaluate the true Eq.-1 cost on G, and keep the
// best (Theorem 7's arg-min over the tree family).
//
// Resilience semantics: the arg-min only needs ONE surviving tree, so each
// per-tree solve is fault-isolated — a throw, an injected fault, or a
// deadline expiry inside tree k is recorded in HgpResult::attempts[k] and
// the remaining trees still compete.  The solve degrades (rather than
// fails) through the fallback chain hgp → multilevel → greedy when the
// deadline expires before any tree finishes or every tree fails; only
// cancellation, invalid input, or a fully exhausted chain throw, always as
// a typed SolveError.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/tree_solver.hpp"
#include "decomp/builder.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/placement.hpp"
#include "obs/telemetry.hpp"
#include "runtime/checkpoint.hpp"
#include "util/deadline.hpp"
#include "util/status.hpp"

namespace hgp {

/// What solve_hgp may do when the primary pipeline cannot produce a
/// placement (deadline expired with no surviving tree, or all trees
/// failed).
enum class FallbackPolicy {
  /// Throw the classified SolveError instead of degrading.
  kNone,
  /// Degrade through multilevel, then greedy; HgpResult::status carries
  /// the reason for the downgrade.
  kChain,
};

/// Which algorithm produced HgpResult::placement.
enum class SolveMethod { kHgp, kMultilevel, kGreedy };

const char* solve_method_name(SolveMethod method);

struct SolverOptions {
  /// Number of decomposition trees sampled (more trees = better expected
  /// embedding, linearly more work).
  int num_trees = 4;
  /// Demand rounding accuracy (Theorem 2's ε).
  double epsilon = 0.25;
  /// Direct demand-unit override (0 = derive from ε).
  DemandUnits units_override = 0;
  std::uint64_t seed = 1;
  /// Cut heuristic for tree building; nullptr = spectral + FM refinement.
  const Cutter* cutter = nullptr;
  /// Pool for solving trees concurrently; nullptr = sequential.
  ThreadPool* pool = nullptr;
  /// Wall-clock budget in milliseconds; 0 = unbounded.  When it expires
  /// the solve returns the best result obtainable so far (surviving trees,
  /// else the fallback chain) instead of running to completion.
  double timeout_ms = 0;
  /// Cooperative cancellation; nullptr = not cancellable.  Cancellation
  /// always throws SolveError(kCancelled) — a cancelling caller wants the
  /// work stopped, not a degraded answer.
  const CancelToken* cancel = nullptr;
  FallbackPolicy fallback = FallbackPolicy::kChain;
  /// Checkpoint store shared across the retries of one logical request
  /// (see runtime/checkpoint.hpp): completed tree results are recorded
  /// into it and served from it, so a killed attempt resumes instead of
  /// restarting.  solve_hgp (re)binds it to this solve's parameters;
  /// nullptr = no checkpointing.  Must outlive the call.
  SolveCheckpoint* checkpoint = nullptr;
  /// Forces DP dominance pruning ON regardless of HGP_DP_PRUNE — the
  /// memory-pressure degradation ladder sheds DP state with this.
  bool force_prune = false;
};

/// Outcome of one tree's isolated solve attempt.
struct TreeAttempt {
  StatusCode status = StatusCode::kInternal;
  /// Mapped-back Eq.-1 cost on G; +inf unless status == kOk.
  double cost = std::numeric_limits<double>::infinity();
  double elapsed_ms = 0;
  /// Error message when status != kOk.
  std::string error;
  /// This tree was served from SolverOptions::checkpoint (a previous
  /// attempt of the same request completed it) — no DP was run.
  bool from_checkpoint = false;

  bool ok() const { return status == StatusCode::kOk; }
};

struct HgpResult {
  /// Task → H-leaf assignment for G.
  Placement placement;
  /// Eq.-1 cost of `placement` on G (under the original cost multipliers).
  double cost = 0;
  /// Load / violation report at every hierarchy level.
  LoadReport loads;
  /// Which sampled tree produced the winner (-1 when a fallback did), and
  /// each tree's mapped cost (+inf for failed attempts).
  int best_tree = -1;
  std::vector<double> tree_costs;
  /// DP diagnostics of the winning tree (zeroed for fallback results).
  TreeDpStats stats;
  /// Per-tree fault-isolation report, parallel to the sampled forest.
  std::vector<TreeAttempt> attempts;
  /// kOk when the primary pipeline won; otherwise the reason the solve
  /// degraded to `method` (e.g. kDeadlineExceeded, kInfeasible, kInternal).
  Status status;
  /// Which algorithm produced `placement`.
  SolveMethod method = SolveMethod::kHgp;
  /// Retries the service layer spent before this result (0 for a direct
  /// solve_hgp call; filled by solve_with_retry / SolverService).
  int retries_used = 0;
  /// Wall-clock breakdown and aggregate DP work for this solve.  Filled
  /// even when HGP_OBS is compiled out (plain Timer reads, no registry).
  SolveTelemetry telemetry;

  /// True when the primary hgp pipeline produced the placement.
  bool degraded() const { return method != SolveMethod::kHgp; }
};

/// Requires vertex demands on `g`.  Returns a placement whenever any tree
/// survives or the fallback chain produces one; throws SolveError
/// (kInvalidInput / kCancelled / kInfeasible / kDeadlineExceeded /
/// kInternal) otherwise.
HgpResult solve_hgp(const Graph& g, const Hierarchy& h,
                    const SolverOptions& opt = {});

/// One tree of the forest, solved exactly as solve_hgp's per-tree stage
/// solves it: HGPT DP on the tree, mapped back to G through the
/// leaf↔vertex bijection, judged by the true Eq.-1 cost.  Deterministic in
/// (graph, hierarchy, tree, tree_opt) — the sharded worker runs THIS
/// function so distributed per-tree results are bit-identical to the
/// in-process path (src/runtime/shard_server.hpp).
struct ForestTreeResult {
  Placement placement;
  double cost = std::numeric_limits<double>::infinity();
  TreeDpStats stats;
};
ForestTreeResult solve_forest_tree(const Graph& g, const Hierarchy& h,
                                   const DecompTree& dt,
                                   const TreeSolverOptions& tree_opt);

}  // namespace hgp
