#include "runtime/checkpoint.hpp"

#include <cmath>
#include <span>
#include <utility>

#include "io/snapshot.hpp"
#include "obs/obs.hpp"

namespace hgp {

void SolveCheckpoint::bind(const CheckpointKey& key) {
  const MutexLock lock(mutex_);
  if (bound_ && key == key_) return;
  trees_.clear();
  key_ = key;
  bound_ = true;
}

bool SolveCheckpoint::lookup(int index, CheckpointedTree* out) const {
  const MutexLock lock(mutex_);
  const auto it = trees_.find(index);
  if (it == trees_.end()) return false;
  *out = it->second;
  return true;
}

void SolveCheckpoint::record(int index, CheckpointedTree tree) {
  // Ids come from the parked context, not RequestScope: per-tree solves
  // run on pool threads that never entered the request's scope.
  HGP_JOURNAL(kCheckpointRecord,
              journal_request_id_.load(std::memory_order_relaxed),
              journal_attempt_.load(std::memory_order_relaxed), index, 0);
  const MutexLock lock(mutex_);
  trees_[index] = std::move(tree);
}

void SolveCheckpoint::set_request_context(std::uint64_t request_id,
                                          std::uint32_t attempt) {
  journal_request_id_.store(request_id, std::memory_order_relaxed);
  journal_attempt_.store(attempt, std::memory_order_relaxed);
}

std::size_t SolveCheckpoint::size() const {
  const MutexLock lock(mutex_);
  return trees_.size();
}

void SolveCheckpoint::clear() {
  const MutexLock lock(mutex_);
  trees_.clear();
  bound_ = false;
}

bool SolveCheckpoint::bound() const {
  const MutexLock lock(mutex_);
  return bound_;
}

CheckpointKey SolveCheckpoint::key() const {
  const MutexLock lock(mutex_);
  return key_;
}

// Spill format: one snapshot container (src/io/snapshot.hpp) holding a
// checkpoint_header section (the key + entry count) followed by one
// checkpoint_tree section per completed tree.  DP stats are not spilled: a
// resumed-from-disk tree reports zero DP work, which is the truth — this
// process did none for it.

Status SolveCheckpoint::save(const std::string& path) const {
  io::SnapshotWriter w;
  {
    const MutexLock lock(mutex_);
    io::CheckpointHeaderRecord header;
    header.graph_fingerprint = key_.graph_fingerprint;
    header.seed = key_.seed;
    header.num_trees = key_.num_trees;
    header.bound = bound_ ? 1 : 0;
    header.epsilon = key_.epsilon;
    header.units_override = key_.units_override;
    header.tree_count = narrow<std::uint32_t>(trees_.size());
    io::PayloadBuilder hb;
    hb.append_pod(header);
    w.add_section(io::SectionType::kCheckpointHeader, hb);
    for (const auto& [index, tree] : trees_) {
      io::CheckpointTreeRecord rec;
      rec.index = index;
      rec.cost = tree.cost;
      rec.leaf_count = tree.placement.leaf_of.size();
      io::PayloadBuilder tb;
      tb.append_pod(rec);
      tb.append_span(std::span<const LeafId>(tree.placement.leaf_of));
      w.add_section(io::SectionType::kCheckpointTree, tb);
    }
  }
  // Serialization is done; the file I/O runs outside the lock.
  return w.write_file(path);
}

Status SolveCheckpoint::load(const std::string& path) {
  CheckpointKey key;
  bool was_bound = false;
  std::map<int, CheckpointedTree> trees;
  try {
    const auto reject = [](const std::string& what) {
      throw SolveError(StatusCode::kDataLoss, "checkpoint spill: " + what);
    };
    const io::SnapshotReader r(path);
    io::SectionCursor c;
    io::SectionView hv =
        r.expect(c.index++, io::SectionType::kCheckpointHeader);
    const auto header = hv.read_pod<io::CheckpointHeaderRecord>();
    hv.expect_exhausted();
    if (header.reserved != 0 || header.bound > 1) {
      reject("header flags corrupt");
    }
    if (header.num_trees < 0 || header.units_override < 0 ||
        !std::isfinite(header.epsilon)) {
      reject("key fields corrupt");
    }
    key.graph_fingerprint = header.graph_fingerprint;
    key.seed = header.seed;
    key.num_trees = header.num_trees;
    key.epsilon = header.epsilon;
    key.units_override = header.units_override;
    was_bound = header.bound == 1;
    for (std::uint32_t i = 0; i < header.tree_count; ++i) {
      io::SectionView tv =
          r.expect(c.index++, io::SectionType::kCheckpointTree);
      const auto rec = tv.read_pod<io::CheckpointTreeRecord>();
      if (rec.reserved != 0) reject("tree record flags corrupt");
      if (rec.index < 0 || rec.index >= header.num_trees) {
        reject("tree index out of range");
      }
      if (!std::isfinite(rec.cost)) reject("tree cost corrupt");
      CheckpointedTree tree;
      tree.cost = rec.cost;
      tree.placement.leaf_of =
          tv.read_span<LeafId>(static_cast<std::size_t>(rec.leaf_count));
      tv.expect_exhausted();
      for (const LeafId leaf : tree.placement.leaf_of) {
        if (leaf < 0) reject("placement leaf id corrupt");
      }
      if (!trees.emplace(rec.index, std::move(tree)).second) {
        reject("duplicate tree index");
      }
    }
    if (c.index != r.section_count()) reject("unexpected trailing sections");
  } catch (const SolveError& e) {
    const MutexLock lock(mutex_);
    trees_.clear();
    bound_ = false;
    return e.status();
  }
  const MutexLock lock(mutex_);
  key_ = key;
  bound_ = was_bound;
  trees_ = std::move(trees);
  return Status();
}

}  // namespace hgp
