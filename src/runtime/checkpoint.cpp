#include "runtime/checkpoint.hpp"

#include <cinttypes>
#include <fstream>
#include <sstream>
#include <utility>

namespace hgp {

void SolveCheckpoint::bind(const CheckpointKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (bound_ && key == key_) return;
  trees_.clear();
  key_ = key;
  bound_ = true;
}

bool SolveCheckpoint::lookup(int index, CheckpointedTree* out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = trees_.find(index);
  if (it == trees_.end()) return false;
  *out = it->second;
  return true;
}

void SolveCheckpoint::record(int index, CheckpointedTree tree) {
  const std::lock_guard<std::mutex> lock(mutex_);
  trees_[index] = std::move(tree);
}

std::size_t SolveCheckpoint::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trees_.size();
}

void SolveCheckpoint::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  trees_.clear();
  bound_ = false;
}

// Spill format (text, line-oriented, versioned):
//   hgp-checkpoint 1
//   key <fingerprint> <seed> <num_trees> <epsilon> <units>
//   tree <index> <cost> <n> <leaf_0> ... <leaf_{n-1}>
// DP stats are not spilled: a resumed-from-disk tree reports zero DP work,
// which is the truth — this process did none for it.

bool SolveCheckpoint::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "hgp-checkpoint 1\n";
  os << "key " << key_.graph_fingerprint << ' ' << key_.seed << ' '
     << key_.num_trees << ' ';
  // Hex float round-trips exactly; the key must compare == after reload.
  os << std::hexfloat << key_.epsilon << std::defaultfloat << ' '
     << key_.units_override << '\n';
  for (const auto& [index, tree] : trees_) {
    os << "tree " << index << ' ' << std::hexfloat << tree.cost
       << std::defaultfloat << ' ' << tree.placement.leaf_of.size();
    for (const LeafId leaf : tree.placement.leaf_of) os << ' ' << leaf;
    os << '\n';
  }
  os.flush();
  return static_cast<bool>(os);
}

bool SolveCheckpoint::load(const std::string& path) {
  std::ifstream is(path);
  const std::lock_guard<std::mutex> lock(mutex_);
  trees_.clear();
  bound_ = false;
  if (!is) return false;
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "hgp-checkpoint" || version != 1) {
    return false;
  }
  std::string tag;
  if (!(is >> tag) || tag != "key") return false;
  CheckpointKey key;
  if (!(is >> key.graph_fingerprint >> key.seed >> key.num_trees >>
        std::hexfloat >> key.epsilon >> std::defaultfloat >>
        key.units_override)) {
    return false;
  }
  std::map<int, CheckpointedTree> trees;
  while (is >> tag) {
    if (tag != "tree") return false;
    int index = 0;
    std::size_t n = 0;
    CheckpointedTree tree;
    if (!(is >> index >> std::hexfloat >> tree.cost >> std::defaultfloat >>
          n)) {
      return false;
    }
    tree.placement.leaf_of.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!(is >> tree.placement.leaf_of[i])) return false;
    }
    trees[index] = std::move(tree);
  }
  key_ = key;
  bound_ = true;
  trees_ = std::move(trees);
  return true;
}

}  // namespace hgp
