// Monotonic bump allocator (arena) for the solver's hot paths.
//
// The signature DP allocates many short-lived arrays whose lifetimes end
// together (per-node DP tables, interned signature tables): individually
// heap-allocating them churns the allocator on the hottest loop of the
// library.  An Arena hands out pointer-bumped blocks from larger chunks;
// nothing is freed until reset() or destruction, so allocation is a bump
// and a bounds check.  Chunks are retained across reset() and reused, so a
// steady-state workload (one DP solve after another on a recycled
// workspace) stops touching malloc entirely after warm-up.
//
// Thread-safety: none by design.  The DP gives each worker its own arena
// (thread-local workspaces in the parallel subtree phase); sharing an
// Arena across threads without external synchronization is a bug.
//
// Only trivially-destructible types may be allocated: the arena never runs
// destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/memory_budget.hpp"

namespace hgp {

class Arena {
 public:
  /// `chunk_bytes`: granularity of the backing allocations; oversized
  /// requests get a dedicated chunk of exactly their size.
  explicit Arena(std::size_t chunk_bytes = std::size_t{1} << 16)
      : chunk_bytes_(chunk_bytes) {
    HGP_CHECK_MSG(chunk_bytes > 0, "arena chunk size must be positive");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  // Moves transfer the budget charge with the chunks; the source must not
  // release what it no longer owns.
  Arena(Arena&& other) noexcept
      : chunk_bytes_(other.chunk_bytes_),
        chunks_(std::move(other.chunks_)),
        active_(other.active_),
        bytes_in_use_(other.bytes_in_use_),
        charged_bytes_(std::exchange(other.charged_bytes_, 0)) {}
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      release_charge();
      chunk_bytes_ = other.chunk_bytes_;
      chunks_ = std::move(other.chunks_);
      active_ = other.active_;
      bytes_in_use_ = other.bytes_in_use_;
      charged_bytes_ = std::exchange(other.charged_bytes_, 0);
    }
    return *this;
  }
  ~Arena() { release_charge(); }

  /// Uninitialized storage for `count` objects of type T.  The span stays
  /// valid until reset() or destruction.  count == 0 returns an empty span.
  template <typename T>
  std::span<T> allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (count == 0) return {};
    void* p = allocate_bytes(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Storage for `count` objects of type T, each copy-initialized from
  /// `fill`.
  template <typename T>
  std::span<T> allocate_filled(std::size_t count, const T& fill) {
    std::span<T> out = allocate<T>(count);
    for (T& x : out) x = fill;
    return out;
  }

  /// Rewinds every chunk to empty without releasing memory: previously
  /// returned spans become invalid, subsequent allocations reuse the
  /// retained chunks.
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    active_ = 0;
    bytes_in_use_ = 0;
  }

  /// Bytes handed out since construction / the last reset (excluding
  /// alignment padding).
  std::size_t bytes_in_use() const { return bytes_in_use_; }

  /// Total bytes of backing chunks currently retained.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t align_up(std::size_t value, std::size_t alignment) {
    return (value + alignment - 1) & ~(alignment - 1);
  }

  void* allocate_bytes(std::size_t bytes, std::size_t alignment) {
    // Find (or create) a chunk with room; chunks before `active_` are full
    // enough that retrying them for every allocation would be quadratic.
    while (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const std::size_t start = align_up(c.used, alignment);
      if (start + bytes <= c.size) {
        c.used = start + bytes;
        bytes_in_use_ += bytes;
        return c.data.get() + start;
      }
      ++active_;
    }
    const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
    // Chunk allocations (the only real allocations an arena performs) are
    // charged to the process memory budget: under HGP_MEM_BUDGET pressure
    // this throws SolveError(kResourceExhausted) instead of OOMing, and
    // the per-tree fault isolation / service degradation ladder absorb it.
    MemoryBudget::global().reserve_or_throw(size, "arena chunk");
    charged_bytes_ += size;
    Chunk c;
    c.data = std::make_unique<std::byte[]>(size);
    c.size = size;
    c.used = bytes;
    chunks_.push_back(std::move(c));
    active_ = chunks_.size() - 1;
    bytes_in_use_ += bytes;
    return chunks_.back().data.get();
  }

  void release_charge() {
    if (charged_bytes_ != 0) {
      MemoryBudget::global().release(charged_bytes_);
      charged_bytes_ = 0;
    }
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t bytes_in_use_ = 0;
  std::size_t charged_bytes_ = 0;
};

}  // namespace hgp
