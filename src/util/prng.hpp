// Deterministic pseudo-random number generation.
//
// Every randomized component of the library takes an explicit seed and uses
// these generators, so identical seeds produce identical results across
// machines (std::mt19937 distributions are not portable across standard
// library implementations; these are).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace hgp {

/// SplitMix64 — used for seeding and as a cheap stateless mixer.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the library-wide PRNG.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    HGP_ASSERT(bound > 0);
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    HGP_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

  /// Fork a statistically independent child generator (for per-thread or
  /// per-task streams).  Deterministic in (this generator's state, salt).
  Rng fork(std::uint64_t salt) {
    SplitMix64 sm(next() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    Rng child(0);
    child.s_[0] = sm.next();
    child.s_[1] = sm.next();
    child.s_[2] = sm.next();
    child.s_[3] = sm.next();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace hgp
