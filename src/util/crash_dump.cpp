#include "util/crash_dump.hpp"

#include <fcntl.h>
#include <signal.h>  // NOLINT(modernize-deprecated-headers) — sigaction
#include <unistd.h>

#include <atomic>
#include <cstring>

namespace hgp {

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
constexpr std::size_t kMaxPath = 1024;

// The handler reads these without synchronization beyond the atomics:
// installation happens-before any signal that should dump (callers
// install during startup/configuration, not concurrently with crashing).
char g_path[kMaxPath];
std::atomic<CrashDumpWriter> g_writer{nullptr};
std::atomic<bool> g_installed{false};

bool open_and_dump() {
  const CrashDumpWriter writer = g_writer.load(std::memory_order_acquire);
  if (writer == nullptr || g_path[0] == '\0') return false;
  // O_CLOEXEC keeps the fd out of any child the crash machinery spawns.
  const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  writer(fd);
  ::close(fd);
  return true;
}

void fatal_signal_handler(int signo) {
  open_and_dump();
  // Restore the default disposition and re-raise: the process must still
  // die the way the kernel expected it to (core dump, wait status).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void install_crash_dump(const char* path, CrashDumpWriter writer) {
  if (path == nullptr || path[0] == '\0' || writer == nullptr) {
    g_writer.store(nullptr, std::memory_order_release);
    g_path[0] = '\0';
    return;
  }
  std::strncpy(g_path, path, kMaxPath - 1);
  g_path[kMaxPath - 1] = '\0';
  g_writer.store(writer, std::memory_order_release);
  if (!g_installed.exchange(true, std::memory_order_acq_rel)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = fatal_signal_handler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESETHAND: the handler restores SIG_DFL itself, which also
    // covers a second distinct fatal signal arriving mid-dump.
    sa.sa_flags = 0;
    for (const int signo : kFatalSignals) {
      ::sigaction(signo, &sa, nullptr);
    }
  }
}

bool crash_dump_now() { return open_and_dump(); }

}  // namespace hgp
