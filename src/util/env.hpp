// Environment-variable runtime knobs (HGP_DP_PRUNE, HGP_FOREST_CACHE, …).
//
// Knobs gate optimizations for A/B validation without recompiling: the
// differential harness and CI run the same binary with a knob flipped and
// assert identical results.  Parsing is deliberately forgiving — an
// unrecognized value falls back to the default rather than failing a
// production solve over a typo'd environment.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>

namespace hgp {

/// Boolean knob: "0", "off", "false", "no" (any case) disable; "1", "on",
/// "true", "yes" enable; unset, empty, or unrecognized yields
/// `default_value`.
inline bool env_flag(const char* name, bool default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  std::string v(raw);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "0" || v == "off" || v == "false" || v == "no") return false;
  if (v == "1" || v == "on" || v == "true" || v == "yes") return true;
  return default_value;
}

/// Non-negative integer knob; unset, empty, or unparsable yields
/// `default_value`.
inline long env_int(const char* name, long default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v < 0) return default_value;
  return v;
}

}  // namespace hgp
