// Contract macros for internal correctness boundaries.
//
// HGP_PRECONDITION / HGP_POSTCONDITION / HGP_INVARIANT state the paper's
// structural guarantees (per-leaf demand ≤ 1, nice-solution shape,
// (j1,j2)-consistent merges) at the seams between core, hierarchy and
// runtime.  They differ from HGP_CHECK in two ways:
//   * they are compiled out of release builds (NDEBUG), so hot paths pay
//     nothing in production — override with -DHGP_CONTRACTS=0|1 (the
//     HGP_CONTRACTS CMake option);
//   * a failure throws SolveError{kInternal}, not a bare CheckError: a
//     violated contract is by definition a bug in this library, never the
//     caller's fault, and the runtime's status taxonomy classifies it so.
//
// Use HGP_CHECK for caller-facing input validation (always on), contracts
// for invariants that should be unviolable once inputs are validated.
#pragma once

#include <sstream>

#include "util/status.hpp"

#ifndef HGP_CONTRACTS
#ifdef NDEBUG
#define HGP_CONTRACTS 0
#else
#define HGP_CONTRACTS 1
#endif
#endif

namespace hgp {

/// True when contract macros are active in this translation unit's build.
constexpr bool contracts_enabled() { return HGP_CONTRACTS != 0; }

namespace detail {

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw SolveError(StatusCode::kInternal, os.str());
}

}  // namespace detail
}  // namespace hgp

#if HGP_CONTRACTS

#define HGP_CONTRACT_IMPL_(kind, expr, msg)                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream hgp_contract_os_;                             \
      hgp_contract_os_ << msg;                                         \
      ::hgp::detail::contract_failed(kind, #expr, __FILE__, __LINE__,  \
                                     hgp_contract_os_.str());          \
    }                                                                  \
  } while (0)

#else

// sizeof keeps the expression type-checked but unevaluated, so contract
// text cannot rot in release builds.
#define HGP_CONTRACT_IMPL_(kind, expr, msg) \
  ((void)sizeof((expr) ? 1 : 0))

#endif

#define HGP_PRECONDITION(expr) HGP_CONTRACT_IMPL_("precondition", expr, "")
#define HGP_PRECONDITION_MSG(expr, msg) \
  HGP_CONTRACT_IMPL_("precondition", expr, msg)

#define HGP_POSTCONDITION(expr) HGP_CONTRACT_IMPL_("postcondition", expr, "")
#define HGP_POSTCONDITION_MSG(expr, msg) \
  HGP_CONTRACT_IMPL_("postcondition", expr, msg)

#define HGP_INVARIANT(expr) HGP_CONTRACT_IMPL_("invariant", expr, "")
#define HGP_INVARIANT_MSG(expr, msg) \
  HGP_CONTRACT_IMPL_("invariant", expr, msg)
