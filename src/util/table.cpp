#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace hgp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HGP_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& value) {
  HGP_CHECK_MSG(!rows_.empty(), "call row() before add()");
  rows_.back().push_back(Cell{value, false});
  return *this;
}

Table& Table::add(const char* value) { return add(std::string(value)); }

Table& Table::add(std::int64_t value) {
  HGP_CHECK_MSG(!rows_.empty(), "call row() before add()");
  rows_.back().push_back(Cell{std::to_string(value), true});
  return *this;
}

Table& Table::add(std::uint64_t value) {
  HGP_CHECK_MSG(!rows_.empty(), "call row() before add()");
  rows_.back().push_back(Cell{std::to_string(value), true});
  return *this;
}

Table& Table::add(double value, int precision) {
  HGP_CHECK_MSG(!rows_.empty(), "call row() before add()");
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  rows_.back().push_back(Cell{os.str(), true});
  return *this;
}

std::string Table::to_string() const {
  const std::size_t cols = headers_.size();
  std::vector<std::size_t> width(cols);
  for (std::size_t c = 0; c < cols; ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < cols; ++c) {
      width[c] = std::max(width[c], r[c].text.size());
    }
  }

  std::ostringstream os;
  auto pad = [&](const std::string& s, std::size_t w, bool right) {
    if (right) os << std::string(w - s.size(), ' ') << s;
    else os << s << std::string(w - s.size(), ' ');
  };

  for (std::size_t c = 0; c < cols; ++c) {
    if (c) os << "  ";
    pad(headers_[c], width[c], false);
  }
  os << '\n';
  std::size_t total = 0;
  for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c) os << "  ";
      const Cell cell = c < r.size() ? r[c] : Cell{};
      pad(cell.text, width[c], cell.numeric);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace hgp
