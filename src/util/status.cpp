#include "util/status.hpp"

namespace hgp {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidInput:
      return "INVALID_INPUT";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

bool status_is_transient(StatusCode code) {
  return code == StatusCode::kInternal ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

std::string Status::to_string() const {
  std::string out = status_code_name(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

Status status_from_current_exception() {
  try {
    throw;
  } catch (const SolveError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  } catch (...) {
    return Status(StatusCode::kInternal, "unknown non-standard exception");
  }
}

}  // namespace hgp
