#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hgp {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[hgp %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace detail
}  // namespace hgp
