#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "util/sync.hpp"
#include "util/thread_id.hpp"

namespace hgp {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
/// A leaf lock serializing line emission only — log_emit never calls out
/// while holding it.
Mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF  ";
  }
  return "?????";
}

/// "2026-08-06T12:34:56.789Z" into `out` (UTC, millisecond resolution).
void format_iso8601(char* out, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char base[24];
  std::strftime(base, sizeof base, "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(out, size, "%s.%03dZ", base, static_cast<int>(ms));
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  char stamp[32];
  format_iso8601(stamp, sizeof stamp);
  const MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[%s hgp %s t%u] %s\n", stamp, level_tag(level),
               this_thread_id(), message.c_str());
}

}  // namespace detail
}  // namespace hgp
