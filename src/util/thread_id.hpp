// Dense process-unique thread ids for logs and trace events.
//
// std::this_thread::get_id() is opaque and hashes to 64-bit noise; logs and
// Chrome trace lanes want small stable integers instead.  Ids are assigned
// 0, 1, 2, … in first-use order and never reused within a process.
//
// Concurrency: one relaxed fetch_add per thread's first call, then a
// thread_local read — lock-free, outside the capability layer of
// util/sync.hpp.  The trace buffer keys its lock shards by this id.
#pragma once

#include <atomic>
#include <cstdint>

namespace hgp {

/// Dense id of the calling thread (0 for the first thread that asks).
inline std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace hgp
