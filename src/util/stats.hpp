// Streaming summary statistics (Welford) and small-sample percentiles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace hgp {

/// Online mean/variance/min/max accumulator (Welford's algorithm; numerically
/// stable, single pass).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact percentiles.  Intended for experiment
/// harnesses where sample counts are small.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }

  double mean() const {
    if (values_.empty()) return 0.0;
    double s = 0.0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  /// Exact percentile by linear interpolation; q in [0,1].
  double percentile(double q) const {
    HGP_CHECK(!values_.empty());
    HGP_CHECK(q >= 0.0 && q <= 1.0);
    sort();
    const double pos = q * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double median() const { return percentile(0.5); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(1.0); }

  const std::vector<double>& values() const { return values_; }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace hgp
