// Lightweight runtime checking utilities.
//
// HGP_CHECK is an always-on invariant check (library boundary contracts,
// input validation).  HGP_ASSERT compiles away in NDEBUG builds and is used
// for internal invariants on hot paths.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace hgp {

/// Thrown when an HGP_CHECK fails.  Carries the failing expression text and
/// an optional user message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "HGP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail

#define HGP_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::hgp::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define HGP_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream hgp_check_os_;                                \
      hgp_check_os_ << msg;                                            \
      ::hgp::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                  hgp_check_os_.str());                \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define HGP_ASSERT(expr) ((void)0)
#else
#define HGP_ASSERT(expr) HGP_CHECK(expr)
#endif

/// Checked narrowing conversion (C++ Core Guidelines ES.46 / gsl::narrow).
/// Throws CheckError if the value does not round-trip.
template <typename To, typename From>
constexpr To narrow(From value) {
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      (std::is_signed_v<From> != std::is_signed_v<To> &&
       ((value < From{}) != (result < To{})))) {
    throw CheckError("hgp::narrow: value does not fit target type");
  }
  return result;
}

}  // namespace hgp
