// Aligned plain-text table printer for experiment output.
//
// Benchmarks print paper-style tables with this; a Table collects rows of
// heterogeneous cells (string / integer / floating-point) and renders them
// with right-aligned numeric columns.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hgp {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& value);
  Table& add(const char* value);
  Table& add(std::int64_t value);
  Table& add(std::uint64_t value);
  Table& add(int value) { return add(static_cast<std::int64_t>(value)); }
  /// Floating point cell with fixed precision (default 3 digits).
  Table& add(double value, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a header rule and aligned columns.
  std::string to_string() const;
  /// Renders to `os`.  Callers pick the sink explicitly — library code
  /// never writes to stdout on its own (lint rule no-stdout).
  void print(std::ostream& os) const;

 private:
  struct Cell {
    std::string text;
    bool numeric = false;
  };

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace hgp
