// Deterministic fault injection for resilience tests.
//
// Production code marks interesting sites with
//     FaultInjector::instance().on_site("solve_one_tree", tree_index);
// which is a single relaxed atomic load when nothing is armed — cheap
// enough to compile in always.  Tests arm faults per (site, index) to make
// exactly tree k throw, stall past a deadline, or report infeasibility,
// then rely on FaultScope to disarm on scope exit.
#pragma once

#include <atomic>
#include <string>

namespace hgp {

class FaultInjector {
 public:
  enum class Action {
    kNone = 0,
    /// Throw a bare CheckError ("injected fault …") — exercises the
    /// boundary that classifies unexpected exceptions as kInternal.
    kThrow,
    /// Sleep for `stall_ms` — lets tests force a deadline to fire at a
    /// chosen site without real heavy work.
    kStall,
    /// Throw SolveError(kInfeasible) — a tree that cannot fit.
    kInfeasible,
    // I/O-class faults.  These are POLLED (poll_io), not thrown: the io
    // layer asks whether a fault fires at its site and then implements the
    // failure itself — truncating the write, skipping the fsync, tearing
    // the rename — so the degradation path under test is the real one.
    /// Persist fewer bytes than asked, then report failure (torn write).
    kIoShortWrite,
    /// The device is full: the write fails before any byte lands.
    kIoEnospc,
    /// Data written but fsync fails — durability, not content, is lost.
    kIoFsyncFail,
    /// The atomic rename is interrupted, leaving a corrupt final file.
    kIoTornRename,
    // Network-class faults (src/net/).  Polled like the I/O faults: the
    // transport asks whether a fault fires and implements the failure
    // itself, so the peer sees exactly what a real fault produces.
    /// A frame byte is corrupted before it leaves — the peer's CRC check
    /// must reject it (torn frame on the wire).
    kNetTornFrame,
    /// connect() fails as if nobody is listening (kUnavailable to the
    /// caller).
    kNetConnectRefused,
    /// The polling process SIGKILLs itself at the site — a shard crash
    /// mid-solve.  Only tools/hgp_shardd implements it; library sites
    /// ignore it like the other polled actions.
    kKillProcess,
  };

  struct Fault {
    Action action = Action::kNone;
    double stall_ms = 0;
    /// Probability the fault fires when its site is hit (1 = always).
    /// Values below 1 make the armed entry a *seeded probabilistic
    /// schedule*: each hit draws from a per-entry SplitMix64 stream, so a
    /// chaos run with the same seed replays the identical fault sequence.
    double probability = 1.0;
    /// Seed of the per-entry draw stream (used when probability < 1).
    std::uint64_t seed = 1;
  };

  static FaultInjector& instance();

  /// Arms `fault` at `site` for occurrence `index`; index kEveryIndex
  /// matches all occurrences.  Re-arming a (site, index) overwrites.
  void arm(const std::string& site, int index, Fault fault);

  /// Removes the fault armed at exactly (site, index), if any.  Scoped
  /// arming must disarm only its own key: a blanket clear from one scope
  /// would race another scope's still-armed fault away (the original
  /// disarm-all-on-exit design did exactly that under concurrent tests).
  void disarm(const std::string& site, int index);

  /// Removes every armed fault (back to the free no-op fast path).
  void disarm_all();

  /// The production hook: no-op unless something is armed.
  void on_site(const char* site, int index);

  /// The io layer's hook: returns the I/O-class action that fires at this
  /// site (kNone when nothing is armed or the draw skips).  A non-I/O
  /// action armed at a polled site keeps its throwing/stalling behaviour,
  /// so a site can be killed either way.  Same fast path as on_site.
  Action poll_io(const char* site, int index);

  static constexpr int kEveryIndex = -1;

 private:
  FaultInjector() = default;
  void fire(const char* site, int index);
  /// Looks up + probability-draws the armed fault; kNone action = no fire.
  Fault draw(const char* site, int index);

  std::atomic<int> armed_count_{0};
};

/// RAII arming for tests: arms on construction, disarms its own (site,
/// index) on destruction.  Scopes may nest and may run on concurrent test
/// threads; each removes only the fault it armed.
class FaultScope {
 public:
  FaultScope(std::string site, int index, FaultInjector::Fault fault)
      : site_(std::move(site)), index_(index) {
    FaultInjector::instance().arm(site_, index_, fault);
  }
  ~FaultScope() { FaultInjector::instance().disarm(site_, index_); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::string site_;
  int index_;
};

}  // namespace hgp
