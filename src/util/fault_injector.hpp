// Deterministic fault injection for resilience tests.
//
// Production code marks interesting sites with
//     FaultInjector::instance().on_site("solve_one_tree", tree_index);
// which is a single relaxed atomic load when nothing is armed — cheap
// enough to compile in always.  Tests arm faults per (site, index) to make
// exactly tree k throw, stall past a deadline, or report infeasibility,
// then rely on FaultScope to disarm on scope exit.
#pragma once

#include <atomic>
#include <string>

namespace hgp {

class FaultInjector {
 public:
  enum class Action {
    kNone = 0,
    /// Throw a bare CheckError ("injected fault …") — exercises the
    /// boundary that classifies unexpected exceptions as kInternal.
    kThrow,
    /// Sleep for `stall_ms` — lets tests force a deadline to fire at a
    /// chosen site without real heavy work.
    kStall,
    /// Throw SolveError(kInfeasible) — a tree that cannot fit.
    kInfeasible,
  };

  struct Fault {
    Action action = Action::kNone;
    double stall_ms = 0;
  };

  static FaultInjector& instance();

  /// Arms `fault` at `site` for occurrence `index`; index kEveryIndex
  /// matches all occurrences.  Re-arming a (site, index) overwrites.
  void arm(const std::string& site, int index, Fault fault);

  /// Removes every armed fault (back to the free no-op fast path).
  void disarm_all();

  /// The production hook: no-op unless something is armed.
  void on_site(const char* site, int index);

  static constexpr int kEveryIndex = -1;

 private:
  FaultInjector() = default;
  void fire(const char* site, int index);

  std::atomic<int> armed_count_{0};
};

/// RAII arming for tests: arms on construction, disarms *all* faults on
/// destruction (tests own the injector exclusively).
class FaultScope {
 public:
  FaultScope(const std::string& site, int index, FaultInjector::Fault fault) {
    FaultInjector::instance().arm(site, index, fault);
  }
  ~FaultScope() { FaultInjector::instance().disarm_all(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace hgp
