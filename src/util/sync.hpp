// Annotated synchronization primitives: the library's only mutexes.
//
// Every lock in src/ goes through these wrappers instead of <mutex> /
// <shared_mutex> / <condition_variable> directly (lint rule `raw-mutex`
// bans the std types everywhere else).  The wrappers carry Clang Thread
// Safety Analysis capability attributes, so the locking discipline that
// docs/STATIC_ANALYSIS.md used to state in prose — which mutex guards
// which fields, which helpers require a lock held — is machine-checked at
// compile time under `-DHGP_THREAD_SAFETY=ON` (Clang only; the macros
// compile to nothing on every other compiler, and the wrappers are
// zero-overhead shims over the std types either way).
//
// Usage pattern:
//
//   class Queue {
//    public:
//     void push(int v) {
//       { const MutexLock lock(mutex_); items_.push_back(v); }
//       cv_.notify_one();   // predicate was updated under the lock above
//     }
//     int pop() {
//       MutexLock lock(mutex_);
//       while (items_.empty()) cv_.wait(mutex_);
//       ...
//     }
//    private:
//     Mutex mutex_;
//     CondVar cv_;
//     std::vector<int> items_ HGP_GUARDED_BY(mutex_);
//   };
//
// CondVar deliberately has no predicate-lambda overloads: the analysis
// checks a lambda body as a separate function that does not know the
// caller holds the mutex, so `cv.wait(lock, [&]{ return guarded_; })`
// would warn on every guarded read inside the predicate.  Write the
// standard `while (!predicate) cv.wait(mutex);` loop instead — the loop
// body is analyzed inline, where the capability is visibly held.
//
// Lost-wakeup discipline (the hazard class TSan cannot see): a thread
// that changes a condition-variable predicate MUST do so while holding
// the mutex the waiter holds — the waiter's check-then-block window is
// only closed by that mutex.  The notify itself may (and should) happen
// after unlock; it is the predicate store that must be inside.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Capability-attribute macros (Clang Thread Safety Analysis).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html — these
// follow the canonical mutex.h spelling, HGP-prefixed.  All of them expand
// to nothing on non-Clang compilers.

#if defined(__clang__)
#define HGP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define HGP_THREAD_ANNOTATION__(x)
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define HGP_CAPABILITY(x) HGP_THREAD_ANNOTATION__(capability(x))
/// Marks an RAII class that acquires in its ctor and releases in its dtor.
#define HGP_SCOPED_CAPABILITY HGP_THREAD_ANNOTATION__(scoped_lockable)
/// Field may only be touched while `x` is held (exclusively for writes,
/// at least shared for reads).
#define HGP_GUARDED_BY(x) HGP_THREAD_ANNOTATION__(guarded_by(x))
/// Pointee (not the pointer) is protected by `x`.
#define HGP_PT_GUARDED_BY(x) HGP_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Static lock-ordering declarations between capabilities.
#define HGP_ACQUIRED_BEFORE(...) \
  HGP_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define HGP_ACQUIRED_AFTER(...) \
  HGP_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
/// Caller must hold the capability (exclusively / at least shared).
#define HGP_REQUIRES(...) \
  HGP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define HGP_REQUIRES_SHARED(...) \
  HGP_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the capability and holds it on return.
#define HGP_ACQUIRE(...) \
  HGP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define HGP_ACQUIRE_SHARED(...) \
  HGP_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define HGP_RELEASE(...) \
  HGP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define HGP_RELEASE_SHARED(...) \
  HGP_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `true`.
#define HGP_TRY_ACQUIRE(...) \
  HGP_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define HGP_TRY_ACQUIRE_SHARED(...) \
  HGP_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (the function acquires it itself,
/// or waits on it — either way, holding it on entry deadlocks).
#define HGP_EXCLUDES(...) HGP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (no acquire/release).
#define HGP_ASSERT_CAPABILITY(x) HGP_THREAD_ANNOTATION__(assert_capability(x))
/// Function returns a reference to the named capability.
#define HGP_RETURN_CAPABILITY(x) HGP_THREAD_ANNOTATION__(lock_returned(x))
/// Escape hatch — document WHY at every use.
#define HGP_NO_THREAD_SAFETY_ANALYSIS \
  HGP_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace hgp {

class CondVar;

/// std::mutex carrying the "mutex" capability.  Prefer MutexLock over
/// calling lock()/unlock() manually — manual pairs are exactly the
/// exception-unsafety the RAII types exist to prevent.
class HGP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HGP_ACQUIRE() { mu_.lock(); }
  void unlock() HGP_RELEASE() { mu_.unlock(); }
  bool try_lock() HGP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex carrying the capability: exclusive for writers,
/// shared for readers.  Pair with WriterLock / ReaderLock.
class HGP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() HGP_ACQUIRE() { mu_.lock(); }
  void unlock() HGP_RELEASE() { mu_.unlock(); }
  bool try_lock() HGP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() HGP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() HGP_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() HGP_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (the project's std::lock_guard).
class HGP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HGP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HGP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock on a SharedMutex (writer side).
class HGP_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) HGP_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() HGP_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock on a SharedMutex (reader side).
class HGP_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) HGP_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() HGP_RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to hgp::Mutex.  Waits take the Mutex (not the
/// scoped lock) so the analysis can check `HGP_REQUIRES(mu)` against the
/// capability the enclosing MutexLock holds.  Implemented on the native
/// std::condition_variable via the adopt/release idiom — no
/// condition_variable_any overhead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// Always use inside a `while (!predicate)` loop — see the header
  /// comment for why there is no predicate overload.
  void wait(Mutex& mu) HGP_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  /// wait() with a timeout; returns false when the wait timed out without
  /// a notification.  The mutex is held again on return either way — the
  /// caller's predicate loop decides what a timeout means.
  bool wait_for_ms(Mutex& mu, double ms) HGP_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(adopted, std::chrono::duration<double, std::milli>(ms));
    adopted.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hgp
