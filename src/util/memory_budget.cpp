#include "util/memory_budget.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "util/status.hpp"

namespace hgp {

void MemoryBudget::reserve_or_throw(std::size_t bytes, const char* what) {
  if (try_reserve(bytes)) return;
  throw SolveError(
      StatusCode::kResourceExhausted,
      std::string(what) + " needs " + std::to_string(bytes) +
          " bytes but the memory budget is exhausted (used " +
          std::to_string(used()) + " of " + std::to_string(limit()) + ")");
}

std::size_t parse_byte_size(const char* text, std::size_t default_bytes) {
  if (text == nullptr || *text == '\0') return default_bytes;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text) return default_bytes;
  std::size_t multiplier = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k':
        multiplier = std::size_t{1} << 10;
        break;
      case 'm':
        multiplier = std::size_t{1} << 20;
        break;
      case 'g':
        multiplier = std::size_t{1} << 30;
        break;
      default:
        return default_bytes;
    }
    if (end[1] != '\0') return default_bytes;
  }
  return static_cast<std::size_t>(v) * multiplier;
}

MemoryBudget& MemoryBudget::global() {
  static MemoryBudget budget(
      parse_byte_size(std::getenv("HGP_MEM_BUDGET"), 0));
  return budget;
}

}  // namespace hgp
