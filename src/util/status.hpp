// Structured status taxonomy for the solver runtime.
//
// Every failure that can cross an API boundary is classified into a
// StatusCode and carried by SolveError.  SolveError derives from CheckError
// so existing `catch (const CheckError&)` sites keep working; new code
// should catch SolveError and dispatch on code().  Bare CheckErrors that
// escape from library internals are classified as kInternal at API
// boundaries (see status_from_current_exception).
#pragma once

#include <exception>
#include <string>

#include "util/check.hpp"

namespace hgp {

enum class StatusCode {
  kOk = 0,
  /// Caller handed us something malformed (no demands, num_trees < 1, …).
  kInvalidInput,
  /// The instance cannot fit the hierarchy (even after rounding).
  kInfeasible,
  /// A Deadline expired before the stage completed.
  kDeadlineExceeded,
  /// A CancelToken was triggered by the caller.
  kCancelled,
  /// An invariant failed or an unexpected exception escaped — a bug or an
  /// unclassified error, never the caller's fault.
  kInternal,
  /// A resource limit (memory budget, admission queue) rejected the work
  /// before it could OOM or overload the process.  Retryable: pressure may
  /// subside, and the service layer degrades requests under it.
  kResourceExhausted,
  /// Durable state failed integrity checking: a snapshot/spill file is
  /// missing, truncated, bit-rotted, or structurally invalid (see
  /// src/io/snapshot.hpp).  Permanent for that file — re-reading corrupt
  /// bytes cannot help — but never fatal to a solve: recovery paths treat
  /// it as "no durable state" and recompute.
  kDataLoss,
  /// A peer is unreachable: connect refused, connection reset, or a clean
  /// close where more frames were expected (see src/net/).  Transient —
  /// the peer may come back, and the coordinator reassigns its work to
  /// survivors or retries after a backoff.  Distinct from kDataLoss, which
  /// says the *bytes* are wrong; kUnavailable says the *peer* is gone.
  kUnavailable,
};

/// Stable upper-snake name ("DEADLINE_EXCEEDED"); never nullptr.
const char* status_code_name(StatusCode code);

/// True for failures worth retrying after a backoff: transient resource
/// pressure (kResourceExhausted) and unclassified internal errors
/// (kInternal — crashes of a single attempt, injected faults).  Input
/// errors, infeasibility, deadlines and caller cancellation are permanent
/// for the request that produced them.
bool status_is_transient(StatusCode code);

/// A status code plus a human-readable message.  Default-constructed = OK.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  Status() = default;
  Status(StatusCode c, std::string msg) : code(c), message(std::move(msg)) {}

  bool ok() const { return code == StatusCode::kOk; }

  /// "DEADLINE_EXCEEDED: tree DP passed its deadline" (or just the name).
  std::string to_string() const;
};

/// The exception type of the resilient solve path.  Derives from CheckError
/// (and hence std::logic_error) for source compatibility with pre-taxonomy
/// call sites.
class SolveError : public CheckError {
 public:
  SolveError(StatusCode code, const std::string& message)
      : CheckError(Status(code, message).to_string()),
        status_(code, message) {}
  explicit SolveError(Status status)
      : CheckError(status.to_string()), status_(std::move(status)) {}

  StatusCode code() const { return status_.code; }
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Classifies the in-flight exception (call from inside a catch block):
/// SolveError keeps its status; CheckError and other std::exceptions map to
/// kInternal; non-std exceptions map to kInternal with a generic message.
Status status_from_current_exception();

}  // namespace hgp
