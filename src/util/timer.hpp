// Monotonic wall-clock timers for benchmarks and experiment harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace hgp {

/// A started-on-construction stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hgp
