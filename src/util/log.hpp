// Minimal leveled logging to stderr.
//
// The library itself logs nothing by default (level = Warn); benchmarks and
// examples raise the level for progress reporting.  Each emitted line
// carries an ISO-8601 UTC timestamp and the dense id of the emitting
// thread, e.g. `[2026-08-06T12:34:56.789Z hgp WARN t3] message`.
#pragma once

#include <sstream>
#include <string>

namespace hgp {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

// Off is a threshold, not a message level: HGP_LOG(Off, ...) is always
// dropped (without the guard it would compare >= any threshold and emit).
#define HGP_LOG(level, expr)                                  \
  do {                                                        \
    if (static_cast<int>(level) <                             \
            static_cast<int>(::hgp::LogLevel::Off) &&         \
        static_cast<int>(level) >=                            \
            static_cast<int>(::hgp::log_level())) {           \
      std::ostringstream hgp_log_os_;                         \
      hgp_log_os_ << expr;                                    \
      ::hgp::detail::log_emit(level, hgp_log_os_.str());      \
    }                                                         \
  } while (0)

#define HGP_DEBUG(expr) HGP_LOG(::hgp::LogLevel::Debug, expr)
#define HGP_INFO(expr) HGP_LOG(::hgp::LogLevel::Info, expr)
#define HGP_WARN(expr) HGP_LOG(::hgp::LogLevel::Warn, expr)
#define HGP_ERROR(expr) HGP_LOG(::hgp::LogLevel::Error, expr)

}  // namespace hgp
