// CSV output for post-processing experiment results (e.g. plotting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hgp {

/// Accumulates rows and writes RFC-4180-style CSV (quoting only when needed).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  CsvWriter& row();
  CsvWriter& add(const std::string& value);
  CsvWriter& add(std::int64_t value);
  CsvWriter& add(double value);

  std::string to_string() const;
  /// Writes to a file; throws CheckError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& field);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hgp
