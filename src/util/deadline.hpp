// Cooperative deadlines and cancellation for long-running solver stages.
//
// The solver never preempts work: stages poll an ExecContext at natural
// checkpoints (per decomposition frame, every few thousand DP merges, per
// parallel_for item) and unwind with a typed SolveError when the budget is
// gone.  Deadline reads the clock, so hot loops go through PeriodicCheck,
// which amortizes the clock read over a stride of iterations while still
// noticing cancellation on every tick.
//
// Concurrency: nothing here blocks or locks — Deadline is immutable after
// construction and CancelToken is a single release/acquire atomic — so
// this header sits outside the capability layer of util/sync.hpp.  One
// caveat the analysis cannot see: when a CancelToken's flag is the
// predicate of a condition-variable wait (the service's backoff sleep),
// the *store* must still happen under the waiter's mutex; see the
// lost-wakeup rule in util/sync.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "util/status.hpp"

namespace hgp {

/// A point on the steady clock after which work should stop.  The default
/// instance never expires.
///
/// Thread-safety: a Deadline is immutable after construction, so any
/// number of threads may call the const observers concurrently (the TSan
/// stress test shares one across a pool); re-assigning a shared Deadline
/// while workers poll it is the caller's race to avoid.
class Deadline {
 public:
  Deadline() = default;

  static Deadline never() { return Deadline(); }

  /// Expires `ms` milliseconds from now (ms <= 0 expires immediately).
  /// Arithmetic saturates instead of overflowing: a budget too large for
  /// the clock's representation (e.g. --timeout-ms near int64 max, or a
  /// non-finite value) pins the expiry at Clock::time_point::max(), which
  /// behaves like "never expires in this process's lifetime".
  static Deadline after_ms(double ms) {
    Deadline d;
    d.armed_ = true;
    const auto now = Clock::now();
    // Largest millisecond count that still fits the clock's duration once
    // added to `now` (duration_cast of anything larger is UB-adjacent
    // int64 overflow, which UBSan rightly traps).
    const double headroom_ms =
        std::chrono::duration<double, std::milli>(Clock::time_point::max() -
                                                  now)
            .count();
    if (!(ms < headroom_ms)) {  // also catches NaN and +inf
      d.at_ = Clock::time_point::max();
      return d;
    }
    d.at_ = now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool is_never() const { return !armed_; }

  bool expired() const { return armed_ && Clock::now() >= at_; }

  /// Milliseconds until expiry (clamped at 0 once past, +inf when never).
  /// Never negative: callers size sleeps and sub-budgets from this value,
  /// and a negative duration handed to a wait API is at best confusing and
  /// at worst an overflow when converted to an unsigned count.
  double remaining_ms() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    const double left =
        std::chrono::duration<double, std::milli>(at_ - Clock::now()).count();
    return left > 0 ? left : 0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point at_{};
  bool armed_ = false;
};

/// A thread-safe one-way flag the caller flips to stop a solve in flight.
/// Share by pointer; the token must outlive the work observing it.
///
/// Release/acquire ordering (not relaxed): everything the cancelling
/// thread wrote before request_cancel() — the reason it cancelled, a
/// replacement work item — is visible to a worker that observes the flag,
/// so observers may act on that state without extra synchronization.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void request_cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The pair (deadline, cancel token) threaded through solver stages.
/// Copyable and cheap; a default-constructed context is unconstrained, and
/// a null pointer wherever an ExecContext* is accepted means the same.
struct ExecContext {
  Deadline deadline;
  const CancelToken* cancel = nullptr;

  bool cancelled() const { return cancel != nullptr && cancel->cancelled(); }

  /// Throws SolveError{kCancelled|kDeadlineExceeded} when the budget is
  /// gone.  Cancellation wins ties: a caller that cancels wants silence,
  /// not a deadline report.
  void check(const char* where) const {
    if (cancelled()) {
      throw SolveError(StatusCode::kCancelled,
                       std::string("cancelled during ") + where);
    }
    if (deadline.expired()) {
      throw SolveError(StatusCode::kDeadlineExceeded,
                       std::string("deadline expired during ") + where);
    }
  }
};

/// Amortized ExecContext polling for hot loops: cancellation (an atomic
/// load) is checked on every tick, the deadline clock only every `stride`
/// ticks.  A null context makes every tick a branch on a constant.
class PeriodicCheck {
 public:
  explicit PeriodicCheck(const ExecContext* ctx, const char* where,
                         std::uint32_t stride = 1024)
      : ctx_(ctx), where_(where), stride_(stride) {}

  void tick() {
    if (ctx_ == nullptr) return;
    if (ctx_->cancelled()) ctx_->check(where_);
    if (++count_ >= stride_) {
      count_ = 0;
      ctx_->check(where_);
    }
  }

 private:
  const ExecContext* ctx_;
  const char* where_;
  std::uint32_t stride_;
  std::uint32_t count_ = 0;
};

}  // namespace hgp
