#include "util/fault_injector.hpp"

#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "util/prng.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace hgp {

namespace {

// One armed entry: the fault plus the state of its probabilistic draw
// stream (advanced under the table mutex on every hit of the site when
// probability < 1, so concurrent hits consume the stream deterministically
// in arrival order).
struct Armed {
  FaultInjector::Fault fault;
  SplitMix64 draws{1};
};

// The armed table lives behind a mutex; on_site only takes it after the
// atomic fast path says something is armed, so the lock never appears on
// an un-instrumented run.
struct ArmedTable {
  /// A leaf lock; draw() copies the fault out and acts on it (throw,
  /// stall) only after release.
  Mutex mu;
  std::map<std::pair<std::string, int>, Armed> faults HGP_GUARDED_BY(mu);
};

ArmedTable& table() {
  static ArmedTable t;
  return t;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, int index, Fault fault) {
  ArmedTable& t = table();
  const MutexLock lock(t.mu);
  t.faults.insert_or_assign({site, index}, Armed{fault, SplitMix64(fault.seed)});
  armed_count_.store(static_cast<int>(t.faults.size()),
                     std::memory_order_release);
}

void FaultInjector::disarm(const std::string& site, int index) {
  ArmedTable& t = table();
  const MutexLock lock(t.mu);
  t.faults.erase({site, index});
  armed_count_.store(static_cast<int>(t.faults.size()),
                     std::memory_order_release);
}

void FaultInjector::disarm_all() {
  ArmedTable& t = table();
  const MutexLock lock(t.mu);
  t.faults.clear();
  armed_count_.store(0, std::memory_order_release);
}

void FaultInjector::on_site(const char* site, int index) {
  if (armed_count_.load(std::memory_order_acquire) == 0) return;
  fire(site, index);
}

FaultInjector::Action FaultInjector::poll_io(const char* site, int index) {
  if (armed_count_.load(std::memory_order_acquire) == 0) return Action::kNone;
  const Fault fault = draw(site, index);
  switch (fault.action) {
    case Action::kIoShortWrite:
    case Action::kIoEnospc:
    case Action::kIoFsyncFail:
    case Action::kIoTornRename:
    case Action::kNetTornFrame:
    case Action::kNetConnectRefused:
    case Action::kKillProcess:
      return fault.action;
    case Action::kNone:
      return Action::kNone;
    case Action::kThrow:
      throw CheckError(std::string("injected fault at ") + site + "[" +
                       std::to_string(index) + "]");
    case Action::kStall:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(fault.stall_ms));
      return Action::kNone;
    case Action::kInfeasible:
      throw SolveError(StatusCode::kInfeasible,
                       std::string("injected infeasibility at ") + site +
                           "[" + std::to_string(index) + "]");
  }
  return Action::kNone;
}

FaultInjector::Fault FaultInjector::draw(const char* site, int index) {
  ArmedTable& t = table();
  const MutexLock lock(t.mu);
  auto it = t.faults.find({site, index});
  if (it == t.faults.end()) it = t.faults.find({site, kEveryIndex});
  if (it == t.faults.end()) return Fault{};
  Fault fault = it->second.fault;
  if (fault.probability < 1.0) {
    // One draw per hit from the entry's seeded stream; skipping the
    // fault still consumes the draw, so the schedule is a deterministic
    // function of (seed, hit ordinal).
    const double u =
        static_cast<double>(it->second.draws.next() >> 11) * 0x1.0p-53;
    if (u >= fault.probability) fault.action = Action::kNone;
  }
  return fault;
}

void FaultInjector::fire(const char* site, int index) {
  const Fault fault = draw(site, index);
  switch (fault.action) {
    case Action::kNone:
      return;
    case Action::kThrow:
      throw CheckError(std::string("injected fault at ") + site + "[" +
                       std::to_string(index) + "]");
    case Action::kStall:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(fault.stall_ms));
      return;
    case Action::kInfeasible:
      throw SolveError(StatusCode::kInfeasible,
                       std::string("injected infeasibility at ") + site +
                           "[" + std::to_string(index) + "]");
    case Action::kIoShortWrite:
    case Action::kIoEnospc:
    case Action::kIoFsyncFail:
    case Action::kIoTornRename:
    case Action::kNetTornFrame:
    case Action::kNetConnectRefused:
    case Action::kKillProcess:
      // I/O- and network-class faults only make sense where the code can
      // act on them; an on_site() hit just ignores them (arming one here
      // is a test bug, not a reason to crash production).
      return;
  }
}

}  // namespace hgp
