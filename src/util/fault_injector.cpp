#include "util/fault_injector.hpp"

#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "util/status.hpp"

namespace hgp {

namespace {

// The armed table lives behind a mutex; on_site only takes it after the
// atomic fast path says something is armed, so the lock never appears on
// an un-instrumented run.
struct ArmedTable {
  std::mutex mu;
  std::map<std::pair<std::string, int>, FaultInjector::Fault> faults;
};

ArmedTable& table() {
  static ArmedTable t;
  return t;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, int index, Fault fault) {
  ArmedTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  t.faults[{site, index}] = fault;
  armed_count_.store(static_cast<int>(t.faults.size()),
                     std::memory_order_release);
}

void FaultInjector::disarm(const std::string& site, int index) {
  ArmedTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  t.faults.erase({site, index});
  armed_count_.store(static_cast<int>(t.faults.size()),
                     std::memory_order_release);
}

void FaultInjector::disarm_all() {
  ArmedTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  t.faults.clear();
  armed_count_.store(0, std::memory_order_release);
}

void FaultInjector::on_site(const char* site, int index) {
  if (armed_count_.load(std::memory_order_acquire) == 0) return;
  fire(site, index);
}

void FaultInjector::fire(const char* site, int index) {
  Fault fault;
  {
    ArmedTable& t = table();
    const std::lock_guard<std::mutex> lock(t.mu);
    auto it = t.faults.find({site, index});
    if (it == t.faults.end()) it = t.faults.find({site, kEveryIndex});
    if (it == t.faults.end()) return;
    fault = it->second;
  }
  switch (fault.action) {
    case Action::kNone:
      return;
    case Action::kThrow:
      throw CheckError(std::string("injected fault at ") + site + "[" +
                       std::to_string(index) + "]");
    case Action::kStall:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(fault.stall_ms));
      return;
    case Action::kInfeasible:
      throw SolveError(StatusCode::kInfeasible,
                       std::string("injected infeasibility at ") + site +
                           "[" + std::to_string(index) + "]");
  }
}

}  // namespace hgp
