// Fatal-signal crash-dump hook: a last chance to persist diagnostic state
// before the process dies.
//
// install_crash_dump(path, writer) registers handlers for the fatal
// signals (SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT) that open `path` and
// invoke `writer(fd)`, then restore the default disposition and re-raise
// so the kernel still records the crash (core dump, wait status).  The
// writer runs in async-signal context: it must restrict itself to
// async-signal-safe operations — no allocation, no locks, no C++ streams;
// raw ::write of pre-formatted or atomically-readable state only.  The
// obs flight recorder registers its journal dump here (the journal's
// lock-free rings are readable from a signal handler by design).
//
// This is a util-layer hook on purpose: src/util cannot depend on
// src/obs, so the writer arrives as a plain function pointer and the
// layering stays acyclic.  Installation is idempotent; the latest
// (path, writer) pair wins.  crash_dump_now() runs the same dump outside
// any signal, for tests and on-demand use.
#pragma once

namespace hgp {

/// Async-signal-safe dump callback: write state to `fd` using only
/// async-signal-safe calls.
using CrashDumpWriter = void (*)(int fd);

/// Registers `writer` to run on fatal signals, dumping to `path` (created
/// or truncated at dump time).  `path` is copied into static storage
/// (truncated to an internal bound if enormous).  Passing an empty path
/// or null writer disables the hook.
void install_crash_dump(const char* path, CrashDumpWriter writer);

/// Runs the registered dump immediately (no signal involved).  Returns
/// false when no hook is installed or the file cannot be opened.
bool crash_dump_now();

}  // namespace hgp
