#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace hgp {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HGP_CHECK(!headers_.empty());
}

CsvWriter& CsvWriter::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

CsvWriter& CsvWriter::add(const std::string& value) {
  HGP_CHECK_MSG(!rows_.empty(), "call row() before add()");
  rows_.back().push_back(escape(value));
  return *this;
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  return add(std::to_string(value));
}

CsvWriter& CsvWriter::add(double value) {
  std::ostringstream os;
  os << value;
  return add(os.str());
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  }
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  HGP_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  out << to_string();
  HGP_CHECK_MSG(out.good(), "write failed: " << path);
}

}  // namespace hgp
