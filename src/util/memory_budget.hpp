// Process-wide memory budget: admission control for the solver's big
// allocators instead of an OOM kill.
//
// The DP's arenas, the dense-table pools they back, and the forest cache
// are the allocations that actually grow with instance size; everything
// else is noise.  Each of them charges this budget at *chunk* granularity
// (one reservation per backing block, never per bump), so the accounting
// costs one relaxed atomic per rare slow-path allocation.  When a
// reservation would push usage past the limit the allocator throws
// SolveError(kResourceExhausted) — a typed, catchable signal the per-tree
// fault isolation and the service layer's degradation ladder both know how
// to absorb — instead of letting the kernel abort the process.
//
// The global budget's limit comes from the HGP_MEM_BUDGET environment
// variable (bytes, with optional k/m/g suffix; unset or 0 = unlimited).
// Tests and the service layer may also construct private budgets or adjust
// the global limit at runtime (set_limit is atomic; in-flight reservations
// are unaffected).
//
// Concurrency: lock-free by design — two relaxed atomics and no blocking,
// so the budget sits outside the capability layer of util/sync.hpp (there
// is no mutex for the thread-safety analysis to track).  The cost is that
// try_reserve admits small transient overshoots when reservations race;
// admission control needs the order of magnitude, not an exact census.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hgp {

class MemoryBudget {
 public:
  /// `limit_bytes` = 0 means unlimited (reservations always succeed).
  explicit MemoryBudget(std::size_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// The budget the solver's allocators charge; limit from HGP_MEM_BUDGET
  /// (read once, on first use).
  static MemoryBudget& global();

  /// Attempts to reserve `bytes`; false when the reservation would exceed
  /// the limit (usage is rolled back).  Always succeeds when unlimited.
  bool try_reserve(std::size_t bytes) {
    used_.fetch_add(bytes, std::memory_order_relaxed);
    const std::size_t limit = limit_.load(std::memory_order_relaxed);
    if (limit != 0 && used_.load(std::memory_order_relaxed) > limit) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// try_reserve or throw SolveError(kResourceExhausted) naming `what`.
  /// Defined in the .cpp to keep status.hpp out of this header's
  /// dependents' hot paths.
  void reserve_or_throw(std::size_t bytes, const char* what);

  /// Returns previously reserved bytes to the budget.
  void release(std::size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// 0 = unlimited.
  std::size_t limit() const { return limit_.load(std::memory_order_relaxed); }

  /// Bytes currently reserved (approximate under concurrency).
  std::size_t used() const { return used_.load(std::memory_order_relaxed); }

  /// used/limit in [0, +inf); 0 when unlimited.  The service layer's
  /// admission control rejects new work above a utilization threshold.
  double utilization() const {
    const std::size_t limit = limit_.load(std::memory_order_relaxed);
    if (limit == 0) return 0;
    return static_cast<double>(used()) / static_cast<double>(limit);
  }

  /// Changes the limit at runtime (0 = unlimited).  Existing reservations
  /// stay charged; only future try_reserve calls see the new limit.
  void set_limit(std::size_t limit_bytes) {
    limit_.store(limit_bytes, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> limit_;
  std::atomic<std::size_t> used_{0};
};

/// Parses a byte-count knob value: a non-negative integer with an optional
/// k/m/g (KiB/MiB/GiB, any case) suffix.  Unparsable input yields
/// `default_bytes` (knob parsing is forgiving by project convention —
/// see env.hpp).
std::size_t parse_byte_size(const char* text, std::size_t default_bytes);

}  // namespace hgp
