// Placement cost: the paper's Equation (1) and its mirror-function
// rewriting, Equation (3) / Lemma 2.
#pragma once

#include "graph/graph.hpp"
#include "hierarchy/hierarchy.hpp"
#include "hierarchy/placement.hpp"

namespace hgp {

/// Eq. (1): Σ_{e=(u,v)} cm(LCA_H(p(u), p(v))) · w(e).
/// (The paper sums over ordered pairs and halves implicitly; we sum each
/// undirected edge once.)
double placement_cost(const Graph& g, const Hierarchy& h, const Placement& p);

/// Eq. (3): Σ_{j=1..h} Σ_{level-j nodes a} w(δ(P(a))) · (cm(j-1)-cm(j)) / 2,
/// where P(a) is the set of tasks placed under a and δ is the G-boundary.
/// Lemma 2: equals Eq. (1) when cm is normalized (cm[h] = 0); in general
/// placement_cost = placement_cost_mirror + cm[h] · total edge weight.
double placement_cost_mirror(const Graph& g, const Hierarchy& h,
                             const Placement& p);

/// A trivial lower bound on any solution's cost: cm[h] · total edge weight
/// (every edge pays at least the leaf-level multiplier).  Zero for
/// normalized hierarchies.
double trivial_cost_lower_bound(const Graph& g, const Hierarchy& h);

}  // namespace hgp
