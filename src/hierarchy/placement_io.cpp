#include "hierarchy/placement_io.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace hgp::io {

void write_placement(const Placement& p, std::ostream& out) {
  out << "# hgp placement: " << p.leaf_of.size() << " tasks\n";
  for (std::size_t v = 0; v < p.leaf_of.size(); ++v) {
    out << v << ' ' << p.leaf_of[v] << '\n';
  }
}

void write_placement_file(const Placement& p, const std::string& path) {
  std::ofstream out(path);
  HGP_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  write_placement(p, out);
  HGP_CHECK_MSG(out.good(), "write failed: " << path);
}

Placement read_placement(std::istream& in) {
  std::vector<std::pair<long long, long long>> rows;
  long long max_task = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    long long task = 0, leaf = 0;
    HGP_CHECK_MSG(static_cast<bool>(row >> task >> leaf),
                  "placement input: malformed line: " << line);
    HGP_CHECK_MSG(task >= 0 && leaf >= 0,
                  "placement input: negative id: " << line);
    rows.emplace_back(task, leaf);
    max_task = std::max(max_task, task);
  }
  Placement p;
  p.leaf_of.assign(static_cast<std::size_t>(max_task + 1), -1);
  for (const auto& [task, leaf] : rows) {
    HGP_CHECK_MSG(p.leaf_of[static_cast<std::size_t>(task)] == -1,
                  "placement input: task " << task << " assigned twice");
    p.leaf_of[static_cast<std::size_t>(task)] = leaf;
  }
  for (std::size_t v = 0; v < p.leaf_of.size(); ++v) {
    HGP_CHECK_MSG(p.leaf_of[v] >= 0,
                  "placement input: task " << v << " missing");
  }
  return p;
}

Placement read_placement_file(const std::string& path) {
  std::ifstream in(path);
  HGP_CHECK_MSG(in.good(), "cannot open: " << path);
  return read_placement(in);
}

}  // namespace hgp::io
