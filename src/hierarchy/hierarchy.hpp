// The hierarchy tree H of the HGP problem.
//
// H is regular at each level: a level-j internal node has DEG[j] children
// (levels 0..h-1); leaves sit at level h and have capacity 1.  Levels carry
// non-increasing cost multipliers cm[0] ≥ … ≥ cm[h].  Because H is regular
// it is never materialized as a pointer structure: leaf ancestors, LCA
// levels and capacities are all arithmetic on mixed-radix leaf indices.
//
// Indexing convention (paper §1, §3):
//   * level 0 is the root, level h are the leaves;
//   * CP[j] = Π_{j' ≥ j} DEG[j'] = number of leaves (= capacity) of a
//     level-j node; CP[h] = 1;
//   * nodes_at(j) = Π_{j' < j} DEG[j'] = number of level-j nodes;
//   * the level-j ancestor of leaf ℓ has index ℓ / CP[j] among level-j
//     nodes (leaves are numbered left to right).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hgp {

/// Index of a leaf of H (a machine / CPU core).
using LeafId = std::int64_t;

class Hierarchy {
 public:
  /// deg[j] = children per level-j node (size h ≥ 1, entries ≥ 1);
  /// cm[j] = cost multiplier of level j (size h+1, non-increasing, ≥ 0).
  Hierarchy(std::vector<int> deg, std::vector<double> cm);

  /// All levels have the same fan-out.
  static Hierarchy uniform(int height, int deg, std::vector<double> cm);

  /// The k-BGP special case (§1): height 1, k leaves, cm = {1, 0}.
  static Hierarchy kbgp(int k);

  int height() const { return narrow<int>(deg_.size()); }
  int deg(int level) const {
    HGP_ASSERT(level >= 0 && level < height());
    return deg_[static_cast<std::size_t>(level)];
  }
  double cm(int level) const {
    HGP_ASSERT(level >= 0 && level <= height());
    return cm_[static_cast<std::size_t>(level)];
  }

  LeafId leaf_count() const { return cp_[0]; }

  /// CP[j]: leaves under (= capacity of) one level-j node.
  std::int64_t capacity(int level) const {
    HGP_ASSERT(level >= 0 && level <= height());
    return cp_[static_cast<std::size_t>(level)];
  }

  /// Number of level-j nodes.
  std::int64_t nodes_at(int level) const {
    HGP_ASSERT(level >= 0 && level <= height());
    return nodes_[static_cast<std::size_t>(level)];
  }

  /// Index (within its level) of the level-j ancestor of a leaf.
  std::int64_t leaf_ancestor(LeafId leaf, int level) const {
    HGP_ASSERT(leaf >= 0 && leaf < leaf_count());
    return leaf / capacity(level);
  }

  /// Level of the lowest common ancestor of two leaves (h if equal).
  int lca_level(LeafId a, LeafId b) const {
    HGP_ASSERT(a >= 0 && a < leaf_count() && b >= 0 && b < leaf_count());
    for (int j = height(); j >= 0; --j) {
      if (a / cp_[static_cast<std::size_t>(j)] ==
          b / cp_[static_cast<std::size_t>(j)]) {
        return j;
      }
    }
    return 0;  // unreachable: level 0 always matches
  }

  bool is_normalized() const { return cm_[deg_.size()] == 0.0; }

  /// Lemma 1 reduction: subtracts cm[h] from every multiplier.  A solution's
  /// cost under the original multipliers equals its normalized cost plus
  /// cm[h] · (total edge weight); optimal solutions coincide.
  Hierarchy normalized(double* subtracted = nullptr) const;

  /// Replaces the multipliers (same monotonicity requirements).
  Hierarchy with_cost_multipliers(std::vector<double> cm) const;

  std::string to_string() const;

 private:
  friend void validate_hierarchy(const Hierarchy& h);

  std::vector<int> deg_;       // size h
  std::vector<double> cm_;     // size h+1
  std::vector<std::int64_t> cp_;     // size h+1: CP[j]
  std::vector<std::int64_t> nodes_;  // size h+1: nodes_at(j)
};

/// Audits the structural invariants the paper's indexing arithmetic rests
/// on: height ≥ 1, regular fan-out ≥ 1 per level, and non-increasing
/// non-negative cost multipliers (cm must have height+1 entries).  Throws
/// SolveError{kInternal} on violation — a malformed hierarchy past the
/// constructor is a library bug, not caller error.
void validate_hierarchy(const std::vector<int>& deg,
                        const std::vector<double>& cm);

/// Same audit on a constructed Hierarchy, plus the derived CP[j] /
/// nodes_at(j) products consistent with deg.  The constructor establishes
/// all of this; seams re-check it (and tests, via the raw overload, feed
/// deliberately corrupted level vectors).
void validate_hierarchy(const Hierarchy& h);

}  // namespace hgp
