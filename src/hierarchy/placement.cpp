#include "hierarchy/placement.hpp"

#include <algorithm>

namespace hgp {

double LoadReport::max_violation() const {
  double worst = 0;
  for (double v : violation) worst = std::max(worst, v);
  return worst;
}

void validate_placement(const Graph& g, const Hierarchy& h, const Placement& p,
                        PlacementCheck check, double tolerance) {
  HGP_CHECK_MSG(p.leaf_of.size() == static_cast<std::size_t>(g.vertex_count()),
                "placement must assign every vertex");
  HGP_CHECK_MSG(g.has_demands(), "HGP instances require vertex demands");
  for (LeafId leaf : p.leaf_of) {
    HGP_CHECK_MSG(leaf >= 0 && leaf < h.leaf_count(),
                  "placement leaf id out of range: " << leaf);
  }
  if (check == PlacementCheck::kFeasible) {
    // Eq. 1: each leaf has capacity 1, so the demand landing on it may not
    // exceed 1 (internal levels then fit automatically, their capacity
    // being the sum of leaf capacities below).
    std::vector<double> leaf_load(static_cast<std::size_t>(h.leaf_count()),
                                  0.0);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      leaf_load[static_cast<std::size_t>(p[v])] += g.demand(v);
    }
    for (std::size_t leaf = 0; leaf < leaf_load.size(); ++leaf) {
      HGP_CHECK_MSG(leaf_load[leaf] <= 1.0 + tolerance,
                    "placement violates Eq. 1: leaf "
                        << leaf << " carries demand " << leaf_load[leaf]
                        << " > capacity 1");
    }
  }
}

LoadReport load_report(const Graph& g, const Hierarchy& h, const Placement& p) {
  validate_placement(g, h, p);
  LoadReport report;
  const int height = h.height();
  report.load.resize(static_cast<std::size_t>(height) + 1);
  report.violation.assign(static_cast<std::size_t>(height) + 1, 0.0);
  // Leaf loads first, then aggregate level by level toward the root.
  auto& leaf_load = report.load[static_cast<std::size_t>(height)];
  leaf_load.assign(static_cast<std::size_t>(h.leaf_count()), 0.0);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    leaf_load[static_cast<std::size_t>(p[v])] += g.demand(v);
  }
  for (int j = height - 1; j >= 0; --j) {
    auto& cur = report.load[static_cast<std::size_t>(j)];
    const auto& below = report.load[static_cast<std::size_t>(j) + 1];
    cur.assign(static_cast<std::size_t>(h.nodes_at(j)), 0.0);
    const int fanout = h.deg(j);
    for (std::size_t i = 0; i < below.size(); ++i) {
      cur[i / static_cast<std::size_t>(fanout)] += below[i];
    }
  }
  for (int j = 0; j <= height; ++j) {
    const double cap = static_cast<double>(h.capacity(j));
    double worst = 0;
    for (double load : report.load[static_cast<std::size_t>(j)]) {
      worst = std::max(worst, load / cap);
    }
    report.violation[static_cast<std::size_t>(j)] = worst;
  }
  return report;
}

}  // namespace hgp
