#include "hierarchy/diagnostics.hpp"

#include <sstream>

#include "hierarchy/cost.hpp"
#include "util/table.hpp"

namespace hgp {

TrafficBreakdown traffic_breakdown(const Graph& g, const Hierarchy& h,
                                   const Placement& p) {
  validate_placement(g, h, p);
  TrafficBreakdown b;
  b.volume.assign(static_cast<std::size_t>(h.height()) + 1, 0.0);
  b.cost.assign(static_cast<std::size_t>(h.height()) + 1, 0.0);
  for (const Edge& e : g.edges()) {
    const int l = h.lca_level(p[e.u], p[e.v]);
    b.volume[static_cast<std::size_t>(l)] += e.weight;
    b.cost[static_cast<std::size_t>(l)] += e.weight * h.cm(l);
    b.total_volume += e.weight;
    b.total_cost += e.weight * h.cm(l);
  }
  return b;
}

std::string diagnostics_report(const Graph& g, const Hierarchy& h,
                               const Placement& p) {
  const TrafficBreakdown b = traffic_breakdown(g, h, p);
  const LoadReport loads = load_report(g, h, p);
  std::ostringstream os;
  Table traffic({"LCA level", "meaning", "volume", "share %", "cm", "cost"});
  for (int l = 0; l <= h.height(); ++l) {
    std::string meaning;
    if (l == 0) meaning = "crosses the root";
    else if (l == h.height()) meaning = "co-located";
    else meaning = "meets at level " + std::to_string(l);
    traffic.row()
        .add(l)
        .add(meaning)
        .add(b.volume[static_cast<std::size_t>(l)])
        .add(100.0 * b.share_at(l), 1)
        .add(h.cm(l))
        .add(b.cost[static_cast<std::size_t>(l)]);
  }
  os << "traffic by lowest common ancestor level (total cost "
     << b.total_cost << "):\n"
     << traffic.to_string() << '\n';

  Table load({"level", "nodes", "capacity", "max load", "violation"});
  for (int j = 0; j <= h.height(); ++j) {
    double max_load = 0;
    for (double x : loads.load[static_cast<std::size_t>(j)]) {
      max_load = std::max(max_load, x);
    }
    load.row()
        .add(j)
        .add(static_cast<std::int64_t>(h.nodes_at(j)))
        .add(static_cast<std::int64_t>(h.capacity(j)))
        .add(max_load)
        .add(loads.violation[static_cast<std::size_t>(j)], 3);
  }
  os << "load by hierarchy level:\n" << load.to_string();
  return os.str();
}

}  // namespace hgp
