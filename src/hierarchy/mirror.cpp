#include "hierarchy/mirror.hpp"

#include <algorithm>

namespace hgp {

MirrorFunction build_mirror(const Graph& g, const Hierarchy& h,
                            const Placement& p) {
  validate_placement(g, h, p);
  MirrorFunction m;
  const int height = h.height();
  m.sets.resize(static_cast<std::size_t>(height) + 1);
  for (int j = 0; j <= height; ++j) {
    m.sets[static_cast<std::size_t>(j)].resize(
        static_cast<std::size_t>(h.nodes_at(j)));
  }
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    for (int j = 0; j <= height; ++j) {
      const auto node = static_cast<std::size_t>(h.leaf_ancestor(p[v], j));
      m.sets[static_cast<std::size_t>(j)][node].push_back(v);
    }
  }
  for (auto& level : m.sets) {
    for (auto& set : level) std::sort(set.begin(), set.end());
  }
  return m;
}

double mirror_cost_literal(const Graph& g, const Hierarchy& h,
                           const MirrorFunction& mirror) {
  HGP_CHECK(mirror.height() == h.height());
  double cost = 0;
  std::vector<char> in_set(static_cast<std::size_t>(g.vertex_count()), 0);
  for (int j = 1; j <= h.height(); ++j) {
    const double delta = (h.cm(j - 1) - h.cm(j)) / 2.0;
    for (const auto& set : mirror.sets[static_cast<std::size_t>(j)]) {
      if (set.empty()) continue;
      for (Vertex v : set) in_set[static_cast<std::size_t>(v)] = 1;
      cost += g.boundary_weight(in_set) * delta;
      for (Vertex v : set) in_set[static_cast<std::size_t>(v)] = 0;
    }
  }
  return cost;
}

void validate_mirror_structure(const Graph& g, const Hierarchy& h,
                               const MirrorFunction& mirror) {
  HGP_CHECK(mirror.height() == h.height());
  const auto n = static_cast<std::size_t>(g.vertex_count());
  // 1. Exactly one level-0 set containing all vertices.
  HGP_CHECK(mirror.sets[0].size() == 1);
  HGP_CHECK_MSG(mirror.sets[0][0].size() == n,
                "level-0 mirror set must contain every vertex");
  for (int j = 0; j <= h.height(); ++j) {
    // 2. Level j partitions V(G).
    std::vector<char> seen(n, 0);
    std::size_t total = 0;
    for (const auto& set : mirror.sets[static_cast<std::size_t>(j)]) {
      for (Vertex v : set) {
        HGP_CHECK_MSG(!seen[static_cast<std::size_t>(v)],
                      "vertex " << v << " appears in two level-" << j
                                << " mirror sets");
        seen[static_cast<std::size_t>(v)] = 1;
        ++total;
      }
    }
    HGP_CHECK_MSG(total == n, "level-" << j << " mirror sets miss vertices");
    // 3. Laminar refinement: the level-(j+1) sets of a node's children
    // union to exactly the node's set.
    if (j < h.height()) {
      const int fanout = h.deg(j);
      const auto& level = mirror.sets[static_cast<std::size_t>(j)];
      const auto& below = mirror.sets[static_cast<std::size_t>(j) + 1];
      for (std::size_t i = 0; i < level.size(); ++i) {
        std::vector<Vertex> merged;
        for (int c = 0; c < fanout; ++c) {
          const auto& child = below[i * static_cast<std::size_t>(fanout) +
                                    static_cast<std::size_t>(c)];
          merged.insert(merged.end(), child.begin(), child.end());
        }
        std::sort(merged.begin(), merged.end());
        HGP_CHECK_MSG(merged == level[i],
                      "level-" << j << " set " << i
                               << " is not the union of its children");
      }
    }
  }
}

}  // namespace hgp
