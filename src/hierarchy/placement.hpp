// Placements: the solution object p : V(G) → LEAVES(H).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "hierarchy/hierarchy.hpp"

namespace hgp {

/// leaf_of[v] is the H-leaf hosting task v.
struct Placement {
  std::vector<LeafId> leaf_of;

  Vertex task_count() const { return narrow<Vertex>(leaf_of.size()); }
  LeafId operator[](Vertex v) const {
    return leaf_of[static_cast<std::size_t>(v)];
  }
};

/// Per-level load/violation report for a placement.
struct LoadReport {
  /// load[j][i] = total demand under the i-th level-j node.
  std::vector<std::vector<double>> load;
  /// violation[j] = max_i load[j][i] / CP[j]  (≤ 1 means feasible at level j).
  std::vector<double> violation;

  /// Worst violation across all levels (leaf level included).
  double max_violation() const;
  /// Violation at the leaf level (the paper's capacity constraint).
  double leaf_violation() const { return violation.back(); }
  bool feasible(double tolerance = 1e-9) const {
    return max_violation() <= 1.0 + tolerance;
  }
};

/// What validate_placement enforces beyond well-formedness.
enum class PlacementCheck {
  /// Every vertex assigned, every leaf id in [0, leaf_count).
  kStructural,
  /// Structural plus Eq. 1: the demand on each leaf fits its (unit)
  /// capacity, up to `tolerance` — the contract exact placements and
  /// feasibility-preserving heuristics must meet.
  kFeasible,
};

/// Checks index ranges (and, under kFeasible, per-leaf capacity); throws
/// CheckError on malformed placements.  load_report() runs the structural
/// check internally, so callers needing only kStructural before a report
/// can skip the explicit call.
void validate_placement(const Graph& g, const Hierarchy& h, const Placement& p,
                        PlacementCheck check = PlacementCheck::kStructural,
                        double tolerance = 1e-9);

/// Demand loads and violations at every level of H.
LoadReport load_report(const Graph& g, const Hierarchy& h, const Placement& p);

}  // namespace hgp
