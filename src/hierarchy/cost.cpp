#include "hierarchy/cost.hpp"

namespace hgp {

double placement_cost(const Graph& g, const Hierarchy& h, const Placement& p) {
  validate_placement(g, h, p);
  double cost = 0;
  for (const Edge& e : g.edges()) {
    cost += h.cm(h.lca_level(p[e.u], p[e.v])) * e.weight;
  }
  return cost;
}

double placement_cost_mirror(const Graph& g, const Hierarchy& h,
                             const Placement& p) {
  validate_placement(g, h, p);
  // For every level j ≥ 1 and every edge, the edge crosses the boundary of
  // exactly two level-j mirror sets iff its endpoints' level-j ancestors
  // differ.  Accumulate per level directly (equivalent to materializing
  // every P(a) and summing boundary weights).
  double cost = 0;
  for (int j = 1; j <= h.height(); ++j) {
    const double delta = (h.cm(j - 1) - h.cm(j)) / 2.0;
    if (delta == 0.0) continue;
    double crossing = 0;
    for (const Edge& e : g.edges()) {
      if (h.leaf_ancestor(p[e.u], j) != h.leaf_ancestor(p[e.v], j)) {
        crossing += 2.0 * e.weight;  // the edge lies in two boundaries
      }
    }
    cost += crossing * delta;
  }
  return cost;
}

double trivial_cost_lower_bound(const Graph& g, const Hierarchy& h) {
  return h.cm(h.height()) * g.total_edge_weight();
}

}  // namespace hgp
