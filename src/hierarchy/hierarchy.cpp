#include "hierarchy/hierarchy.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace hgp {

Hierarchy::Hierarchy(std::vector<int> deg, std::vector<double> cm)
    : deg_(std::move(deg)), cm_(std::move(cm)) {
  HGP_CHECK_MSG(!deg_.empty(), "hierarchy height must be at least 1");
  HGP_CHECK_MSG(cm_.size() == deg_.size() + 1,
                "cost multiplier vector must have height+1 entries");
  for (int d : deg_) {
    HGP_CHECK_MSG(d >= 1, "level fan-out must be at least 1");
  }
  for (std::size_t j = 0; j < cm_.size(); ++j) {
    HGP_CHECK_MSG(cm_[j] >= 0.0, "cost multipliers must be non-negative");
    if (j > 0) {
      HGP_CHECK_MSG(cm_[j - 1] >= cm_[j],
                    "cost multipliers must be non-increasing: cm["
                        << j - 1 << "]=" << cm_[j - 1] << " < cm[" << j
                        << "]=" << cm_[j]);
    }
  }
  const std::size_t h = deg_.size();
  cp_.assign(h + 1, 1);
  for (std::size_t j = h; j-- > 0;) {
    cp_[j] = cp_[j + 1] * deg_[j];
    HGP_CHECK_MSG(cp_[j] > 0 && cp_[j] < (std::int64_t{1} << 40),
                  "hierarchy too large");
  }
  nodes_.assign(h + 1, 1);
  for (std::size_t j = 1; j <= h; ++j) {
    nodes_[j] = nodes_[j - 1] * deg_[j - 1];
  }
}

Hierarchy Hierarchy::uniform(int height, int deg, std::vector<double> cm) {
  HGP_CHECK(height >= 1);
  return Hierarchy(std::vector<int>(static_cast<std::size_t>(height), deg),
                   std::move(cm));
}

Hierarchy Hierarchy::kbgp(int k) {
  return Hierarchy({k}, {1.0, 0.0});
}

Hierarchy Hierarchy::normalized(double* subtracted) const {
  const double base = cm_.back();
  if (subtracted != nullptr) *subtracted = base;
  std::vector<double> cm(cm_);
  for (double& c : cm) c -= base;
  return with_cost_multipliers(std::move(cm));
}

Hierarchy Hierarchy::with_cost_multipliers(std::vector<double> cm) const {
  return Hierarchy(deg_, std::move(cm));
}

void validate_hierarchy(const std::vector<int>& deg,
                        const std::vector<double>& cm) {
  const std::size_t height = deg.size();
  if (height < 1) {
    throw SolveError(StatusCode::kInternal,
                     "hierarchy invariant violated: height < 1");
  }
  if (cm.size() != height + 1) {
    throw SolveError(StatusCode::kInternal,
                     "hierarchy invariant violated: cost multiplier vector "
                     "must have height+1 entries");
  }
  for (std::size_t j = 0; j < height; ++j) {
    if (deg[j] < 1) {
      throw SolveError(StatusCode::kInternal,
                       "hierarchy invariant violated: fan-out < 1 at level " +
                           std::to_string(j));
    }
  }
  for (std::size_t j = 0; j <= height; ++j) {
    if (cm[j] < 0.0 || (j > 0 && cm[j - 1] < cm[j])) {
      throw SolveError(StatusCode::kInternal,
                       "hierarchy invariant violated: cost multipliers must "
                       "be non-negative and non-increasing (level " +
                           std::to_string(j) + ")");
    }
  }
}

void validate_hierarchy(const Hierarchy& h) {
  validate_hierarchy(h.deg_, h.cm_);
  const std::size_t height = h.deg_.size();
  if (h.cp_.size() != height + 1 || h.nodes_.size() != height + 1) {
    throw SolveError(StatusCode::kInternal,
                     "hierarchy invariant violated: level arrays must have "
                     "height+1 entries");
  }
  // CP[h] = 1 and CP[j] = CP[j+1] · DEG[j]; nodes_at(0) = 1 and
  // nodes_at(j) = nodes_at(j-1) · DEG[j-1]; CP[j] · nodes_at(j) = leaves.
  if (h.cp_[height] != 1 || h.nodes_[0] != 1) {
    throw SolveError(StatusCode::kInternal,
                     "hierarchy invariant violated: CP[h] and nodes_at(0) "
                     "must both be 1");
  }
  for (std::size_t j = 0; j < height; ++j) {
    if (h.cp_[j] != h.cp_[j + 1] * h.deg_[j] ||
        h.nodes_[j + 1] != h.nodes_[j] * h.deg_[j] ||
        h.cp_[j] * h.nodes_[j] != h.cp_[0]) {
      throw SolveError(StatusCode::kInternal,
                       "hierarchy invariant violated: capacity/node products "
                       "inconsistent with fan-out at level " +
                           std::to_string(j));
    }
  }
}

std::string Hierarchy::to_string() const {
  std::ostringstream os;
  os << "Hierarchy(h=" << height() << ", deg=[";
  for (std::size_t j = 0; j < deg_.size(); ++j) {
    if (j) os << ',';
    os << deg_[j];
  }
  os << "], cm=[";
  for (std::size_t j = 0; j < cm_.size(); ++j) {
    if (j) os << ',';
    os << cm_[j];
  }
  os << "], leaves=" << leaf_count() << ")";
  return os.str();
}

}  // namespace hgp
