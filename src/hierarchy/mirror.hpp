// Mirror functions (paper Eq. 2): P(a_H) = tasks placed in SUB(a_H).
//
// The fast cost path (cost.cpp) never materializes these sets; this module
// builds them explicitly so tests and experiments can check the paper's
// structural statements literally (Lemma 2 cost identity, laminar family of
// Definition 3).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "hierarchy/hierarchy.hpp"
#include "hierarchy/placement.hpp"

namespace hgp {

/// The materialized mirror function of a placement.
struct MirrorFunction {
  /// sets[j][i] = sorted vertices under the i-th level-j node of H.
  std::vector<std::vector<std::vector<Vertex>>> sets;

  int height() const { return narrow<int>(sets.size()) - 1; }
};

/// Builds P from a placement (Eq. 2).
MirrorFunction build_mirror(const Graph& g, const Hierarchy& h,
                            const Placement& p);

/// Literal Eq. 3 evaluation: Σ_j Σ_a w(δ_G(P(a))) · (cm(j-1)-cm(j))/2,
/// materializing every boundary.  Used to cross-check the fast versions.
double mirror_cost_literal(const Graph& g, const Hierarchy& h,
                           const MirrorFunction& mirror);

/// Checks the Definition-3 structure of a mirror function:
///  1. level 0 holds exactly one set (all placed vertices);
///  2. each level partitions V(G);
///  3. each level-j set is the union of the level-(j+1) sets of its node's
///     children (the laminar-family property).
/// Throws CheckError with a description on violation.
void validate_mirror_structure(const Graph& g, const Hierarchy& h,
                               const MirrorFunction& mirror);

}  // namespace hgp
