// Placement diagnostics: where does the communication volume go?
//
// Operators reading a placement report care about "how much traffic
// crosses sockets" more than the scalar objective; this breaks Eq. 1 down
// by LCA level and summarizes the load distribution.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "hierarchy/placement.hpp"

namespace hgp {

struct TrafficBreakdown {
  /// volume[l] = total edge weight whose endpoints' LCA is at level l
  /// (l = h means co-located on one leaf).
  std::vector<Weight> volume;
  /// cost[l] = volume[l] · cm(l); Σ cost == placement_cost.
  std::vector<double> cost;
  Weight total_volume = 0;
  double total_cost = 0;

  /// Fraction of volume crossing level l or higher (e.g. share_above(0) =
  /// share of traffic crossing the root = cross-socket share for h=1).
  double share_at(int level) const {
    return total_volume > 0
               ? volume[static_cast<std::size_t>(level)] / total_volume
               : 0.0;
  }
};

/// Computes the per-level breakdown of a placement.
TrafficBreakdown traffic_breakdown(const Graph& g, const Hierarchy& h,
                                   const Placement& p);

/// Renders the breakdown plus the load report as an aligned table.
std::string diagnostics_report(const Graph& g, const Hierarchy& h,
                               const Placement& p);

}  // namespace hgp
