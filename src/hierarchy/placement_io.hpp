// Placement serialization: persist task → leaf assignments so solved
// placements can be applied by external pinning tools (taskset, cgroup
// writers, k8s annotations) or reloaded for refinement.
#pragma once

#include <iosfwd>
#include <string>

#include "hierarchy/placement.hpp"

namespace hgp::io {

/// Writes "task leaf" lines plus a header comment with the task count.
void write_placement(const Placement& p, std::ostream& out);
void write_placement_file(const Placement& p, const std::string& path);

/// Reads the format back; validates ids are non-negative and the tasks are
/// exactly 0..n-1 (each assigned once).
Placement read_placement(std::istream& in);
Placement read_placement_file(const std::string& path);

}  // namespace hgp::io
