// HGPT solver (Theorem 2): DP + conversion, for tree instances.
//
// This is the public entry point for partitioning the leaves of a tree
// against a hierarchy: it runs the RHGPT signature DP (optimal over rounded
// demands) and the Theorem-5 regrouping, returning the leaf assignment, the
// relaxed solution, both costs and the measured per-level violations.
#pragma once

#include "core/convert.hpp"
#include "core/tree_dp.hpp"

namespace hgp {

struct TreeSolverOptions {
  double epsilon = 0.25;
  DemandUnits units_override = 0;
  /// Pool for the DP's parallel subtree phase, forwarded to the DP (see
  /// TreeDpOptions::pool; safe to share with outer per-tree parallelism).
  ThreadPool* pool = nullptr;
  /// Cooperative deadline/cancellation, forwarded to the DP.
  const ExecContext* exec = nullptr;
  /// Forwarded to TreeDpOptions::force_prune (memory-pressure degrade).
  bool force_prune = false;
  /// Clean-subtree reuse across solves, forwarded to
  /// TreeDpOptions::reuse_in / reuse_out (incremental re-solve path).
  const DpReuseStore* reuse_in = nullptr;
  DpReuseStore* reuse_out = nullptr;
};

struct TreeHgpSolution {
  /// Final HGPT solution: T-leaf → H-leaf.
  TreeAssignment assignment;
  /// The optimal relaxed solution it was derived from.
  RhgptSolution relaxed;
  /// RHGPT optimum (≤ the HGPT optimum: fewer constraints — the natural
  /// lower bound for approximation measurements).
  double relaxed_cost = 0;
  /// Definition-2/3 cost of `assignment` (≤ relaxed_cost by Theorem 5).
  double cost = 0;
  /// Per-level capacity violations with real demands; Theorem 2 bounds
  /// violation[j] by (1+ε)(1+j).
  std::vector<double> violation;
  ScaledDemands scaled;
  TreeDpStats stats;

  double max_violation() const {
    double worst = 0;
    for (double v : violation) worst = std::max(worst, v);
    return worst;
  }
};

/// Requires leaf demands on `t`.
TreeHgpSolution solve_hgpt(const Tree& t, const Hierarchy& h,
                           const TreeSolverOptions& opt = {});

}  // namespace hgp
