#include "core/demand.hpp"

#include <cmath>

namespace hgp {

ScaledDemands scale_demands(const Tree& t, const Hierarchy& h, double epsilon,
                            DemandUnits units_override) {
  HGP_CHECK_MSG(t.has_demands(), "tree has no leaf demands");
  HGP_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  ScaledDemands s;
  if (units_override > 0) {
    s.units_per_capacity = units_override;
  } else {
    const double n = static_cast<double>(t.leaf_count());
    s.units_per_capacity =
        static_cast<DemandUnits>(std::ceil(std::max(1.0, n) / epsilon));
  }
  for (Vertex leaf : t.leaves()) {
    const double d = t.demand(leaf);
    HGP_CHECK_MSG(d > 0.0 && d <= 1.0,
                  "leaf demand out of (0,1]: " << d << " at node " << leaf);
  }
  // The one-unit floor means at most U jobs fit one leaf; if the requested
  // resolution cannot represent a feasible instance (many tiny jobs),
  // double U until the rounded total fits the hierarchy.  Truly infeasible
  // instances (total demand > capacity) stop doubling once rounding error
  // is no longer the cause and are rejected by the solver's later check.
  for (;;) {
    s.units.assign(static_cast<std::size_t>(t.node_count()), 0);
    s.total = 0;
    for (Vertex leaf : t.leaves()) {
      const auto floored = static_cast<DemandUnits>(
          std::floor(t.demand(leaf) *
                     static_cast<double>(s.units_per_capacity)));
      const DemandUnits rounded = std::max<DemandUnits>(1, floored);
      s.units[static_cast<std::size_t>(leaf)] = rounded;
      s.total += rounded;
    }
    const DemandUnits capacity = h.capacity(0) * s.units_per_capacity;
    const bool fits = s.total <= capacity;
    const bool rounding_caused =
        t.total_demand() <= static_cast<double>(h.capacity(0));
    if (fits || !rounding_caused ||
        s.units_per_capacity > (DemandUnits{1} << 24)) {
      break;
    }
    s.units_per_capacity *= 2;
  }
  s.capacity.resize(static_cast<std::size_t>(h.height()) + 1);
  for (int j = 0; j <= h.height(); ++j) {
    s.capacity[static_cast<std::size_t>(j)] =
        h.capacity(j) * s.units_per_capacity;
  }
  return s;
}

}  // namespace hgp
