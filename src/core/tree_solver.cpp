#include "core/tree_solver.hpp"

#include "core/rhgpt.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"

namespace hgp {

namespace {

// The deep Theorem-3 / Definition-4 audits walk the whole solution with
// minimum leaf separators; contracts run them only on instances small
// enough that the audit cannot dominate a debug solve.
constexpr Vertex kDeepAuditLeafLimit = 96;

}  // namespace

TreeHgpSolution solve_hgpt(const Tree& t, const Hierarchy& h,
                           const TreeSolverOptions& opt) {
  if (contracts_enabled()) validate_hierarchy(h);

  TreeDpOptions dp_opt;
  dp_opt.epsilon = opt.epsilon;
  dp_opt.units_override = opt.units_override;
  dp_opt.pool = opt.pool;
  dp_opt.exec = opt.exec;
  dp_opt.force_prune = opt.force_prune;
  dp_opt.reuse_in = opt.reuse_in;
  dp_opt.reuse_out = opt.reuse_out;
  TreeDpResult dp = solve_rhgpt(t, h, dp_opt);

  // Theorem 3: the DP's relaxed optimum is a *nice* solution (BS = 0) and
  // a Definition-4 solution with respect to the rounded demands.
  HGP_POSTCONDITION_MSG(
      t.leaf_count() > kDeepAuditLeafLimit ||
          count_bad_sets(t, dp.solution) == 0,
      "RHGPT DP emitted a non-nice solution (Theorem 3)");
  if (contracts_enabled() && t.leaf_count() <= kDeepAuditLeafLimit) {
    validate_rhgpt(t, h, dp.scaled, dp.solution);
  }

  TreeHgpSolution out;
  {
    // Theorem-5 regrouping: relaxed mirror regions → leaf assignment.
    HGP_TRACE_SPAN("tree.convert");
    out.assignment =
        convert_to_assignment(t, h, dp.solution, dp.scaled.units);
  }
  out.relaxed = std::move(dp.solution);
  out.relaxed_cost = dp.cost;
  out.cost = assignment_cost(t, h, out.assignment);
  out.violation = assignment_violation(t, h, out.assignment);
  out.scaled = std::move(dp.scaled);
  out.stats = dp.stats;

  // Theorem 2: the regrouped assignment blows capacity up by at most
  // (1+ε)(1+j) per level (index 0 is the root).
  HGP_POSTCONDITION_MSG(
      [&] {
        for (std::size_t j = 0; j < out.violation.size(); ++j) {
          const double bound =
              (1.0 + opt.epsilon) * (1.0 + static_cast<double>(j));
          if (out.violation[j] > bound + 1e-9) return false;
        }
        return true;
      }(),
      "tree assignment exceeds the Theorem-2 violation bound");
  return out;
}

}  // namespace hgp
