#include "core/tree_solver.hpp"

namespace hgp {

TreeHgpSolution solve_hgpt(const Tree& t, const Hierarchy& h,
                           const TreeSolverOptions& opt) {
  TreeDpOptions dp_opt;
  dp_opt.epsilon = opt.epsilon;
  dp_opt.units_override = opt.units_override;
  dp_opt.exec = opt.exec;
  TreeDpResult dp = solve_rhgpt(t, h, dp_opt);

  TreeHgpSolution out;
  out.assignment =
      convert_to_assignment(t, h, dp.solution, dp.scaled.units);
  out.relaxed = std::move(dp.solution);
  out.relaxed_cost = dp.cost;
  out.cost = assignment_cost(t, h, out.assignment);
  out.violation = assignment_violation(t, h, out.assignment);
  out.scaled = std::move(dp.scaled);
  out.stats = dp.stats;
  return out;
}

}  // namespace hgp
