#include "core/all_nodes.hpp"

namespace hgp {

AllNodesReduction reduce_all_nodes(const Tree& t,
                                   const std::vector<double>& demand) {
  HGP_CHECK(demand.size() == static_cast<std::size_t>(t.node_count()));
  for (double d : demand) {
    HGP_CHECK_MSG(d > 0.0 && d <= 1.0,
                  "all-nodes reduction needs a demand in (0,1] per node");
  }
  const Vertex n = t.node_count();
  std::vector<Vertex> parent(static_cast<std::size_t>(n));
  std::vector<Weight> weight(static_cast<std::size_t>(n));
  std::vector<char> infinite(static_cast<std::size_t>(n), 0);
  for (Vertex v = 0; v < n; ++v) {
    parent[static_cast<std::size_t>(v)] = t.parent(v);
    weight[static_cast<std::size_t>(v)] = v == t.root() ? 0 : t.parent_weight(v);
    infinite[static_cast<std::size_t>(v)] =
        (v != t.root() && t.parent_edge_infinite(v)) ? 1 : 0;
  }
  AllNodesReduction out;
  out.job_leaf.assign(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<double> new_demand(static_cast<std::size_t>(n), 0.0);
  for (Vertex v = 0; v < n; ++v) {
    if (t.is_leaf(v)) {
      out.job_leaf[static_cast<std::size_t>(v)] = v;
      new_demand[static_cast<std::size_t>(v)] =
          demand[static_cast<std::size_t>(v)];
    } else {
      // Dummy leaf glued to v by an uncuttable edge.
      const Vertex dummy = narrow<Vertex>(parent.size());
      parent.push_back(v);
      weight.push_back(0);
      infinite.push_back(1);
      new_demand.push_back(demand[static_cast<std::size_t>(v)]);
      out.job_leaf[static_cast<std::size_t>(v)] = dummy;
    }
  }
  out.tree = Tree::from_parents(std::move(parent), std::move(weight),
                                std::move(infinite));
  out.tree.set_demands(std::move(new_demand));
  return out;
}

AllNodesSolution solve_hgpt_all_nodes(const Tree& t,
                                      const std::vector<double>& demand,
                                      const Hierarchy& h,
                                      const TreeSolverOptions& opt) {
  const AllNodesReduction red = reduce_all_nodes(t, demand);
  const TreeHgpSolution sol = solve_hgpt(red.tree, h, opt);
  AllNodesSolution out;
  out.leaf_of.resize(static_cast<std::size_t>(t.node_count()));
  for (Vertex v = 0; v < t.node_count(); ++v) {
    out.leaf_of[static_cast<std::size_t>(v)] =
        sol.assignment.of(red.job_leaf[static_cast<std::size_t>(v)]);
  }
  out.cost = sol.cost;
  out.relaxed_cost = sol.relaxed_cost;
  out.violation = sol.violation;
  return out;
}

}  // namespace hgp
