// The RHGPT solution object (Definition 4) with literal validators.
//
// A solution is a family of collections S^(0), …, S^(h); each level-j set is
// a subset of LEAVES(T).  The DP emits these, the Theorem-5 conversion
// consumes them, and tests validate them against the paper's definitions:
// partition per level, laminar refinement, capacity, nice structure
// (Definition 6) and the bad-set count BS(s) (Definition 7).
#pragma once

#include <cstdint>
#include <vector>

#include "core/demand.hpp"
#include "graph/tree.hpp"
#include "hierarchy/hierarchy.hpp"

namespace hgp {

struct RhgptSolution {
  /// sets[j] = the level-j collection; each set is a sorted list of T-leaf
  /// node ids.  sets[0] has exactly one set (all leaves).
  std::vector<std::vector<std::vector<Vertex>>> sets;
  /// Cost reported by the DP (Definition 4 objective, in cm units).
  double dp_cost = 0;

  int height() const { return narrow<int>(sets.size()) - 1; }
};

/// Definition-4 objective evaluated from scratch: Σ_j Σ_S w(CUT_T(S)) ·
/// (cm(j-1)-cm(j))/2 with real minimum leaf separators.  Cross-checks the
/// DP's internal cost accounting.
double rhgpt_cost(const Tree& t, const Hierarchy& h, const RhgptSolution& s);

/// Validates Definition 4 items 1-4 (with the relaxed item 4: any number of
/// refining subsets).  Capacity (item 3) is checked in demand units against
/// capacity_factor · CPs[j].  Throws CheckError on violation.
void validate_rhgpt(const Tree& t, const Hierarchy& h, const ScaledDemands& sd,
                    const RhgptSolution& s, double capacity_factor = 1.0);

/// BS(s) of Definition 7: total number of (v,j)-bad sets, with mirror
/// regions N(S) computed by minimum leaf separators.  Theorem 3: the DP's
/// output must have BS = 0 (it is a nice solution).
std::int64_t count_bad_sets(const Tree& t, const RhgptSolution& s);

}  // namespace hgp
