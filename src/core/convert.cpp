#include "core/convert.hpp"

#include <algorithm>
#include <numeric>

namespace hgp {

namespace {

/// Index of each leaf's set within a level collection (-1 when absent).
std::vector<int> set_index_of_leaf(const Tree& t,
                                   const std::vector<std::vector<Vertex>>& lvl) {
  std::vector<int> idx(static_cast<std::size_t>(t.node_count()), -1);
  for (std::size_t i = 0; i < lvl.size(); ++i) {
    for (Vertex leaf : lvl[i]) {
      idx[static_cast<std::size_t>(leaf)] = narrow<int>(i);
    }
  }
  return idx;
}

}  // namespace

TreeAssignment convert_to_assignment(const Tree& t, const Hierarchy& h,
                                     const RhgptSolution& s,
                                     const std::vector<DemandUnits>& units) {
  const int height = h.height();
  HGP_CHECK(s.height() == height);
  HGP_CHECK(units.size() == static_cast<std::size_t>(t.node_count()));

  // leaf → set index maps per level, and per-set demand sums.
  std::vector<std::vector<int>> set_of(static_cast<std::size_t>(height) + 1);
  std::vector<std::vector<DemandUnits>> set_units(
      static_cast<std::size_t>(height) + 1);
  for (int j = 0; j <= height; ++j) {
    const auto& lvl = s.sets[static_cast<std::size_t>(j)];
    set_of[static_cast<std::size_t>(j)] = set_index_of_leaf(t, lvl);
    auto& su = set_units[static_cast<std::size_t>(j)];
    su.assign(lvl.size(), 0);
    for (std::size_t i = 0; i < lvl.size(); ++i) {
      for (Vertex leaf : lvl[i]) {
        su[i] += units[static_cast<std::size_t>(leaf)];
      }
    }
  }

  TreeAssignment out;
  out.leaf_of.assign(static_cast<std::size_t>(t.node_count()), -1);

  // Recursive regrouping.  A "region" at level j is a group of level-j
  // RHGPT set indices assigned to one level-j H-node; its level-(j+1)
  // children are all level-(j+1) sets whose leaves lie in the region.
  auto rec = [&](auto&& self, int j, std::int64_t h_node,
                 const std::vector<int>& region_sets) -> void {
    if (j == height) {
      // Everything in the region lands on this single H-leaf.
      for (const int si : region_sets) {
        for (Vertex leaf :
             s.sets[static_cast<std::size_t>(j)][static_cast<std::size_t>(si)]) {
          out.leaf_of[static_cast<std::size_t>(leaf)] = h_node;
        }
      }
      return;
    }
    // Collect the level-(j+1) subsets refining this region.
    std::vector<int> child_sets;
    {
      std::vector<char> in_region(
          s.sets[static_cast<std::size_t>(j)].size(), 0);
      for (const int si : region_sets) {
        in_region[static_cast<std::size_t>(si)] = 1;
      }
      const auto& lvl = s.sets[static_cast<std::size_t>(j) + 1];
      for (std::size_t ci = 0; ci < lvl.size(); ++ci) {
        const int parent = set_of[static_cast<std::size_t>(j)]
                                 [static_cast<std::size_t>(lvl[ci][0])];
        HGP_CHECK_MSG(parent >= 0, "leaf missing from level-" << j);
        if (in_region[static_cast<std::size_t>(parent)]) {
          child_sets.push_back(narrow<int>(ci));
        }
      }
    }
    // Least-loaded-first packing over non-increasing subset demand into the
    // DEG[j] child H-nodes (Theorem 5's grouping).
    std::sort(child_sets.begin(), child_sets.end(), [&](int a, int b) {
      const DemandUnits ua =
          set_units[static_cast<std::size_t>(j) + 1][static_cast<std::size_t>(a)];
      const DemandUnits ub =
          set_units[static_cast<std::size_t>(j) + 1][static_cast<std::size_t>(b)];
      return ua != ub ? ua > ub : a < b;
    });
    const int fanout = h.deg(j);
    std::vector<std::vector<int>> groups(static_cast<std::size_t>(fanout));
    std::vector<DemandUnits> load(static_cast<std::size_t>(fanout), 0);
    for (const int ci : child_sets) {
      const std::size_t target = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      groups[target].push_back(ci);
      load[target] +=
          set_units[static_cast<std::size_t>(j) + 1][static_cast<std::size_t>(ci)];
    }
    for (int c = 0; c < fanout; ++c) {
      self(self, j + 1, h_node * fanout + c, groups[static_cast<std::size_t>(c)]);
    }
  };

  rec(rec, 0, 0, std::vector<int>{0});

  for (Vertex leaf : t.leaves()) {
    HGP_CHECK_MSG(out.leaf_of[static_cast<std::size_t>(leaf)] >= 0,
                  "conversion left leaf " << leaf << " unassigned");
  }
  return out;
}

double assignment_cost(const Tree& t, const Hierarchy& h,
                       const TreeAssignment& a) {
  double cost = 0;
  std::vector<char> in_set(static_cast<std::size_t>(t.node_count()), 0);
  for (int j = 1; j <= h.height(); ++j) {
    const double delta = (h.cm(j - 1) - h.cm(j)) / 2.0;
    for (std::int64_t node = 0; node < h.nodes_at(j); ++node) {
      bool any = false;
      for (Vertex leaf : t.leaves()) {
        const bool inside = h.leaf_ancestor(a.of(leaf), j) == node;
        in_set[static_cast<std::size_t>(leaf)] = inside ? 1 : 0;
        any |= inside;
      }
      if (!any) continue;
      const auto sep = t.leaf_separator(in_set);
      HGP_CHECK(sep.feasible);
      cost += sep.weight * delta;
    }
  }
  return cost;
}

void validate_hgpt_assignment(const Tree& t, const Hierarchy& h,
                              const TreeAssignment& a,
                              double capacity_factor) {
  HGP_CHECK_MSG(t.has_demands(), "validate_hgpt_assignment needs demands");
  HGP_CHECK_MSG(a.leaf_of.size() == static_cast<std::size_t>(t.node_count()),
                "assignment indexed by tree nodes");
  for (Vertex leaf : t.leaves()) {
    const LeafId l = a.leaf_of[static_cast<std::size_t>(leaf)];
    HGP_CHECK_MSG(l >= 0 && l < h.leaf_count(),
                  "leaf " << leaf << " mapped to invalid H-leaf " << l);
  }
  // Per-level sets: jobs under each level-j H-node.  Partition is
  // automatic (each job has one ancestor per level); check capacities and
  // the Definition-3 fan-out literally.
  for (int j = 0; j <= h.height(); ++j) {
    std::vector<double> load(static_cast<std::size_t>(h.nodes_at(j)), 0.0);
    for (Vertex leaf : t.leaves()) {
      load[static_cast<std::size_t>(h.leaf_ancestor(a.of(leaf), j))] +=
          t.demand(leaf);
    }
    const double cap =
        capacity_factor * static_cast<double>(h.capacity(j));
    for (std::size_t i = 0; i < load.size(); ++i) {
      HGP_CHECK_MSG(load[i] <= cap + 1e-9,
                    "level-" << j << " node " << i << " load " << load[i]
                             << " exceeds " << cap);
    }
    if (j < h.height()) {
      // Children used per node must not exceed DEG(j).
      std::vector<std::vector<char>> used(
          static_cast<std::size_t>(h.nodes_at(j)));
      for (auto& u : used) u.assign(static_cast<std::size_t>(h.deg(j)), 0);
      for (Vertex leaf : t.leaves()) {
        const std::int64_t child = h.leaf_ancestor(a.of(leaf), j + 1);
        used[static_cast<std::size_t>(child / h.deg(j))]
            [static_cast<std::size_t>(child % h.deg(j))] = 1;
      }
      for (std::size_t i = 0; i < used.size(); ++i) {
        int count = 0;
        for (char c : used[i]) count += c;
        HGP_CHECK_MSG(count <= h.deg(j),
                      "level-" << j << " node " << i << " refines into "
                               << count << " > DEG " << h.deg(j) << " sets");
      }
    }
  }
}

std::vector<double> assignment_violation(const Tree& t, const Hierarchy& h,
                                         const TreeAssignment& a) {
  HGP_CHECK_MSG(t.has_demands(), "assignment_violation needs leaf demands");
  std::vector<double> leaf_load(static_cast<std::size_t>(h.leaf_count()), 0);
  for (Vertex leaf : t.leaves()) {
    leaf_load[static_cast<std::size_t>(a.of(leaf))] += t.demand(leaf);
  }
  std::vector<double> violation(static_cast<std::size_t>(h.height()) + 1, 0);
  for (int j = 0; j <= h.height(); ++j) {
    std::vector<double> load(static_cast<std::size_t>(h.nodes_at(j)), 0);
    for (LeafId l = 0; l < h.leaf_count(); ++l) {
      load[static_cast<std::size_t>(h.leaf_ancestor(l, j))] +=
          leaf_load[static_cast<std::size_t>(l)];
    }
    const double cap = static_cast<double>(h.capacity(j));
    for (double x : load) {
      violation[static_cast<std::size_t>(j)] =
          std::max(violation[static_cast<std::size_t>(j)], x / cap);
    }
  }
  return violation;
}

}  // namespace hgp
