#include "core/rhgpt.hpp"

#include <algorithm>

namespace hgp {

namespace {

std::vector<char> membership(const Tree& t, const std::vector<Vertex>& set) {
  std::vector<char> in(static_cast<std::size_t>(t.node_count()), 0);
  for (Vertex leaf : set) {
    HGP_CHECK_MSG(leaf >= 0 && leaf < t.node_count() && t.is_leaf(leaf),
                  "RHGPT set member " << leaf << " is not a leaf");
    in[static_cast<std::size_t>(leaf)] = 1;
  }
  return in;
}

}  // namespace

double rhgpt_cost(const Tree& t, const Hierarchy& h, const RhgptSolution& s) {
  HGP_CHECK(s.height() == h.height());
  double cost = 0;
  for (int j = 1; j <= h.height(); ++j) {
    const double delta = (h.cm(j - 1) - h.cm(j)) / 2.0;
    for (const auto& set : s.sets[static_cast<std::size_t>(j)]) {
      const auto sep = t.leaf_separator(membership(t, set));
      HGP_CHECK_MSG(sep.feasible,
                    "level-" << j << " set cannot be separated (uncuttable "
                             << "edges cross it)");
      cost += sep.weight * delta;
    }
  }
  return cost;
}

void validate_rhgpt(const Tree& t, const Hierarchy& h, const ScaledDemands& sd,
                    const RhgptSolution& s, double capacity_factor) {
  HGP_CHECK_MSG(s.height() == h.height(),
                "solution height mismatches hierarchy");
  const auto leaf_total = static_cast<std::size_t>(t.leaf_count());

  // Item 1: exactly one level-0 set holding every leaf.
  HGP_CHECK_MSG(s.sets[0].size() == 1, "level-0 collection must be a single set");
  HGP_CHECK_MSG(s.sets[0][0].size() == leaf_total,
                "level-0 set must contain every leaf");

  std::vector<int> set_of_prev;  // leaf → index of its level-(j-1) set
  for (int j = 0; j <= h.height(); ++j) {
    const auto& level = s.sets[static_cast<std::size_t>(j)];
    // Item 2: partition.
    std::vector<int> set_of(static_cast<std::size_t>(t.node_count()), -1);
    std::size_t covered = 0;
    for (std::size_t i = 0; i < level.size(); ++i) {
      HGP_CHECK_MSG(!level[i].empty(),
                    "empty set in level-" << j << " collection");
      DemandUnits units = 0;
      for (Vertex leaf : level[i]) {
        HGP_CHECK_MSG(leaf >= 0 && leaf < t.node_count() && t.is_leaf(leaf),
                      "set member " << leaf << " is not a leaf");
        HGP_CHECK_MSG(set_of[static_cast<std::size_t>(leaf)] == -1,
                      "leaf " << leaf << " in two level-" << j << " sets");
        set_of[static_cast<std::size_t>(leaf)] = narrow<int>(i);
        units += sd.units[static_cast<std::size_t>(leaf)];
        ++covered;
      }
      // Item 3: capacity (in units, with the allowed violation factor).
      const double cap =
          capacity_factor *
          static_cast<double>(sd.capacity_at(j));
      HGP_CHECK_MSG(static_cast<double>(units) <= cap + 1e-9,
                    "level-" << j << " set " << i << " holds " << units
                             << " units > allowed " << cap);
    }
    HGP_CHECK_MSG(covered == leaf_total,
                  "level-" << j << " collection misses leaves");
    // Item 4 (relaxed): refinement — every level-j set's leaves must share
    // one level-(j-1) set.
    if (j > 0) {
      for (const auto& set : level) {
        const int parent = set_of_prev[static_cast<std::size_t>(set[0])];
        for (Vertex leaf : set) {
          HGP_CHECK_MSG(set_of_prev[static_cast<std::size_t>(leaf)] == parent,
                        "level-" << j << " set crosses two level-" << j - 1
                                 << " sets");
        }
      }
    }
    set_of_prev = std::move(set_of);
  }
}

std::int64_t count_bad_sets(const Tree& t, const RhgptSolution& s) {
  const auto n = static_cast<std::size_t>(t.node_count());
  std::int64_t bad = 0;
  for (int j = 1; j <= s.height(); ++j) {
    for (const auto& set : s.sets[static_cast<std::size_t>(j)]) {
      const auto sep = t.leaf_separator(membership(t, set));
      HGP_CHECK(sep.feasible);
      // Count labelled nodes inside each subtree (reverse preorder = children
      // before parents).
      std::vector<std::int64_t> inside(n, 0);
      std::int64_t total = 0;
      for (auto it = t.preorder().rbegin(); it != t.preorder().rend(); ++it) {
        const Vertex v = *it;
        inside[static_cast<std::size_t>(v)] =
            sep.s_side[static_cast<std::size_t>(v)] ? 1 : 0;
        for (Vertex c : t.children(v)) {
          inside[static_cast<std::size_t>(v)] +=
              inside[static_cast<std::size_t>(c)];
        }
      }
      total = inside[static_cast<std::size_t>(t.root())];
      for (Vertex v = 0; v < t.node_count(); ++v) {
        const bool active = sep.s_side[static_cast<std::size_t>(v)] != 0;
        const bool intersects = inside[static_cast<std::size_t>(v)] > 0;
        const bool contained =
            inside[static_cast<std::size_t>(v)] == total;
        if (!active && intersects && !contained) ++bad;
      }
    }
  }
  return bad;
}

}  // namespace hgp
