// End-to-end HGP solver for general graphs (Theorem 1).
//
// Pipeline: sample a forest of decomposition trees (§4 stand-in for the
// Räcke distribution), solve HGPT on every tree with the signature DP +
// Theorem-5 conversion, map each tree solution back to G through the
// leaf↔vertex bijection, evaluate the true Eq.-1 cost on G, and keep the
// best (Theorem 7's arg-min over the tree family).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tree_solver.hpp"
#include "decomp/builder.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/placement.hpp"

namespace hgp {

struct SolverOptions {
  /// Number of decomposition trees sampled (more trees = better expected
  /// embedding, linearly more work).
  int num_trees = 4;
  /// Demand rounding accuracy (Theorem 2's ε).
  double epsilon = 0.25;
  /// Direct demand-unit override (0 = derive from ε).
  DemandUnits units_override = 0;
  std::uint64_t seed = 1;
  /// Cut heuristic for tree building; nullptr = spectral + FM refinement.
  const Cutter* cutter = nullptr;
  /// Pool for solving trees concurrently; nullptr = sequential.
  ThreadPool* pool = nullptr;
};

struct HgpResult {
  /// Task → H-leaf assignment for G.
  Placement placement;
  /// Eq.-1 cost of `placement` on G (under the original cost multipliers).
  double cost = 0;
  /// Load / violation report at every hierarchy level.
  LoadReport loads;
  /// Which sampled tree produced the winner, and each tree's mapped cost.
  int best_tree = -1;
  std::vector<double> tree_costs;
  /// DP diagnostics of the winning tree.
  TreeDpStats stats;
};

/// Requires vertex demands on `g`.  Throws CheckError if the instance
/// cannot fit the hierarchy even after rounding.
HgpResult solve_hgp(const Graph& g, const Hierarchy& h,
                    const SolverOptions& opt = {});

}  // namespace hgp
