#include "core/solver.hpp"

#include <limits>

#include "parallel/parallel_for.hpp"

namespace hgp {

namespace {

struct TreeOutcome {
  Placement placement;
  double cost = std::numeric_limits<double>::infinity();
  TreeDpStats stats;
};

TreeOutcome solve_one_tree(const Graph& g, const Hierarchy& h,
                           const DecompTree& dt,
                           const TreeSolverOptions& tree_opt) {
  const TreeHgpSolution sol = solve_hgpt(dt.tree(), h, tree_opt);
  TreeOutcome out;
  out.placement.leaf_of.assign(static_cast<std::size_t>(g.vertex_count()), 0);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    out.placement.leaf_of[static_cast<std::size_t>(v)] =
        sol.assignment.of(dt.leaf_of_vertex(v));
  }
  // Judge every candidate by the true objective on G, not the tree cost
  // (the tree cost over-estimates by the embedding stretch).
  out.cost = placement_cost(g, h, out.placement);
  out.stats = sol.stats;
  return out;
}

}  // namespace

HgpResult solve_hgp(const Graph& g, const Hierarchy& h,
                    const SolverOptions& opt) {
  HGP_CHECK_MSG(g.has_demands(), "HGP instances require vertex demands");
  HGP_CHECK(opt.num_trees >= 1);

  const FmCutter default_cutter;
  const Cutter& cutter =
      opt.cutter != nullptr ? *opt.cutter : default_cutter;

  const std::vector<DecompTree> forest = build_decomposition_forest(
      g, opt.num_trees, opt.seed, cutter, opt.pool);

  TreeSolverOptions tree_opt;
  tree_opt.epsilon = opt.epsilon;
  tree_opt.units_override = opt.units_override;

  std::vector<TreeOutcome> outcomes(forest.size());
  auto run = [&](std::size_t i) {
    outcomes[i] = solve_one_tree(g, h, forest[i], tree_opt);
  };
  if (opt.pool != nullptr) {
    parallel_for(*opt.pool, 0, forest.size(), run);
  } else {
    for (std::size_t i = 0; i < forest.size(); ++i) run(i);
  }

  HgpResult result;
  result.tree_costs.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    result.tree_costs.push_back(outcomes[i].cost);
    if (result.best_tree < 0 ||
        outcomes[i].cost <
            outcomes[static_cast<std::size_t>(result.best_tree)].cost) {
      result.best_tree = narrow<int>(i);
    }
  }
  TreeOutcome& best = outcomes[static_cast<std::size_t>(result.best_tree)];
  result.placement = std::move(best.placement);
  result.cost = best.cost;
  result.stats = best.stats;
  result.loads = load_report(g, h, result.placement);
  return result;
}

}  // namespace hgp
