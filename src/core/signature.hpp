// Signatures of DP subproblems (Definition 8) and their consistency
// algebra (Definition 9).
//
// A signature of node v describes the (v,j)-active sets — the sets whose
// mirror regions contain v:
//   * D^(j) = demand (in units) of the (v,j)-active set *inside* SUB(v),
//     for j in [1,h].  Corollary 1 forces D^(1) ≥ … ≥ D^(h) ≥ 0 and
//     capacity requires D^(j) ≤ CPs[j].
//   * p ∈ [0,h] = the *presence depth*: levels 1..p have an active region
//     at v.  Levels with D > 0 are necessarily present (so p ≥ support(D)),
//     but a region may pass through v carrying no demand from SUB(v) at
//     all (D = 0 yet present) — the paper's mirror sets N(S) routinely
//     extend through demand-free internal nodes, and Definition 8's
//     induced solutions make exactly this distinction.  Without it the DP
//     cannot price region boundaries correctly.
//
// SignatureSpace enumerates every (D, p) pair once per (hierarchy, demand
// scale) and interns them to dense ids; the merge derives the parent id
// arithmetically.
//
// Performance: the interned tables (demand tuples, supports, masked-prefix
// pack keys, the pack→tuple index) live in a single Arena owned by the
// space — one allocation burst at construction, contiguous in memory.
// merge()/lift() are allocation-free: because the mixed-radix packing is
// linear in the demand tuple and a (j1,j2)-consistent merge never carries
// a digit past its radix (capacity is checked first), the merged tuple's
// pack key is just the SUM of the two children's masked-prefix keys, all
// precomputed.  The construction-time enumeration is the only code that
// materializes tuples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/demand.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"

namespace hgp {

/// D^(1..h) in demand units.
using Signature = std::vector<DemandUnits>;

class SignatureSpace {
 public:
  /// `scaled`: capacities from scale_demands (only capacity[] and total are
  /// read); `height`: h of the hierarchy.
  SignatureSpace(const ScaledDemands& scaled, int height);

  // The interned tables are spans into the member arena; copying would
  // leave the copy pointing into the original's storage.
  SignatureSpace(const SignatureSpace&) = delete;
  SignatureSpace& operator=(const SignatureSpace&) = delete;
  SignatureSpace(SignatureSpace&&) = default;
  SignatureSpace& operator=(SignatureSpace&&) = default;

  int height() const { return height_; }
  std::size_t size() const { return count_; }

  /// Demand of the level-j active set under signature `id` (j in [1, h]).
  DemandUnits level(std::size_t id, int j) const {
    HGP_ASSERT(id < count_);
    return demands_[(id / static_cast<std::size_t>(height_ + 1)) *
                        static_cast<std::size_t>(height_) +
                    static_cast<std::size_t>(j - 1)];
  }

  /// Presence depth p: active regions exist at levels 1..p.
  int present(std::size_t id) const {
    HGP_ASSERT(id < count_);
    return static_cast<int>(id % static_cast<std::size_t>(height_ + 1));
  }

  /// Deepest level with positive demand (0 for the all-zero tuple).
  int support(std::size_t id) const {
    HGP_ASSERT(id < count_);
    return support_[id / static_cast<std::size_t>(height_ + 1)];
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Dense id of (D, p); npos if invalid (monotonicity, capacity, or
  /// p < support).
  std::size_t id_of(const Signature& d, int present) const;

  /// Absent everywhere: D = 0, p = 0.
  std::size_t zero_id() const { return zero_id_; }

  /// Leaf base case: D = (units,…,units), present at every level.
  std::size_t uniform_id(DemandUnits units) const;

  /// Definition 9 merge: children a (cut above level j1) and b (cut above
  /// j2) under a parent whose presence depth is `present` (levels above the
  /// kept prefixes may be phantom regions entering from the parent side).
  /// Requires present ≥ max(min(j1, p_a), min(j2, p_b)); returns npos if
  /// that fails or a capacity overflows.
  std::size_t merge(std::size_t a, int j1, std::size_t b, int j2,
                    int present) const;

  /// Single-child variant.
  std::size_t lift(std::size_t a, int j1, int present) const;

  /// Maximum level demand: bound[j] = min(CPs[j], total), j in [1,h].
  DemandUnits level_bound(int j) const {
    return bound_[static_cast<std::size_t>(j - 1)];
  }

  /// Audits a (D, p) pair directly: Corollary 1 monotonicity
  /// D^(1) ≥ … ≥ D^(h) ≥ 0, capacity D^(j) ≤ level_bound(j), and presence
  /// p ∈ [support, h].  Unlike id_of (which returns npos so the DP can
  /// prune), a violation here throws SolveError{kInternal} — use at seams
  /// and in tests against deliberately corrupted tuples.
  void validate(const Signature& d, int present) const;

  /// Same audit on an interned id (also rejects out-of-range ids and ids
  /// whose presence depth is shallower than their demand support).
  void validate(std::size_t id) const;

  /// Arena bytes backing the interned tables (for memory diagnostics).
  std::size_t interned_bytes() const { return arena_.bytes_in_use(); }

 private:
  std::size_t pack(const Signature& d) const;
  std::size_t compose(std::size_t tuple_index, int present) const {
    return tuple_index * static_cast<std::size_t>(height_ + 1) +
           static_cast<std::size_t>(present);
  }
  std::size_t tuple_of(std::size_t id) const {
    return id / static_cast<std::size_t>(height_ + 1);
  }
  /// Pack key of the masked prefix (D^(1..kept), 0, …, 0) of a tuple.
  std::size_t prefix_key(std::size_t tuple_index, int kept) const {
    return prefix_key_[tuple_index * static_cast<std::size_t>(height_ + 1) +
                       static_cast<std::size_t>(kept)];
  }

  int height_;
  std::size_t count_ = 0;                // tuples × (h+1)
  std::vector<DemandUnits> bound_;       // per level 1..h
  std::vector<DemandUnits> stride_;      // mixed-radix packing strides
  // Interned tables, allocated from `arena_` in one burst at construction.
  Arena arena_;
  std::span<DemandUnits> demands_;       // tuple_index → D^(1..h), flattened
  std::span<int> support_;               // per tuple_index
  std::span<std::size_t> prefix_key_;    // tuple_index → key per kept 0..h
  std::span<std::size_t> pack_to_tuple_;  // packed key → tuple_index
  std::size_t zero_id_ = npos;
};

/// Free-function spelling of the signature audits, matching
/// validate_hierarchy / validate_placement at the seams.
inline void validate_signature(const SignatureSpace& space, std::size_t id) {
  space.validate(id);
}
inline void validate_signature(const SignatureSpace& space, const Signature& d,
                               int present) {
  space.validate(d, present);
}

}  // namespace hgp
