// RHGPT → HGPT conversion (Theorem 5) and leaf assignment.
//
// A relaxed solution may refine a level-j set into arbitrarily many
// level-(j+1) subsets; a real hierarchy node only has DEG[j] children.  The
// conversion walks top-down, packing each set's child subsets into DEG[j]
// groups (least-loaded-first over non-increasing subset demand).  A group's
// demand is at most (input demand)/DEG[j] + max subset ≤ (1+(j+1))·CP[j+1]
// by induction — the paper's (1+j) level-j violation.  Grouping only unions
// sets, and w(CUT(A∪B)) ≤ w(CUT(A)) + w(CUT(B)), so cost never increases.
#pragma once

#include <vector>

#include "core/rhgpt.hpp"
#include "graph/tree.hpp"
#include "hierarchy/hierarchy.hpp"

namespace hgp {

/// An HGPT solution: each T-leaf assigned to an H-leaf.
struct TreeAssignment {
  /// leaf_of[node] = H-leaf for every T-leaf node; -1 for internal nodes.
  std::vector<LeafId> leaf_of;

  LeafId of(Vertex t_leaf) const {
    HGP_ASSERT(leaf_of[static_cast<std::size_t>(t_leaf)] >= 0);
    return leaf_of[static_cast<std::size_t>(t_leaf)];
  }
};

/// Converts a (validated) RHGPT solution into a leaf assignment.
/// `demand_units` gives each leaf's rounded demand (for the least-loaded
/// packing); typically ScaledDemands::units.
TreeAssignment convert_to_assignment(const Tree& t, const Hierarchy& h,
                                     const RhgptSolution& s,
                                     const std::vector<DemandUnits>& units);

/// Definition 2/3 cost of a leaf assignment: Σ_{j,a} w(CUT_T(leaves under
/// a)) · (cm(j-1)-cm(j))/2 with true minimum separators.  This is the HGPT
/// objective the assignment is judged by.
double assignment_cost(const Tree& t, const Hierarchy& h,
                       const TreeAssignment& a);

/// Per-level capacity violation of an assignment, measured with *real*
/// (unrounded) leaf demands: violation[j] = max over level-j H-nodes of
/// (assigned demand) / CP[j].  Theorem 2 bounds the maximum by
/// (1+ε)(1+h).
std::vector<double> assignment_violation(const Tree& t, const Hierarchy& h,
                                         const TreeAssignment& a);

/// Validates the full (unrelaxed) Definition-3 structure of an assignment:
/// every leaf mapped to a valid H-leaf; the induced level-j sets partition
/// the jobs; each level-j set splits into at most DEG(j) level-(j+1) sets
/// (automatic for assignments — H only *has* DEG(j) children — but checked
/// literally); per-level demand within capacity_factor × CP[j].
/// Throws CheckError on violation.
void validate_hgpt_assignment(const Tree& t, const Hierarchy& h,
                              const TreeAssignment& a,
                              double capacity_factor);

}  // namespace hgp
