#include "core/tree_dp.hpp"

#include <algorithm>
#include <bit>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "util/arena.hpp"
#include "util/env.hpp"

namespace hgp {

namespace {

/// Process-wide A/B switch for dominance pruning (HGP_DP_PRUNE, default
/// ON).  Read once; the differential harness and CI flip it per process.
bool dp_prune_env_enabled() {
  static const bool enabled = env_flag("HGP_DP_PRUNE", true);
  return enabled;
}

/// Publishes one solve's locally-counted DP work into the shared metrics
/// registry (counters `dp.*` and the demand-rounding bucket histogram).
/// One call per solve — the hot merge loop itself never touches atomics.
void publish_dp_metrics(const TreeDpStats& stats, const Tree& bt,
                        const ScaledDemands& sd) {
  HGP_COUNTER_ADD("dp.solves", 1);
  HGP_COUNTER_ADD("dp.signatures", stats.signature_count);
  HGP_COUNTER_ADD("dp.feasible_states", stats.feasible_states);
  HGP_COUNTER_ADD("dp.merge_operations", stats.merge_operations);
  HGP_COUNTER_ADD("dp.merges_rejected", stats.merges_rejected);
  HGP_COUNTER_ADD("dp.states_pruned", stats.states_pruned);
  HGP_COUNTER_ADD("dp.subtree_tasks", stats.subtree_tasks);
  HGP_COUNTER_ADD("dp.nodes_built", stats.nodes_built);
  HGP_COUNTER_ADD("dp.nodes_reused", stats.nodes_reused);
#if HGP_OBS_ENABLED
  static obs::Histogram& units_hist =
      obs::MetricsRegistry::global().histogram(
          "dp.leaf_demand_units", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  for (Vertex v = 0; v < bt.node_count(); ++v) {
    if (bt.is_leaf(v)) {
      units_hist.observe(
          static_cast<double>(sd.units[static_cast<std::size_t>(v)]));
    }
  }
#else
  (void)bt;
  (void)sd;
#endif
}

}  // namespace

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNoSig = kDpNoSig;

/// Back-pointers are stored in reuse entries verbatim, so the internal
/// alias is the public type.
using Back = DpBack;

/// Recycled dense DP scratch.  Every node needs a |Sig|-sized cost array
/// (read by its parent's merge) and a parallel back-pointer array (read by
/// compaction); heap-allocating them per node used to dominate small-node
/// time.  The pool hands out arena-backed spans and recycles released ones
/// through free lists, so a DP sweep performs O(tree depth) real
/// allocations total instead of O(nodes).  One pool per worker in the
/// parallel subtree phase — a pool is single-threaded by design.
class DenseTablePool {
 public:
  explicit DenseTablePool(std::size_t size) : size_(size) {}

  std::span<double> acquire_cost() {
    std::span<double> s;
    if (!free_cost_.empty()) {
      s = free_cost_.back();
      free_cost_.pop_back();
    } else {
      s = arena_.allocate<double>(size_);
    }
    std::fill(s.begin(), s.end(), kInf);
    return s;
  }
  void release_cost(std::span<double> s) {
    if (!s.empty()) free_cost_.push_back(s);
  }

  /// Back arrays are returned uninitialized: entries are written by the
  /// first relax() of their signature before any read (compaction only
  /// copies entries of feasible signatures).
  std::span<Back> acquire_back() {
    std::span<Back> s;
    if (!free_back_.empty()) {
      s = free_back_.back();
      free_back_.pop_back();
    } else {
      s = arena_.allocate<Back>(size_);
    }
    return s;
  }
  void release_back(std::span<Back> s) {
    if (!s.empty()) free_back_.push_back(s);
  }

  std::size_t bytes_reserved() const { return arena_.bytes_reserved(); }

 private:
  std::size_t size_;
  Arena arena_;
  std::vector<std::span<double>> free_cost_;
  std::vector<std::span<Back>> free_back_;
};

/// Per-node DP table.  `cost` is scratch read by the parent's merge and
/// recycled afterwards; the dense back array is compacted to the feasible
/// entries right after the node is built (reconstruction only queries
/// feasible signatures, and dense back-pointers for every node would
/// dominate memory).
struct NodeTable {
  std::span<double> cost;
  std::span<Back> back_dense;
  std::vector<std::uint32_t> feasible;  // sorted after compaction
  std::vector<Back> back_compact;       // parallel to `feasible`

  /// Pareto dominance pruning.  An entry (D, p, cost) is dominated by
  /// (D', p, cost') with D' ≤ D componentwise and cost' ≤ cost: every
  /// parent combination accepting the former accepts the latter with the
  /// same cut/presence choices and charges (those read only j and p),
  /// passes the same capacity checks (smaller demands), and produces a
  /// dominating parent entry — so dropping dominated states preserves the
  /// optimum.  This is what keeps deep hierarchies tractable in practice.
  /// Returns the number of entries dropped.
  std::size_t prune_dominated(const SignatureSpace& space) {
    const int height = space.height();
    std::vector<std::uint32_t> order = feasible;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return cost[a] != cost[b] ? cost[a] < cost[b] : a < b;
              });
    // kept[p] = surviving entries of presence class p, in cost order; a
    // candidate is dominated iff some earlier (cheaper) kept entry has
    // componentwise-smaller demand.
    std::vector<std::vector<std::uint32_t>> kept(
        static_cast<std::size_t>(height) + 1);
    std::vector<std::uint32_t> survivors;
    survivors.reserve(order.size());
    for (const std::uint32_t s : order) {
      const auto p = static_cast<std::size_t>(space.present(s));
      bool dominated = false;
      for (const std::uint32_t k : kept[p]) {
        bool leq = true;
        for (int j = 1; j <= height && leq; ++j) {
          leq = space.level(k, j) <= space.level(s, j);
        }
        if (leq) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        kept[p].push_back(s);
        survivors.push_back(s);
      }
    }
    const std::size_t pruned = feasible.size() - survivors.size();
    feasible = std::move(survivors);
    return pruned;
  }

  void compact(DenseTablePool& pool) {
    std::sort(feasible.begin(), feasible.end());
    back_compact.resize(feasible.size());
    for (std::size_t i = 0; i < feasible.size(); ++i) {
      back_compact[i] = back_dense[feasible[i]];
    }
    pool.release_back(back_dense);
    back_dense = {};
  }

  const Back& lookup(std::uint32_t sig) const {
    const auto it = std::lower_bound(feasible.begin(), feasible.end(), sig);
    HGP_CHECK_MSG(it != feasible.end() && *it == sig,
                  "backtracking hit an infeasible signature");
    return back_compact[static_cast<std::size_t>(it - feasible.begin())];
  }

  void release_cost(DenseTablePool& pool) {
    pool.release_cost(cost);
    cost = {};
  }
};

void relax(NodeTable& table, std::size_t sig, double cost, const Back& back) {
  if (cost < table.cost[sig]) {
    if (table.cost[sig] == kInf) {
      table.feasible.push_back(narrow<std::uint32_t>(sig));
    }
    table.cost[sig] = cost;
    table.back_dense[sig] = back;
  }
}

// ---------------------------------------------------------------------------
// Clean-subtree reuse (incremental re-solve).
//
// A node's DP table is a pure function of its binarized subtree's content
// (rounded leaf demands, edge weights, uncuttable flags, shape) plus the
// signature-space parameters.  We hash that content bottom-up (SplitMix64
// finalizer mixing); a node whose hash — and every descendant's — is found
// in a compatible DpReuseStore is *rehydrated*: its compacted table is
// copied in and its dense cost span is materialized only when the parent's
// merge (or the root selection) will read it.  Everything else builds
// normally, so the sweep stays a single children-before-parents pass and
// the parallel subtree phase needs no changes beyond dispatching through
// process() instead of build_node().
//
// Bit-identity: stored entries were compacted+pruned exactly as a fresh
// build would compact+prune them (the store pins the effective prune flag
// and units_per_capacity).  When the demand *total* differs between solves
// the signature spaces differ only in their per-level bounds; stored ids
// are translated by decoding against the capturing space and re-interning
// (translation is monotone in the lex enumeration, so sorted feasible
// arrays stay sorted, and clean-subtree demands — bounded by the unchanged
// subtree demand sum ≤ both totals — always re-intern successfully; an
// npos can only mean a hash collision and demotes the node to a rebuild).

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t x) {
  return mix64(h ^ (x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2)));
}

/// Content hash of every binarized subtree, children-before-parents.
std::vector<std::uint64_t> subtree_hashes(const Tree& bt,
                                          const ScaledDemands& sd) {
  const auto n = static_cast<std::size_t>(bt.node_count());
  std::vector<std::uint64_t> hash(n, 0);
  const std::vector<Vertex>& pre = bt.preorder();
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const Vertex v = *it;
    const auto vi = static_cast<std::size_t>(v);
    const auto kids = bt.children(v);
    if (kids.empty()) {
      hash[vi] = hash_combine(
          0x6c656166ull,  // leaf tag
          static_cast<std::uint64_t>(sd.units[vi]));
      continue;
    }
    std::uint64_t h = hash_combine(0x696e6e6572ull,  // internal tag
                                   static_cast<std::uint64_t>(kids.size()));
    for (const Vertex c : kids) {
      const auto ci = static_cast<std::size_t>(c);
      const bool inf = bt.parent_edge_infinite(c);
      h = hash_combine(h, hash[ci]);
      h = hash_combine(h, inf ? 1u : 0u);
      h = hash_combine(
          h, inf ? 0 : std::bit_cast<std::uint64_t>(bt.parent_weight(c)));
    }
    hash[vi] = h;
  }
  return hash;
}

/// Per-node rehydrate/build decisions for one solve.  `entry[v]` non-null
/// means v rehydrates from that table (already in the *current* space);
/// `needs_dense[v]` means v's dense cost span will be read (by a built
/// parent or the root selection) and must be materialized.
struct ReusePlan {
  std::vector<std::uint64_t> hash;
  std::vector<const DpSubtreeEntry*> entry;
  std::vector<char> needs_dense;
  /// Owns tables translated from the store's space into the current one
  /// (empty feasible = cached translation failure).  Node-based map:
  /// pointers into it stay valid across inserts.
  std::unordered_map<std::uint64_t, DpSubtreeEntry> translated;
};

ReusePlan make_reuse_plan(const Tree& bt, const ScaledDemands& sd,
                          const SignatureSpace& space, int height,
                          bool prune, const DpReuseStore* store) {
  const auto n = static_cast<std::size_t>(bt.node_count());
  ReusePlan plan;
  plan.hash = subtree_hashes(bt, sd);
  plan.entry.assign(n, nullptr);
  plan.needs_dense.assign(n, 1);
  const bool usable = store != nullptr && !store->entries.empty() &&
                      store->height == height && store->prune == prune &&
                      store->units_per_capacity == sd.units_per_capacity &&
                      store->capacity == sd.capacity;
  if (!usable) return plan;

  const bool identity = store->total == sd.total;
  std::optional<SignatureSpace> old_space;
  std::unordered_map<std::size_t, std::size_t> id_map;
  if (!identity) {
    ScaledDemands old_sd;
    old_sd.units_per_capacity = store->units_per_capacity;
    old_sd.total = store->total;
    old_sd.capacity = store->capacity;
    old_space.emplace(old_sd, height);
  }
  auto translate_id = [&](std::uint32_t old_id) -> std::size_t {
    if (old_id >= old_space->size()) return SignatureSpace::npos;
    const auto it = id_map.find(old_id);
    if (it != id_map.end()) return it->second;
    Signature d(static_cast<std::size_t>(height));
    for (int j = 1; j <= height; ++j) {
      d[static_cast<std::size_t>(j - 1)] = old_space->level(old_id, j);
    }
    const std::size_t nid = space.id_of(d, old_space->present(old_id));
    id_map.emplace(old_id, nid);
    return nid;
  };
  auto resolve = [&](std::uint64_t h) -> const DpSubtreeEntry* {
    const auto sit = store->entries.find(h);
    if (sit == store->entries.end()) return nullptr;
    if (identity) return &sit->second;
    const auto [tit, fresh] = plan.translated.try_emplace(h);
    if (!fresh) {
      return tit->second.feasible.empty() ? nullptr : &tit->second;
    }
    const DpSubtreeEntry& e = sit->second;
    DpSubtreeEntry& out = tit->second;
    out.feasible.reserve(e.feasible.size());
    out.cost = e.cost;
    out.back.reserve(e.back.size());
    for (std::size_t i = 0; i < e.feasible.size(); ++i) {
      const std::size_t f = translate_id(e.feasible[i]);
      Back b = e.back[i];
      bool ok = f != SignatureSpace::npos;
      if (ok && b.sig1 != kNoSig) {
        const std::size_t t = translate_id(b.sig1);
        ok = t != SignatureSpace::npos;
        if (ok) b.sig1 = narrow<std::uint32_t>(t);
      }
      if (ok && b.sig2 != kNoSig) {
        const std::size_t t = translate_id(b.sig2);
        ok = t != SignatureSpace::npos;
        if (ok) b.sig2 = narrow<std::uint32_t>(t);
      }
      if (!ok) {
        out = DpSubtreeEntry{};
        return nullptr;
      }
      out.feasible.push_back(narrow<std::uint32_t>(f));
      out.back.push_back(b);
    }
    return &out;
  };

  const std::vector<Vertex>& pre = bt.preorder();
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const Vertex v = *it;
    const auto vi = static_cast<std::size_t>(v);
    bool kids_hit = true;
    for (const Vertex c : bt.children(v)) {
      kids_hit = kids_hit && plan.entry[static_cast<std::size_t>(c)] != nullptr;
    }
    if (kids_hit) plan.entry[vi] = resolve(plan.hash[vi]);
  }
  for (Vertex v = 0; v < bt.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    plan.needs_dense[vi] =
        v == bt.root() ||
        plan.entry[static_cast<std::size_t>(bt.parent(v))] == nullptr;
  }
  return plan;
}

// Cost accounting.  The solution's mirror regions partition (a subset of)
// the tree nodes into disjoint connected regions per level, nested across
// levels; the objective Σ_S w(δ(N(S))) · Δ_k/2 charges every edge Δ_k/2
// once per level-k region it borders.  For the edge above child c (cut
// level j_c, presence p_c) under a parent with presence depth p_v:
//   * closing charge: the child-side regions at levels (j_c, p_c] close
//     here, each putting the edge on its boundary → PS[p_c] − PS[j_c];
//   * surviving charge: the parent-side regions at levels (kept_c, p_v]
//     (kept_c = min(j_c, p_c)) do not continue into c → PS[p_v] − PS[kept_c];
// with PS[j] = Σ_{k≤j} Δ_k/2.  Uncuttable (dummy) edges must never border a
// region — a dummy *is* its original node — which forces j_c = p_c = p_v.
//
// With presence depths the DP's region space is exactly "disjoint connected
// node sets per level, covering all leaves, nested, demand ≤ CPs" — the
// canonical mirror regions of any RHGPT solution (components of
// T ∖ CUT_T(S), Definition 5) are of this form, so the DP optimum equals
// the Definition-4 objective (Σ of independent minimum separators) over the
// rounded demands, as Theorem 4 requires.
//
// Node-build order only needs children before parents; beyond that, node
// tables are independent — the parallel subtree phase exploits exactly
// this (disjoint subtrees touch disjoint table ranges), and every
// scheduling produces bit-identical tables.
struct DpEngine {
  const Tree& bt;
  const SignatureSpace& space;
  const ScaledDemands& sd;
  const std::vector<double>& ps;
  bool prune;
  std::vector<NodeTable>& tables;
  /// Rehydrate/build decisions; nullptr = build everything.
  const ReusePlan* plan = nullptr;
  /// Per-node capture slots for TreeDpOptions::reuse_out (indexed writes,
  /// so the parallel subtree phase needs no synchronization); nullptr =
  /// no capture.
  std::vector<DpSubtreeEntry>* capture = nullptr;

  /// Node dispatch: rehydrate a clean subtree's table or build it by
  /// merging.  Bit-identical either way.
  void process(Vertex v, DenseTablePool& pool, TreeDpStats& stats,
               PeriodicCheck& guard) const {
    const auto vi = static_cast<std::size_t>(v);
    const DpSubtreeEntry* e = plan == nullptr ? nullptr : plan->entry[vi];
    if (e != nullptr) {
      rehydrate(v, *e, pool, stats, guard);
      return;
    }
    build_node(v, pool, stats, guard);
    ++stats.nodes_built;
    if (capture != nullptr) {
      // The dense cost span is still alive here (released only by the
      // parent's merge), so gather the compacted costs now.
      const NodeTable& table = tables[vi];
      DpSubtreeEntry& slot = (*capture)[vi];
      slot.feasible = table.feasible;
      slot.back = table.back_compact;
      slot.cost.resize(table.feasible.size());
      for (std::size_t i = 0; i < table.feasible.size(); ++i) {
        slot.cost[i] = table.cost[table.feasible[i]];
      }
    }
  }

  void rehydrate(Vertex v, const DpSubtreeEntry& e, DenseTablePool& pool,
                 TreeDpStats& stats, PeriodicCheck& guard) const {
    guard.tick();
    const auto vi = static_cast<std::size_t>(v);
    NodeTable& table = tables[vi];
    table.feasible = e.feasible;
    table.back_compact = e.back;
    if (plan->needs_dense[vi] != 0) {
      table.cost = pool.acquire_cost();
      for (std::size_t i = 0; i < e.feasible.size(); ++i) {
        table.cost[e.feasible[i]] = e.cost[i];
      }
    }
    stats.feasible_states += e.feasible.size();
    ++stats.nodes_reused;
    if (capture != nullptr) (*capture)[vi] = e;
  }

  void build_node(Vertex v, DenseTablePool& pool, TreeDpStats& stats,
                  PeriodicCheck& guard) const {
    const int height = space.height();
    guard.tick();
    NodeTable& table = tables[static_cast<std::size_t>(v)];
    table.cost = pool.acquire_cost();
    table.back_dense = pool.acquire_back();

    const auto kids = bt.children(v);
    if (kids.empty()) {
      const std::size_t sig =
          space.uniform_id(sd.units[static_cast<std::size_t>(v)]);
      if (sig == SignatureSpace::npos) {
        throw SolveError(StatusCode::kInfeasible,
                         "leaf demand exceeds a level capacity");
      }
      relax(table, sig, 0.0, Back{});
    } else if (kids.size() == 1) {
      const Vertex c = kids[0];
      NodeTable& ct = tables[static_cast<std::size_t>(c)];
      const bool uncut = bt.parent_edge_infinite(c);
      const Weight w = uncut ? 0 : bt.parent_weight(c);
      for (const std::uint32_t s1 : ct.feasible) {
        const int p1 = space.present(s1);
        for (int j1 = uncut ? p1 : 0; j1 <= p1; ++j1) {
          const double closing =
              w * (ps[static_cast<std::size_t>(p1)] -
                   ps[static_cast<std::size_t>(j1)]);
          const int pv_lo = uncut ? p1 : j1;
          const int pv_hi = uncut ? p1 : height;
          for (int pv = pv_lo; pv <= pv_hi; ++pv) {
            const std::size_t up = space.lift(s1, j1, pv);
            HGP_ASSERT(up != SignatureSpace::npos);
            const double surviving =
                w * (ps[static_cast<std::size_t>(pv)] -
                     ps[static_cast<std::size_t>(j1)]);
            relax(table, up, ct.cost[s1] + closing + surviving,
                  Back{s1, kNoSig, narrow<std::int8_t>(j1), -1});
            ++stats.merge_operations;
            guard.tick();
          }
        }
      }
      ct.release_cost(pool);
    } else {
      HGP_CHECK_MSG(kids.size() == 2, "tree must be binarized");
      NodeTable& t1 = tables[static_cast<std::size_t>(kids[0])];
      NodeTable& t2 = tables[static_cast<std::size_t>(kids[1])];
      const bool inf1 = bt.parent_edge_infinite(kids[0]);
      const bool inf2 = bt.parent_edge_infinite(kids[1]);
      const Weight w1 = inf1 ? 0 : bt.parent_weight(kids[0]);
      const Weight w2 = inf2 ? 0 : bt.parent_weight(kids[1]);
      for (const std::uint32_t s1 : t1.feasible) {
        const int p1 = space.present(s1);
        const double base1 = t1.cost[s1];
        for (const std::uint32_t s2 : t2.feasible) {
          const int p2 = space.present(s2);
          const double base12 = base1 + t2.cost[s2];
          for (int j1 = inf1 ? p1 : 0; j1 <= p1; ++j1) {
            const double closing1 =
                w1 * (ps[static_cast<std::size_t>(p1)] -
                      ps[static_cast<std::size_t>(j1)]);
            for (int j2 = inf2 ? p2 : 0; j2 <= p2; ++j2) {
              const double closing2 =
                  w2 * (ps[static_cast<std::size_t>(p2)] -
                        ps[static_cast<std::size_t>(j2)]);
              // Parent presence: at least the kept prefixes, optionally
              // extended by phantom regions entering from above; dummy
              // edges pin it to the child's presence.
              int pv_lo = std::max(j1, j2);
              int pv_hi = height;
              if (inf1) pv_lo = pv_hi = p1;
              if (inf2) {
                pv_lo = std::max(pv_lo, p2);
                pv_hi = std::min(pv_hi, p2);
              }
              for (int pv = pv_lo; pv <= pv_hi; ++pv) {
                const std::size_t up = space.merge(s1, j1, s2, j2, pv);
                ++stats.merge_operations;
                guard.tick();
                if (up == SignatureSpace::npos) {
                  ++stats.merges_rejected;
                  continue;
                }
                const double surviving =
                    w1 * (ps[static_cast<std::size_t>(pv)] -
                          ps[static_cast<std::size_t>(j1)]) +
                    w2 * (ps[static_cast<std::size_t>(pv)] -
                          ps[static_cast<std::size_t>(j2)]);
                relax(table, up, base12 + closing1 + closing2 + surviving,
                      Back{s1, s2, narrow<std::int8_t>(j1),
                           narrow<std::int8_t>(j2)});
              }
            }
          }
        }
      }
      t1.release_cost(pool);
      t2.release_cost(pool);
    }
    if (prune) {
      stats.states_pruned += table.prune_dominated(space);
    }
    table.compact(pool);
    stats.feasible_states += table.feasible.size();
  }
};

/// Decomposition of the binarized tree into independent subtree slices for
/// the parallel bottom-up phase.  Subtrees are contiguous in the DFS
/// preorder, so a slice [lo, hi) walked in reverse visits children before
/// parents and touches no table outside the slice.  Nodes not covered by a
/// slice (the expanded ancestors) form the sequential "top" finished after
/// the tasks join.
struct SubtreePlan {
  std::vector<std::pair<std::size_t, std::size_t>> slices;
  std::vector<char> is_top;
};

SubtreePlan plan_subtrees(const Tree& bt, std::size_t target) {
  const auto n = static_cast<std::size_t>(bt.node_count());
  const std::vector<Vertex>& pre = bt.preorder();
  std::vector<std::size_t> pos(n, 0);
  std::vector<std::size_t> size(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    pos[static_cast<std::size_t>(pre[i])] = i;
  }
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const Vertex v = *it;
    if (v != bt.root()) {
      size[static_cast<std::size_t>(bt.parent(v))] +=
          size[static_cast<std::size_t>(v)];
    }
  }

  SubtreePlan plan;
  plan.is_top.assign(n, 0);
  // Repeatedly expand the largest frontier subtree into its children until
  // we have enough roughly-balanced tasks or the pieces get too small to
  // amortize scheduling.
  const std::size_t grain =
      std::max<std::size_t>(16, n / std::max<std::size_t>(1, 4 * target));
  auto by_size = [&](Vertex a, Vertex b) {
    return size[static_cast<std::size_t>(a)] <
           size[static_cast<std::size_t>(b)];
  };
  std::priority_queue<Vertex, std::vector<Vertex>, decltype(by_size)>
      frontier(by_size);
  frontier.push(bt.root());
  std::vector<Vertex> leaves_of_plan;
  while (!frontier.empty()) {
    const Vertex top = frontier.top();
    const bool expand =
        !bt.is_leaf(top) &&
        (frontier.size() + leaves_of_plan.size() < target ||
         size[static_cast<std::size_t>(top)] > grain * 4) &&
        size[static_cast<std::size_t>(top)] > grain;
    if (!expand) break;
    frontier.pop();
    plan.is_top[static_cast<std::size_t>(top)] = 1;
    for (const Vertex c : bt.children(top)) {
      if (bt.is_leaf(c) || size[static_cast<std::size_t>(c)] <= grain) {
        leaves_of_plan.push_back(c);
      } else {
        frontier.push(c);
      }
    }
  }
  while (!frontier.empty()) {
    leaves_of_plan.push_back(frontier.top());
    frontier.pop();
  }
  for (const Vertex v : leaves_of_plan) {
    const std::size_t lo = pos[static_cast<std::size_t>(v)];
    plan.slices.emplace_back(lo, lo + size[static_cast<std::size_t>(v)]);
  }
  return plan;
}

/// Number of subtree tasks worth creating on `pool` right now, sized by
/// the PR-3 `pool.queue_depth` gauge: a backlogged pool (the runtime
/// already fans a forest of trees across it) gets a small fan-out — extra
/// tasks would only queue — while an idle pool gets 2× its workers for
/// load balancing.
std::size_t subtree_fanout(const ThreadPool& pool) {
  const std::size_t workers = pool.thread_count();
  std::size_t backlog = pool.pending();
#if HGP_OBS_ENABLED
  static obs::Gauge& queue_depth =
      obs::MetricsRegistry::global().gauge("pool.queue_depth");
  backlog = std::max(
      backlog, static_cast<std::size_t>(
                   std::max<std::int64_t>(0, queue_depth.value())));
#endif
  const std::size_t available = backlog >= workers ? 1 : workers - backlog;
  return available * 2;
}

}  // namespace

TreeDpResult solve_rhgpt(const Tree& t, const Hierarchy& h,
                         const TreeDpOptions& opt) {
  const int height = h.height();
  TreeDpResult result;
  HGP_TRACE_SPAN_ARG("dp.solve", t.leaf_count());
  if (opt.exec != nullptr) opt.exec->check("tree DP setup");
  PeriodicCheck guard(opt.exec, "tree DP merge loop", 4096);

  // 1. Binarize and round demands (leaf demands are identical after
  //    binarization, only node ids differ).
  const BinarizedTree bin = binarize(t);
  const Tree& bt = bin.tree;
  const ScaledDemands sd =
      scale_demands(bt, h, opt.epsilon, opt.units_override);
  if (sd.total > sd.capacity_at(0)) {
    std::ostringstream os;
    os << "instance infeasible: total rounded demand " << sd.total
       << " units exceeds hierarchy capacity " << sd.capacity_at(0)
       << " units";
    throw SolveError(StatusCode::kInfeasible, os.str());
  }

  // 2. Signature space and the Δ/2 prefix sums.
  const SignatureSpace space(sd, height);
  result.stats.signature_count = space.size();
  std::vector<double> ps(static_cast<std::size_t>(height) + 1, 0.0);
  for (int k = 1; k <= height; ++k) {
    ps[static_cast<std::size_t>(k)] =
        ps[static_cast<std::size_t>(k - 1)] + (h.cm(k - 1) - h.cm(k)) / 2.0;
  }

  // 3. Bottom-up DP.  Independent subtrees run as pool tasks when a pool
  //    is supplied (each task on its own arena-backed workspace, so the
  //    hot loops never contend); the remaining top of the tree — and the
  //    whole tree in the sequential case — runs on the caller's thread.
  //    All workspaces outlive step 4: the root's cost span is read there.
  std::vector<NodeTable> tables(static_cast<std::size_t>(bt.node_count()));
  const bool prune =
      opt.force_prune || (opt.prune_dominated && dp_prune_env_enabled());
  std::optional<ReusePlan> reuse_plan;
  std::vector<DpSubtreeEntry> capture_slots;
  if (opt.reuse_in != nullptr || opt.reuse_out != nullptr) {
    reuse_plan.emplace(
        make_reuse_plan(bt, sd, space, height, prune, opt.reuse_in));
  }
  if (opt.reuse_out != nullptr) {
    capture_slots.resize(static_cast<std::size_t>(bt.node_count()));
  }
  const DpEngine engine{bt,     space,
                        sd,     ps,
                        prune,  tables,
                        reuse_plan.has_value() ? &*reuse_plan : nullptr,
                        opt.reuse_out != nullptr ? &capture_slots : nullptr};
  std::vector<std::unique_ptr<DenseTablePool>> pools;
  pools.push_back(std::make_unique<DenseTablePool>(space.size()));
  DenseTablePool& main_pool = *pools.front();

  bool parallel = false;
  if (opt.pool != nullptr && opt.pool->thread_count() > 0 &&
      !opt.pool->is_worker_thread() &&
      bt.node_count() >= opt.min_parallel_nodes) {
    const SubtreePlan plan = plan_subtrees(bt, subtree_fanout(*opt.pool));
    if (plan.slices.size() >= 2) {
      parallel = true;
      HGP_TRACE_SPAN_ARG("dp.subtree_tasks", plan.slices.size());
      result.stats.subtree_tasks = plan.slices.size();
      std::vector<TreeDpStats> task_stats(plan.slices.size());
      std::vector<std::future<void>> futures;
      futures.reserve(plan.slices.size());
      for (std::size_t i = 0; i < plan.slices.size(); ++i) {
        pools.push_back(std::make_unique<DenseTablePool>(space.size()));
        DenseTablePool& task_pool = *pools.back();
        const auto [lo, hi] = plan.slices[i];
        TreeDpStats& stats = task_stats[i];
        futures.push_back(opt.pool->submit(
            [&engine, &bt, &task_pool, &stats, lo, hi, exec = opt.exec] {
              PeriodicCheck task_guard(exec, "tree DP subtree task", 4096);
              for (std::size_t idx = hi; idx-- > lo;) {
                engine.process(bt.preorder()[idx], task_pool, stats,
                               task_guard);
              }
            }));
      }
      std::exception_ptr first_error;
      for (auto& f : futures) {
        try {
          f.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
      for (const TreeDpStats& s : task_stats) {
        result.stats.feasible_states += s.feasible_states;
        result.stats.merge_operations += s.merge_operations;
        result.stats.merges_rejected += s.merges_rejected;
        result.stats.states_pruned += s.states_pruned;
        result.stats.nodes_built += s.nodes_built;
        result.stats.nodes_reused += s.nodes_reused;
      }
      // Finish the ancestors of the subtree roots, children-first.
      for (auto it = bt.preorder().rbegin(); it != bt.preorder().rend();
           ++it) {
        if (plan.is_top[static_cast<std::size_t>(*it)] != 0) {
          engine.process(*it, main_pool, result.stats, guard);
        }
      }
    }
  }
  if (!parallel) {
    for (auto it = bt.preorder().rbegin(); it != bt.preorder().rend(); ++it) {
      engine.process(*it, main_pool, result.stats, guard);
    }
  }
  for (const auto& pool : pools) {
    result.stats.arena_bytes += pool->bytes_reserved();
  }

  // 4. Pick the best root signature.
  const NodeTable& root_table = tables[static_cast<std::size_t>(bt.root())];
  std::size_t best_sig = SignatureSpace::npos;
  double best_cost = kInf;
  for (const std::uint32_t s : root_table.feasible) {
    if (root_table.cost[s] < best_cost) {
      best_cost = root_table.cost[s];
      best_sig = s;
    }
  }
  if (best_sig == SignatureSpace::npos) {
    throw SolveError(StatusCode::kInfeasible,
                     "no feasible RHGPT solution (capacities too tight for "
                     "the rounded demands)");
  }
  result.cost = best_cost;

  // 5. Reconstruct the family of collections by replaying back-pointers
  //    top-down.  active[k-1] = index of the (v,k)-active set within
  //    sets[k] (allocated for every present level; phantom regions that
  //    never absorb a leaf are filtered at the end), or -1 when absent.
  RhgptSolution& sol = result.solution;
  sol.sets.assign(static_cast<std::size_t>(height) + 1, {});
  sol.dp_cost = best_cost;
  sol.sets[0].emplace_back();  // the single level-0 set

  auto new_set = [&](int level) {
    sol.sets[static_cast<std::size_t>(level)].emplace_back();
    return narrow<int>(sol.sets[static_cast<std::size_t>(level)].size() - 1);
  };

  std::vector<int> root_active(static_cast<std::size_t>(height), -1);
  for (int j = 1; j <= space.present(best_sig); ++j) {
    root_active[static_cast<std::size_t>(j - 1)] = new_set(j);
  }

  // Kept child regions join the parent's region; regions above the kept
  // prefix close into fresh sets (the merge() semantics of Claim 1).
  auto child_active = [&](std::size_t child_sig, int cut_level,
                          const std::vector<int>& parent_active) {
    std::vector<int> active(static_cast<std::size_t>(height), -1);
    const int pc = space.present(child_sig);
    const int kept = std::min(cut_level, pc);
    for (int k = 1; k <= pc; ++k) {
      if (k <= kept) {
        HGP_ASSERT(parent_active[static_cast<std::size_t>(k - 1)] >= 0);
        active[static_cast<std::size_t>(k - 1)] =
            parent_active[static_cast<std::size_t>(k - 1)];
      } else {
        active[static_cast<std::size_t>(k - 1)] = new_set(k);
      }
    }
    return active;
  };

  auto rec = [&](auto&& self, Vertex v, std::uint32_t sig,
                 const std::vector<int>& active) -> void {
    const auto kids = bt.children(v);
    if (kids.empty()) {
      const Vertex orig = bin.original_of[static_cast<std::size_t>(v)];
      HGP_ASSERT(orig != kInvalidVertex && t.is_leaf(orig));
      sol.sets[0][0].push_back(orig);
      for (int j = 1; j <= height; ++j) {
        const int id = active[static_cast<std::size_t>(j - 1)];
        HGP_ASSERT(id >= 0);  // leaves are present at every level
        sol.sets[static_cast<std::size_t>(j)][static_cast<std::size_t>(id)]
            .push_back(orig);
      }
      return;
    }
    const Back& back = tables[static_cast<std::size_t>(v)].lookup(sig);
    self(self, kids[0], back.sig1,
         child_active(back.sig1, back.j1, active));
    if (kids.size() == 2) {
      self(self, kids[1], back.sig2,
           child_active(back.sig2, back.j2, active));
    }
  };
  rec(rec, bt.root(), narrow<std::uint32_t>(best_sig), root_active);

  // Drop phantom sets (regions that never absorbed a leaf) and sort.
  for (auto& level : sol.sets) {
    level.erase(std::remove_if(level.begin(), level.end(),
                               [](const std::vector<Vertex>& s) {
                                 return s.empty();
                               }),
                level.end());
    for (auto& set : level) std::sort(set.begin(), set.end());
  }

  // Demand scaling re-indexed by original tree nodes for the caller.
  result.scaled.units_per_capacity = sd.units_per_capacity;
  result.scaled.total = sd.total;
  result.scaled.capacity = sd.capacity;
  result.scaled.units.assign(static_cast<std::size_t>(t.node_count()), 0);
  for (Vertex b = 0; b < bt.node_count(); ++b) {
    const Vertex orig = bin.original_of[static_cast<std::size_t>(b)];
    if (orig != kInvalidVertex && bt.is_leaf(b)) {
      result.scaled.units[static_cast<std::size_t>(orig)] =
          sd.units[static_cast<std::size_t>(b)];
    }
  }

  // 6. Hand this solve's subtree tables to the caller so the next
  //    incremental solve can skip clean subtrees.  Only successful solves
  //    populate the store (the assembly sits after the feasibility throw).
  if (opt.reuse_out != nullptr) {
    DpReuseStore& store = *opt.reuse_out;
    store.height = height;
    store.prune = prune;
    store.units_per_capacity = sd.units_per_capacity;
    store.total = sd.total;
    store.capacity = sd.capacity;
    store.entries.clear();
    store.entries.reserve(capture_slots.size());
    for (Vertex v = 0; v < bt.node_count(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      store.entries[reuse_plan->hash[vi]] = std::move(capture_slots[vi]);
    }
  }
  publish_dp_metrics(result.stats, bt, sd);
  return result;
}

}  // namespace hgp
