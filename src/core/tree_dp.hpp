// The RHGPT dynamic program (§3: Definition 8, Claim 1, Theorem 4).
//
// Solves the relaxed hierarchical partitioning problem on a tree exactly
// (over rounded demands): for every tree node v and every signature
// (D_v^(1) ≥ … ≥ D_v^(h)) it computes the cheapest partial solution whose
// (v,j)-active sets have exactly those demands; parents combine children
// through the (j1,j2)-consistent merge of Definition 9, paying
// w(edge) · (cm(k-1)-cm(k))/2 for every level k at which a non-empty child
// active set is closed.  Theorem 3 guarantees an optimal *nice* solution
// has this shape, so the DP optimum equals the RHGPT optimum.
//
// Implementation notes (beyond the paper):
//  * the input tree is binarized first (uncuttable dummy edges), so the
//    merge never sees more than two children;
//  * signatures are interned to dense ids; the merge derives the parent id
//    arithmetically instead of enumerating parent signatures, which brings
//    the per-node cost to O(|feasible1| · |feasible2| · h²) — polynomially
//    far below the paper's crude O(D^(2h+2)) bound, with the same result;
//  * cut levels are enumerated only up to each signature's support (levels
//    with D > 0); cutting above the support is a no-op.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/binarize.hpp"
#include "core/demand.hpp"
#include "core/rhgpt.hpp"
#include "core/signature.hpp"
#include "graph/tree.hpp"
#include "hierarchy/hierarchy.hpp"
#include "util/deadline.hpp"

namespace hgp {

class ThreadPool;

/// One DP back-pointer (children's signature ids + cut levels), exposed so
/// clean-subtree tables can be carried across solves via DpReuseStore.
constexpr std::uint32_t kDpNoSig = 0xffffffffu;
struct DpBack {
  std::uint32_t sig1 = kDpNoSig;
  std::uint32_t sig2 = kDpNoSig;
  std::int8_t j1 = -1;
  std::int8_t j2 = -1;
};

/// Compacted DP table of one (binarized) subtree root: feasible signature
/// ids (sorted), their costs, and their back-pointers, all in the space of
/// the solve that captured them.
struct DpSubtreeEntry {
  std::vector<std::uint32_t> feasible;
  std::vector<double> cost;
  std::vector<DpBack> back;
};

/// Cross-solve cache of per-subtree DP tables, keyed by a content hash of
/// the binarized subtree (rounded leaf demands, edge weights, uncuttable
/// flags, shape).  A node's table is a pure function of that content given
/// the signature-space parameters, so a later solve over a mutated tree
/// can rehydrate the tables of every untouched ("clean") subtree instead
/// of re-merging it — the structural locality the incremental re-solve
/// path (src/runtime/incremental.hpp) is built on.
///
/// The capturing solve's space parameters are recorded so a consuming
/// solve can check compatibility: height, effective pruning flag and
/// units_per_capacity must match exactly (otherwise the store is ignored);
/// a different demand *total* only shifts the per-level signature bounds,
/// which solve_rhgpt handles by translating stored ids between spaces —
/// clean-subtree signatures always survive translation because their
/// demands are bounded by the (unchanged) subtree demand sum.
struct DpReuseStore {
  int height = 0;
  bool prune = false;
  DemandUnits units_per_capacity = 0;
  DemandUnits total = 0;
  std::vector<DemandUnits> capacity;
  std::unordered_map<std::uint64_t, DpSubtreeEntry> entries;

  bool empty() const { return entries.empty(); }
};

struct TreeDpOptions {
  /// Demand rounding accuracy; U = ⌈n/ε⌉ units per leaf capacity.
  double epsilon = 0.25;
  /// Overrides U directly when > 0 (used by scaling experiments; coarser
  /// units = faster + larger rounding violation).
  DemandUnits units_override = 0;
  /// Pareto dominance pruning of DP states (same presence, componentwise
  /// ≥ demand, ≥ cost ⇒ dropped).  Provably lossless; off only for the
  /// pruning ablation benchmark.  The HGP_DP_PRUNE environment knob
  /// (default ON) additionally gates this process-wide, so A/B validation
  /// can disable pruning without touching call sites.
  bool prune_dominated = true;
  /// Forces dominance pruning ON even when HGP_DP_PRUNE turned it off —
  /// the service layer's memory-pressure degradation must be able to shed
  /// DP state regardless of the A/B knob.
  bool force_prune = false;
  /// Solves independent subtrees of the (binarized) tree concurrently on
  /// this pool, each task on its own arena-backed workspace.  nullptr —
  /// or a call made from one of the pool's own workers (forest-level
  /// parallelism already owns the pool) — runs the classic sequential
  /// bottom-up sweep.  Results are bit-identical either way.
  ThreadPool* pool = nullptr;
  /// Minimum binarized-tree size before the parallel subtree phase is
  /// worth its scheduling overhead.
  Vertex min_parallel_nodes = 128;
  /// Cooperative deadline/cancellation; checked every few thousand merge
  /// relaxations.  nullptr = unconstrained.  Must outlive the call.
  const ExecContext* exec = nullptr;
  /// Clean-subtree tables from a previous solve.  Subtrees whose content
  /// hash (and every descendant's) is found here are rehydrated instead of
  /// rebuilt; results are bit-identical to a from-scratch solve either
  /// way.  Ignored when incompatible (see DpReuseStore).  Must outlive the
  /// call.
  const DpReuseStore* reuse_in = nullptr;
  /// When non-null, receives this solve's per-subtree tables (parameters +
  /// entries are overwritten) for the *next* incremental solve to consume.
  DpReuseStore* reuse_out = nullptr;
};

// Per-solve DP work counters.  Collected as plain local increments inside
// the merge loop (never atomics — the loop is the library's hottest path)
// and published into the obs metrics registry once per solve, so the
// registry's `dp.*` counters aggregate the same quantities across solves.
struct TreeDpStats {
  std::size_t signature_count = 0;   ///< |Sig| for this instance
  std::size_t feasible_states = 0;   ///< Σ_v |feasible signatures at v|
  std::size_t merge_operations = 0;  ///< relaxation steps performed
  std::size_t merges_rejected = 0;   ///< (j1,j2)-merges outside the space
  std::size_t states_pruned = 0;     ///< dominance-pruned DP entries
  std::size_t subtree_tasks = 0;     ///< parallel subtree DP tasks (0 = seq)
  std::size_t arena_bytes = 0;       ///< workspace arena high-water, bytes
  std::size_t nodes_built = 0;       ///< node tables computed by merging
  std::size_t nodes_reused = 0;      ///< node tables rehydrated from reuse_in
};

struct TreeDpResult {
  /// Optimal RHGPT solution over rounded demands, on the ORIGINAL tree's
  /// leaf ids.
  RhgptSolution solution;
  /// DP optimum (equals rhgpt_cost(solution) up to fp rounding).
  double cost = 0;
  /// The demand rounding used (indexed by original tree nodes).
  ScaledDemands scaled;
  TreeDpStats stats;
};

/// Solves RHGPT on tree `t` against hierarchy `h`.
/// Requires leaf demands on `t`; throws SolveError(kInfeasible) if the
/// instance cannot fit (total rounded demand exceeds total hierarchy
/// capacity), SolveError{kDeadlineExceeded|kCancelled} when opt.exec says
/// the budget is gone.
TreeDpResult solve_rhgpt(const Tree& t, const Hierarchy& h,
                         const TreeDpOptions& opt = {});

}  // namespace hgp
