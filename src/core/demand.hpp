// Demand rounding (§3, "Dynamic Programming" preamble).
//
// The paper scales demands by ε/n and floors:  d'(v) = ⌊d(v) · n/ε⌋, i.e.
// U = ⌈n/ε⌉ integer demand units per unit of leaf capacity.  The flooring
// under-counts each job by < 1 unit, and since at most n jobs land on one
// H-node the real load exceeds the unit-counted load by at most ε·CP —
// the (1+ε) factor of Theorem 2.
//
// One refinement over the paper's description: jobs are rounded to at least
// one unit (d' = max(1, ⌊d·U⌋)).  The signature DP cannot distinguish "no
// active set" from "an active set of zero-demand jobs", so zero-unit jobs
// would make cut accounting ambiguous; a one-unit floor keeps every job
// visible.  Rounding *up* can only tighten capacities, never loosen them,
// so the (1+ε) violation guarantee is unaffected.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.hpp"
#include "hierarchy/hierarchy.hpp"

namespace hgp {

using DemandUnits = std::int64_t;

struct ScaledDemands {
  /// Units per unit of leaf capacity (U above).
  DemandUnits units_per_capacity = 0;
  /// Rounded demand per tree node (internal nodes 0), in units.
  std::vector<DemandUnits> units;
  /// Σ units — the paper's D.
  DemandUnits total = 0;
  /// Scaled capacity per hierarchy level: CPs[j] = CP[j] · U, j in [0, h].
  std::vector<DemandUnits> capacity;

  DemandUnits capacity_at(int level) const {
    return capacity[static_cast<std::size_t>(level)];
  }
};

/// Chooses U from ε (U = ⌈n/ε⌉ with n = leaf count) unless units_override
/// > 0, then rounds every leaf demand of `t`.
ScaledDemands scale_demands(const Tree& t, const Hierarchy& h, double epsilon,
                            DemandUnits units_override = 0);

}  // namespace hgp
