#include "core/binarize.hpp"

namespace hgp {

BinarizedTree binarize(const Tree& t) {
  std::vector<Vertex> parent;
  std::vector<Weight> weight;
  std::vector<char> infinite;
  std::vector<Vertex> original_of;

  auto new_node = [&](Vertex par, Weight w, char inf, Vertex orig) {
    parent.push_back(par);
    weight.push_back(w);
    infinite.push_back(inf);
    original_of.push_back(orig);
    return narrow<Vertex>(parent.size() - 1);
  };

  // Map original node → binarized node, built in preorder so parents exist
  // before their children are attached.
  std::vector<Vertex> image(static_cast<std::size_t>(t.node_count()),
                            kInvalidVertex);
  image[static_cast<std::size_t>(t.root())] =
      new_node(kInvalidVertex, 0, 0, t.root());

  for (const Vertex v : t.preorder()) {
    const auto kids = t.children(v);
    // `attach` is the binarized node receiving the next child; it starts at
    // v's image and descends through dummies as the comb grows.
    Vertex attach = image[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const bool need_dummy = kids.size() > 2 && i >= 1 && i + 1 < kids.size();
      if (need_dummy) {
        // Chain one dummy under `attach` via an uncuttable edge, then hang
        // the child off the dummy.
        attach = new_node(attach, 0, 1, kInvalidVertex);
      }
      const Vertex c = kids[i];
      image[static_cast<std::size_t>(c)] =
          new_node(attach, t.parent_weight(c),
                   t.parent_edge_infinite(c) ? 1 : 0, c);
    }
  }

  BinarizedTree out;
  out.tree = Tree::from_parents(std::move(parent), std::move(weight),
                                std::move(infinite));
  out.original_of = std::move(original_of);
  if (t.has_demands()) {
    std::vector<double> demand(
        static_cast<std::size_t>(out.tree.node_count()), 0.0);
    for (Vertex b = 0; b < out.tree.node_count(); ++b) {
      const Vertex orig = out.original_of[static_cast<std::size_t>(b)];
      if (orig != kInvalidVertex && t.is_leaf(orig)) {
        demand[static_cast<std::size_t>(b)] = t.demand(orig);
      }
    }
    out.tree.set_demands(std::move(demand));
  }
  return out;
}

}  // namespace hgp
