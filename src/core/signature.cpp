#include "core/signature.hpp"

#include <algorithm>
#include <limits>

namespace hgp {

SignatureSpace::SignatureSpace(const ScaledDemands& scaled, int height)
    : height_(height) {
  HGP_CHECK(height >= 1);
  HGP_CHECK(narrow<int>(scaled.capacity.size()) == height + 1);
  bound_.resize(static_cast<std::size_t>(height));
  for (int j = 1; j <= height; ++j) {
    bound_[static_cast<std::size_t>(j - 1)] =
        std::min(scaled.capacity[static_cast<std::size_t>(j)], scaled.total);
    HGP_CHECK(bound_[static_cast<std::size_t>(j - 1)] >= 0);
  }
  // Mixed-radix packing of the demand tuple: key = Σ_j D^(j) · stride[j].
  stride_.resize(static_cast<std::size_t>(height));
  std::size_t span = 1;
  for (int j = height; j >= 1; --j) {
    stride_[static_cast<std::size_t>(j - 1)] =
        static_cast<DemandUnits>(span);
    span *=
        static_cast<std::size_t>(bound_[static_cast<std::size_t>(j - 1)]) + 1;
    HGP_CHECK_MSG(span < (std::size_t{1} << 36),
                  "signature space too large; lower the demand resolution "
                  "(larger epsilon or explicit units_override)");
  }
  pack_to_tuple_.assign(span, npos);

  // Enumerate all non-increasing tuples within the bounds (depth-first).
  Signature cur(static_cast<std::size_t>(height), 0);
  auto emit = [&](const Signature& d) {
    const std::size_t key = pack(d);
    pack_to_tuple_[key] = support_.size();
    int support = 0;
    for (int k = 1; k <= height; ++k) {
      if (d[static_cast<std::size_t>(k - 1)] > 0) support = k;
    }
    support_.push_back(support);
    demands_.insert(demands_.end(), d.begin(), d.end());
  };
  auto rec = [&](auto&& self, int level, DemandUnits upper) -> void {
    if (level > height) {
      emit(cur);
      return;
    }
    const DemandUnits cap =
        std::min(upper, bound_[static_cast<std::size_t>(level - 1)]);
    for (DemandUnits d = 0; d <= cap; ++d) {
      cur[static_cast<std::size_t>(level - 1)] = d;
      self(self, level + 1, d);
    }
  };
  rec(rec, 1, std::numeric_limits<DemandUnits>::max());
  count_ = support_.size() * static_cast<std::size_t>(height + 1);
  zero_id_ = id_of(Signature(static_cast<std::size_t>(height), 0), 0);
  HGP_CHECK(zero_id_ != npos);
}

std::size_t SignatureSpace::pack(const Signature& d) const {
  std::size_t key = 0;
  for (int j = 1; j <= height_; ++j) {
    key += static_cast<std::size_t>(d[static_cast<std::size_t>(j - 1)]) *
           static_cast<std::size_t>(stride_[static_cast<std::size_t>(j - 1)]);
  }
  return key;
}

std::size_t SignatureSpace::id_of(const Signature& d, int present) const {
  if (narrow<int>(d.size()) != height_) return npos;
  if (present < 0 || present > height_) return npos;
  DemandUnits prev = std::numeric_limits<DemandUnits>::max();
  int support = 0;
  for (int j = 1; j <= height_; ++j) {
    const DemandUnits x = d[static_cast<std::size_t>(j - 1)];
    if (x < 0 || x > bound_[static_cast<std::size_t>(j - 1)] || x > prev) {
      return npos;
    }
    if (x > 0) support = j;
    prev = x;
  }
  if (present < support) return npos;
  const std::size_t tuple = pack_to_tuple_[pack(d)];
  HGP_ASSERT(tuple != npos);
  return compose(tuple, present);
}

std::size_t SignatureSpace::uniform_id(DemandUnits units) const {
  return id_of(Signature(static_cast<std::size_t>(height_), units), height_);
}

std::size_t SignatureSpace::merge(std::size_t a, int j1, std::size_t b,
                                  int j2, int present) const {
  HGP_ASSERT(a < count_ && b < count_);
  const int kept1 = std::min(j1, this->present(a));
  const int kept2 = std::min(j2, this->present(b));
  const int base = std::max(kept1, kept2);
  if (present < base || present > height_) return npos;
  Signature out(static_cast<std::size_t>(height_), 0);
  for (int k = 1; k <= height_; ++k) {
    const DemandUnits da = k <= kept1 ? level(a, k) : 0;
    const DemandUnits db = k <= kept2 ? level(b, k) : 0;
    const DemandUnits d = da + db;
    if (d > bound_[static_cast<std::size_t>(k - 1)]) return npos;
    out[static_cast<std::size_t>(k - 1)] = d;
  }
  // Masked child tuples are non-increasing, so the sum is too; presence ≥
  // base ≥ support by construction.
  const std::size_t tuple = pack_to_tuple_[pack(out)];
  HGP_ASSERT(tuple != npos);
  return compose(tuple, present);
}

std::size_t SignatureSpace::lift(std::size_t a, int j1, int present) const {
  HGP_ASSERT(a < count_);
  const int kept = std::min(j1, this->present(a));
  if (present < kept || present > height_) return npos;
  Signature out(static_cast<std::size_t>(height_), 0);
  for (int k = 1; k <= kept; ++k) {
    out[static_cast<std::size_t>(k - 1)] = level(a, k);
  }
  const std::size_t tuple = pack_to_tuple_[pack(out)];
  HGP_ASSERT(tuple != npos);
  return compose(tuple, present);
}

}  // namespace hgp
