#include "core/signature.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "util/contracts.hpp"

namespace hgp {

SignatureSpace::SignatureSpace(const ScaledDemands& scaled, int height)
    : height_(height) {
  HGP_CHECK(height >= 1);
  HGP_CHECK(narrow<int>(scaled.capacity.size()) == height + 1);
  bound_.resize(static_cast<std::size_t>(height));
  for (int j = 1; j <= height; ++j) {
    bound_[static_cast<std::size_t>(j - 1)] =
        std::min(scaled.capacity[static_cast<std::size_t>(j)], scaled.total);
    HGP_CHECK(bound_[static_cast<std::size_t>(j - 1)] >= 0);
  }
  // Mixed-radix packing of the demand tuple: key = Σ_j D^(j) · stride[j].
  stride_.resize(static_cast<std::size_t>(height));
  std::size_t span = 1;
  for (int j = height; j >= 1; --j) {
    stride_[static_cast<std::size_t>(j - 1)] =
        static_cast<DemandUnits>(span);
    span *=
        static_cast<std::size_t>(bound_[static_cast<std::size_t>(j - 1)]) + 1;
    HGP_CHECK_MSG(span < (std::size_t{1} << 36),
                  "signature space too large; lower the demand resolution "
                  "(larger epsilon or explicit units_override)");
  }
  // Enumerate all non-increasing tuples within the bounds (depth-first).
  // Two passes: count first, then fill the arena-backed interned tables
  // with exactly-sized allocations (the arena hands out contiguous blocks,
  // so the hot-path lookups walk dense, cache-friendly memory).
  Signature cur(static_cast<std::size_t>(height), 0);
  auto rec = [&](auto&& self, int level, DemandUnits upper,
                 auto&& emit) -> void {
    if (level > height) {
      emit(cur);
      return;
    }
    const DemandUnits cap =
        std::min(upper, bound_[static_cast<std::size_t>(level - 1)]);
    for (DemandUnits d = 0; d <= cap; ++d) {
      cur[static_cast<std::size_t>(level - 1)] = d;
      self(self, level + 1, d, emit);
    }
  };
  std::size_t tuple_count = 0;
  rec(rec, 1, std::numeric_limits<DemandUnits>::max(),
      [&](const Signature&) { ++tuple_count; });

  const auto h_sz = static_cast<std::size_t>(height);
  demands_ = arena_.allocate<DemandUnits>(tuple_count * h_sz);
  support_ = arena_.allocate<int>(tuple_count);
  prefix_key_ = arena_.allocate<std::size_t>(tuple_count * (h_sz + 1));
  pack_to_tuple_ = arena_.allocate_filled<std::size_t>(span, npos);

  std::size_t next = 0;
  rec(rec, 1, std::numeric_limits<DemandUnits>::max(),
      [&](const Signature& d) {
        const std::size_t t = next++;
        pack_to_tuple_[pack(d)] = t;
        int support = 0;
        std::size_t key = 0;
        prefix_key_[t * (h_sz + 1)] = 0;
        for (int k = 1; k <= height; ++k) {
          const DemandUnits x = d[static_cast<std::size_t>(k - 1)];
          if (x > 0) support = k;
          demands_[t * h_sz + static_cast<std::size_t>(k - 1)] = x;
          key += static_cast<std::size_t>(x) *
                 static_cast<std::size_t>(
                     stride_[static_cast<std::size_t>(k - 1)]);
          prefix_key_[t * (h_sz + 1) + static_cast<std::size_t>(k)] = key;
        }
        support_[t] = support;
      });
  HGP_ASSERT(next == tuple_count);
  count_ = tuple_count * static_cast<std::size_t>(height + 1);
  zero_id_ = id_of(Signature(static_cast<std::size_t>(height), 0), 0);
  HGP_CHECK(zero_id_ != npos);
}

std::size_t SignatureSpace::pack(const Signature& d) const {
  std::size_t key = 0;
  for (int j = 1; j <= height_; ++j) {
    key += static_cast<std::size_t>(d[static_cast<std::size_t>(j - 1)]) *
           static_cast<std::size_t>(stride_[static_cast<std::size_t>(j - 1)]);
  }
  return key;
}

std::size_t SignatureSpace::id_of(const Signature& d, int present) const {
  if (narrow<int>(d.size()) != height_) return npos;
  if (present < 0 || present > height_) return npos;
  DemandUnits prev = std::numeric_limits<DemandUnits>::max();
  int support = 0;
  for (int j = 1; j <= height_; ++j) {
    const DemandUnits x = d[static_cast<std::size_t>(j - 1)];
    if (x < 0 || x > bound_[static_cast<std::size_t>(j - 1)] || x > prev) {
      return npos;
    }
    if (x > 0) support = j;
    prev = x;
  }
  if (present < support) return npos;
  const std::size_t tuple = pack_to_tuple_[pack(d)];
  HGP_ASSERT(tuple != npos);
  return compose(tuple, present);
}

std::size_t SignatureSpace::uniform_id(DemandUnits units) const {
  return id_of(Signature(static_cast<std::size_t>(height_), units), height_);
}

std::size_t SignatureSpace::merge(std::size_t a, int j1, std::size_t b,
                                  int j2, int present) const {
  // Definition 9 preconditions: both children are interned signatures and
  // the cut levels lie within the hierarchy.
  HGP_PRECONDITION_MSG(a < count_ && b < count_,
                       "merge children must be interned signature ids");
  HGP_PRECONDITION_MSG(j1 >= 0 && j1 <= height_ && j2 >= 0 && j2 <= height_,
                       "merge cut levels must lie in [0, h]");
  const int kept1 = std::min(j1, this->present(a));
  const int kept2 = std::min(j2, this->present(b));
  const int base = std::max(kept1, kept2);
  if (present < base || present > height_) return npos;
  // Capacity: only levels where BOTH masked prefixes contribute can
  // overflow — beyond min(kept1, kept2) a single interned child's demand is
  // within bound by construction.
  const int overlap = std::min(kept1, kept2);
  for (int k = 1; k <= overlap; ++k) {
    if (level(a, k) + level(b, k) > bound_[static_cast<std::size_t>(k - 1)]) {
      return npos;
    }
  }
  // Masked child tuples are non-increasing, so the sum is too; presence ≥
  // base ≥ support by construction.  The mixed-radix packing is linear and
  // the capacity check above rules out digit carries, so the merged
  // tuple's pack key is the sum of the precomputed masked-prefix keys —
  // no tuple is materialized on this path.
  const std::size_t tuple =
      pack_to_tuple_[prefix_key(tuple_of(a), kept1) +
                     prefix_key(tuple_of(b), kept2)];
  HGP_ASSERT(tuple != npos);
  const std::size_t merged = compose(tuple, present);
  // Definition 9 postcondition: a successful (j1,j2)-consistent merge is
  // itself a valid signature — monotone, within capacity, presence deep
  // enough for its support.  (The tuple is materialized only when the
  // contract layer is compiled in.)
  HGP_POSTCONDITION_MSG(
      [&] {
        Signature out(static_cast<std::size_t>(height_), 0);
        for (int k = 1; k <= height_; ++k) {
          out[static_cast<std::size_t>(k - 1)] =
              (k <= kept1 ? level(a, k) : 0) + (k <= kept2 ? level(b, k) : 0);
        }
        return id_of(out, present) == merged;
      }(),
      "consistent merge produced an invalid signature");
  return merged;
}

std::size_t SignatureSpace::lift(std::size_t a, int j1, int present) const {
  HGP_PRECONDITION_MSG(a < count_,
                       "lift child must be an interned signature id");
  HGP_PRECONDITION_MSG(j1 >= 0 && j1 <= height_,
                       "lift cut level must lie in [0, h]");
  const int kept = std::min(j1, this->present(a));
  if (present < kept || present > height_) return npos;
  // The lifted tuple is the masked prefix itself; its key is precomputed.
  const std::size_t tuple = pack_to_tuple_[prefix_key(tuple_of(a), kept)];
  HGP_ASSERT(tuple != npos);
  const std::size_t lifted = compose(tuple, present);
  HGP_POSTCONDITION_MSG(
      [&] {
        Signature out(static_cast<std::size_t>(height_), 0);
        for (int k = 1; k <= kept; ++k) {
          out[static_cast<std::size_t>(k - 1)] = level(a, k);
        }
        return id_of(out, present) == lifted;
      }(),
      "lift produced an invalid signature");
  return lifted;
}

void SignatureSpace::validate(const Signature& d, int present) const {
  if (narrow<int>(d.size()) != height_) {
    throw SolveError(StatusCode::kInternal,
                     "signature invariant violated: tuple must have h=" +
                         std::to_string(height_) + " levels, got " +
                         std::to_string(d.size()));
  }
  if (present < 0 || present > height_) {
    throw SolveError(StatusCode::kInternal,
                     "signature invariant violated: presence depth " +
                         std::to_string(present) + " outside [0, h]");
  }
  DemandUnits prev = std::numeric_limits<DemandUnits>::max();
  int support = 0;
  for (int j = 1; j <= height_; ++j) {
    const DemandUnits x = d[static_cast<std::size_t>(j - 1)];
    if (x < 0) {
      throw SolveError(StatusCode::kInternal,
                       "signature invariant violated: negative demand at "
                       "level " +
                           std::to_string(j));
    }
    if (x > bound_[static_cast<std::size_t>(j - 1)]) {
      throw SolveError(StatusCode::kInternal,
                       "signature invariant violated: demand " +
                           std::to_string(x) + " exceeds capacity bound at "
                           "level " +
                           std::to_string(j));
    }
    if (x > prev) {
      throw SolveError(StatusCode::kInternal,
                       "signature invariant violated: Corollary 1 "
                       "monotonicity fails at level " +
                           std::to_string(j) + " (D rises " +
                           std::to_string(prev) + " -> " +
                           std::to_string(x) + ")");
    }
    if (x > 0) support = j;
    prev = x;
  }
  if (present < support) {
    throw SolveError(StatusCode::kInternal,
                     "signature invariant violated: presence depth " +
                         std::to_string(present) + " shallower than demand "
                         "support " +
                         std::to_string(support));
  }
}

void SignatureSpace::validate(std::size_t id) const {
  if (id >= count_) {
    throw SolveError(StatusCode::kInternal,
                     "signature invariant violated: id " +
                         std::to_string(id) + " out of range (space size " +
                         std::to_string(count_) + ")");
  }
  Signature d(static_cast<std::size_t>(height_), 0);
  for (int j = 1; j <= height_; ++j) {
    d[static_cast<std::size_t>(j - 1)] = level(id, j);
  }
  validate(d, present(id));
}

}  // namespace hgp
