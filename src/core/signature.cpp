#include "core/signature.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "util/contracts.hpp"

namespace hgp {

SignatureSpace::SignatureSpace(const ScaledDemands& scaled, int height)
    : height_(height) {
  HGP_CHECK(height >= 1);
  HGP_CHECK(narrow<int>(scaled.capacity.size()) == height + 1);
  bound_.resize(static_cast<std::size_t>(height));
  for (int j = 1; j <= height; ++j) {
    bound_[static_cast<std::size_t>(j - 1)] =
        std::min(scaled.capacity[static_cast<std::size_t>(j)], scaled.total);
    HGP_CHECK(bound_[static_cast<std::size_t>(j - 1)] >= 0);
  }
  // Mixed-radix packing of the demand tuple: key = Σ_j D^(j) · stride[j].
  stride_.resize(static_cast<std::size_t>(height));
  std::size_t span = 1;
  for (int j = height; j >= 1; --j) {
    stride_[static_cast<std::size_t>(j - 1)] =
        static_cast<DemandUnits>(span);
    span *=
        static_cast<std::size_t>(bound_[static_cast<std::size_t>(j - 1)]) + 1;
    HGP_CHECK_MSG(span < (std::size_t{1} << 36),
                  "signature space too large; lower the demand resolution "
                  "(larger epsilon or explicit units_override)");
  }
  pack_to_tuple_.assign(span, npos);

  // Enumerate all non-increasing tuples within the bounds (depth-first).
  Signature cur(static_cast<std::size_t>(height), 0);
  auto emit = [&](const Signature& d) {
    const std::size_t key = pack(d);
    pack_to_tuple_[key] = support_.size();
    int support = 0;
    for (int k = 1; k <= height; ++k) {
      if (d[static_cast<std::size_t>(k - 1)] > 0) support = k;
    }
    support_.push_back(support);
    demands_.insert(demands_.end(), d.begin(), d.end());
  };
  auto rec = [&](auto&& self, int level, DemandUnits upper) -> void {
    if (level > height) {
      emit(cur);
      return;
    }
    const DemandUnits cap =
        std::min(upper, bound_[static_cast<std::size_t>(level - 1)]);
    for (DemandUnits d = 0; d <= cap; ++d) {
      cur[static_cast<std::size_t>(level - 1)] = d;
      self(self, level + 1, d);
    }
  };
  rec(rec, 1, std::numeric_limits<DemandUnits>::max());
  count_ = support_.size() * static_cast<std::size_t>(height + 1);
  zero_id_ = id_of(Signature(static_cast<std::size_t>(height), 0), 0);
  HGP_CHECK(zero_id_ != npos);
}

std::size_t SignatureSpace::pack(const Signature& d) const {
  std::size_t key = 0;
  for (int j = 1; j <= height_; ++j) {
    key += static_cast<std::size_t>(d[static_cast<std::size_t>(j - 1)]) *
           static_cast<std::size_t>(stride_[static_cast<std::size_t>(j - 1)]);
  }
  return key;
}

std::size_t SignatureSpace::id_of(const Signature& d, int present) const {
  if (narrow<int>(d.size()) != height_) return npos;
  if (present < 0 || present > height_) return npos;
  DemandUnits prev = std::numeric_limits<DemandUnits>::max();
  int support = 0;
  for (int j = 1; j <= height_; ++j) {
    const DemandUnits x = d[static_cast<std::size_t>(j - 1)];
    if (x < 0 || x > bound_[static_cast<std::size_t>(j - 1)] || x > prev) {
      return npos;
    }
    if (x > 0) support = j;
    prev = x;
  }
  if (present < support) return npos;
  const std::size_t tuple = pack_to_tuple_[pack(d)];
  HGP_ASSERT(tuple != npos);
  return compose(tuple, present);
}

std::size_t SignatureSpace::uniform_id(DemandUnits units) const {
  return id_of(Signature(static_cast<std::size_t>(height_), units), height_);
}

std::size_t SignatureSpace::merge(std::size_t a, int j1, std::size_t b,
                                  int j2, int present) const {
  // Definition 9 preconditions: both children are interned signatures and
  // the cut levels lie within the hierarchy.
  HGP_PRECONDITION_MSG(a < count_ && b < count_,
                       "merge children must be interned signature ids");
  HGP_PRECONDITION_MSG(j1 >= 0 && j1 <= height_ && j2 >= 0 && j2 <= height_,
                       "merge cut levels must lie in [0, h]");
  const int kept1 = std::min(j1, this->present(a));
  const int kept2 = std::min(j2, this->present(b));
  const int base = std::max(kept1, kept2);
  if (present < base || present > height_) return npos;
  Signature out(static_cast<std::size_t>(height_), 0);
  for (int k = 1; k <= height_; ++k) {
    const DemandUnits da = k <= kept1 ? level(a, k) : 0;
    const DemandUnits db = k <= kept2 ? level(b, k) : 0;
    const DemandUnits d = da + db;
    if (d > bound_[static_cast<std::size_t>(k - 1)]) return npos;
    out[static_cast<std::size_t>(k - 1)] = d;
  }
  // Masked child tuples are non-increasing, so the sum is too; presence ≥
  // base ≥ support by construction.
  const std::size_t tuple = pack_to_tuple_[pack(out)];
  HGP_ASSERT(tuple != npos);
  const std::size_t merged = compose(tuple, present);
  // Definition 9 postcondition: a successful (j1,j2)-consistent merge is
  // itself a valid signature — monotone, within capacity, presence deep
  // enough for its support.
  HGP_POSTCONDITION_MSG(id_of(out, present) == merged,
                        "consistent merge produced an invalid signature");
  return merged;
}

std::size_t SignatureSpace::lift(std::size_t a, int j1, int present) const {
  HGP_PRECONDITION_MSG(a < count_,
                       "lift child must be an interned signature id");
  HGP_PRECONDITION_MSG(j1 >= 0 && j1 <= height_,
                       "lift cut level must lie in [0, h]");
  const int kept = std::min(j1, this->present(a));
  if (present < kept || present > height_) return npos;
  Signature out(static_cast<std::size_t>(height_), 0);
  for (int k = 1; k <= kept; ++k) {
    out[static_cast<std::size_t>(k - 1)] = level(a, k);
  }
  const std::size_t tuple = pack_to_tuple_[pack(out)];
  HGP_ASSERT(tuple != npos);
  const std::size_t lifted = compose(tuple, present);
  HGP_POSTCONDITION_MSG(id_of(out, present) == lifted,
                        "lift produced an invalid signature");
  return lifted;
}

void SignatureSpace::validate(const Signature& d, int present) const {
  if (narrow<int>(d.size()) != height_) {
    throw SolveError(StatusCode::kInternal,
                     "signature invariant violated: tuple must have h=" +
                         std::to_string(height_) + " levels, got " +
                         std::to_string(d.size()));
  }
  if (present < 0 || present > height_) {
    throw SolveError(StatusCode::kInternal,
                     "signature invariant violated: presence depth " +
                         std::to_string(present) + " outside [0, h]");
  }
  DemandUnits prev = std::numeric_limits<DemandUnits>::max();
  int support = 0;
  for (int j = 1; j <= height_; ++j) {
    const DemandUnits x = d[static_cast<std::size_t>(j - 1)];
    if (x < 0) {
      throw SolveError(StatusCode::kInternal,
                       "signature invariant violated: negative demand at "
                       "level " +
                           std::to_string(j));
    }
    if (x > bound_[static_cast<std::size_t>(j - 1)]) {
      throw SolveError(StatusCode::kInternal,
                       "signature invariant violated: demand " +
                           std::to_string(x) + " exceeds capacity bound at "
                           "level " +
                           std::to_string(j));
    }
    if (x > prev) {
      throw SolveError(StatusCode::kInternal,
                       "signature invariant violated: Corollary 1 "
                       "monotonicity fails at level " +
                           std::to_string(j) + " (D rises " +
                           std::to_string(prev) + " -> " +
                           std::to_string(x) + ")");
    }
    if (x > 0) support = j;
    prev = x;
  }
  if (present < support) {
    throw SolveError(StatusCode::kInternal,
                     "signature invariant violated: presence depth " +
                         std::to_string(present) + " shallower than demand "
                         "support " +
                         std::to_string(support));
  }
}

void SignatureSpace::validate(std::size_t id) const {
  if (id >= count_) {
    throw SolveError(StatusCode::kInternal,
                     "signature invariant violated: id " +
                         std::to_string(id) + " out of range (space size " +
                         std::to_string(count_) + ")");
  }
  Signature d(static_cast<std::size_t>(height_), 0);
  for (int j = 1; j <= height_; ++j) {
    d[static_cast<std::size_t>(j - 1)] = level(id, j);
  }
  validate(d, present(id));
}

}  // namespace hgp
