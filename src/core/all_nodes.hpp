// The dummy-leaf reduction (§3, after Definition 2).
//
// HGPT partitions only the *leaves* of a tree.  When every node of the
// tree is a job — internal relay operators also consume CPU — the paper
// reduces to the leaf case: attach to each internal node a dummy leaf by
// an edge of infinite weight.  No finite-cost solution separates a node
// from its dummy, so assignments of the modified tree's leaves correspond
// exactly (and at equal cost) to assignments of all original nodes.
#pragma once

#include <vector>

#include "core/tree_solver.hpp"
#include "graph/tree.hpp"
#include "hierarchy/hierarchy.hpp"

namespace hgp {

struct AllNodesReduction {
  /// The modified tree: original topology plus one dummy leaf per original
  /// internal node, attached by an uncuttable edge.
  Tree tree;
  /// job_leaf[v] = the leaf of `tree` carrying original node v's job:
  /// v itself if v was a leaf, its dummy otherwise.
  std::vector<Vertex> job_leaf;
};

/// `t` must carry a demand for EVERY node (internal included), i.e. its
/// demand vector is all-positive.  Demands move onto the job leaves.
AllNodesReduction reduce_all_nodes(const Tree& t,
                                   const std::vector<double>& demand);

struct AllNodesSolution {
  /// leaf_of[v] = H-leaf hosting original node v (every node assigned).
  std::vector<LeafId> leaf_of;
  double cost = 0;           ///< HGPT objective on the reduced tree
  double relaxed_cost = 0;
  std::vector<double> violation;
};

/// Solves HGPT for *all* nodes of `t` (each with the given demand) via the
/// reduction.
AllNodesSolution solve_hgpt_all_nodes(const Tree& t,
                                      const std::vector<double>& demand,
                                      const Hierarchy& h,
                                      const TreeSolverOptions& opt = {});

}  // namespace hgp
