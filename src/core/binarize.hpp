// Tree binarization (§3, before the DP).
//
// The merge step of the dynamic program handles at most two children, so
// nodes with fan-out f > 2 are expanded into a left-leaning comb of f-2
// dummy internal nodes joined by *uncuttable* edges (the paper's
// weight-infinity edges); every original child keeps its original edge
// weight.  Any solution of the binarized tree maps back to the original
// tree with identical cost because uncuttable edges never enter a
// separator.
#pragma once

#include <vector>

#include "graph/tree.hpp"

namespace hgp {

struct BinarizedTree {
  Tree tree;
  /// original node of each binarized node; kInvalidVertex for dummies.
  std::vector<Vertex> original_of;
};

/// Expands every node to fan-out ≤ 2; preserves leaf demands.
BinarizedTree binarize(const Tree& t);

}  // namespace hgp
