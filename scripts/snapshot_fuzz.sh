#!/usr/bin/env bash
# Snapshot corruption fuzz (CI: the snapshot-fuzz job).
#
# Runs `hgp_snapfuzz` — seeded random and CRC-consistent corruptions over a
# pristine image of every persisted snapshot kind (graph, hierarchy,
# forest, checkpoint spill; see docs/FORMATS.md).  The harness asserts the
# durability contract: raw corruption is always rejected with a typed
# kDataLoss, CRC-consistent corruption is either rejected or yields a valid
# parse, and nothing ever crashes or reads out of bounds — which is only a
# real guarantee when the binary is built under ASan/UBSan, so CI points
# this script at the sanitizer build.
#
# Usage: scripts/snapshot_fuzz.sh [build-dir] [iters] [seeds...]
#   scripts/snapshot_fuzz.sh build-asan            # CI: 1000 iters, seeds 1 2 3
#   scripts/snapshot_fuzz.sh build 5000 42         # bigger local hammer
set -eu
cd "$(dirname "$0")/.."
BUILD="${1:-build-asan}"
ITERS="${2:-1000}"
shift $(( $# > 2 ? 2 : $# ))
SEEDS=("${@:-}")
[ -n "${SEEDS[0]:-}" ] || SEEDS=(1 2 3)
FUZZ="$BUILD/tools/hgp_snapfuzz"
[ -x "$FUZZ" ] || { echo "missing $FUZZ (build hgp_snapfuzz first)"; exit 1; }

for seed in "${SEEDS[@]}"; do
  echo "== hgp_snapfuzz --iters $ITERS --seed $seed"
  "$FUZZ" --iters "$ITERS" --seed "$seed"
done

echo "snapshot fuzz OK ($ITERS iterations x ${#SEEDS[@]} seed(s))"
