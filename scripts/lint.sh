#!/usr/bin/env bash
# Runs the project lint driver (tools/hgp_lint.py) over the source tree.
#
# Usage: scripts/lint.sh [--self-test]
#   --self-test   also run the driver's fixture-based self-test first
#
# Exit code: 0 clean, non-zero on violations (or self-test failure).
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

python=python3
if ! command -v "${python}" >/dev/null 2>&1; then
  echo "lint.sh: python3 not found; cannot run hgp_lint" >&2
  exit 2
fi

if [[ "${1:-}" == "--self-test" ]]; then
  "${python}" "${root}/tools/hgp_lint.py" --self-test
fi

exec "${python}" "${root}/tools/hgp_lint.py" --root "${root}"
