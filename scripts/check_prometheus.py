#!/usr/bin/env python3
"""Promtool-style validator for Prometheus text exposition (version 0.0.4).

Checks the /metrics scrape of the introspection endpoint the way
`promtool check metrics` would, without requiring promtool in the image:

  * every line is a `# HELP`, a `# TYPE`, a sample, or blank;
  * metric and label names match the Prometheus charsets;
  * sample values parse as float / +Inf / -Inf / NaN;
  * each family declares `# TYPE` at most once, before its samples;
  * histogram families carry `_bucket` series with `le` labels ending in
    `le="+Inf"`, cumulative bucket counts are non-decreasing, and `_sum`
    and `_count` are present;
  * counter and histogram-count values are non-negative.

Usage:
  check_prometheus.py FILE [--require NAME ...]
  ... | check_prometheus.py - --require hgp_service_submitted

--require asserts that a sample of the given family exists (the smoke test
lists the series the chaos storm must have produced).  Exit 0 when clean,
1 with one line per violation otherwise.
"""

from __future__ import annotations

import argparse
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$")
TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(counter|gauge|histogram|summary|untyped)$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # name
    r"(?:\{([^}]*)\})? "                     # optional {labels}
    r"(-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\+Inf|-Inf|NaN)"
    r"(?: -?\d+)?$")                         # optional timestamp
LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def base_family(name: str) -> str:
    """Strips the histogram/summary sample suffixes back to the family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate(text: str, required: list[str]) -> list[str]:
    errors: list[str] = []
    types: dict[str, str] = {}
    seen_samples: set[str] = set()
    # family -> list of (le, cumulative count) in exposition order
    buckets: dict[str, list[tuple[str, float]]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if HELP_RE.match(line):
                continue
            m = TYPE_RE.match(line)
            if not m:
                errors.append(f"line {lineno}: malformed comment line: {line}")
                continue
            name, kind = m.group(1), m.group(2)
            if name in types:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            if name in seen_samples or base_family(name) in seen_samples:
                errors.append(
                    f"line {lineno}: TYPE for {name} after its samples")
            types[name] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: malformed sample line: {line}")
            continue
        name, labels, value_text = m.group(1), m.group(2), m.group(3)
        family = base_family(name)
        seen_samples.add(family)
        seen_samples.add(name)
        if labels:
            for pair in labels.split(","):
                if not LABEL_RE.match(pair.strip()):
                    errors.append(
                        f"line {lineno}: malformed label pair: {pair}")
        value = float(value_text.replace("Inf", "inf").replace("NaN", "nan"))
        kind = types.get(family) or types.get(name)
        if kind is None:
            errors.append(f"line {lineno}: sample {name} has no # TYPE")
            continue
        if kind == "counter" and not value >= 0:
            errors.append(f"line {lineno}: counter {name} is negative")
        if kind == "histogram":
            if name.endswith("_bucket"):
                le = None
                for pair in (labels or "").split(","):
                    key, _, raw = pair.strip().partition("=")
                    if key == "le":
                        le = raw.strip('"')
                if le is None:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label")
                else:
                    buckets.setdefault(family, []).append((le, value))
            elif not (name.endswith("_sum") or name.endswith("_count")):
                errors.append(
                    f"line {lineno}: stray histogram sample {name}")

    for family, series in sorted(buckets.items()):
        if not series or series[-1][0] != "+Inf":
            errors.append(f"histogram {family}: buckets do not end in +Inf")
        counts = [count for _, count in series]
        if counts != sorted(counts):
            errors.append(f"histogram {family}: bucket counts not cumulative")
        for suffix in ("_sum", "_count"):
            if family + suffix not in seen_samples:
                errors.append(f"histogram {family}: missing {family}{suffix}")

    for name in required:
        if name not in seen_samples:
            errors.append(f"required series missing from exposition: {name}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="exposition file, or - for stdin")
    parser.add_argument("--require", nargs="*", default=[],
                        metavar="NAME",
                        help="series that must be present")
    args = parser.parse_args()
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, encoding="utf-8") as f:
            text = f.read()
    errors = validate(text, args.require)
    for e in errors:
        print(f"check_prometheus: {e}", file=sys.stderr)
    if errors:
        return 1
    families = len({base_family(n) for n in (
        line.split(" ")[2] for line in text.splitlines()
        if line.startswith("# TYPE "))})
    print(f"check_prometheus: OK ({families} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
