#!/usr/bin/env bash
# Chaos smoke test for the solver service layer (CI: the chaos-smoke job).
#
# Fires `hgp_chaos` — N concurrent requests against a SolverService under
# injected faults, random caller cancellations, and memory-budget pressure
# (see docs/RESILIENCE.md).  The harness itself asserts the service-layer
# invariants (every request terminal + documented status, valid placements,
# at least one admission rejection / successful retry / checkpoint-resume)
# and exits non-zero on any violation; running it under ASan additionally
# proves the storm leaks and corrupts nothing.  This script then checks the
# exported metrics are valid JSON and carry the service.* series.
#
# When the build dir contains hgp_shardd, the distributed storm (phase 6)
# runs too: coordinated solves over real worker processes with seeded
# SIGKILLs, stalled heartbeats, torn frames and a zombie peer, checked
# bit-identical against single-process baselines (docs/RESILIENCE.md).
#
# Usage: scripts/chaos_smoke.sh [build-dir] [requests] [seed]
#   scripts/chaos_smoke.sh build-asan            # CI: ASan build, 200 reqs
#   scripts/chaos_smoke.sh build 500 7           # bigger local storm
set -eu
cd "$(dirname "$0")/.."
BUILD="${1:-build-asan}"
REQUESTS="${2:-200}"
SEED="${3:-1}"
CHAOS="$BUILD/tools/hgp_chaos"
SHARDD="$BUILD/tools/hgp_shardd"
[ -x "$CHAOS" ] || { echo "missing $CHAOS (build hgp_chaos first)"; exit 1; }

SHARD_ARGS=()
if [ -x "$SHARDD" ]; then
  SHARD_ARGS=(--shardd "$SHARDD")
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CHAOS" --requests "$REQUESTS" --seed "$SEED" --metrics "$WORK/metrics.json" \
  ${SHARD_ARGS[@]+"${SHARD_ARGS[@]}"}

python3 -m json.tool "$WORK/metrics.json" > /dev/null

# The storm must have exercised every service-layer path it instruments,
# including the durability path: phase 3 crashes requests over a spill
# directory, restarts the service, and resumes from the recovered spills.
for metric in '"service.submitted"' '"service.admitted"' \
              '"service.completed"' '"service.admission_rejects"' \
              '"service.retries"' '"service.checkpoint_trees"' \
              '"service.checkpoint_spills"' '"service.checkpoint_recovered"'; do
  grep -q "$metric" "$WORK/metrics.json" \
    || { echo "metrics export missing $metric"; exit 1; }
done

# When the distributed storm ran, the shard supervision counters must have
# moved: shards came up, at least one was lost, a lease expired, work was
# reassigned, and a zombie reply was fenced.
if [ -x "$SHARDD" ]; then
  for metric in '"shard.up"' '"shard.lost"' '"shard.lease_expiries"' \
                '"shard.batches_reassigned"' '"shard.zombies_fenced"' \
                '"shard.trees_from_shards"'; do
    grep -q "$metric" "$WORK/metrics.json" \
      || { echo "metrics export missing $metric"; exit 1; }
  done
  echo "chaos smoke OK ($REQUESTS requests, seed $SEED, distributed storm on)"
else
  echo "chaos smoke OK ($REQUESTS requests, seed $SEED)"
fi
