#!/usr/bin/env bash
# Chaos smoke test for the solver service layer (CI: the chaos-smoke job).
#
# Fires `hgp_chaos` — N concurrent requests against a SolverService under
# injected faults, random caller cancellations, and memory-budget pressure
# (see docs/RESILIENCE.md).  The harness itself asserts the service-layer
# invariants (every request terminal + documented status, valid placements,
# at least one admission rejection / successful retry / checkpoint-resume)
# and exits non-zero on any violation; running it under ASan additionally
# proves the storm leaks and corrupts nothing.  This script then checks the
# exported metrics are valid JSON and carry the service.* series.
#
# Usage: scripts/chaos_smoke.sh [build-dir] [requests] [seed]
#   scripts/chaos_smoke.sh build-asan            # CI: ASan build, 200 reqs
#   scripts/chaos_smoke.sh build 500 7           # bigger local storm
set -eu
cd "$(dirname "$0")/.."
BUILD="${1:-build-asan}"
REQUESTS="${2:-200}"
SEED="${3:-1}"
CHAOS="$BUILD/tools/hgp_chaos"
[ -x "$CHAOS" ] || { echo "missing $CHAOS (build hgp_chaos first)"; exit 1; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CHAOS" --requests "$REQUESTS" --seed "$SEED" --metrics "$WORK/metrics.json"

python3 -m json.tool "$WORK/metrics.json" > /dev/null

# The storm must have exercised every service-layer path it instruments,
# including the durability path: phase 3 crashes requests over a spill
# directory, restarts the service, and resumes from the recovered spills.
for metric in '"service.submitted"' '"service.admitted"' \
              '"service.completed"' '"service.admission_rejects"' \
              '"service.retries"' '"service.checkpoint_trees"' \
              '"service.checkpoint_spills"' '"service.checkpoint_recovered"'; do
  grep -q "$metric" "$WORK/metrics.json" \
    || { echo "metrics export missing $metric"; exit 1; }
done

echo "chaos smoke OK ($REQUESTS requests, seed $SEED)"
