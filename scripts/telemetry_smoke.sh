#!/usr/bin/env bash
# End-to-end telemetry smoke test (CI: the telemetry-smoke job).
#
# Solves a small instance with `hgp_solve --trace --metrics --report`, then
# checks that (a) both exports are valid JSON (python3 -m json.tool), and
# (b) the trace contains the spans the pipeline promises: the solve root,
# forest build, per-tree DP solves, RHGPT->HGPT conversion, and map-back.
#
# Usage: scripts/telemetry_smoke.sh [build-dir]
set -eu
BUILD="${1:-build}"
SOLVE="$BUILD/tools/hgp_solve"
[ -x "$SOLVE" ] || { echo "missing $SOLVE (build hgp_solve first)"; exit 1; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# 8-task ring with one heavy chord pair per task (METIS fmt 011:
# vertex weights = demands*1000, edge weights = volumes).
cat > "$WORK/ring8.metis" <<'EOF'
8 8 011
1000 2 10 8 1
1000 1 10 3 7
1000 2 7 4 9
1000 3 9 5 2
1000 4 2 6 8
1000 5 8 7 3
1000 6 3 8 5
1000 7 5 1 1
EOF

"$SOLVE" --graph "$WORK/ring8.metis" --deg 2,4 --cm 4,1,0 --trees 3 \
  --trace "$WORK/trace.json" --metrics "$WORK/metrics.json" --report

python3 -m json.tool "$WORK/trace.json" > /dev/null
python3 -m json.tool "$WORK/metrics.json" > /dev/null

for span in '"name":"solve"' '"name":"solve.forest"' '"name":"solve.trees"' \
            '"name":"tree.attempt"' '"name":"dp.solve"' \
            '"name":"tree.convert"' '"name":"tree.map_back"'; do
  grep -q "$span" "$WORK/trace.json" || {
    echo "trace is missing expected span $span"; exit 1; }
done
grep -q '"dp.merge_operations"' "$WORK/metrics.json" || {
  echo "metrics export is missing dp counters"; exit 1; }

echo "telemetry smoke OK"
