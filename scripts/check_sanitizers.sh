#!/usr/bin/env bash
# Sanitizer matrix runner: builds the tree under each requested sanitizer
# preset and runs the test suite under it.
#
# The resilience layer's unwinding paths (exceptions crossing thread-pool
# futures, abandoned DP tables) are ASan/UBSan's main customers; the
# parallel forest solve, CancelToken/Deadline polling, and the
# FaultInjector's armed-table handoff are TSan's (tests/test_race.cpp).
#
# Usage: scripts/check_sanitizers.sh [asan-ubsan|tsan|all] [extra ctest args]
#   scripts/check_sanitizers.sh                  # asan-ubsan + tsan
#   scripts/check_sanitizers.sh tsan             # just TSan
#   scripts/check_sanitizers.sh all -R Race      # both, filtered tests
set -eu
cd "$(dirname "$0")/.."

matrix="all"
if [ "$#" -ge 1 ]; then
  case "$1" in
    asan-ubsan|tsan|all) matrix="$1"; shift ;;
  esac
fi

presets=""
case "$matrix" in
  all) presets="asan-ubsan tsan" ;;
  *) presets="$matrix" ;;
esac

jobs="$(nproc)"
failed=""
for preset in $presets; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] ctest"
  if ! ctest --preset "$preset" -j "$jobs" "$@"; then
    failed="$failed $preset"
  fi
done

if [ -n "$failed" ]; then
  echo "sanitizer matrix FAILED:$failed" >&2
  exit 1
fi
echo "sanitizer matrix OK: $presets"
