#!/usr/bin/env bash
# Builds the tree with ASan+UBSan (the asan-ubsan preset) and runs the
# test suite under it.  The resilience layer's unwinding paths —
# exceptions crossing thread-pool futures, abandoned DP tables — are the
# main customers.
# Usage: scripts/check_sanitizers.sh [extra ctest args...]
set -eu
cd "$(dirname "$0")/.."
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"
