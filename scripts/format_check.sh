#!/usr/bin/env bash
# Checks that C++ sources match .clang-format (dry-run, no rewriting).
#
# Usage: scripts/format_check.sh [--fix]
#   --fix   rewrite files in place instead of only reporting drift
#
# clang-format is optional in local sandboxes; when it is missing the check
# is skipped with a note and exits 0 so plain `ctest` stays runnable
# everywhere.  CI installs clang-format, so drift still fails the pipeline.
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

clang_format=""
for candidate in clang-format clang-format-18 clang-format-17 clang-format-16 \
                 clang-format-15 clang-format-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    clang_format="${candidate}"
    break
  fi
done

if [[ -z "${clang_format}" ]]; then
  echo "format_check: clang-format not installed; skipping (CI enforces this)"
  exit 0
fi

mapfile -t files < <(find "${root}/src" "${root}/tests" "${root}/bench" \
  "${root}/examples" "${root}/tools" \
  -name '*.cpp' -o -name '*.hpp' | sort)

if [[ "${1:-}" == "--fix" ]]; then
  "${clang_format}" -i --style=file "${files[@]}"
  echo "format_check: reformatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! "${clang_format}" --style=file --dry-run -Werror "${f}" \
      >/dev/null 2>&1; then
    echo "format drift: ${f#"${root}"/}"
    bad=$((bad + 1))
  fi
done

if [[ "${bad}" -gt 0 ]]; then
  echo "format_check: ${bad} file(s) need clang-format (run with --fix)"
  exit 1
fi
echo "format_check: ${#files[@]} files clean"
