#!/usr/bin/env bash
# Introspection-endpoint smoke test (CI: the obs-endpoint job).
#
# Boots `hgp_chaos` with the unix-socket endpoint enabled and scrapes it
# WHILE the storm runs: /metrics must be valid Prometheus text exposition
# (scripts/check_prometheus.py, a promtool-style validator) carrying the
# service.* series, /requests must be valid JSON, /flightrecorder must
# return an on-demand dump, and tools/hgp_top --once must render against
# the live socket.  After the storm, the watchdog-cancel phase must have
# left a flight-recorder dump that is valid JSON and names the retry /
# degrade / spill steps of the cancelled request (the harness itself
# asserts the per-request event sequence; this script re-checks the file
# from the outside).
#
# Usage: scripts/obs_endpoint_smoke.sh [build-dir] [requests] [seed]
#   scripts/obs_endpoint_smoke.sh build          # CI: release build
set -eu
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
REQUESTS="${2:-60}"
SEED="${3:-1}"
CHAOS="$BUILD/tools/hgp_chaos"
TOP="$BUILD/tools/hgp_top"
[ -x "$CHAOS" ] || { echo "missing $CHAOS (build hgp_chaos first)"; exit 1; }
[ -x "$TOP" ] || { echo "missing $TOP (build hgp_top first)"; exit 1; }

WORK="$(mktemp -d)"
SOCKET="$WORK/hgp-obs.sock"
DUMP="$WORK/flight.json"
CHAOS_PID=
cleanup() {
  [ -n "$CHAOS_PID" ] && kill "$CHAOS_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# The hold-open keeps the endpoint alive briefly after the phases finish,
# so a scrape that starts near the end never races the teardown.
"$CHAOS" --requests "$REQUESTS" --seed "$SEED" \
  --obs-socket "$SOCKET" --flight-dump "$DUMP" --hold-open-ms 3000 \
  --metrics "$WORK/metrics.json" &
CHAOS_PID=$!

# Wait for the storm service to bind the socket.
for _ in $(seq 1 200); do
  [ -S "$SOCKET" ] && break
  kill -0 "$CHAOS_PID" 2>/dev/null || { echo "chaos died before binding"; exit 1; }
  sleep 0.05
done
[ -S "$SOCKET" ] || { echo "endpoint socket never appeared"; exit 1; }

# --- scrape mid-storm ------------------------------------------------------
"$TOP" --socket "$SOCKET" --once > "$WORK/top.txt"
grep -q "service: submitted" "$WORK/top.txt" \
  || { echo "hgp_top rendered no service summary"; cat "$WORK/top.txt"; exit 1; }

# hgp_top exercised /metrics and /requests; grab raw bodies for validation
# through a python AF_UNIX client (curl --unix-socket is not in the image).
scrape() {
  python3 - "$SOCKET" "$1" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(10)
s.connect(sys.argv[1])
s.sendall(f"GET {sys.argv[2]} HTTP/1.0\r\n\r\n".encode())
data = b""
while chunk := s.recv(65536):
    data += chunk
head, _, body = data.partition(b"\r\n\r\n")
status = head.split(b"\r\n")[0].decode()
if " 200 " not in status:
    sys.exit(f"scrape {sys.argv[2]}: {status}")
sys.stdout.write(body.decode())
EOF
}

scrape /metrics > "$WORK/metrics.prom"
python3 scripts/check_prometheus.py "$WORK/metrics.prom" \
  --require hgp_service_submitted hgp_service_admitted \
            hgp_service_completed hgp_service_retries \
            hgp_service_queue_depth

scrape /requests > "$WORK/requests.json"
python3 -m json.tool "$WORK/requests.json" > /dev/null
grep -q '"queue_depth"' "$WORK/requests.json" \
  || { echo "/requests missing queue_depth"; exit 1; }

scrape /flightrecorder > "$WORK/ondemand.json"
python3 -m json.tool "$WORK/ondemand.json" > /dev/null
grep -q '"reason": "on-demand scrape"' "$WORK/ondemand.json" \
  || { echo "/flightrecorder dump malformed"; exit 1; }

# --- let the storm finish (its own invariants gate the exit code) ----------
wait "$CHAOS_PID"
CHAOS_PID=

# Phase 4's injected watchdog cancel must have dumped the flight recorder,
# and the dump must name the causal steps of the stuck request.
[ -s "$DUMP" ] || { echo "missing watchdog flight dump $DUMP"; exit 1; }
python3 -m json.tool "$DUMP" > /dev/null
for kind in watchdog_cancel retry backoff degrade checkpoint_spill \
            attempt_start attempt_end; do
  grep -q "\"kind\": \"$kind\"" "$DUMP" \
    || { echo "flight dump missing event kind $kind"; exit 1; }
done

python3 -m json.tool "$WORK/metrics.json" > /dev/null
echo "obs endpoint smoke OK ($REQUESTS requests, seed $SEED)"
