#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every library source via the
# compile database; exits nonzero on any finding.
#
# Usage: scripts/tidy.sh [build-dir]
#   build-dir   directory holding compile_commands.json (default: build;
#               configured with the default preset when missing)
#
# clang-tidy is optional in local sandboxes; when it is missing the check
# is skipped with a note and exits 0 so plain `ctest` stays runnable
# everywhere.  CI installs clang-tidy, so findings still fail the pipeline.
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${root}/build}"

clang_tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    clang_tidy="${candidate}"
    break
  fi
done

if [[ -z "${clang_tidy}" ]]; then
  echo "tidy: clang-tidy not installed; skipping (CI enforces this)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "tidy: no compile database in ${build_dir}; configuring"
  cmake -S "${root}" -B "${build_dir}" -G Ninja \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t files < <(find "${root}/src" -name '*.cpp' | sort)

echo "tidy: ${clang_tidy} over ${#files[@]} files"
if ! "${clang_tidy}" -p "${build_dir}" --quiet "${files[@]}"; then
  echo "tidy: findings above must be fixed or NOLINT'ed with a reason"
  exit 1
fi
echo "tidy: clean"
