#!/usr/bin/env bash
# Runs the full experiment suite and fails if any experiment reports FAIL.
# Usage: scripts/run_benches.sh [build-dir]
set -u
BUILD="${1:-build}"
status=0
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] || continue
  echo "### $(basename "$b")"
  if ! "$b"; then
    echo "### $(basename "$b") FAILED"
    status=1
  fi
done
exit $status
