#!/usr/bin/env bash
# Runs the experiment suite and fails if any experiment reports FAIL.
#
# Write mode (default): every benchmark persists a BENCH_<name>.json
# summary at the repo root: the bench name, its wall time and exit code as
# measured here, plus any machine-readable detail the benchmark prints on a
# line of the form "BENCH_JSON: {...}" (e.g. problem size and DP work
# counters).  The files give successive runs a perf trajectory to diff
# without re-parsing human-oriented tables.
#
# Check mode (--check): the committed BENCH_*.json files are treated as the
# baseline and NOT overwritten.  For every bench whose detail carries DP
# work counters (merge_operations + solve_ms), the run fails if the current
# DP throughput (merges/ms) regresses more than 15% below the baseline.
# Benches without comparable counters are reported and skipped.
#
# Usage: scripts/run_benches.sh [--check] [build-dir] [name-glob]
#   scripts/run_benches.sh                      # all benches in ./build
#   scripts/run_benches.sh build 'bench_e7*'    # just the e7 sweep
#   scripts/run_benches.sh --check build 'bench_e7*'   # regression gate
set -u
MODE=write
if [ "${1:-}" = "--check" ]; then
  MODE=check
  shift
fi
BUILD="${1:-build}"
FILTER="${2:-*}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
status=0
for b in "$BUILD"/bench/$FILTER; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "### $name"
  start_ms=$(($(date +%s%N) / 1000000))
  out="$("$b" 2>&1)"
  rc=$?
  end_ms=$(($(date +%s%N) / 1000000))
  printf '%s\n' "$out"
  if [ "$rc" -ne 0 ]; then
    echo "### $name FAILED"
    status=1
  fi
  detail="$(printf '%s\n' "$out" | sed -n 's/^BENCH_JSON: //p' | tail -1)"
  [ -n "$detail" ] || detail='null'
  short="${name#bench_}"
  if [ "$MODE" = "write" ]; then
    printf '{"bench": "%s", "wall_ms": %d, "exit": %d, "detail": %s}\n' \
      "$short" "$((end_ms - start_ms))" "$rc" "$detail" \
      > "$ROOT/BENCH_${short}.json"
  else
    baseline="$ROOT/BENCH_${short}.json"
    if [ ! -f "$baseline" ]; then
      echo "### $name: no committed baseline, skipping check"
      continue
    fi
    if ! python3 - "$baseline" "$detail" <<'PYEOF'
import json
import sys

def throughput(detail):
    """DP merges per millisecond, or None when not measurable."""
    if not isinstance(detail, dict):
        return None
    merges = detail.get("merge_operations") or detail.get("dp_merge_operations")
    ms = detail.get("solve_ms")
    if not merges or not ms or ms <= 0:
        return None
    return merges / ms

with open(sys.argv[1]) as f:
    old = throughput(json.load(f).get("detail"))
new = throughput(json.loads(sys.argv[2]) if sys.argv[2] != "null" else None)
if old is None or new is None:
    print("    no comparable DP throughput counters, skipping")
    sys.exit(0)
ratio = new / old
print(f"    DP throughput {new:.0f} merges/ms vs baseline {old:.0f} "
      f"({ratio:.2f}x)")
if ratio < 0.85:
    print("    REGRESSION: throughput below 85% of the committed baseline")
    sys.exit(1)
PYEOF
    then
      echo "### $name FAILED (throughput regression)"
      status=1
    fi
  fi
done
exit $status
