#!/usr/bin/env bash
# Runs the experiment suite and fails if any experiment reports FAIL.
#
# Every benchmark additionally persists a BENCH_<name>.json summary at the
# repo root: the bench name, its wall time and exit code as measured here,
# plus any machine-readable detail the benchmark prints on a line of the
# form "BENCH_JSON: {...}" (e.g. problem size and DP work counters).  The
# files give successive runs a perf trajectory to diff without re-parsing
# human-oriented tables.
#
# Usage: scripts/run_benches.sh [build-dir] [name-glob]
#   scripts/run_benches.sh                      # all benches in ./build
#   scripts/run_benches.sh build 'bench_e7*'    # just the e7 sweep
set -u
BUILD="${1:-build}"
FILTER="${2:-*}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
status=0
for b in "$BUILD"/bench/$FILTER; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "### $name"
  start_ms=$(($(date +%s%N) / 1000000))
  out="$("$b" 2>&1)"
  rc=$?
  end_ms=$(($(date +%s%N) / 1000000))
  printf '%s\n' "$out"
  if [ "$rc" -ne 0 ]; then
    echo "### $name FAILED"
    status=1
  fi
  detail="$(printf '%s\n' "$out" | sed -n 's/^BENCH_JSON: //p' | tail -1)"
  [ -n "$detail" ] || detail='null'
  short="${name#bench_}"
  printf '{"bench": "%s", "wall_ms": %d, "exit": %d, "detail": %s}\n' \
    "$short" "$((end_ms - start_ms))" "$rc" "$detail" \
    > "$ROOT/BENCH_${short}.json"
done
exit $status
