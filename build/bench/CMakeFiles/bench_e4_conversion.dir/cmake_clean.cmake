file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_conversion.dir/bench_e4_conversion.cpp.o"
  "CMakeFiles/bench_e4_conversion.dir/bench_e4_conversion.cpp.o.d"
  "bench_e4_conversion"
  "bench_e4_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
