file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_tree_optimality.dir/bench_e1_tree_optimality.cpp.o"
  "CMakeFiles/bench_e1_tree_optimality.dir/bench_e1_tree_optimality.cpp.o.d"
  "bench_e1_tree_optimality"
  "bench_e1_tree_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_tree_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
