# Empty compiler generated dependencies file for bench_e1_tree_optimality.
# This may be replaced when dependencies are built.
