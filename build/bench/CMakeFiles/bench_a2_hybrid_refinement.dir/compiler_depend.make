# Empty compiler generated dependencies file for bench_a2_hybrid_refinement.
# This may be replaced when dependencies are built.
