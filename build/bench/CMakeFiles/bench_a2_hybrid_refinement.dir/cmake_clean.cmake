file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_hybrid_refinement.dir/bench_a2_hybrid_refinement.cpp.o"
  "CMakeFiles/bench_a2_hybrid_refinement.dir/bench_a2_hybrid_refinement.cpp.o.d"
  "bench_a2_hybrid_refinement"
  "bench_a2_hybrid_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_hybrid_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
