# Empty compiler generated dependencies file for bench_e3_cost_identity.
# This may be replaced when dependencies are built.
