file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_cost_identity.dir/bench_e3_cost_identity.cpp.o"
  "CMakeFiles/bench_e3_cost_identity.dir/bench_e3_cost_identity.cpp.o.d"
  "bench_e3_cost_identity"
  "bench_e3_cost_identity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_cost_identity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
