# Empty dependencies file for bench_f2_violation_vs_h.
# This may be replaced when dependencies are built.
