file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_violation_vs_h.dir/bench_f2_violation_vs_h.cpp.o"
  "CMakeFiles/bench_f2_violation_vs_h.dir/bench_f2_violation_vs_h.cpp.o.d"
  "bench_f2_violation_vs_h"
  "bench_f2_violation_vs_h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_violation_vs_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
