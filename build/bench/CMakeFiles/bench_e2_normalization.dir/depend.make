# Empty dependencies file for bench_e2_normalization.
# This may be replaced when dependencies are built.
