file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_normalization.dir/bench_e2_normalization.cpp.o"
  "CMakeFiles/bench_e2_normalization.dir/bench_e2_normalization.cpp.o.d"
  "bench_e2_normalization"
  "bench_e2_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
