# Empty compiler generated dependencies file for bench_f1_cost_vs_n.
# This may be replaced when dependencies are built.
