file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_cost_vs_n.dir/bench_f1_cost_vs_n.cpp.o"
  "CMakeFiles/bench_f1_cost_vs_n.dir/bench_f1_cost_vs_n.cpp.o.d"
  "bench_f1_cost_vs_n"
  "bench_f1_cost_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_cost_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
