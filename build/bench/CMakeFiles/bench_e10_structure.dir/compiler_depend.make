# Empty compiler generated dependencies file for bench_e10_structure.
# This may be replaced when dependencies are built.
