file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_structure.dir/bench_e10_structure.cpp.o"
  "CMakeFiles/bench_e10_structure.dir/bench_e10_structure.cpp.o.d"
  "bench_e10_structure"
  "bench_e10_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
