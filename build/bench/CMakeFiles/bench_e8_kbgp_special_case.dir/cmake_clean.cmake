file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_kbgp_special_case.dir/bench_e8_kbgp_special_case.cpp.o"
  "CMakeFiles/bench_e8_kbgp_special_case.dir/bench_e8_kbgp_special_case.cpp.o.d"
  "bench_e8_kbgp_special_case"
  "bench_e8_kbgp_special_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_kbgp_special_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
