# Empty dependencies file for bench_e8_kbgp_special_case.
# This may be replaced when dependencies are built.
