# Empty dependencies file for bench_e6_baselines.
# This may be replaced when dependencies are built.
