file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_baselines.dir/bench_e6_baselines.cpp.o"
  "CMakeFiles/bench_e6_baselines.dir/bench_e6_baselines.cpp.o.d"
  "bench_e6_baselines"
  "bench_e6_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
