# Empty dependencies file for bench_a3_pruning.
# This may be replaced when dependencies are built.
