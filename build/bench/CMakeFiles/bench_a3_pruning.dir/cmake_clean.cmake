file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_pruning.dir/bench_a3_pruning.cpp.o"
  "CMakeFiles/bench_a3_pruning.dir/bench_a3_pruning.cpp.o.d"
  "bench_a3_pruning"
  "bench_a3_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
