file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_end_to_end_ratio.dir/bench_e5_end_to_end_ratio.cpp.o"
  "CMakeFiles/bench_e5_end_to_end_ratio.dir/bench_e5_end_to_end_ratio.cpp.o.d"
  "bench_e5_end_to_end_ratio"
  "bench_e5_end_to_end_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_end_to_end_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
