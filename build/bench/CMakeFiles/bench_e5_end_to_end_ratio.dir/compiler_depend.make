# Empty compiler generated dependencies file for bench_e5_end_to_end_ratio.
# This may be replaced when dependencies are built.
