# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_e5_end_to_end_ratio.
