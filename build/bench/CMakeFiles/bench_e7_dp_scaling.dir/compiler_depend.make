# Empty compiler generated dependencies file for bench_e7_dp_scaling.
# This may be replaced when dependencies are built.
