file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_dp_scaling.dir/bench_e7_dp_scaling.cpp.o"
  "CMakeFiles/bench_e7_dp_scaling.dir/bench_e7_dp_scaling.cpp.o.d"
  "bench_e7_dp_scaling"
  "bench_e7_dp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_dp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
