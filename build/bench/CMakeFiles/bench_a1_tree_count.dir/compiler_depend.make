# Empty compiler generated dependencies file for bench_a1_tree_count.
# This may be replaced when dependencies are built.
