file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_tree_count.dir/bench_a1_tree_count.cpp.o"
  "CMakeFiles/bench_a1_tree_count.dir/bench_a1_tree_count.cpp.o.d"
  "bench_a1_tree_count"
  "bench_a1_tree_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_tree_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
