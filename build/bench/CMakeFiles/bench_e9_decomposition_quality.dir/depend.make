# Empty dependencies file for bench_e9_decomposition_quality.
# This may be replaced when dependencies are built.
