file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_decomposition_quality.dir/bench_e9_decomposition_quality.cpp.o"
  "CMakeFiles/bench_e9_decomposition_quality.dir/bench_e9_decomposition_quality.cpp.o.d"
  "bench_e9_decomposition_quality"
  "bench_e9_decomposition_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_decomposition_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
