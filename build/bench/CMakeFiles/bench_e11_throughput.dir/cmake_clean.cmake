file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_throughput.dir/bench_e11_throughput.cpp.o"
  "CMakeFiles/bench_e11_throughput.dir/bench_e11_throughput.cpp.o.d"
  "bench_e11_throughput"
  "bench_e11_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
