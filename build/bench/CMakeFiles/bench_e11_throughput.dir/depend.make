# Empty dependencies file for bench_e11_throughput.
# This may be replaced when dependencies are built.
