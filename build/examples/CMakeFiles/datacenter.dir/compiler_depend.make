# Empty compiler generated dependencies file for datacenter.
# This may be replaced when dependencies are built.
