file(REMOVE_RECURSE
  "CMakeFiles/datacenter.dir/datacenter.cpp.o"
  "CMakeFiles/datacenter.dir/datacenter.cpp.o.d"
  "datacenter"
  "datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
