# Empty dependencies file for stream_pipeline.
# This may be replaced when dependencies are built.
