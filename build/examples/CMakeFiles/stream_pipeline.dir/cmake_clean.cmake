file(REMOVE_RECURSE
  "CMakeFiles/stream_pipeline.dir/stream_pipeline.cpp.o"
  "CMakeFiles/stream_pipeline.dir/stream_pipeline.cpp.o.d"
  "stream_pipeline"
  "stream_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
