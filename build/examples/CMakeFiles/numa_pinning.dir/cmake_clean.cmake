file(REMOVE_RECURSE
  "CMakeFiles/numa_pinning.dir/numa_pinning.cpp.o"
  "CMakeFiles/numa_pinning.dir/numa_pinning.cpp.o.d"
  "numa_pinning"
  "numa_pinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
