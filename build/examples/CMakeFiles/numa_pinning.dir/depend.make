# Empty dependencies file for numa_pinning.
# This may be replaced when dependencies are built.
