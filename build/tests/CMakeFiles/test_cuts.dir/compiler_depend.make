# Empty compiler generated dependencies file for test_cuts.
# This may be replaced when dependencies are built.
