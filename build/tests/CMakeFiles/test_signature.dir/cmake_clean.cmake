file(REMOVE_RECURSE
  "CMakeFiles/test_signature.dir/test_signature.cpp.o"
  "CMakeFiles/test_signature.dir/test_signature.cpp.o.d"
  "test_signature"
  "test_signature.pdb"
  "test_signature[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
