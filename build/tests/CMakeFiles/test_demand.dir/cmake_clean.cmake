file(REMOVE_RECURSE
  "CMakeFiles/test_demand.dir/test_demand.cpp.o"
  "CMakeFiles/test_demand.dir/test_demand.cpp.o.d"
  "test_demand"
  "test_demand.pdb"
  "test_demand[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
