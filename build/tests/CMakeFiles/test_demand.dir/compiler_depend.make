# Empty compiler generated dependencies file for test_demand.
# This may be replaced when dependencies are built.
