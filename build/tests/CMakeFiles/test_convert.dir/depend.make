# Empty dependencies file for test_convert.
# This may be replaced when dependencies are built.
