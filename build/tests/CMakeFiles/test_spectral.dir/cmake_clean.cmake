file(REMOVE_RECURSE
  "CMakeFiles/test_spectral.dir/test_spectral.cpp.o"
  "CMakeFiles/test_spectral.dir/test_spectral.cpp.o.d"
  "test_spectral"
  "test_spectral.pdb"
  "test_spectral[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
