# Empty compiler generated dependencies file for test_spectral.
# This may be replaced when dependencies are built.
