file(REMOVE_RECURSE
  "CMakeFiles/test_throughput.dir/test_throughput.cpp.o"
  "CMakeFiles/test_throughput.dir/test_throughput.cpp.o.d"
  "test_throughput"
  "test_throughput.pdb"
  "test_throughput[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
