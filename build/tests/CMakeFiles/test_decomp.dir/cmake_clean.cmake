file(REMOVE_RECURSE
  "CMakeFiles/test_decomp.dir/test_decomp.cpp.o"
  "CMakeFiles/test_decomp.dir/test_decomp.cpp.o.d"
  "test_decomp"
  "test_decomp.pdb"
  "test_decomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
