# Empty compiler generated dependencies file for test_tree_solver.
# This may be replaced when dependencies are built.
