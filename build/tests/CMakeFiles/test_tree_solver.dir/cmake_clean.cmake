file(REMOVE_RECURSE
  "CMakeFiles/test_tree_solver.dir/test_tree_solver.cpp.o"
  "CMakeFiles/test_tree_solver.dir/test_tree_solver.cpp.o.d"
  "test_tree_solver"
  "test_tree_solver.pdb"
  "test_tree_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
