file(REMOVE_RECURSE
  "CMakeFiles/test_binarize.dir/test_binarize.cpp.o"
  "CMakeFiles/test_binarize.dir/test_binarize.cpp.o.d"
  "test_binarize"
  "test_binarize.pdb"
  "test_binarize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binarize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
