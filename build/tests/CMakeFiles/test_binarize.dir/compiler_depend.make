# Empty compiler generated dependencies file for test_binarize.
# This may be replaced when dependencies are built.
