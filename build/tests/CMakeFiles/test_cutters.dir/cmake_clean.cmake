file(REMOVE_RECURSE
  "CMakeFiles/test_cutters.dir/test_cutters.cpp.o"
  "CMakeFiles/test_cutters.dir/test_cutters.cpp.o.d"
  "test_cutters"
  "test_cutters.pdb"
  "test_cutters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cutters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
