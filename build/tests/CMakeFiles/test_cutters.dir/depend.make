# Empty dependencies file for test_cutters.
# This may be replaced when dependencies are built.
