# Empty compiler generated dependencies file for test_mirror.
# This may be replaced when dependencies are built.
