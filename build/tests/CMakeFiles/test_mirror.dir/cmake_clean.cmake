file(REMOVE_RECURSE
  "CMakeFiles/test_mirror.dir/test_mirror.cpp.o"
  "CMakeFiles/test_mirror.dir/test_mirror.cpp.o.d"
  "test_mirror"
  "test_mirror.pdb"
  "test_mirror[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
