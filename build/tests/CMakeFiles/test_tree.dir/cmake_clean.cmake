file(REMOVE_RECURSE
  "CMakeFiles/test_tree.dir/test_tree.cpp.o"
  "CMakeFiles/test_tree.dir/test_tree.cpp.o.d"
  "test_tree"
  "test_tree.pdb"
  "test_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
