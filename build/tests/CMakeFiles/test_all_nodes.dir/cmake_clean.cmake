file(REMOVE_RECURSE
  "CMakeFiles/test_all_nodes.dir/test_all_nodes.cpp.o"
  "CMakeFiles/test_all_nodes.dir/test_all_nodes.cpp.o.d"
  "test_all_nodes"
  "test_all_nodes.pdb"
  "test_all_nodes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_all_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
