# Empty compiler generated dependencies file for test_all_nodes.
# This may be replaced when dependencies are built.
