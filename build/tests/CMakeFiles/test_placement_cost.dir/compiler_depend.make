# Empty compiler generated dependencies file for test_placement_cost.
# This may be replaced when dependencies are built.
