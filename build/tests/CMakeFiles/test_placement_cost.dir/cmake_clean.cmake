file(REMOVE_RECURSE
  "CMakeFiles/test_placement_cost.dir/test_placement_cost.cpp.o"
  "CMakeFiles/test_placement_cost.dir/test_placement_cost.cpp.o.d"
  "test_placement_cost"
  "test_placement_cost.pdb"
  "test_placement_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
