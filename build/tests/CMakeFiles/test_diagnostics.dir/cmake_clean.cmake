file(REMOVE_RECURSE
  "CMakeFiles/test_diagnostics.dir/test_diagnostics.cpp.o"
  "CMakeFiles/test_diagnostics.dir/test_diagnostics.cpp.o.d"
  "test_diagnostics"
  "test_diagnostics.pdb"
  "test_diagnostics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
