# Empty compiler generated dependencies file for test_kbgp.
# This may be replaced when dependencies are built.
