file(REMOVE_RECURSE
  "CMakeFiles/test_kbgp.dir/test_kbgp.cpp.o"
  "CMakeFiles/test_kbgp.dir/test_kbgp.cpp.o.d"
  "test_kbgp"
  "test_kbgp.pdb"
  "test_kbgp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kbgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
