file(REMOVE_RECURSE
  "CMakeFiles/test_gomory_hu.dir/test_gomory_hu.cpp.o"
  "CMakeFiles/test_gomory_hu.dir/test_gomory_hu.cpp.o.d"
  "test_gomory_hu"
  "test_gomory_hu.pdb"
  "test_gomory_hu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gomory_hu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
