# Empty dependencies file for test_gomory_hu.
# This may be replaced when dependencies are built.
