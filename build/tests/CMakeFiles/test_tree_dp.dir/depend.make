# Empty dependencies file for test_tree_dp.
# This may be replaced when dependencies are built.
