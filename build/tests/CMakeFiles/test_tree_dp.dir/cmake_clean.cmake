file(REMOVE_RECURSE
  "CMakeFiles/test_tree_dp.dir/test_tree_dp.cpp.o"
  "CMakeFiles/test_tree_dp.dir/test_tree_dp.cpp.o.d"
  "test_tree_dp"
  "test_tree_dp.pdb"
  "test_tree_dp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
