
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tree_dp.cpp" "tests/CMakeFiles/test_tree_dp.dir/test_tree_dp.cpp.o" "gcc" "tests/CMakeFiles/test_tree_dp.dir/test_tree_dp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hgp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hgp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/hgp_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/hgp_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hgp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/hgp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hgp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
