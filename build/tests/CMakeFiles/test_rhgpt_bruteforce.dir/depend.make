# Empty dependencies file for test_rhgpt_bruteforce.
# This may be replaced when dependencies are built.
