file(REMOVE_RECURSE
  "CMakeFiles/test_rhgpt_bruteforce.dir/test_rhgpt_bruteforce.cpp.o"
  "CMakeFiles/test_rhgpt_bruteforce.dir/test_rhgpt_bruteforce.cpp.o.d"
  "test_rhgpt_bruteforce"
  "test_rhgpt_bruteforce.pdb"
  "test_rhgpt_bruteforce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhgpt_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
