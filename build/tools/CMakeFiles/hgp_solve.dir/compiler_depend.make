# Empty compiler generated dependencies file for hgp_solve.
# This may be replaced when dependencies are built.
