file(REMOVE_RECURSE
  "CMakeFiles/hgp_solve.dir/hgp_solve.cpp.o"
  "CMakeFiles/hgp_solve.dir/hgp_solve.cpp.o.d"
  "hgp_solve"
  "hgp_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
