file(REMOVE_RECURSE
  "CMakeFiles/hgp_exp.dir/algorithms.cpp.o"
  "CMakeFiles/hgp_exp.dir/algorithms.cpp.o.d"
  "CMakeFiles/hgp_exp.dir/report.cpp.o"
  "CMakeFiles/hgp_exp.dir/report.cpp.o.d"
  "CMakeFiles/hgp_exp.dir/workloads.cpp.o"
  "CMakeFiles/hgp_exp.dir/workloads.cpp.o.d"
  "libhgp_exp.a"
  "libhgp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
