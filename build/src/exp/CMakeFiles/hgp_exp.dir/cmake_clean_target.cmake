file(REMOVE_RECURSE
  "libhgp_exp.a"
)
