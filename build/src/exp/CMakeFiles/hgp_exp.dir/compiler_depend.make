# Empty compiler generated dependencies file for hgp_exp.
# This may be replaced when dependencies are built.
