
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hierarchy/cost.cpp" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/cost.cpp.o" "gcc" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/cost.cpp.o.d"
  "/root/repo/src/hierarchy/diagnostics.cpp" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/diagnostics.cpp.o" "gcc" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/diagnostics.cpp.o.d"
  "/root/repo/src/hierarchy/hierarchy.cpp" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/hierarchy.cpp.o" "gcc" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/hierarchy.cpp.o.d"
  "/root/repo/src/hierarchy/mirror.cpp" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/mirror.cpp.o" "gcc" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/mirror.cpp.o.d"
  "/root/repo/src/hierarchy/placement.cpp" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/placement.cpp.o" "gcc" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/placement.cpp.o.d"
  "/root/repo/src/hierarchy/placement_io.cpp" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/placement_io.cpp.o" "gcc" "src/hierarchy/CMakeFiles/hgp_hierarchy.dir/placement_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hgp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
