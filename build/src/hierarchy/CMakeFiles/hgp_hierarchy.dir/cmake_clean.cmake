file(REMOVE_RECURSE
  "CMakeFiles/hgp_hierarchy.dir/cost.cpp.o"
  "CMakeFiles/hgp_hierarchy.dir/cost.cpp.o.d"
  "CMakeFiles/hgp_hierarchy.dir/diagnostics.cpp.o"
  "CMakeFiles/hgp_hierarchy.dir/diagnostics.cpp.o.d"
  "CMakeFiles/hgp_hierarchy.dir/hierarchy.cpp.o"
  "CMakeFiles/hgp_hierarchy.dir/hierarchy.cpp.o.d"
  "CMakeFiles/hgp_hierarchy.dir/mirror.cpp.o"
  "CMakeFiles/hgp_hierarchy.dir/mirror.cpp.o.d"
  "CMakeFiles/hgp_hierarchy.dir/placement.cpp.o"
  "CMakeFiles/hgp_hierarchy.dir/placement.cpp.o.d"
  "CMakeFiles/hgp_hierarchy.dir/placement_io.cpp.o"
  "CMakeFiles/hgp_hierarchy.dir/placement_io.cpp.o.d"
  "libhgp_hierarchy.a"
  "libhgp_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
