file(REMOVE_RECURSE
  "libhgp_hierarchy.a"
)
