# Empty compiler generated dependencies file for hgp_hierarchy.
# This may be replaced when dependencies are built.
