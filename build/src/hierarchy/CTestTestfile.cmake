# CMake generated Testfile for 
# Source directory: /root/repo/src/hierarchy
# Build directory: /root/repo/build/src/hierarchy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
