file(REMOVE_RECURSE
  "CMakeFiles/hgp_util.dir/csv.cpp.o"
  "CMakeFiles/hgp_util.dir/csv.cpp.o.d"
  "CMakeFiles/hgp_util.dir/log.cpp.o"
  "CMakeFiles/hgp_util.dir/log.cpp.o.d"
  "CMakeFiles/hgp_util.dir/table.cpp.o"
  "CMakeFiles/hgp_util.dir/table.cpp.o.d"
  "libhgp_util.a"
  "libhgp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
