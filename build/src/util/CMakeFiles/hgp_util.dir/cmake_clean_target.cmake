file(REMOVE_RECURSE
  "libhgp_util.a"
)
