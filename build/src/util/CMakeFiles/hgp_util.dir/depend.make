# Empty dependencies file for hgp_util.
# This may be replaced when dependencies are built.
