file(REMOVE_RECURSE
  "CMakeFiles/hgp_decomp.dir/builder.cpp.o"
  "CMakeFiles/hgp_decomp.dir/builder.cpp.o.d"
  "CMakeFiles/hgp_decomp.dir/cutter.cpp.o"
  "CMakeFiles/hgp_decomp.dir/cutter.cpp.o.d"
  "CMakeFiles/hgp_decomp.dir/decomp_tree.cpp.o"
  "CMakeFiles/hgp_decomp.dir/decomp_tree.cpp.o.d"
  "CMakeFiles/hgp_decomp.dir/frt.cpp.o"
  "CMakeFiles/hgp_decomp.dir/frt.cpp.o.d"
  "CMakeFiles/hgp_decomp.dir/quality.cpp.o"
  "CMakeFiles/hgp_decomp.dir/quality.cpp.o.d"
  "libhgp_decomp.a"
  "libhgp_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
