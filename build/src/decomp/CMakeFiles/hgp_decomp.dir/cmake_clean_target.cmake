file(REMOVE_RECURSE
  "libhgp_decomp.a"
)
