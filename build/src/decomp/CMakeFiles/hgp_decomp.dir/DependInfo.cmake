
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/builder.cpp" "src/decomp/CMakeFiles/hgp_decomp.dir/builder.cpp.o" "gcc" "src/decomp/CMakeFiles/hgp_decomp.dir/builder.cpp.o.d"
  "/root/repo/src/decomp/cutter.cpp" "src/decomp/CMakeFiles/hgp_decomp.dir/cutter.cpp.o" "gcc" "src/decomp/CMakeFiles/hgp_decomp.dir/cutter.cpp.o.d"
  "/root/repo/src/decomp/decomp_tree.cpp" "src/decomp/CMakeFiles/hgp_decomp.dir/decomp_tree.cpp.o" "gcc" "src/decomp/CMakeFiles/hgp_decomp.dir/decomp_tree.cpp.o.d"
  "/root/repo/src/decomp/frt.cpp" "src/decomp/CMakeFiles/hgp_decomp.dir/frt.cpp.o" "gcc" "src/decomp/CMakeFiles/hgp_decomp.dir/frt.cpp.o.d"
  "/root/repo/src/decomp/quality.cpp" "src/decomp/CMakeFiles/hgp_decomp.dir/quality.cpp.o" "gcc" "src/decomp/CMakeFiles/hgp_decomp.dir/quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hgp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hgp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
