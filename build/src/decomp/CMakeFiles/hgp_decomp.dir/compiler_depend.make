# Empty compiler generated dependencies file for hgp_decomp.
# This may be replaced when dependencies are built.
