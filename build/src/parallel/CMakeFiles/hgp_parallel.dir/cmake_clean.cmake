file(REMOVE_RECURSE
  "CMakeFiles/hgp_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/hgp_parallel.dir/thread_pool.cpp.o.d"
  "libhgp_parallel.a"
  "libhgp_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
