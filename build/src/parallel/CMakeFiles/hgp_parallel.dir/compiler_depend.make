# Empty compiler generated dependencies file for hgp_parallel.
# This may be replaced when dependencies are built.
