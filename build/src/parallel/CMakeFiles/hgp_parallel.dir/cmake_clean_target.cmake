file(REMOVE_RECURSE
  "libhgp_parallel.a"
)
