# CMake generated Testfile for 
# Source directory: /root/repo/src/parallel
# Build directory: /root/repo/build/src/parallel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
