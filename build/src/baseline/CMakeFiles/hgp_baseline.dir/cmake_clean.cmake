file(REMOVE_RECURSE
  "CMakeFiles/hgp_baseline.dir/exact.cpp.o"
  "CMakeFiles/hgp_baseline.dir/exact.cpp.o.d"
  "CMakeFiles/hgp_baseline.dir/greedy.cpp.o"
  "CMakeFiles/hgp_baseline.dir/greedy.cpp.o.d"
  "CMakeFiles/hgp_baseline.dir/local_search.cpp.o"
  "CMakeFiles/hgp_baseline.dir/local_search.cpp.o.d"
  "CMakeFiles/hgp_baseline.dir/multilevel.cpp.o"
  "CMakeFiles/hgp_baseline.dir/multilevel.cpp.o.d"
  "CMakeFiles/hgp_baseline.dir/random_placement.cpp.o"
  "CMakeFiles/hgp_baseline.dir/random_placement.cpp.o.d"
  "CMakeFiles/hgp_baseline.dir/recursive_bisection.cpp.o"
  "CMakeFiles/hgp_baseline.dir/recursive_bisection.cpp.o.d"
  "libhgp_baseline.a"
  "libhgp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
