file(REMOVE_RECURSE
  "libhgp_baseline.a"
)
