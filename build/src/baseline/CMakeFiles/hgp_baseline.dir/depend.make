# Empty dependencies file for hgp_baseline.
# This may be replaced when dependencies are built.
