
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/exact.cpp" "src/baseline/CMakeFiles/hgp_baseline.dir/exact.cpp.o" "gcc" "src/baseline/CMakeFiles/hgp_baseline.dir/exact.cpp.o.d"
  "/root/repo/src/baseline/greedy.cpp" "src/baseline/CMakeFiles/hgp_baseline.dir/greedy.cpp.o" "gcc" "src/baseline/CMakeFiles/hgp_baseline.dir/greedy.cpp.o.d"
  "/root/repo/src/baseline/local_search.cpp" "src/baseline/CMakeFiles/hgp_baseline.dir/local_search.cpp.o" "gcc" "src/baseline/CMakeFiles/hgp_baseline.dir/local_search.cpp.o.d"
  "/root/repo/src/baseline/multilevel.cpp" "src/baseline/CMakeFiles/hgp_baseline.dir/multilevel.cpp.o" "gcc" "src/baseline/CMakeFiles/hgp_baseline.dir/multilevel.cpp.o.d"
  "/root/repo/src/baseline/random_placement.cpp" "src/baseline/CMakeFiles/hgp_baseline.dir/random_placement.cpp.o" "gcc" "src/baseline/CMakeFiles/hgp_baseline.dir/random_placement.cpp.o.d"
  "/root/repo/src/baseline/recursive_bisection.cpp" "src/baseline/CMakeFiles/hgp_baseline.dir/recursive_bisection.cpp.o" "gcc" "src/baseline/CMakeFiles/hgp_baseline.dir/recursive_bisection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/hgp_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/hgp_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hgp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hgp_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
