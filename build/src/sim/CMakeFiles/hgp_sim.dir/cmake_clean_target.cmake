file(REMOVE_RECURSE
  "libhgp_sim.a"
)
