# Empty compiler generated dependencies file for hgp_sim.
# This may be replaced when dependencies are built.
