file(REMOVE_RECURSE
  "CMakeFiles/hgp_sim.dir/throughput.cpp.o"
  "CMakeFiles/hgp_sim.dir/throughput.cpp.o.d"
  "libhgp_sim.a"
  "libhgp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
