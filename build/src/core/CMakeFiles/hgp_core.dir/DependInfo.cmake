
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/all_nodes.cpp" "src/core/CMakeFiles/hgp_core.dir/all_nodes.cpp.o" "gcc" "src/core/CMakeFiles/hgp_core.dir/all_nodes.cpp.o.d"
  "/root/repo/src/core/binarize.cpp" "src/core/CMakeFiles/hgp_core.dir/binarize.cpp.o" "gcc" "src/core/CMakeFiles/hgp_core.dir/binarize.cpp.o.d"
  "/root/repo/src/core/convert.cpp" "src/core/CMakeFiles/hgp_core.dir/convert.cpp.o" "gcc" "src/core/CMakeFiles/hgp_core.dir/convert.cpp.o.d"
  "/root/repo/src/core/demand.cpp" "src/core/CMakeFiles/hgp_core.dir/demand.cpp.o" "gcc" "src/core/CMakeFiles/hgp_core.dir/demand.cpp.o.d"
  "/root/repo/src/core/rhgpt.cpp" "src/core/CMakeFiles/hgp_core.dir/rhgpt.cpp.o" "gcc" "src/core/CMakeFiles/hgp_core.dir/rhgpt.cpp.o.d"
  "/root/repo/src/core/signature.cpp" "src/core/CMakeFiles/hgp_core.dir/signature.cpp.o" "gcc" "src/core/CMakeFiles/hgp_core.dir/signature.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/hgp_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/hgp_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/tree_dp.cpp" "src/core/CMakeFiles/hgp_core.dir/tree_dp.cpp.o" "gcc" "src/core/CMakeFiles/hgp_core.dir/tree_dp.cpp.o.d"
  "/root/repo/src/core/tree_solver.cpp" "src/core/CMakeFiles/hgp_core.dir/tree_solver.cpp.o" "gcc" "src/core/CMakeFiles/hgp_core.dir/tree_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hgp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/hgp_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/hgp_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hgp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
