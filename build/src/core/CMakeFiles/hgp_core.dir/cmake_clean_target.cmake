file(REMOVE_RECURSE
  "libhgp_core.a"
)
