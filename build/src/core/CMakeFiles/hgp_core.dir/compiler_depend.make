# Empty compiler generated dependencies file for hgp_core.
# This may be replaced when dependencies are built.
