file(REMOVE_RECURSE
  "CMakeFiles/hgp_core.dir/all_nodes.cpp.o"
  "CMakeFiles/hgp_core.dir/all_nodes.cpp.o.d"
  "CMakeFiles/hgp_core.dir/binarize.cpp.o"
  "CMakeFiles/hgp_core.dir/binarize.cpp.o.d"
  "CMakeFiles/hgp_core.dir/convert.cpp.o"
  "CMakeFiles/hgp_core.dir/convert.cpp.o.d"
  "CMakeFiles/hgp_core.dir/demand.cpp.o"
  "CMakeFiles/hgp_core.dir/demand.cpp.o.d"
  "CMakeFiles/hgp_core.dir/rhgpt.cpp.o"
  "CMakeFiles/hgp_core.dir/rhgpt.cpp.o.d"
  "CMakeFiles/hgp_core.dir/signature.cpp.o"
  "CMakeFiles/hgp_core.dir/signature.cpp.o.d"
  "CMakeFiles/hgp_core.dir/solver.cpp.o"
  "CMakeFiles/hgp_core.dir/solver.cpp.o.d"
  "CMakeFiles/hgp_core.dir/tree_dp.cpp.o"
  "CMakeFiles/hgp_core.dir/tree_dp.cpp.o.d"
  "CMakeFiles/hgp_core.dir/tree_solver.cpp.o"
  "CMakeFiles/hgp_core.dir/tree_solver.cpp.o.d"
  "libhgp_core.a"
  "libhgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
