file(REMOVE_RECURSE
  "libhgp_graph.a"
)
