file(REMOVE_RECURSE
  "CMakeFiles/hgp_graph.dir/generators.cpp.o"
  "CMakeFiles/hgp_graph.dir/generators.cpp.o.d"
  "CMakeFiles/hgp_graph.dir/gomory_hu.cpp.o"
  "CMakeFiles/hgp_graph.dir/gomory_hu.cpp.o.d"
  "CMakeFiles/hgp_graph.dir/graph.cpp.o"
  "CMakeFiles/hgp_graph.dir/graph.cpp.o.d"
  "CMakeFiles/hgp_graph.dir/io.cpp.o"
  "CMakeFiles/hgp_graph.dir/io.cpp.o.d"
  "CMakeFiles/hgp_graph.dir/maxflow.cpp.o"
  "CMakeFiles/hgp_graph.dir/maxflow.cpp.o.d"
  "CMakeFiles/hgp_graph.dir/mincut.cpp.o"
  "CMakeFiles/hgp_graph.dir/mincut.cpp.o.d"
  "CMakeFiles/hgp_graph.dir/spectral.cpp.o"
  "CMakeFiles/hgp_graph.dir/spectral.cpp.o.d"
  "CMakeFiles/hgp_graph.dir/tree.cpp.o"
  "CMakeFiles/hgp_graph.dir/tree.cpp.o.d"
  "libhgp_graph.a"
  "libhgp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
